//! Minimal in-tree stand-in for the
//! [`proptest`](https://crates.io/crates/proptest) crate. The build
//! environment has no registry access, so this vendored crate implements the
//! subset the workspace's property tests use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]` headers),
//! * [`Strategy`] with `prop_map` / `prop_flat_map`,
//! * integer/float range strategies, tuples, [`Just`],
//! * [`collection::vec`] and [`sample::select`],
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assert_ne!`],
//!   [`prop_assume!`].
//!
//! Semantics differ from upstream in one deliberate way: there is **no
//! shrinking**. A failing case reports its case number and the RNG seed is
//! deterministic per case index, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::Rng;

/// The RNG handed to strategies. Deterministic per test case.
pub type TestRng = StdRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random values of type `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Feeds generated values into `f` to pick a dependent strategy.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy producing `Vec`s whose length is uniform in `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy choosing uniformly from `options` (must be non-empty).
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    /// See [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.gen_range(0..self.options.len())].clone()
        }
    }
}

pub mod test_runner {
    //! Runner internals used by the [`proptest!`](crate::proptest) macro
    //! expansion. Not part of the public upstream-compatible surface.

    use super::{ProptestConfig, TestRng};
    use rand::SeedableRng;

    /// Outcome of one test case body.
    pub type CaseResult = Result<(), CaseError>;

    /// Why a case ended early.
    #[derive(Debug)]
    pub enum CaseError {
        /// `prop_assume!` rejected the inputs; not a failure.
        Reject,
        /// `prop_assert*!` failed with a message.
        Fail(String),
    }

    /// Runs `body` until `config.cases` cases are accepted, with a
    /// deterministic per-attempt RNG. `prop_assume!` rejections retry with
    /// the next seed (as upstream does) up to a global attempt cap; the
    /// first failure panics with the attempt index, which — seeds being a
    /// pure function of test name and attempt — reproduces across runs.
    pub fn run<F: FnMut(&mut TestRng) -> CaseResult>(
        config: &ProptestConfig,
        test_name: &str,
        mut body: F,
    ) {
        // FNV-1a over the test name so sibling tests explore different
        // streams.
        let name_hash = test_name
            .bytes()
            .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x100_0000_01b3));
        let max_attempts = (config.cases as u64) * 16 + 256;
        let mut accepted = 0u32;
        let mut attempt = 0u64;
        while accepted < config.cases {
            assert!(
                attempt < max_attempts,
                "{test_name}: too many prop_assume! rejections \
                 ({accepted}/{} cases after {attempt} attempts)",
                config.cases
            );
            let mut rng =
                TestRng::seed_from_u64(name_hash ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            match body(&mut rng) {
                Ok(()) => accepted += 1,
                Err(CaseError::Reject) => {}
                Err(CaseError::Fail(msg)) => {
                    panic!("{test_name}: attempt {attempt} failed: {msg}")
                }
            }
            attempt += 1;
        }
    }
}

/// One-stop imports mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Defines property tests: `proptest! { #[test] fn f(x in strategy) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::test_runner::run(&config, stringify!($name), |rng| {
                    $(let $pat = $crate::Strategy::generate(&($strat), rng);)*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::CaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::CaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`",
                l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::test_runner::CaseError::Fail(format!(
                "assertion failed: `{:?} == {:?}`: {}",
                l,
                r,
                format!($($fmt)*)
            )));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return Err($crate::test_runner::CaseError::Fail(format!(
                "assertion failed: `{:?} != {:?}`",
                l, r
            )));
        }
    }};
}

/// Skips the current case (counted as a rejection, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::CaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y), "y = {y}");
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(crate::sample::select(vec![1u8, 2, 3]), 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&b| (1..=3).contains(&b)));
        }

        #[test]
        fn tuples_and_flat_map(
            (v, i) in crate::collection::vec(0u32..50, 1..9)
                .prop_flat_map(|v| { let n = v.len(); (Just(v), 0..n) })
        ) {
            prop_assert!(i < v.len());
        }

        #[test]
        fn assume_rejects_quietly(x in 0usize..10) {
            prop_assume!(x != 3);
            prop_assert_ne!(x, 3);
        }

        #[test]
        fn map_works(x in (0u32..10).prop_map(|v| v * 2)) {
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        let config = ProptestConfig::with_cases(16);
        crate::test_runner::run(&config, "demo", |rng| {
            let x = crate::Strategy::generate(&(0usize..100), rng);
            prop_assert!(x < 5, "x = {x}");
            Ok(())
        });
    }
}
