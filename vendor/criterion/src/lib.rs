//! Minimal in-tree stand-in for the
//! [`criterion`](https://crates.io/crates/criterion) benchmark harness. The
//! build environment has no registry access, so this vendored crate
//! implements the subset the workspace's benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! `sample_size` samples of adaptively-batched iterations (targeting ≥
//! ~1 ms per sample so timer resolution doesn't dominate). It prints
//! mean/min per-iteration wall time — good enough to compare orders of
//! growth, which is what the experiments need; it is *not* a statistical
//! replacement for upstream criterion.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self { id: format!("{}/{}", name.into(), parameter) }
    }

    /// Id from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// The timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Measured per-iteration times, one entry per sample.
    last_per_iter: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, adaptively batching iterations per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up + batch-size calibration: grow the batch until one batch
        // takes ≥ 1 ms (or we hit a generous cap).
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        self.last_per_iter.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.last_per_iter.push(start.elapsed() / batch as u32);
        }
    }
}

fn report(group: &str, id: &str, per_iter: &[Duration]) {
    if per_iter.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let mean: Duration = per_iter.iter().sum::<Duration>() / per_iter.len() as u32;
    let min = per_iter.iter().min().copied().unwrap_or_default();
    println!("{group}/{id}: mean {mean:?}, min {min:?} ({} samples)", per_iter.len());
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs a benchmark with no parameter.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: self.sample_size, last_per_iter: Vec::new() };
        f(&mut b);
        report(&self.name, &id.to_string(), &b.last_per_iter);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, last_per_iter: Vec::new() };
        f(&mut b, input);
        report(&self.name, &id.to_string(), &b.last_per_iter);
        self
    }

    /// Ends the group (upstream-compatible no-op beyond a blank line).
    pub fn finish(self) {
        println!();
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Default configuration (upstream-compatible constructor).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: 30, _criterion: self }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher { samples: 30, last_per_iter: Vec::new() };
        f(&mut b);
        report("bench", id, &b.last_per_iter);
        self
    }
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::from_parameter(8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, trivial_bench);

    #[test]
    fn harness_runs() {
        benches();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(128).to_string(), "128");
        assert_eq!(BenchmarkId::new("build", 4).to_string(), "build/4");
    }
}
