//! Minimal in-tree stand-in for the [`rand`](https://crates.io/crates/rand)
//! crate, providing the API subset this workspace uses. The build
//! environment has no registry access, so instead of the real dependency we
//! vendor a small, auditable implementation:
//!
//! * [`RngCore`] / [`Rng`] — `next_u64`, `gen`, `gen_range`, `gen_bool`,
//!   `fill_bytes`;
//! * [`SeedableRng`] — `from_seed`, `seed_from_u64`;
//! * [`rngs::StdRng`] — xoshiro256++ seeded via SplitMix64.
//!
//! The generator is deterministic for a given seed (which the tests and
//! experiments rely on) but is **not** the same stream as upstream `rand`'s
//! `StdRng`; nothing in this workspace depends on the exact stream.

#![forbid(unsafe_code)]

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $wide:ty),* $(,)?) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias of the plain variant is irrelevant for test workloads,
                // but rejection keeps it exact anyway.
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone || zone == u64::MAX {
                        return ((self.start as $wide).wrapping_add((v % span) as $wide)) as $t;
                    }
                }
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                if lo == <$t>::MIN && hi == <$t>::MAX {
                    // Full domain: every bit pattern is valid.
                    return rng.next_u64() as $t;
                }
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64 + 1;
                let zone = u64::MAX - (u64::MAX % span + 1) % span;
                loop {
                    let v = rng.next_u64();
                    if v <= zone || zone == u64::MAX {
                        return ((lo as $wide).wrapping_add((v % span) as $wide)) as $t;
                    }
                }
            }
        }
    )*};
}

impl_int_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        self.start + u * (self.end - self.start)
    }
}

/// High-level convenience methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample of type `T` (integers over the full domain,
    /// floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the RNG from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the RNG from a `u64` by expanding it with SplitMix64
    /// (the same convention upstream `rand` documents).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// The workspace's standard RNG: xoshiro256++ (Blackman–Vigna).
    ///
    /// Fast, passes BigCrush, and trivially auditable. Not cryptographic —
    /// fine for synthetic workloads and DP noise in experiments, and clearly
    /// documented as a stand-in (see the crate docs).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_rate() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let hits = (0..n).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn full_domain_ints() {
        let mut rng = StdRng::seed_from_u64(3);
        // Smoke: no panic on extreme inclusive ranges.
        let _ = rng.gen_range(i64::MIN..=i64::MAX);
        let _ = rng.gen_range(u64::MIN..=u64::MAX);
    }
}
