//! The published data structure: a pruned trie of noisy counts.
//!
//! This is the artifact Theorems 1–4 output. Because its *construction* is
//! differentially private, the structure can be queried, mined, and
//! re-mined at arbitrary thresholds with no further privacy loss
//! (post-processing).

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_strkit::trie::Trie;

/// Which count the structure stores: `count_Δ` for some clip level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CountMode {
    /// `Δ = 1`: Document Count.
    Document,
    /// `Δ = ℓ`: Substring Count.
    Substring,
    /// General `count_Δ`.
    Clipped(usize),
}

impl CountMode {
    /// The clip level `Δ` for a database with maximum document length `ℓ`.
    pub fn delta_clip(&self, ell: usize) -> usize {
        match *self {
            CountMode::Document => 1,
            CountMode::Substring => ell,
            CountMode::Clipped(d) => d.clamp(1, ell),
        }
    }
}

impl std::fmt::Display for CountMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CountMode::Document => write!(f, "document (Δ=1)"),
            CountMode::Substring => write!(f, "substring (Δ=ℓ)"),
            CountMode::Clipped(d) => write!(f, "clipped (Δ={d})"),
        }
    }
}

/// A differentially private `count_Δ` data structure (Theorems 1–4).
#[derive(Debug, Clone)]
pub struct PrivateCountStructure {
    trie: Trie<f64>,
    mode: CountMode,
    privacy: PrivacyParams,
    /// Error bound on stored counts: for present strings,
    /// `|count* − count_Δ| ≤ alpha_counts` w.p. ≥ 1−β.
    alpha_counts: f64,
    /// Bound for absent strings: any `P` not in the trie has true
    /// `count_Δ(P, D) ≤ alpha_absent` w.p. ≥ 1−β.
    alpha_absent: f64,
    /// Database parameters the guarantees refer to.
    n_docs: usize,
    max_len: usize,
}

impl PrivateCountStructure {
    /// Assembles a structure from pipeline output. Internal to the crate's
    /// builders, public for the baselines.
    pub fn new(
        trie: Trie<f64>,
        mode: CountMode,
        privacy: PrivacyParams,
        alpha_counts: f64,
        alpha_absent: f64,
        n_docs: usize,
        max_len: usize,
    ) -> Self {
        Self { trie, mode, privacy, alpha_counts, alpha_absent, n_docs, max_len }
    }

    /// Noisy `count_Δ(P, D)`. Absent patterns return 0 (their true count is
    /// below [`Self::alpha_absent`] w.h.p.). `O(|P|)` time.
    pub fn query(&self, pattern: &[u8]) -> f64 {
        match self.trie.walk(pattern) {
            Some(node) => *self.trie.value(node),
            None => 0.0,
        }
    }

    /// Whether the pattern is represented in the structure.
    pub fn contains(&self, pattern: &[u8]) -> bool {
        self.trie.walk(pattern).is_some()
    }

    /// The count mode (`Δ`).
    #[inline]
    pub fn mode(&self) -> CountMode {
        self.mode
    }

    /// The privacy guarantee of the construction.
    #[inline]
    pub fn privacy(&self) -> PrivacyParams {
        self.privacy
    }

    /// Error bound on stored noisy counts (high probability).
    #[inline]
    pub fn alpha_counts(&self) -> f64 {
        self.alpha_counts
    }

    /// True-count bound for strings not present in the structure.
    #[inline]
    pub fn alpha_absent(&self) -> f64 {
        self.alpha_absent
    }

    /// Overall additive error `α` of the data structure: valid for *all*
    /// patterns, present (count error) or absent (missed mass).
    pub fn alpha(&self) -> f64 {
        self.alpha_counts.max(self.alpha_absent)
    }

    /// Number of trie nodes (paper: `O(nℓ²)` after pruning).
    pub fn node_count(&self) -> usize {
        self.trie.len()
    }

    /// Database size parameters `(n, ℓ)` the structure was built from.
    pub fn db_params(&self) -> (usize, usize) {
        (self.n_docs, self.max_len)
    }

    /// Nodes per depth, for size audits.
    pub fn depth_histogram(&self) -> Vec<usize> {
        self.trie.depth_histogram()
    }

    /// Direct access to the underlying trie (read-only).
    pub fn trie(&self) -> &Trie<f64> {
        &self.trie
    }

    /// `α`-approximate substring mining (Definition 2): every string whose
    /// noisy count is at least `tau`, with its noisy count.
    ///
    /// Guarantee (with the structure's `α`): all strings with
    /// `count_Δ ≥ τ + α` are output; no string with `count_Δ ≤ τ − α` is.
    /// Pure post-processing — call with as many thresholds as you like.
    pub fn mine(&self, tau: f64) -> Vec<(Vec<u8>, f64)> {
        let mut out = Vec::new();
        for node in self.trie.dfs() {
            if node == Trie::<f64>::ROOT {
                continue;
            }
            let v = *self.trie.value(node);
            if v >= tau {
                out.push((self.trie.string_of(node), v));
            }
        }
        out
    }

    /// `α`-approximate q-gram mining: like [`Self::mine`] restricted to
    /// strings of length exactly `q`.
    pub fn mine_qgrams(&self, q: usize, tau: f64) -> Vec<(Vec<u8>, f64)> {
        let mut out = Vec::new();
        for node in self.trie.dfs() {
            if self.trie.depth(node) == q {
                let v = *self.trie.value(node);
                if v >= tau {
                    out.push((self.trie.string_of(node), v));
                }
            }
        }
        out
    }

    /// The `k` strings with the largest noisy counts (post-processing;
    /// ties broken lexicographically by the DFS order). Restricting to a
    /// fixed length via `fixed_len` gives top-k q-grams.
    pub fn mine_top_k(&self, k: usize, fixed_len: Option<usize>) -> Vec<(Vec<u8>, f64)> {
        let mut all: Vec<(Vec<u8>, f64)> = self
            .trie
            .dfs()
            .filter(|&n| n != Trie::<f64>::ROOT)
            .filter(|&n| fixed_len.is_none_or(|q| self.trie.depth(n) == q))
            .map(|n| (self.trie.string_of(n), *self.trie.value(n)))
            .collect();
        all.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        all.truncate(k);
        all
    }

    /// Serializes the structure to a line-oriented text format (the
    /// publishable artifact — remember that everything in here is already
    /// differentially private, so the file may be shared freely).
    ///
    /// Format: a header line
    /// `dpsc-v1 <mode> <epsilon> <delta> <alpha_counts> <alpha_absent> <n> <ell>`
    /// followed by one `hex(pattern)\tcount` line per non-root node in DFS
    /// order (the root's count is stored with an empty hex pattern).
    pub fn to_text(&self) -> String {
        let mode = match self.mode {
            CountMode::Document => "document".to_string(),
            CountMode::Substring => "substring".to_string(),
            CountMode::Clipped(d) => format!("clipped:{d}"),
        };
        let mut out = format!(
            "dpsc-v1 {mode} {} {:e} {} {} {} {}\n",
            self.privacy.epsilon,
            self.privacy.delta,
            self.alpha_counts,
            self.alpha_absent,
            self.n_docs,
            self.max_len,
        );
        for node in self.trie.dfs() {
            let pat = self.trie.string_of(node);
            let hex: String = pat.iter().map(|b| format!("{b:02x}")).collect();
            out.push_str(&format!("{hex}\t{}\n", self.trie.value(node)));
        }
        out
    }

    /// Parses a structure previously written by [`Self::to_text`].
    ///
    /// # Errors
    /// Returns a description of the first malformed line.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut lines = text.lines();
        let header = lines.next().ok_or("empty input")?;
        let fields: Vec<&str> = header.split_whitespace().collect();
        if fields.len() != 8 || fields[0] != "dpsc-v1" {
            return Err(format!("bad header: {header:?}"));
        }
        let mode = match fields[1] {
            "document" => CountMode::Document,
            "substring" => CountMode::Substring,
            other => match other.strip_prefix("clipped:") {
                Some(d) => {
                    CountMode::Clipped(d.parse().map_err(|e| format!("bad clip level: {e}"))?)
                }
                None => return Err(format!("bad mode: {other:?}")),
            },
        };
        let parse_f = |s: &str, what: &str| -> Result<f64, String> {
            s.parse::<f64>().map_err(|e| format!("bad {what}: {e}"))
        };
        let epsilon = parse_f(fields[2], "epsilon")?;
        let delta = parse_f(fields[3], "delta")?;
        let alpha_counts = parse_f(fields[4], "alpha_counts")?;
        let alpha_absent = parse_f(fields[5], "alpha_absent")?;
        let n_docs: usize = fields[6].parse().map_err(|e| format!("bad n: {e}"))?;
        let max_len: usize = fields[7].parse().map_err(|e| format!("bad ℓ: {e}"))?;
        let privacy = if delta == 0.0 {
            PrivacyParams::pure(epsilon)
        } else {
            PrivacyParams::approx(epsilon, delta)
        };

        let mut trie: Trie<f64> = Trie::new(0.0);
        let mut saw_root = false;
        for (lineno, line) in lines.enumerate() {
            if line.is_empty() {
                continue;
            }
            let (hex, count) =
                line.split_once('\t').ok_or_else(|| format!("line {}: missing tab", lineno + 2))?;
            let count: f64 =
                count.parse().map_err(|e| format!("line {}: bad count: {e}", lineno + 2))?;
            if hex.is_empty() {
                *trie.value_mut(Trie::<f64>::ROOT) = count;
                saw_root = true;
                continue;
            }
            if hex.len() % 2 != 0 {
                return Err(format!("line {}: odd hex length", lineno + 2));
            }
            let pat: Result<Vec<u8>, String> = (0..hex.len() / 2)
                .map(|i| {
                    u8::from_str_radix(&hex[2 * i..2 * i + 2], 16)
                        .map_err(|e| format!("line {}: bad hex: {e}", lineno + 2))
                })
                .collect();
            let node = trie.insert_path(&pat?, |_| 0.0);
            *trie.value_mut(node) = count;
        }
        if !saw_root {
            return Err("missing root line".to_string());
        }
        Ok(Self::new(trie, mode, privacy, alpha_counts, alpha_absent, n_docs, max_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_structure() -> PrivateCountStructure {
        let mut trie: Trie<f64> = Trie::new(20.0);
        let a = trie.insert_path(b"a", |_| 0.0);
        let ab = trie.insert_path(b"ab", |_| 0.0);
        let b = trie.insert_path(b"b", |_| 0.0);
        *trie.value_mut(a) = 8.2;
        *trie.value_mut(ab) = 4.1;
        *trie.value_mut(b) = 6.0;
        PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.5,
            2.5,
            6,
            5,
        )
    }

    #[test]
    fn query_present_and_absent() {
        let s = toy_structure();
        assert_eq!(s.query(b"ab"), 4.1);
        assert_eq!(s.query(b"zz"), 0.0);
        assert_eq!(s.query(b""), 20.0);
        assert!(s.contains(b"a"));
        assert!(!s.contains(b"abc"));
        assert_eq!(s.alpha(), 2.5);
    }

    #[test]
    fn mining_thresholds() {
        let s = toy_structure();
        let mined = s.mine(5.0);
        let strings: Vec<&[u8]> = mined.iter().map(|(s, _)| s.as_slice()).collect();
        assert_eq!(strings, vec![&b"a"[..], &b"b"[..]]);
        // Lower threshold includes "ab"; the root (empty string) is never
        // reported.
        assert_eq!(s.mine(4.0).len(), 3);
        assert_eq!(s.mine(100.0).len(), 0);
    }

    #[test]
    fn qgram_mining_filters_by_length() {
        let s = toy_structure();
        let grams = s.mine_qgrams(1, 0.0);
        assert_eq!(grams.len(), 2);
        let grams2 = s.mine_qgrams(2, 0.0);
        assert_eq!(grams2.len(), 1);
        assert_eq!(grams2[0].0, b"ab".to_vec());
    }

    #[test]
    fn top_k_mining() {
        let s = toy_structure();
        let top2 = s.mine_top_k(2, None);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].0, b"a".to_vec());
        assert_eq!(top2[1].0, b"b".to_vec());
        let top_len2 = s.mine_top_k(10, Some(2));
        assert_eq!(top_len2.len(), 1);
        assert_eq!(top_len2[0].0, b"ab".to_vec());
    }

    #[test]
    fn text_serialization_roundtrip() {
        let s = toy_structure();
        let text = s.to_text();
        let back = PrivateCountStructure::from_text(&text).expect("parses");
        assert_eq!(back.node_count(), s.node_count());
        assert_eq!(back.mode(), s.mode());
        assert_eq!(back.privacy().epsilon, s.privacy().epsilon);
        assert_eq!(back.alpha_counts(), s.alpha_counts());
        assert_eq!(back.db_params(), s.db_params());
        for pat in [&b""[..], b"a", b"ab", b"b", b"zz"] {
            assert_eq!(back.query(pat), s.query(pat), "pattern {pat:?}");
        }
        // Mining agrees too.
        assert_eq!(back.mine(5.0), s.mine(5.0));
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(PrivateCountStructure::from_text("").is_err());
        assert!(PrivateCountStructure::from_text("nonsense header").is_err());
        assert!(
            PrivateCountStructure::from_text("dpsc-v1 substring 1 0e0 1 2 6 5\nzz\t1.0\n").is_err()
        ); // bad hex
        assert!(
            PrivateCountStructure::from_text("dpsc-v1 substring 1 0e0 1 2 6 5\n61 1.0\n").is_err()
        ); // missing tab

        // Valid minimal: root only.
        let ok = PrivateCountStructure::from_text("dpsc-v1 document 1 0e0 1 2 6 5\n\t9.5\n")
            .expect("valid");
        assert_eq!(ok.query(b""), 9.5);
        assert_eq!(ok.mode(), CountMode::Document);
    }

    #[test]
    fn clipped_mode_roundtrips_through_text() {
        let mut trie: Trie<f64> = Trie::new(1.0);
        let n = trie.insert_path(b"xy", |_| 0.0);
        *trie.value_mut(n) = 3.5;
        let s = PrivateCountStructure::new(
            trie,
            CountMode::Clipped(7),
            PrivacyParams::approx(0.5, 1e-7),
            1.0,
            2.0,
            10,
            20,
        );
        let back = PrivateCountStructure::from_text(&s.to_text()).unwrap();
        assert_eq!(back.mode(), CountMode::Clipped(7));
        assert!((back.privacy().delta - 1e-7).abs() < 1e-20);
        assert_eq!(back.query(b"xy"), 3.5);
    }

    #[test]
    fn count_mode_delta() {
        assert_eq!(CountMode::Document.delta_clip(10), 1);
        assert_eq!(CountMode::Substring.delta_clip(10), 10);
        assert_eq!(CountMode::Clipped(3).delta_clip(10), 3);
        assert_eq!(CountMode::Clipped(30).delta_clip(10), 10);
        assert_eq!(CountMode::Clipped(0).delta_clip(10), 1);
    }
}
