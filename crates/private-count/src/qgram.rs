//! Theorem 3: ε-differentially private q-gram counting.
//!
//! For a fixed pattern length `q` the general pipeline simplifies: run the
//! doubling construction only up to `2^{⌊log q⌋}` (half the budget), build
//! the single candidate set `C_q` by suffix/prefix overlap, then release a
//! Laplace-noised count for **every** string in `C_q` (other half) and keep
//! those above threshold. Error `O(ε⁻¹ ℓ log ℓ (log(nℓ/β) + log|Σ|))` —
//! one log factor better than Theorem 1 because no heavy-path machinery is
//! needed at a single depth.

use std::collections::HashMap;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::mechanism::laplace_sup_error;
use dpsc_dpcore::noise::Noise;
use dpsc_strkit::hash::HashValue;
use dpsc_strkit::search::SaInterval;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::{depth_groups, CorpusIndex};
use rand::Rng;

use crate::candidates::{doubling_levels, Cand, CandidateOverflow};
use crate::structure::{CountMode, PrivateCountStructure};

/// Parameters for the Theorem 3 construction.
#[derive(Debug, Clone, Copy)]
pub struct QgramParams {
    /// The fixed pattern length `q ≤ ℓ`.
    pub q: usize,
    /// The clip level `Δ`.
    pub mode: CountMode,
    /// Total (pure) privacy budget.
    pub privacy: PrivacyParams,
    /// Total failure probability.
    pub beta: f64,
    /// Candidate/pruning threshold overrides (post-processing only).
    pub tau_override: Option<f64>,
    /// Per-level candidate cap (default `nℓ`).
    pub level_cap_override: Option<usize>,
}

/// Builds the Theorem 3 ε-DP q-gram structure.
pub fn build_qgram_pure<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &QgramParams,
    rng: &mut R,
) -> Result<PrivateCountStructure, CandidateOverflow> {
    assert!(params.privacy.is_pure(), "Theorem 3 is pure DP");
    let ell = idx.max_len();
    let q = params.q;
    assert!(q >= 1 && q <= ell, "q must be in [1, ℓ]");
    let delta_clip = params.mode.delta_clip(ell);
    let n = idx.n_docs();
    let cap = params.level_cap_override.unwrap_or(n * ell);
    let half = params.privacy.split_even(2);
    let beta_half = params.beta / 2.0;

    // Phase A (ε/2): doubling levels up to 2^{⌊log q⌋}.
    let j = (q as f64).log2().floor() as usize;
    let doubling = doubling_levels(
        idx,
        delta_clip,
        half,
        beta_half,
        false,
        params.tau_override,
        cap,
        j,
        1,
        rng,
    )?;
    let top: &[Cand] = doubling.levels.last().map(|v| v.as_slice()).unwrap_or(&[]);
    let pow = 1usize << j;

    // C_q: strings of length q whose length-2^j prefix and suffix are both
    // in P_{2^j} (post-processing).
    let cq: Vec<Vec<u8>> = if q == pow {
        top.iter().map(|c| c.bytes.clone()).collect()
    } else {
        let overlap = 2 * pow - q;
        let mut out = Vec::new();
        for q1 in top {
            for q2 in top {
                if q1.bytes[pow - overlap..] == q2.bytes[..overlap] {
                    let mut s = Vec::with_capacity(q);
                    s.extend_from_slice(&q1.bytes);
                    s.extend_from_slice(&q2.bytes[overlap..]);
                    out.push(s);
                }
            }
        }
        out
    };

    // Phase B (ε/2): Laplace-noised counts for every member of C_q
    // (including absent members), threshold at 2α.
    let groups = depth_groups(idx, q);
    let mut count_of: HashMap<HashValue, SaInterval> = HashMap::with_capacity(groups.len());
    for g in &groups {
        count_of.insert(idx.substring_hash(g.witness_pos as usize, q), g.interval);
    }
    let l1 = 2.0 * ell as f64; // Corollary 3
    let noise = Noise::laplace_for(half.epsilon, l1);
    let k_counts = ((ell * ell) as f64 * (n * n) as f64).max(idx.alphabet_size() as f64);
    let alpha = laplace_sup_error(half.epsilon, l1, k_counts.ceil() as usize, beta_half);
    let tau = params.tau_override.unwrap_or(2.0 * alpha);

    let mut trie: Trie<f64> = Trie::new(idx.count_clipped(b"", delta_clip) as f64);
    for gram in &cq {
        let hash = idx.hash_pattern(gram);
        let true_count = count_of
            .get(&hash)
            .map(|&iv| idx.count_clipped_in_interval(iv, delta_clip))
            .unwrap_or(0) as f64;
        let noisy = true_count + noise.sample(rng);
        if noisy >= tau {
            let node = trie.insert_path(gram, |_| f64::NAN);
            *trie.value_mut(node) = noisy;
        }
    }
    // Interior nodes carry no released counts: mark them NAN-free by giving
    // them the child maximum (post-processing; queries at depth < q are not
    // part of the Theorem 3 contract but should not return NaN).
    fixup_interior(&mut trie);

    let alpha_absent = (doubling.tau + doubling.alpha).max(tau + alpha);
    Ok(PrivateCountStructure::new(
        trie,
        params.mode,
        params.privacy,
        alpha.max(doubling.alpha),
        alpha_absent,
        n,
        ell,
    ))
}

/// Replaces NaN placeholders on interior nodes by the maximum over their
/// children (post-processing of released values only).
pub(crate) fn fixup_interior(trie: &mut Trie<f64>) {
    let order: Vec<u32> = trie.dfs().collect();
    for &node in order.iter().rev() {
        if trie.value(node).is_nan() {
            let max_child =
                trie.children(node).map(|c| *trie.value(c)).fold(f64::NEG_INFINITY, f64::max);
            *trie.value_mut(node) = if max_child.is_finite() { max_child } else { 0.0 };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn build_noiseless(q: usize, mode: CountMode) -> (Database, PrivateCountStructure) {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(71);
        let params = QgramParams {
            q,
            mode,
            privacy: PrivacyParams::pure(1e9),
            beta: 0.1,
            tau_override: Some(0.9),
            level_cap_override: None,
        };
        let s = build_qgram_pure(&idx, &params, &mut rng).unwrap();
        (db, s)
    }

    #[test]
    fn qgram_counts_match_exact_noiselessly() {
        for q in [1usize, 2, 3, 4, 5] {
            let (db, s) = build_noiseless(q, CountMode::Substring);
            let idx = CorpusIndex::build(&db);
            // Every q-gram of the database with count ≥ 1 must be present
            // and ~exact.
            for doc in db.documents() {
                if doc.len() < q {
                    continue;
                }
                for w in doc.windows(q) {
                    let exact = idx.count(w) as f64;
                    assert!(
                        (s.query(w) - exact).abs() < 1e-3,
                        "q={q} gram {:?}: got {} want {}",
                        w,
                        s.query(w),
                        exact
                    );
                }
            }
            assert_eq!(s.query(&vec![b'z'; q]), 0.0);
        }
    }

    #[test]
    fn qgram_document_mode() {
        let (db, s) = build_noiseless(2, CountMode::Document);
        let idx = CorpusIndex::build(&db);
        assert!((s.query(b"ab") - idx.document_count(b"ab") as f64).abs() < 1e-3);
        assert!((s.query(b"ab") - 3.0).abs() < 1e-3);
    }

    #[test]
    fn mining_qgrams_from_structure() {
        let (_, s) = build_noiseless(2, CountMode::Substring);
        let mined = s.mine_qgrams(2, 2.0);
        // Paper example: count(ab)=4, count(be)=3, count(aa)=3, count(ee)=3,
        // count(ba)=2, count(es)=1, count(bs)=1, count(sa)=1.
        let strings: Vec<String> =
            mined.iter().map(|(g, _)| String::from_utf8(g.clone()).unwrap()).collect();
        assert!(strings.contains(&"ab".to_string()));
        assert!(strings.contains(&"aa".to_string()));
        assert!(!strings.contains(&"es".to_string()));
    }

    #[test]
    fn non_power_of_two_q_uses_overlap() {
        // q = 3 exercises the C_q overlap path.
        let (db, s) = build_noiseless(3, CountMode::Substring);
        let idx = CorpusIndex::build(&db);
        assert!((s.query(b"bab") - idx.count(b"bab") as f64).abs() < 1e-3);
        assert!((s.query(b"aaa") - 2.0).abs() < 1e-3);
    }
}
