//! Prior-work baseline: the "simple approach" of the paper's §1.2.
//!
//! A private trie built top-down (the strategy of \[10, 18, 19, 50, 51, 72\]):
//! expand the frontier one letter at a time, add noise to each frontier
//! count, keep nodes above threshold. Because a single document can touch
//! `Ω(ℓ²)` trie nodes, the per-node noise must scale with `ℓ²/ε` (budget
//! `ε/ℓ` per level × per-level sensitivity `2ℓ`), giving additive error
//! `Ω(ℓ²)` — the bound Theorem 1 improves to `Õ(ℓ)`. Experiment
//! `t1_error_vs_ell` measures exactly this gap.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::mechanism::laplace_sup_error;
use dpsc_dpcore::noise::Noise;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::CorpusIndex;
use rand::Rng;

use crate::structure::{CountMode, PrivateCountStructure};

/// Parameters for the simple-trie baseline.
#[derive(Debug, Clone, Copy)]
pub struct SimpleTrieParams {
    /// The clip level `Δ`.
    pub mode: CountMode,
    /// Total (pure) privacy budget.
    pub privacy: PrivacyParams,
    /// Failure probability for the error guarantee.
    pub beta: f64,
    /// Expansion threshold override (default: analytic `2α`).
    pub tau_override: Option<f64>,
    /// Maximum depth to expand (default `ℓ`).
    pub max_depth: Option<usize>,
    /// Safety cap on total trie nodes (default `2^20`): the top-down
    /// expansion can blow up when noise swamps the threshold.
    pub node_cap: Option<usize>,
}

/// Builds the simple top-down private trie (ε-DP).
///
/// Privacy argument (as in prior work): level `m` counts have L1
/// sensitivity `2ℓ` (Corollary 3); with `ℓ` levels each getting `ε/ℓ`, per
/// node noise is `Lap(2ℓ²/ε)`. Thresholding noisy counts and expanding is
/// post-processing of each level's release.
pub fn build_simple_trie<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &SimpleTrieParams,
    rng: &mut R,
) -> PrivateCountStructure {
    assert!(params.privacy.is_pure(), "baseline is analyzed under pure DP");
    let ell = idx.max_len();
    let delta_clip = params.mode.delta_clip(ell);
    let max_depth = params.max_depth.unwrap_or(ell).min(ell);
    let node_cap = params.node_cap.unwrap_or(1 << 20);
    let n = idx.n_docs();
    let sigma = idx.alphabet_size();

    // ε/ℓ per level; sensitivity 2ℓ per level → scale 2ℓ²/ε.
    let eps_level = params.privacy.epsilon / max_depth.max(1) as f64;
    let noise = Noise::laplace_for(eps_level, 2.0 * ell as f64);
    // Sup error over all counts ever released (≤ node_cap·|Σ| probes, union
    // bounded like the paper's K).
    let k_counts = ((ell * ell) as f64 * (n * n) as f64).max(sigma as f64);
    let alpha =
        laplace_sup_error(eps_level, 2.0 * ell as f64, k_counts.ceil() as usize, params.beta);
    let tau = params.tau_override.unwrap_or(2.0 * alpha);

    let mut trie: Trie<f64> = Trie::new(idx.count_clipped(b"", delta_clip) as f64);
    let mut frontier: Vec<(u32, Vec<u8>)> = vec![(Trie::<f64>::ROOT, Vec::new())];
    let mut pattern = Vec::with_capacity(max_depth);
    'levels: for _depth in 1..=max_depth {
        let mut next = Vec::new();
        for (node, prefix) in &frontier {
            for sym in 0..sigma {
                let letter = idx.alphabet_base() + sym as u8;
                pattern.clear();
                pattern.extend_from_slice(prefix);
                pattern.push(letter);
                let c = idx.count_clipped(&pattern, delta_clip) as f64;
                let noisy = c + noise.sample(rng);
                if noisy >= tau {
                    let child = trie.ensure_child(*node, letter, noisy);
                    next.push((child, pattern.clone()));
                    if trie.len() >= node_cap {
                        break 'levels;
                    }
                }
            }
        }
        if next.is_empty() {
            break;
        }
        frontier = next;
    }

    PrivateCountStructure::new(trie, params.mode, params.privacy, alpha, tau + alpha, n, ell)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn noiseless_baseline_matches_exact_counts() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(91);
        let params = SimpleTrieParams {
            mode: CountMode::Substring,
            privacy: PrivacyParams::pure(1e9),
            beta: 0.1,
            tau_override: Some(0.9),
            max_depth: None,
            node_cap: None,
        };
        let s = build_simple_trie(&idx, &params, &mut rng);
        assert!((s.query(b"ab") - 4.0).abs() < 1e-3);
        assert!((s.query(b"absab") - 1.0).abs() < 1e-3);
        assert_eq!(s.query(b"zz"), 0.0);
    }

    #[test]
    fn baseline_alpha_scales_quadratically() {
        // The analytic error of the baseline is Θ(ℓ²·polylog) vs Theorem 1's
        // Θ(ℓ·polylog): quadrupling ℓ should grow the baseline's α by ≈ 16×
        // (up to the log factor drift).
        let mk = |ell: usize| {
            let docs = vec![vec![b'a'; ell]; 4];
            let db =
                Database::new(dpsc_strkit::alphabet::Alphabet::lowercase(4), ell, docs).unwrap();
            let idx = CorpusIndex::build(&db);
            let mut rng = StdRng::seed_from_u64(92);
            let params = SimpleTrieParams {
                mode: CountMode::Substring,
                privacy: PrivacyParams::pure(1.0),
                beta: 0.1,
                tau_override: Some(0.9),
                max_depth: None, // full depth ℓ → per-level budget ε/ℓ
                node_cap: Some(64),
            };
            build_simple_trie(&idx, &params, &mut rng).alpha_counts()
        };
        let a8 = mk(8);
        let a32 = mk(32);
        let ratio = a32 / a8;
        assert!(ratio > 12.0 && ratio < 24.0, "quadratic scaling expected, ratio {ratio}");
    }

    #[test]
    fn node_cap_stops_blowup() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(93);
        let params = SimpleTrieParams {
            mode: CountMode::Substring,
            privacy: PrivacyParams::pure(1e9),
            beta: 0.1,
            // Threshold below zero: every probe survives → blowup without cap.
            tau_override: Some(-1.0),
            max_depth: Some(3),
            node_cap: Some(100),
        };
        let s = build_simple_trie(&idx, &params, &mut rng);
        assert!(s.node_count() <= 101);
    }
}
