//! Mining-utility evaluation against the Definition 2 contract.
//!
//! `α`-Approximate Substring Mining requires: (1) every string with
//! `count_Δ ≥ τ + α` is reported; (2) no string with `count_Δ ≤ τ − α` is.
//! [`evaluate_mining`] audits a mined set against the exact corpus counts
//! and reports the violations of both clauses plus precision/recall at the
//! raw threshold `τ` — the utility statistics experiment `MINE-util`
//! tabulates.

use std::collections::HashSet;

use dpsc_textindex::{depth_groups, CorpusIndex};

/// Result of auditing a mined set.
#[derive(Debug, Clone)]
pub struct MiningEvaluation {
    /// Strings with `count_Δ ≥ τ + α` that the miner missed
    /// (clause (1) violations). Empty ⇒ the Definition 2 recall clause
    /// holds.
    pub missed: Vec<Vec<u8>>,
    /// Reported strings with `count_Δ ≤ τ − α` (clause (2) violations).
    pub spurious: Vec<Vec<u8>>,
    /// |reported ∩ {count ≥ τ}| / |reported| (1.0 if nothing reported).
    pub precision: f64,
    /// |reported ∩ {count ≥ τ}| / |{count ≥ τ}| (1.0 if nothing qualifies).
    pub recall: f64,
    /// Number of strings with true `count_Δ ≥ τ`.
    pub true_frequent: usize,
}

impl MiningEvaluation {
    /// Whether the Definition 2 contract holds for this mining output.
    pub fn contract_holds(&self) -> bool {
        self.missed.is_empty() && self.spurious.is_empty()
    }
}

/// Enumerates every distinct substring of the corpus (optionally of one
/// fixed length) with `count_Δ ≥ threshold`, by scanning depth groups at
/// each length.
pub fn frequent_substrings(
    idx: &CorpusIndex,
    delta_clip: usize,
    threshold: f64,
    fixed_len: Option<usize>,
) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let lens: Vec<usize> = match fixed_len {
        Some(q) => vec![q],
        None => (1..=idx.max_len()).collect(),
    };
    for d in lens {
        for g in depth_groups(idx, d) {
            let c = idx.count_clipped_in_interval(g.interval, delta_clip) as f64;
            if c >= threshold {
                out.push(idx.decode_substring(g.witness_pos as usize, d));
            }
        }
    }
    out
}

/// Audits `reported` (the miner's output strings) against Definition 2 with
/// parameters `(τ, α)`, restricted to length `fixed_len` if given.
pub fn evaluate_mining(
    idx: &CorpusIndex,
    delta_clip: usize,
    reported: &[Vec<u8>],
    tau: f64,
    alpha: f64,
    fixed_len: Option<usize>,
) -> MiningEvaluation {
    let reported_set: HashSet<&[u8]> = reported.iter().map(|s| s.as_slice()).collect();
    // Clause (1): strings with count ≥ τ + α must all be reported.
    let must_report = frequent_substrings(idx, delta_clip, tau + alpha, fixed_len);
    let missed: Vec<Vec<u8>> =
        must_report.into_iter().filter(|s| !reported_set.contains(s.as_slice())).collect();
    // Clause (2): reported strings must have count > τ − α.
    let spurious: Vec<Vec<u8>> = reported
        .iter()
        .filter(|s| (idx.count_clipped(s, delta_clip) as f64) <= tau - alpha)
        .cloned()
        .collect();
    // Precision/recall at the raw threshold τ.
    let qualifying: HashSet<Vec<u8>> =
        frequent_substrings(idx, delta_clip, tau, fixed_len).into_iter().collect();
    let hit = reported.iter().filter(|s| qualifying.contains(*s)).count();
    let precision = if reported.is_empty() { 1.0 } else { hit as f64 / reported.len() as f64 };
    let recall = if qualifying.is_empty() { 1.0 } else { hit as f64 / qualifying.len() as f64 };
    MiningEvaluation { missed, spurious, precision, recall, true_frequent: qualifying.len() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{build_pure, BuildParams};
    use crate::structure::CountMode;
    use dpsc_dpcore::budget::PrivacyParams;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn frequent_substrings_exact() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let freq = frequent_substrings(&idx, db.max_len(), 4.0, None);
        // count ≥ 4: "a"(8), "b"(6), "e"(5), "ab"(4), "be"(4).
        let mut strings: Vec<String> =
            freq.iter().map(|s| String::from_utf8(s.clone()).unwrap()).collect();
        strings.sort();
        assert_eq!(strings, vec!["a", "ab", "b", "be", "e"]);
    }

    #[test]
    fn fixed_length_restriction() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let freq = frequent_substrings(&idx, db.max_len(), 3.0, Some(2));
        let mut strings: Vec<String> =
            freq.iter().map(|s| String::from_utf8(s.clone()).unwrap()).collect();
        strings.sort();
        // 2-grams with count ≥ 3: ab(4), be(4), aa(3).
        assert_eq!(strings, vec!["aa", "ab", "be"]);
    }

    #[test]
    fn noiseless_mining_satisfies_contract() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(101);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e9), 0.1)
            .with_thresholds(0.9, 0.5);
        let s = build_pure(&idx, &params, &mut rng).unwrap();
        // Off-integer thresholds: counts are integers; with near-zero noise
        // a count exactly equal to τ is a coin flip on the noise sign.
        for tau in [1.9f64, 2.9, 3.9] {
            let mined: Vec<Vec<u8>> = s.mine(tau).into_iter().map(|(g, _)| g).collect();
            let eval = evaluate_mining(&idx, db.max_len(), &mined, tau, 0.5, None);
            assert!(
                eval.contract_holds(),
                "τ={tau}: missed {:?}, spurious {:?}",
                eval.missed,
                eval.spurious
            );
            assert_eq!(eval.precision, 1.0);
            assert_eq!(eval.recall, 1.0);
        }
    }

    #[test]
    fn contract_detects_violations() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        // Report a rare string and omit a frequent one.
        let reported = vec![b"absab".to_vec()]; // count 1
        let eval = evaluate_mining(&idx, db.max_len(), &reported, 4.0, 1.0, None);
        assert!(!eval.contract_holds());
        assert!(eval.spurious.contains(&b"absab".to_vec()));
        assert!(eval.missed.iter().any(|s| s == b"a"));
        assert!(eval.precision < 1.0e-9);
    }
}
