//! Step 1: differentially private candidate-set construction
//! (Lemma 6 for ε-DP, Lemma 15 for (ε,δ)-DP).
//!
//! The candidate set `C ⊆ Σ^[1,ℓ]` shrinks the universe from `|Σ|^ℓ` to
//! `≤ n²ℓ³` while guaranteeing (w.h.p.) that every string *not* in `C` has
//! a small true count. Construction is by length doubling:
//!
//! 1. `P_1` = letters with noisy `count_Δ ≥ τ`;
//! 2. `P_{2^k}` = concatenations of two `P_{2^{k-1}}` strings with noisy
//!    `count_Δ ≥ τ` (noise added to *every* pair, including pairs whose true
//!    count is 0 — required for privacy);
//! 3. for every non-power length `m ∈ (2^k, 2^{k+1})`, `C_m` = strings whose
//!    length-`2^k` prefix **and** suffix are both in `P_{2^k}` (pure
//!    post-processing: the overlap test never touches the database).
//!
//! Each doubling level spends `ε/(⌊log ℓ⌋+1)` (and `δ/(⌊log ℓ⌋+1)`) of the
//! step's budget; per-level sensitivity is `2ℓ` in L1 (Corollary 3) and
//! `√(2ℓΔ)` in L2 (Corollary 6, via Hölder).
//!
//! ## Lookup engineering
//! The paper asks substring-concatenation queries against the suffix tree
//! (\[7,8\]); we answer them with rolling hashes: each level precomputes the
//! map *hash of distinct `2^k`-substring → SA interval* (one LCP scan via
//! [`dpsc_textindex::depth_groups`]) in a reusable open-addressed table
//! ([`IntervalTable`]), so a pair lookup is `O(1)` expected with no hashing
//! beyond a fingerprint mix and no per-level allocator round trip.
//! Suffix/prefix overlaps for `C_m` are hash comparisons over a pooled
//! candidate buffer. See DESIGN.md §2 for the substitution rationale.
//!
//! ## Parallelism and determinism
//! The pair scan of each doubling level is embarrassingly parallel and
//! carries almost all of Step 1's noise draws (`|P|²` per level, one per
//! pair — absent pairs included, as privacy requires). It is parallelized
//! over **fixed-size chunks** of `Q_1` rows; each chunk draws its noise
//! from an independent RNG stream derived SplitMix64-style from a single
//! base draw off the caller's RNG (the same derivation pattern as
//! `dpsc_audit::matrix`). Chunk boundaries and stream seeds depend only on
//! the level and chunk index — never on the thread count — so the released
//! candidate set is bit-identical for every `threads` setting, including 1.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::noise::Noise;
use dpsc_strkit::hash::HashValue;
use dpsc_strkit::search::SaInterval;
use dpsc_textindex::{depth_groups, CorpusIndex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for candidate construction.
#[derive(Debug, Clone, Copy)]
pub struct CandidateParams {
    /// The clip level `Δ ∈ [1, ℓ]` of `count_Δ`.
    pub delta_clip: usize,
    /// Privacy budget for the whole of Step 1.
    pub privacy: PrivacyParams,
    /// Failure probability for the whole of Step 1.
    pub beta: f64,
    /// Threshold override: if set, use this `τ` instead of the analytic
    /// `2α`. Privacy is unaffected (thresholding noisy counts is
    /// post-processing); only the accuracy guarantee changes.
    pub tau_override: Option<f64>,
    /// Maximum candidate-set size per level before aborting (paper: `nℓ`).
    /// `None` uses `nℓ`.
    pub level_cap_override: Option<usize>,
    /// Worker threads for the per-level pair scans. `0` and `1` both mean
    /// sequential. The released candidate set is identical for every
    /// setting (see the module docs on stream derivation).
    pub threads: usize,
}

/// Error: a level exceeded the `nℓ` cap (the paper's FAIL outcome, which
/// happens with probability ≤ β under the analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateOverflow {
    /// The level (string length `2^level`) that overflowed.
    pub level: usize,
    /// Number of strings that passed the threshold.
    pub size: usize,
    /// The cap that was exceeded.
    pub cap: usize,
}

impl std::fmt::Display for CandidateOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "candidate level 2^{} overflowed: {} strings > cap {}",
            self.level, self.size, self.cap
        )
    }
}

impl std::error::Error for CandidateOverflow {}

/// The output of Step 1.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// All candidate strings (the union of the `P_{2^k}` and the `C_m`),
    /// deduplicated by construction.
    pub strings: Vec<Vec<u8>>,
    /// Analytic error bound `α`: strings outside the set have
    /// `count_Δ < 3α` w.p. ≥ 1−β.
    pub alpha: f64,
    /// The threshold used.
    pub tau: f64,
    /// Sizes of `P_{2^k}` per level (diagnostics).
    pub level_sizes: Vec<usize>,
}

/// Memory safety valve for the overlap extension: at 2^22 strings per
/// length the construction is already far past any useful regime (the
/// paper's bound is |C_m| ≤ (nℓ)²), so we stop materializing rather than
/// exhaust memory.
pub const OVERLAP_SAFETY_CAP: usize = 1 << 22;

/// One candidate string with its hash in the corpus symbol space and its
/// suffix-array interval (empty for candidates absent from the corpus).
/// Carrying the interval lets the next level's pair scan extend it
/// directly instead of consulting a per-level substring table.
#[derive(Debug, Clone)]
pub(crate) struct Cand {
    pub(crate) bytes: Vec<u8>,
    pub(crate) hash: HashValue,
    pub(crate) iv: SaInterval,
}

pub(crate) use dpsc_dpcore::stream::derive_stream;

/// Stream tag for chunk `chunk` of level `level` (level 0 = the letter
/// scan, which is chunk 0 of level 0).
#[inline]
fn stream_tag(level: usize, chunk: usize) -> u64 {
    ((level as u64) << 40) | chunk as u64
}

/// `Q_1` rows per pair-scan chunk. Fixed — never derived from the thread
/// count — so chunk boundaries (and hence noise streams) are the same for
/// every parallelism setting.
const PAIR_CHUNK_ROWS: usize = 16;

/// Reusable open-addressed map `HashValue → SaInterval` (linear probing,
/// power-of-two capacity, generation-stamped slots so clearing is O(1)).
/// One instance lives across all doubling levels: rebuilding the per-level
/// substring map reuses the same allocation instead of growing a fresh
/// `HashMap` per level, and lookups probe a contiguous slot array keyed by
/// [`HashValue::fingerprint`] with full-key confirmation per slot.
pub(crate) struct IntervalTable {
    slots: Vec<TableSlot>,
    mask: usize,
    generation: u32,
}

#[derive(Clone, Copy)]
struct TableSlot {
    gen: u32,
    key: HashValue,
    iv: SaInterval,
}

const EMPTY_SLOT: TableSlot = TableSlot { gen: 0, key: HashValue::EMPTY, iv: SaInterval::EMPTY };

impl IntervalTable {
    pub(crate) fn new() -> Self {
        Self { slots: Vec::new(), mask: 0, generation: 0 }
    }

    /// Clears the table and ensures capacity for `len` entries at a load
    /// factor ≤ 1/2. Reuses (never shrinks) the slot array whenever it is
    /// big enough; a full wipe happens only on growth or on the
    /// once-in-2³² generation wrap.
    pub(crate) fn reset(&mut self, len: usize) {
        let want = (len.max(1) * 2).next_power_of_two();
        if self.slots.len() < want || self.generation == u32::MAX {
            let new_len = want.max(self.slots.len());
            self.slots.clear();
            self.slots.resize(new_len, EMPTY_SLOT);
            self.mask = self.slots.len() - 1;
            self.generation = 1;
        } else {
            self.generation += 1;
        }
    }

    pub(crate) fn insert(&mut self, key: HashValue, iv: SaInterval) {
        let mut i = key.fingerprint() as usize & self.mask;
        loop {
            let slot = &mut self.slots[i];
            if slot.gen != self.generation {
                *slot = TableSlot { gen: self.generation, key, iv };
                return;
            }
            if slot.key == key {
                slot.iv = iv;
                return;
            }
            i = (i + 1) & self.mask;
        }
    }

    #[inline]
    pub(crate) fn get(&self, key: HashValue) -> Option<SaInterval> {
        let mut i = key.fingerprint() as usize & self.mask;
        loop {
            let slot = &self.slots[i];
            if slot.gen != self.generation {
                return None;
            }
            if slot.key == key {
                return Some(slot.iv);
            }
            i = (i + 1) & self.mask;
        }
    }
}

/// Output of the doubling phase: the sets `P_{2^0} … P_{2^max_power}` with
/// the per-level accuracy parameters.
pub(crate) struct DoublingLevels {
    pub(crate) levels: Vec<Vec<Cand>>,
    pub(crate) alpha: f64,
    pub(crate) tau: f64,
}

/// Runs the doubling construction `P_{2^0} … P_{2^max_power}`, spending
/// `privacy` split evenly over the `max_power + 1` levels. Used by the
/// full candidate construction (`max_power = ⌊log ℓ⌋`) and by the q-gram
/// algorithm of Theorem 3 (`max_power = ⌊log q⌋`).
///
/// All noise flows from chunk streams derived off a single base draw from
/// `rng`, so the result depends on the caller's RNG state but not on
/// `threads` (see the module docs).
#[allow(clippy::too_many_arguments)] // crate-internal; parameters are the paper's own knobs
pub(crate) fn doubling_levels<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    delta_clip: usize,
    privacy: PrivacyParams,
    beta: f64,
    gaussian: bool,
    tau_override: Option<f64>,
    cap: usize,
    max_power: usize,
    threads: usize,
    rng: &mut R,
) -> Result<DoublingLevels, CandidateOverflow> {
    let ell = idx.max_len();
    let n = idx.n_docs();
    let sigma = idx.alphabet_size();
    let num_levels = max_power + 1;
    let level_privacy = privacy.split_even(num_levels);
    let beta_level = beta / num_levels as f64;
    let k_counts = ((ell * ell) as f64 * (n * n) as f64).max(sigma as f64);
    let (noise, alpha) =
        level_noise(gaussian, level_privacy, ell, delta_clip, k_counts, beta_level);
    let tau = tau_override.unwrap_or(2.0 * alpha);
    let stream_base: u64 = rng.gen();

    // Level 0: all letters of Σ (absent letters included, with noise on 0 —
    // required for privacy). |Σ| draws: sequential, own stream.
    let mut rng0 = StdRng::seed_from_u64(derive_stream(stream_base, stream_tag(0, 0)));
    let mut current: Vec<Cand> = Vec::new();
    for sym_idx in 0..sigma {
        let letter = idx.alphabet_base() + sym_idx as u8;
        let iv = idx.interval(&[letter]);
        let c = idx.count_clipped_in_interval(iv, delta_clip) as f64;
        if c + noise.sample(&mut rng0) >= tau {
            current.push(Cand { bytes: vec![letter], hash: idx.hash_pattern(&[letter]), iv });
        }
    }
    if current.len() > cap {
        return Err(CandidateOverflow { level: 0, size: current.len(), cap });
    }
    let mut levels = vec![current];
    let mut table = IntervalTable::new();

    for k in 1..=max_power {
        let len = 1usize << k;
        if len > ell {
            break;
        }
        let current = levels.last().expect("at least level 0");
        // Adaptive pair-count strategy. Sparse levels (the common case:
        // |P|² pair extensions cost less than one pass over the text)
        // extend each `Q_1` interval by `Q_2`'s symbols — exact, O(len·log)
        // per pair, and skips the per-level substring sweep entirely.
        // Dense levels (noise-flooded regimes) amortize one `depth_groups`
        // sweep into the reusable open-addressed table for O(1) lookups.
        // Both paths produce identical exact counts, so the released set —
        // and hence determinism — does not depend on the choice.
        let pairs = current.len() * current.len();
        let dense = pairs.saturating_mul(len) / 2 > idx.text_len();
        let lookup = if dense {
            let groups = depth_groups(idx, len);
            table.reset(groups.len());
            for g in &groups {
                table.insert(idx.substring_hash(g.witness_pos as usize, len), g.interval);
            }
            PairLookup::Table(&table)
        } else {
            PairLookup::Extend
        };
        let next = scan_level_pairs(
            idx,
            current,
            lookup,
            noise,
            tau,
            delta_clip,
            cap,
            len,
            k,
            threads,
            stream_base,
        )
        .map_err(|size| CandidateOverflow { level: k, size, cap })?;
        levels.push(next);
    }
    Ok(DoublingLevels { levels, alpha, tau })
}

/// How a level's pair scan resolves concatenation intervals.
#[derive(Clone, Copy)]
enum PairLookup<'a> {
    /// Dense level: precomputed `depth_groups` table, O(1) per pair.
    Table(&'a IntervalTable),
    /// Sparse level: extend `Q_1`'s interval by `Q_2`'s symbols.
    Extend,
}

/// Scans all `|P|²` concatenation pairs of one doubling level, adding noise
/// to every pair's clipped count and keeping those that clear `tau`.
/// Returns `Err(observed_size)` when the survivors exceed `cap` — the FAIL
/// decision is exact and thread-count independent: the survivor count is a
/// deterministic function of the chunk streams, workers only stop early
/// once the shared counter has *already* passed `cap`, and in the Ok path
/// no chunk ever aborts, so all pairs are scanned and the returned set is
/// bit-identical for every thread count.
#[allow(clippy::too_many_arguments)] // crate-internal hot path
fn scan_level_pairs(
    idx: &CorpusIndex,
    current: &[Cand],
    lookup: PairLookup<'_>,
    noise: Noise,
    tau: f64,
    delta_clip: usize,
    cap: usize,
    len: usize,
    level: usize,
    threads: usize,
    stream_base: u64,
) -> Result<Vec<Cand>, usize> {
    let rows = current.len();
    let half = len / 2;
    let n_chunks = rows.div_ceil(PAIR_CHUNK_ROWS);
    let found = AtomicUsize::new(0);

    let scan_chunk = |chunk: usize, out: &mut Vec<Cand>| {
        let mut rng = StdRng::seed_from_u64(derive_stream(stream_base, stream_tag(level, chunk)));
        let start = chunk * PAIR_CHUNK_ROWS;
        for q1 in &current[start..rows.min(start + PAIR_CHUNK_ROWS)] {
            // Once the global survivor count has passed the cap the level's
            // outcome is FAIL regardless of what remains; stop scanning.
            if found.load(Ordering::Relaxed) > cap {
                return;
            }
            for q2 in current {
                // The concat hash is needed per pair in table mode but only
                // per *survivor* in extend mode; compute it at most once.
                let (iv, hash) = match lookup {
                    PairLookup::Table(table) => {
                        let hash = idx.concat_hash(q1.hash, q2.hash);
                        (table.get(hash).unwrap_or(SaInterval::EMPTY), Some(hash))
                    }
                    PairLookup::Extend => {
                        let mut iv = q1.iv;
                        for (d, &b) in q2.bytes.iter().enumerate() {
                            if iv.is_empty() {
                                break;
                            }
                            iv = idx.extend_interval(iv, half + d, b);
                        }
                        (iv, None)
                    }
                };
                let true_count = if iv.is_empty() {
                    0.0
                } else {
                    idx.count_clipped_in_interval(iv, delta_clip) as f64
                };
                if true_count + noise.sample(&mut rng) >= tau {
                    let mut bytes = Vec::with_capacity(len);
                    bytes.extend_from_slice(&q1.bytes);
                    bytes.extend_from_slice(&q2.bytes);
                    let hash = hash.unwrap_or_else(|| idx.concat_hash(q1.hash, q2.hash));
                    out.push(Cand { bytes, hash, iv });
                    if found.fetch_add(1, Ordering::Relaxed) + 1 > cap {
                        return;
                    }
                }
            }
        }
    };

    let workers = threads.max(1).min(n_chunks);
    let mut chunk_results: Vec<Vec<Cand>> = Vec::with_capacity(n_chunks);
    if workers <= 1 {
        for chunk in 0..n_chunks {
            let mut out = Vec::new();
            scan_chunk(chunk, &mut out);
            chunk_results.push(out);
        }
    } else {
        let results: Vec<std::sync::Mutex<Vec<Cand>>> =
            (0..n_chunks).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        let next_chunk = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let chunk = next_chunk.fetch_add(1, Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    let mut out = Vec::new();
                    scan_chunk(chunk, &mut out);
                    *results[chunk].lock().expect("chunk mutex not poisoned") = out;
                });
            }
        });
        chunk_results
            .extend(results.into_iter().map(|m| m.into_inner().expect("chunk mutex poisoned")));
    }

    let total: usize = chunk_results.iter().map(|c| c.len()).sum();
    if total > cap {
        return Err(total);
    }
    let mut next = Vec::with_capacity(total);
    for chunk in chunk_results {
        next.extend(chunk);
    }
    Ok(next)
}

/// Builds the candidate set with Laplace noise (Lemma 6, pure ε-DP).
pub fn build_candidates_pure<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    assert!(params.privacy.is_pure(), "Lemma 6 requires δ = 0");
    build_candidates_impl(idx, params, false, rng)
}

/// Builds the candidate set with Gaussian noise (Lemma 15, (ε,δ)-DP).
pub fn build_candidates_approx<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    assert!(params.privacy.delta > 0.0, "Lemma 15 requires δ > 0");
    build_candidates_impl(idx, params, true, rng)
}

/// Per-level noise and the analytic sup-error `α` over `K` counts.
fn level_noise(
    gaussian: bool,
    level_privacy: PrivacyParams,
    ell: usize,
    delta_clip: usize,
    k_counts: f64,
    beta_level: f64,
) -> (Noise, f64) {
    if gaussian {
        // Corollary 6: L2 ≤ √(2ℓΔ); Corollary 2 sup error.
        let l2 = (2.0 * ell as f64 * delta_clip as f64).sqrt();
        let noise = Noise::gaussian_for(level_privacy.epsilon, level_privacy.delta, l2);
        let alpha = 2.0 * l2 / level_privacy.epsilon
            * ((2.0 / level_privacy.delta).ln() * (2.0 * k_counts / beta_level).ln()).sqrt();
        (noise, alpha)
    } else {
        // Corollary 3: L1 ≤ 2ℓ; Corollary 1 sup error.
        let l1 = 2.0 * ell as f64;
        let noise = Noise::laplace_for(level_privacy.epsilon, l1);
        let alpha = l1 / level_privacy.epsilon * (k_counts / beta_level).ln();
        (noise, alpha)
    }
}

fn build_candidates_impl<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    gaussian: bool,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    let ell = idx.max_len();
    let n = idx.n_docs();
    let max_power = (ell as f64).log2().floor() as usize; // ⌊log ℓ⌋
    let cap = params.level_cap_override.unwrap_or(n * ell);

    let doubling = doubling_levels(
        idx,
        params.delta_clip,
        params.privacy,
        params.beta,
        gaussian,
        params.tau_override,
        cap,
        max_power,
        params.threads,
        rng,
    )?;

    let mut strings: Vec<Vec<u8>> = Vec::new();
    let mut level_sizes = Vec::with_capacity(doubling.levels.len());
    for (k, level) in doubling.levels.iter().enumerate() {
        level_sizes.push(level.len());
        strings.extend(level.iter().map(|c| c.bytes.clone()));
        // C_m for 2^k < m < 2^{k+1}: post-processing of P_{2^k} (no
        // database access, no privacy cost).
        extend_with_overlaps(idx, level, 1 << k, ell, OVERLAP_SAFETY_CAP, &mut strings);
    }

    Ok(CandidateSet { strings, alpha: doubling.alpha, tau: doubling.tau, level_sizes })
}

/// Adds to `out` every string of length `m ∈ (L, 2L)` (`L` = `len`, capped
/// at ℓ) whose length-`L` prefix and suffix are both in `cands`:
/// `Q1[0..L] · Q2[2L−m..L]` for every pair with a suffix/prefix overlap of
/// length `2L − m`.
///
/// Matching is hash-indexed: for each overlap length `o`, candidates are
/// bucketed by length-`o` prefix hash and joined against suffix hashes, so
/// the cost is `O(|P|·L + matches)` instead of the naive `O(|P|²·L)` — the
/// practical stand-in for the paper's LCE-based overlap detection (proof of
/// Lemma 7, Step 2). Hash hits are byte-verified before emission.
///
/// `per_length_cap` is a far-away safety valve (callers pass
/// [`OVERLAP_SAFETY_CAP`]) bounding memory if a noise-flooded candidate
/// level produces quadratically many overlaps; it binds only in regimes
/// that are already headed for the paper's FAIL outcome. It must NOT be
/// used as a tight budget: truncation is arbitrary and could drop frequent
/// strings. The cap decision never touches the database.
fn extend_with_overlaps(
    idx: &CorpusIndex,
    cands: &[Cand],
    len: usize,
    ell: usize,
    per_length_cap: usize,
    out: &mut Vec<Vec<u8>>,
) {
    if cands.is_empty() || len == 0 {
        return;
    }
    let max_m = (2 * len - 1).min(ell);
    if max_m <= len {
        return;
    }
    // All prefix/suffix hashes of each candidate in O(len) via a per-string
    // rolling hash (same parameter space as the corpus, so hashes agree
    // with `idx.hash_pattern`).
    struct Hashes {
        prefix: Vec<HashValue>,
        suffix: Vec<HashValue>,
    }
    let hashes: Vec<Hashes> = cands
        .iter()
        .map(|c| {
            let encoded: Vec<u32> =
                c.bytes.iter().map(|&b| idx.n_docs() as u32 + b as u32).collect();
            let h = dpsc_strkit::hash::RollingHash::new(&encoded);
            let prefix = (0..=len).map(|o| h.substring(0, o)).collect();
            let suffix = (0..=len).map(|o| h.substring(len - o, len)).collect();
            Hashes { prefix, suffix }
        })
        .collect();
    for m in len + 1..=max_m {
        let o = 2 * len - m;
        // Bucket candidates by their length-o prefix hash.
        let mut by_prefix: HashMap<HashValue, Vec<u32>> = HashMap::new();
        for (j, h) in hashes.iter().enumerate() {
            by_prefix.entry(h.prefix[o]).or_default().push(j as u32);
        }
        let mut emitted = 0usize;
        'outer: for (i, q1) in cands.iter().enumerate() {
            let Some(js) = by_prefix.get(&hashes[i].suffix[o]) else {
                continue;
            };
            for &j in js {
                let q2 = &cands[j as usize];
                // Exact confirmation (hashes are probabilistic).
                if q1.bytes[len - o..] == q2.bytes[..o] {
                    let mut s = Vec::with_capacity(m);
                    s.extend_from_slice(&q1.bytes);
                    s.extend_from_slice(&q2.bytes[o..]);
                    out.push(s);
                    emitted += 1;
                    if emitted >= per_length_cap {
                        break 'outer;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params_with_tau(tau: f64) -> CandidateParams {
        CandidateParams {
            delta_clip: usize::MAX / 2,        // effectively Δ = ℓ clamp below
            privacy: PrivacyParams::pure(1e9), // noise ≈ 0
            beta: 0.1,
            tau_override: Some(tau),
            level_cap_override: None,
            threads: 1,
        }
    }

    #[test]
    fn noiseless_candidates_match_example_2() {
        // Example 2 of the paper: exact sets with threshold τ = 1.
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();

        let has = |s: &str| set.strings.iter().any(|x| x == s.as_bytes());
        // P_1 = {a, b, e, s}
        for s in ["a", "b", "e", "s"] {
            assert!(has(s), "missing {s}");
        }
        assert!(!has("c"));
        // P_2 = {aa, ab, ba, be, bs, ee, es, sa}
        for s in ["aa", "ab", "ba", "be", "bs", "ee", "es", "sa"] {
            assert!(has(s), "missing {s}");
        }
        assert!(!has("bb"));
        // P_4 = {aaaa, absa, babe, bees, bsab}
        for s in ["aaaa", "absa", "babe", "bees", "bsab"] {
            assert!(has(s), "missing {s}");
        }
        // C_3 per Example 3 (built from P_2 overlaps).
        for s in
            ["aaa", "aab", "aba", "abe", "abs", "baa", "bab", "bee", "bsa", "eee", "saa", "sab"]
        {
            assert!(has(s), "missing C_3 string {s}");
        }
        // C_5: Example 3 lists {aaaaa, aaaab, absab}, but that example is
        // derived from the *noisy* P_4 (which spuriously contains "aaab");
        // the exact sets yield C_5 = {aaaaa, absab}.
        for s in ["aaaaa", "absab"] {
            assert!(has(s), "missing C_5 string {s}");
        }
        assert!(!has("aaaab"));
        assert!(!has("abeab"));
        assert_eq!(set.level_sizes[0], 4);
        assert_eq!(set.level_sizes[1], 8);
        assert_eq!(set.level_sizes[2], 5);
    }

    #[test]
    fn every_frequent_string_is_covered_noiselessly() {
        // With τ = 1 and zero noise, C must contain every substring of the
        // database (Lemma 6's completeness direction in the exact regime).
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        use std::collections::HashSet;
        let have: HashSet<&[u8]> = set.strings.iter().map(|s| s.as_slice()).collect();
        for doc in db.documents() {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    assert!(
                        have.contains(&doc[i..j]),
                        "substring {:?} of {:?} missing",
                        std::str::from_utf8(&doc[i..j]).unwrap(),
                        std::str::from_utf8(doc).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn no_duplicates() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for s in &set.strings {
            assert!(seen.insert(s.clone()), "duplicate candidate {:?}", s);
        }
    }

    #[test]
    fn high_threshold_prunes_rare_strings() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = params_with_tau(3.0);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        let has = |s: &str| set.strings.iter().any(|x| x == s.as_bytes());
        // count(a) = 8, count(b) = 6, count(e) = 5, count(s) = 2 < 3.
        assert!(has("a") && has("b") && has("e"));
        assert!(!has("s"));
    }

    #[test]
    fn gaussian_variant_runs_and_covers_noiselessly() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(5);
        let p = CandidateParams {
            delta_clip: db.max_len(),
            privacy: PrivacyParams::approx(1e9, 1e-9),
            beta: 0.1,
            tau_override: Some(0.9),
            level_cap_override: None,
            threads: 1,
        };
        let set = build_candidates_approx(&idx, &p, &mut rng).unwrap();
        assert!(set.strings.iter().any(|s| s == b"absab"));
    }

    #[test]
    fn overflow_is_reported() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(6);
        let p = CandidateParams {
            delta_clip: db.max_len(),
            privacy: PrivacyParams::pure(1e9),
            beta: 0.1,
            tau_override: Some(0.9),
            level_cap_override: Some(2),
            threads: 1,
        };
        let err = build_candidates_pure(&idx, &p, &mut rng).unwrap_err();
        assert_eq!(err.level, 0);
        assert!(err.size > 2);
    }
}
