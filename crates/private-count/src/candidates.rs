//! Step 1: differentially private candidate-set construction
//! (Lemma 6 for ε-DP, Lemma 15 for (ε,δ)-DP).
//!
//! The candidate set `C ⊆ Σ^[1,ℓ]` shrinks the universe from `|Σ|^ℓ` to
//! `≤ n²ℓ³` while guaranteeing (w.h.p.) that every string *not* in `C` has
//! a small true count. Construction is by length doubling:
//!
//! 1. `P_1` = letters with noisy `count_Δ ≥ τ`;
//! 2. `P_{2^k}` = concatenations of two `P_{2^{k-1}}` strings with noisy
//!    `count_Δ ≥ τ` (noise added to *every* pair, including pairs whose true
//!    count is 0 — required for privacy);
//! 3. for every non-power length `m ∈ (2^k, 2^{k+1})`, `C_m` = strings whose
//!    length-`2^k` prefix **and** suffix are both in `P_{2^k}` (pure
//!    post-processing: the overlap test never touches the database).
//!
//! Each doubling level spends `ε/(⌊log ℓ⌋+1)` (and `δ/(⌊log ℓ⌋+1)`) of the
//! step's budget; per-level sensitivity is `2ℓ` in L1 (Corollary 3) and
//! `√(2ℓΔ)` in L2 (Corollary 6, via Hölder).
//!
//! ## Lookup engineering
//! The paper asks substring-concatenation queries against the suffix tree
//! (\[7,8\]); we answer them with rolling hashes: each level precomputes the
//! map *hash of distinct `2^k`-substring → SA interval* (one LCP scan via
//! [`dpsc_textindex::depth_groups`]), so a pair lookup is `O(1)` expected.
//! Suffix/prefix overlaps for `C_m` are hash comparisons over a pooled
//! candidate buffer. See DESIGN.md §2 for the substitution rationale.

use std::collections::HashMap;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::noise::Noise;
use dpsc_strkit::hash::HashValue;
use dpsc_strkit::search::SaInterval;
use dpsc_textindex::{depth_groups, CorpusIndex};
use rand::Rng;

/// Configuration for candidate construction.
#[derive(Debug, Clone, Copy)]
pub struct CandidateParams {
    /// The clip level `Δ ∈ [1, ℓ]` of `count_Δ`.
    pub delta_clip: usize,
    /// Privacy budget for the whole of Step 1.
    pub privacy: PrivacyParams,
    /// Failure probability for the whole of Step 1.
    pub beta: f64,
    /// Threshold override: if set, use this `τ` instead of the analytic
    /// `2α`. Privacy is unaffected (thresholding noisy counts is
    /// post-processing); only the accuracy guarantee changes.
    pub tau_override: Option<f64>,
    /// Maximum candidate-set size per level before aborting (paper: `nℓ`).
    /// `None` uses `nℓ`.
    pub level_cap_override: Option<usize>,
}

/// Error: a level exceeded the `nℓ` cap (the paper's FAIL outcome, which
/// happens with probability ≤ β under the analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateOverflow {
    /// The level (string length `2^level`) that overflowed.
    pub level: usize,
    /// Number of strings that passed the threshold.
    pub size: usize,
    /// The cap that was exceeded.
    pub cap: usize,
}

impl std::fmt::Display for CandidateOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "candidate level 2^{} overflowed: {} strings > cap {}",
            self.level, self.size, self.cap
        )
    }
}

impl std::error::Error for CandidateOverflow {}

/// The output of Step 1.
#[derive(Debug, Clone)]
pub struct CandidateSet {
    /// All candidate strings (the union of the `P_{2^k}` and the `C_m`),
    /// deduplicated by construction.
    pub strings: Vec<Vec<u8>>,
    /// Analytic error bound `α`: strings outside the set have
    /// `count_Δ < 3α` w.p. ≥ 1−β.
    pub alpha: f64,
    /// The threshold used.
    pub tau: f64,
    /// Sizes of `P_{2^k}` per level (diagnostics).
    pub level_sizes: Vec<usize>,
}

/// Memory safety valve for the overlap extension: at 2^22 strings per
/// length the construction is already far past any useful regime (the
/// paper's bound is |C_m| ≤ (nℓ)²), so we stop materializing rather than
/// exhaust memory.
pub const OVERLAP_SAFETY_CAP: usize = 1 << 22;

/// One candidate string with its hash in the corpus symbol space.
#[derive(Debug, Clone)]
pub(crate) struct Cand {
    pub(crate) bytes: Vec<u8>,
    pub(crate) hash: HashValue,
}

/// Output of the doubling phase: the sets `P_{2^0} … P_{2^max_power}` with
/// the per-level accuracy parameters.
pub(crate) struct DoublingLevels {
    pub(crate) levels: Vec<Vec<Cand>>,
    pub(crate) alpha: f64,
    pub(crate) tau: f64,
}

/// Runs the doubling construction `P_{2^0} … P_{2^max_power}`, spending
/// `privacy` split evenly over the `max_power + 1` levels. Used by the
/// full candidate construction (`max_power = ⌊log ℓ⌋`) and by the q-gram
/// algorithm of Theorem 3 (`max_power = ⌊log q⌋`).
#[allow(clippy::too_many_arguments)] // crate-internal; parameters are the paper's own knobs
pub(crate) fn doubling_levels<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    delta_clip: usize,
    privacy: PrivacyParams,
    beta: f64,
    gaussian: bool,
    tau_override: Option<f64>,
    cap: usize,
    max_power: usize,
    rng: &mut R,
) -> Result<DoublingLevels, CandidateOverflow> {
    let ell = idx.max_len();
    let n = idx.n_docs();
    let sigma = idx.alphabet_size();
    let num_levels = max_power + 1;
    let level_privacy = privacy.split_even(num_levels);
    let beta_level = beta / num_levels as f64;
    let k_counts = ((ell * ell) as f64 * (n * n) as f64).max(sigma as f64);
    let (noise, alpha) =
        level_noise(gaussian, level_privacy, ell, delta_clip, k_counts, beta_level);
    let tau = tau_override.unwrap_or(2.0 * alpha);

    // Level 0: all letters of Σ (absent letters included, with noise on 0 —
    // required for privacy).
    let mut current: Vec<Cand> = Vec::new();
    for sym_idx in 0..sigma {
        let letter = idx.alphabet_base() + sym_idx as u8;
        let c = idx.count_clipped(&[letter], delta_clip) as f64;
        if c + noise.sample(rng) >= tau {
            current.push(Cand { bytes: vec![letter], hash: idx.hash_pattern(&[letter]) });
        }
    }
    if current.len() > cap {
        return Err(CandidateOverflow { level: 0, size: current.len(), cap });
    }
    let mut levels = vec![current];

    for k in 1..=max_power {
        let len = 1usize << k;
        if len > ell {
            break;
        }
        let current = levels.last().expect("at least level 0");
        // Distinct length-`len` corpus substrings → SA intervals, for O(1)
        // expected-time concatenation lookups.
        let groups = depth_groups(idx, len);
        let mut count_of: HashMap<HashValue, SaInterval> = HashMap::with_capacity(groups.len());
        for g in &groups {
            count_of.insert(idx.substring_hash(g.witness_pos as usize, len), g.interval);
        }
        let mut next: Vec<Cand> = Vec::new();
        'pairs: for q1 in current {
            for q2 in current {
                let hash = idx.concat_hash(q1.hash, q2.hash);
                let true_count = count_of
                    .get(&hash)
                    .map(|&iv| idx.count_clipped_in_interval(iv, delta_clip))
                    .unwrap_or(0) as f64;
                if true_count + noise.sample(rng) >= tau {
                    let mut bytes = Vec::with_capacity(len);
                    bytes.extend_from_slice(&q1.bytes);
                    bytes.extend_from_slice(&q2.bytes);
                    next.push(Cand { bytes, hash });
                    if next.len() > cap {
                        break 'pairs;
                    }
                }
            }
        }
        if next.len() > cap {
            return Err(CandidateOverflow { level: k, size: next.len(), cap });
        }
        levels.push(next);
    }
    Ok(DoublingLevels { levels, alpha, tau })
}

/// Builds the candidate set with Laplace noise (Lemma 6, pure ε-DP).
pub fn build_candidates_pure<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    assert!(params.privacy.is_pure(), "Lemma 6 requires δ = 0");
    build_candidates_impl(idx, params, false, rng)
}

/// Builds the candidate set with Gaussian noise (Lemma 15, (ε,δ)-DP).
pub fn build_candidates_approx<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    assert!(params.privacy.delta > 0.0, "Lemma 15 requires δ > 0");
    build_candidates_impl(idx, params, true, rng)
}

/// Per-level noise and the analytic sup-error `α` over `K` counts.
fn level_noise(
    gaussian: bool,
    level_privacy: PrivacyParams,
    ell: usize,
    delta_clip: usize,
    k_counts: f64,
    beta_level: f64,
) -> (Noise, f64) {
    if gaussian {
        // Corollary 6: L2 ≤ √(2ℓΔ); Corollary 2 sup error.
        let l2 = (2.0 * ell as f64 * delta_clip as f64).sqrt();
        let noise = Noise::gaussian_for(level_privacy.epsilon, level_privacy.delta, l2);
        let alpha = 2.0 * l2 / level_privacy.epsilon
            * ((2.0 / level_privacy.delta).ln() * (2.0 * k_counts / beta_level).ln()).sqrt();
        (noise, alpha)
    } else {
        // Corollary 3: L1 ≤ 2ℓ; Corollary 1 sup error.
        let l1 = 2.0 * ell as f64;
        let noise = Noise::laplace_for(level_privacy.epsilon, l1);
        let alpha = l1 / level_privacy.epsilon * (k_counts / beta_level).ln();
        (noise, alpha)
    }
}

fn build_candidates_impl<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &CandidateParams,
    gaussian: bool,
    rng: &mut R,
) -> Result<CandidateSet, CandidateOverflow> {
    let ell = idx.max_len();
    let n = idx.n_docs();
    let max_power = (ell as f64).log2().floor() as usize; // ⌊log ℓ⌋
    let cap = params.level_cap_override.unwrap_or(n * ell);

    let doubling = doubling_levels(
        idx,
        params.delta_clip,
        params.privacy,
        params.beta,
        gaussian,
        params.tau_override,
        cap,
        max_power,
        rng,
    )?;

    let mut strings: Vec<Vec<u8>> = Vec::new();
    let mut level_sizes = Vec::with_capacity(doubling.levels.len());
    for (k, level) in doubling.levels.iter().enumerate() {
        level_sizes.push(level.len());
        strings.extend(level.iter().map(|c| c.bytes.clone()));
        // C_m for 2^k < m < 2^{k+1}: post-processing of P_{2^k} (no
        // database access, no privacy cost).
        extend_with_overlaps(idx, level, 1 << k, ell, OVERLAP_SAFETY_CAP, &mut strings);
    }

    Ok(CandidateSet { strings, alpha: doubling.alpha, tau: doubling.tau, level_sizes })
}

/// Adds to `out` every string of length `m ∈ (L, 2L)` (`L` = `len`, capped
/// at ℓ) whose length-`L` prefix and suffix are both in `cands`:
/// `Q1[0..L] · Q2[2L−m..L]` for every pair with a suffix/prefix overlap of
/// length `2L − m`.
///
/// Matching is hash-indexed: for each overlap length `o`, candidates are
/// bucketed by length-`o` prefix hash and joined against suffix hashes, so
/// the cost is `O(|P|·L + matches)` instead of the naive `O(|P|²·L)` — the
/// practical stand-in for the paper's LCE-based overlap detection (proof of
/// Lemma 7, Step 2). Hash hits are byte-verified before emission.
///
/// `per_length_cap` is a far-away safety valve (callers pass
/// [`OVERLAP_SAFETY_CAP`]) bounding memory if a noise-flooded candidate
/// level produces quadratically many overlaps; it binds only in regimes
/// that are already headed for the paper's FAIL outcome. It must NOT be
/// used as a tight budget: truncation is arbitrary and could drop frequent
/// strings. The cap decision never touches the database.
fn extend_with_overlaps(
    idx: &CorpusIndex,
    cands: &[Cand],
    len: usize,
    ell: usize,
    per_length_cap: usize,
    out: &mut Vec<Vec<u8>>,
) {
    if cands.is_empty() || len == 0 {
        return;
    }
    let max_m = (2 * len - 1).min(ell);
    if max_m <= len {
        return;
    }
    // All prefix/suffix hashes of each candidate in O(len) via a per-string
    // rolling hash (same parameter space as the corpus, so hashes agree
    // with `idx.hash_pattern`).
    struct Hashes {
        prefix: Vec<HashValue>,
        suffix: Vec<HashValue>,
    }
    let hashes: Vec<Hashes> = cands
        .iter()
        .map(|c| {
            let encoded: Vec<u32> =
                c.bytes.iter().map(|&b| idx.n_docs() as u32 + b as u32).collect();
            let h = dpsc_strkit::hash::RollingHash::new(&encoded);
            let prefix = (0..=len).map(|o| h.substring(0, o)).collect();
            let suffix = (0..=len).map(|o| h.substring(len - o, len)).collect();
            Hashes { prefix, suffix }
        })
        .collect();
    for m in len + 1..=max_m {
        let o = 2 * len - m;
        // Bucket candidates by their length-o prefix hash.
        let mut by_prefix: HashMap<HashValue, Vec<u32>> = HashMap::new();
        for (j, h) in hashes.iter().enumerate() {
            by_prefix.entry(h.prefix[o]).or_default().push(j as u32);
        }
        let mut emitted = 0usize;
        'outer: for (i, q1) in cands.iter().enumerate() {
            let Some(js) = by_prefix.get(&hashes[i].suffix[o]) else {
                continue;
            };
            for &j in js {
                let q2 = &cands[j as usize];
                // Exact confirmation (hashes are probabilistic).
                if q1.bytes[len - o..] == q2.bytes[..o] {
                    let mut s = Vec::with_capacity(m);
                    s.extend_from_slice(&q1.bytes);
                    s.extend_from_slice(&q2.bytes[o..]);
                    out.push(s);
                    emitted += 1;
                    if emitted >= per_length_cap {
                        break 'outer;
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params_with_tau(tau: f64) -> CandidateParams {
        CandidateParams {
            delta_clip: usize::MAX / 2,        // effectively Δ = ℓ clamp below
            privacy: PrivacyParams::pure(1e9), // noise ≈ 0
            beta: 0.1,
            tau_override: Some(tau),
            level_cap_override: None,
        }
    }

    #[test]
    fn noiseless_candidates_match_example_2() {
        // Example 2 of the paper: exact sets with threshold τ = 1.
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(1);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();

        let has = |s: &str| set.strings.iter().any(|x| x == s.as_bytes());
        // P_1 = {a, b, e, s}
        for s in ["a", "b", "e", "s"] {
            assert!(has(s), "missing {s}");
        }
        assert!(!has("c"));
        // P_2 = {aa, ab, ba, be, bs, ee, es, sa}
        for s in ["aa", "ab", "ba", "be", "bs", "ee", "es", "sa"] {
            assert!(has(s), "missing {s}");
        }
        assert!(!has("bb"));
        // P_4 = {aaaa, absa, babe, bees, bsab}
        for s in ["aaaa", "absa", "babe", "bees", "bsab"] {
            assert!(has(s), "missing {s}");
        }
        // C_3 per Example 3 (built from P_2 overlaps).
        for s in
            ["aaa", "aab", "aba", "abe", "abs", "baa", "bab", "bee", "bsa", "eee", "saa", "sab"]
        {
            assert!(has(s), "missing C_3 string {s}");
        }
        // C_5: Example 3 lists {aaaaa, aaaab, absab}, but that example is
        // derived from the *noisy* P_4 (which spuriously contains "aaab");
        // the exact sets yield C_5 = {aaaaa, absab}.
        for s in ["aaaaa", "absab"] {
            assert!(has(s), "missing C_5 string {s}");
        }
        assert!(!has("aaaab"));
        assert!(!has("abeab"));
        assert_eq!(set.level_sizes[0], 4);
        assert_eq!(set.level_sizes[1], 8);
        assert_eq!(set.level_sizes[2], 5);
    }

    #[test]
    fn every_frequent_string_is_covered_noiselessly() {
        // With τ = 1 and zero noise, C must contain every substring of the
        // database (Lemma 6's completeness direction in the exact regime).
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(2);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        use std::collections::HashSet;
        let have: HashSet<&[u8]> = set.strings.iter().map(|s| s.as_slice()).collect();
        for doc in db.documents() {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    assert!(
                        have.contains(&doc[i..j]),
                        "substring {:?} of {:?} missing",
                        std::str::from_utf8(&doc[i..j]).unwrap(),
                        std::str::from_utf8(doc).unwrap()
                    );
                }
            }
        }
    }

    #[test]
    fn no_duplicates() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(3);
        let mut p = params_with_tau(0.9);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for s in &set.strings {
            assert!(seen.insert(s.clone()), "duplicate candidate {:?}", s);
        }
    }

    #[test]
    fn high_threshold_prunes_rare_strings() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(4);
        let mut p = params_with_tau(3.0);
        p.delta_clip = db.max_len();
        let set = build_candidates_pure(&idx, &p, &mut rng).unwrap();
        let has = |s: &str| set.strings.iter().any(|x| x == s.as_bytes());
        // count(a) = 8, count(b) = 6, count(e) = 5, count(s) = 2 < 3.
        assert!(has("a") && has("b") && has("e"));
        assert!(!has("s"));
    }

    #[test]
    fn gaussian_variant_runs_and_covers_noiselessly() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(5);
        let p = CandidateParams {
            delta_clip: db.max_len(),
            privacy: PrivacyParams::approx(1e9, 1e-9),
            beta: 0.1,
            tau_override: Some(0.9),
            level_cap_override: None,
        };
        let set = build_candidates_approx(&idx, &p, &mut rng).unwrap();
        assert!(set.strings.iter().any(|s| s == b"absab"));
    }

    #[test]
    fn overflow_is_reported() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(6);
        let p = CandidateParams {
            delta_clip: db.max_len(),
            privacy: PrivacyParams::pure(1e9),
            beta: 0.1,
            tau_override: Some(0.9),
            level_cap_override: Some(2),
        };
        let err = build_candidates_pure(&idx, &p, &mut rng).unwrap_err();
        assert_eq!(err.level, 0);
        assert!(err.size > 2);
    }
}
