//! Frozen serving-layer synopsis: the published trie flattened into an
//! immutable CSR index.
//!
//! [`PrivateCountStructure`] is the *construction-time* artifact: an
//! arena trie whose node-by-node pointer chasing is convenient while the
//! pipeline inserts, prunes and re-counts, but wasteful once the synopsis
//! is released and only ever *read*. Because the released structure is
//! pure post-processing, it can be re-shaped freely with no privacy cost —
//! so [`FrozenSynopsis::freeze`] performs a one-shot flatten into four
//! contiguous arrays (breadth-first node order, CSR edge lists with
//! per-node sorted labels), giving allocation-free lookups instead of a
//! pointer walk through scattered arena nodes. On top of the CSR arrays
//! sits a derived, never-serialized acceleration index (`fastpath`):
//! per-node SWAR label blocks or direct child tables, chosen by fanout,
//! probed branchlessly — one or two cache lines per pattern byte.
//!
//! The frozen form is also the *shippable* form: [`FrozenSynopsis::to_bytes`]
//! / [`FrozenSynopsis::from_bytes`] implement a compact versioned binary
//! codec (checksummed, length-checked, structurally validated) mirroring
//! the text codec on [`PrivateCountStructure`], so a synopsis can be built
//! once under the privacy budget and served from many replicas.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_strkit::trie::Trie;

use crate::codec::{fnv1a, Cursor, DecodeError};
use crate::fastpath::FastPath;
use crate::structure::{CountMode, PrivateCountStructure};

/// Magic bytes opening the binary format ("DP Synopsis, Frozen").
const MAGIC: [u8; 4] = *b"DPSF";
/// Current binary format version.
const VERSION: u16 = 1;
/// Fixed-size header: magic(4) version(2) mode(1) clip(8) ε(8) δ(8)
/// α_counts(8) α_absent(8) n_docs(8) ℓ(8) n_nodes(8) n_edges(8).
const HEADER_LEN: usize = 4 + 2 + 1 + 8 * 9;

/// An immutable, flat, serializable `count_Δ` synopsis.
///
/// Node `0` is the root (the empty string); nodes are numbered in
/// breadth-first order, so every node's children occupy a contiguous id
/// range and the edge arrays of consecutive nodes are adjacent in memory.
/// For node `v`, the outgoing edges are
/// `edge_label[edge_start[v]..edge_start[v+1]]` (strictly increasing
/// labels) with parallel targets in `edge_target`; its noisy count is
/// `counts[v]`.
#[derive(Debug, Clone, PartialEq)]
pub struct FrozenSynopsis {
    /// Noisy `count_Δ(str(v))` per node, indexed by frozen node id.
    counts: Vec<f64>,
    /// CSR offsets into the edge arrays; length `counts.len() + 1`.
    edge_start: Vec<u32>,
    /// Edge labels, sorted within each node's range.
    edge_label: Vec<u8>,
    /// Edge targets parallel to `edge_label`.
    edge_target: Vec<u32>,
    mode: CountMode,
    privacy: PrivacyParams,
    alpha_counts: f64,
    alpha_absent: f64,
    n_docs: usize,
    max_len: usize,
    /// Degree-adaptive branchless edge index (SWAR blocks / direct
    /// tables, see `fastpath`). Derived data: rebuilt identically by
    /// [`Self::freeze`] and [`Self::from_bytes`], never serialized — the
    /// wire format is byte-identical to a synopsis without it.
    fast: FastPath,
}

impl FrozenSynopsis {
    /// Flattens a built structure into the frozen serving layout.
    /// One pass of `O(nodes)` work; the input is unchanged (post-processing).
    pub fn freeze(structure: &PrivateCountStructure) -> Self {
        let trie = structure.trie();
        let n = trie.len();
        // Breadth-first order: children (already label-sorted in the arena)
        // receive contiguous frozen ids, so target ranges are contiguous too.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        order.push(Trie::<f64>::ROOT);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            order.extend(trie.children(u));
        }
        debug_assert_eq!(order.len(), n);
        let mut frozen_of = vec![0u32; n];
        for (fid, &tid) in order.iter().enumerate() {
            frozen_of[tid as usize] = fid as u32;
        }
        let mut counts = Vec::with_capacity(n);
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edge_label = Vec::with_capacity(n.saturating_sub(1));
        let mut edge_target = Vec::with_capacity(n.saturating_sub(1));
        edge_start.push(0);
        for &tid in &order {
            counts.push(*trie.value(tid));
            for &(sym, c) in trie.edges(tid) {
                edge_label.push(sym);
                edge_target.push(frozen_of[c as usize]);
            }
            edge_start.push(edge_label.len() as u32);
        }
        let (n_docs, max_len) = structure.db_params();
        let fast = FastPath::build(&edge_start, &edge_label, &edge_target);
        Self {
            counts,
            edge_start,
            edge_label,
            edge_target,
            fast,
            mode: structure.mode(),
            privacy: structure.privacy(),
            alpha_counts: structure.alpha_counts(),
            alpha_absent: structure.alpha_absent(),
            n_docs,
            max_len,
        }
    }

    /// The frozen node spelling `pattern`, if present — the branchless
    /// tiered walk (`fastpath`): one SWAR block probe or direct-table
    /// load per pattern byte.
    #[inline]
    fn locate(&self, pattern: &[u8]) -> Option<u32> {
        let mut cur = 0u32;
        for &b in pattern {
            cur = self.fast.step(cur, b)?;
        }
        Some(cur)
    }

    /// Reference walk: per-byte binary search over the CSR label ranges.
    /// Kept (not dead code) as the differential-testing oracle for the
    /// fast path and as the baseline the serving benchmarks compare
    /// against; answers are bit-identical to [`Self::locate`].
    #[inline]
    fn locate_naive(&self, pattern: &[u8]) -> Option<u32> {
        let mut cur = 0u32;
        for &b in pattern {
            let lo = self.edge_start[cur as usize] as usize;
            let hi = self.edge_start[cur as usize + 1] as usize;
            let i = self.edge_label[lo..hi].binary_search(&b).ok()?;
            cur = self.edge_target[lo + i];
        }
        Some(cur)
    }

    /// Walks four patterns in lockstep, one byte per pattern per
    /// iteration: the four child-step loads are independent, so the CPU
    /// overlaps their latencies instead of serializing one walk at a
    /// time. A finished pattern (exhausted or missed) keeps its state.
    #[inline]
    fn locate4(&self, pats: [&[u8]; 4]) -> [Option<u32>; 4] {
        let mut cur = [Some(0u32); 4];
        let max_len = pats.iter().map(|p| p.len()).max().unwrap_or(0);
        for d in 0..max_len {
            for i in 0..4 {
                if let Some(c) = cur[i] {
                    if let Some(&b) = pats[i].get(d) {
                        cur[i] = self.fast.step(c, b);
                    }
                }
            }
        }
        cur
    }

    #[inline]
    fn count_of(&self, node: Option<u32>) -> f64 {
        match node {
            Some(v) => self.counts[v as usize],
            None => 0.0,
        }
    }

    /// Noisy `count_Δ(P, D)`; absent patterns return 0, exactly as
    /// [`PrivateCountStructure::query`]. Allocation-free; one branchless
    /// edge probe per pattern byte (`O(|P|)` for fanout ≤ 8 and ≥ 32,
    /// `O(|P| · ⌈σ/8⌉)` worst case in between).
    #[inline]
    pub fn query(&self, pattern: &[u8]) -> f64 {
        self.count_of(self.locate(pattern))
    }

    /// [`Self::query`] through the reference binary-search walk — the
    /// pre-acceleration `O(|P| log σ)` path. Exists so tests, benchmarks
    /// and the serving load generator can assert, at runtime, that the
    /// fast path is behaviorally invisible (bit-identical answers).
    #[inline]
    pub fn query_naive(&self, pattern: &[u8]) -> f64 {
        self.count_of(self.locate_naive(pattern))
    }

    /// Whether the pattern is represented in the synopsis.
    #[inline]
    pub fn contains(&self, pattern: &[u8]) -> bool {
        self.locate(pattern).is_some()
    }

    /// [`Self::contains`] through the reference binary-search walk.
    #[inline]
    pub fn contains_naive(&self, pattern: &[u8]) -> bool {
        self.locate_naive(pattern).is_some()
    }

    /// The lockstep batch kernel: answers `patterns` into `out`
    /// (equal lengths), four patterns per iteration.
    fn query_batch_into(&self, patterns: &[&[u8]], out: &mut [f64]) {
        debug_assert_eq!(patterns.len(), out.len());
        let mut quads = patterns.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (quad, o) in quads.by_ref().zip(outs.by_ref()) {
            let located = self.locate4([quad[0], quad[1], quad[2], quad[3]]);
            for (slot, node) in o.iter_mut().zip(located) {
                *slot = self.count_of(node);
            }
        }
        for (p, slot) in quads.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.query(p);
        }
    }

    /// Answers a batch of queries in order. One output allocation; the
    /// per-pattern lookups are allocation-free and advance four patterns
    /// per iteration ([`Self::locate4`]) to hide load latency.
    pub fn query_batch(&self, patterns: &[&[u8]]) -> Vec<f64> {
        let mut out = vec![0.0f64; patterns.len()];
        self.query_batch_into(patterns, &mut out);
        out
    }

    /// Answers a batch of queries across `threads` scoped worker threads
    /// (clamped to the batch size; `0` means one thread). Same output as
    /// [`Self::query_batch`] — the synopsis is immutable, so workers share
    /// it by reference. A single-threaded call (or a batch that fits one
    /// chunk) takes a direct sequential path: no scope, no spawn.
    pub fn query_batch_parallel(&self, patterns: &[&[u8]], threads: usize) -> Vec<f64> {
        if patterns.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, patterns.len());
        let chunk = patterns.len().div_ceil(threads);
        if threads == 1 || chunk >= patterns.len() {
            return self.query_batch(patterns);
        }
        let mut out = vec![0.0f64; patterns.len()];
        std::thread::scope(|scope| {
            for (pats, outs) in patterns.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || self.query_batch_into(pats, outs));
            }
        });
        out
    }

    /// The count mode (`Δ`).
    #[inline]
    pub fn mode(&self) -> CountMode {
        self.mode
    }

    /// The privacy guarantee of the construction that produced this synopsis.
    #[inline]
    pub fn privacy(&self) -> PrivacyParams {
        self.privacy
    }

    /// Error bound on stored noisy counts (high probability).
    #[inline]
    pub fn alpha_counts(&self) -> f64 {
        self.alpha_counts
    }

    /// True-count bound for strings not present in the synopsis.
    #[inline]
    pub fn alpha_absent(&self) -> f64 {
        self.alpha_absent
    }

    /// Overall additive error `α` (present or absent patterns).
    pub fn alpha(&self) -> f64 {
        self.alpha_counts.max(self.alpha_absent)
    }

    /// Number of nodes, root included.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.counts.len()
    }

    /// Database size parameters `(n, ℓ)` the synopsis was built from.
    pub fn db_params(&self) -> (usize, usize) {
        (self.n_docs, self.max_len)
    }

    /// Size of the serialized form in bytes: derived from the actual
    /// array lengths and element sizes (plus [`HEADER_LEN`] and the
    /// trailing checksum), so a layout change cannot silently desync it
    /// from [`Self::to_bytes`].
    pub fn serialized_len(&self) -> usize {
        use std::mem::size_of;
        HEADER_LEN
            + size_of::<f64>() * self.counts.len()
            + size_of::<u32>() * self.edge_start.len()
            + size_of::<u8>() * self.edge_label.len()
            + size_of::<u32>() * self.edge_target.len()
            + size_of::<u64>() // trailing FNV-1a checksum
    }

    /// Bytes of in-memory acceleration data (`fastpath` blocks and
    /// tables) carried on top of the serialized arrays. Never shipped:
    /// rebuilt locally on decode.
    pub fn accel_memory_bytes(&self) -> usize {
        self.fast.memory_bytes()
    }

    /// Serializes to the compact versioned binary format.
    ///
    /// Layout (all integers little-endian, floats as IEEE-754 bit patterns
    /// so counts round-trip exactly): a fixed header — magic `DPSF`,
    /// version, mode tag + clip level, `ε`, `δ`, `α_counts`, `α_absent`,
    /// `n`, `ℓ`, node count, edge count — then the four arrays (`counts`,
    /// `edge_start`, `edge_label`, `edge_target`) and a trailing FNV-1a
    /// checksum of everything before it.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.serialized_len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let (tag, clip): (u8, u64) = match self.mode {
            CountMode::Document => (0, 0),
            CountMode::Substring => (1, 0),
            CountMode::Clipped(d) => (2, d as u64),
        };
        out.push(tag);
        out.extend_from_slice(&clip.to_le_bytes());
        out.extend_from_slice(&self.privacy.epsilon.to_bits().to_le_bytes());
        out.extend_from_slice(&self.privacy.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.alpha_counts.to_bits().to_le_bytes());
        out.extend_from_slice(&self.alpha_absent.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.n_docs as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_len as u64).to_le_bytes());
        out.extend_from_slice(&(self.counts.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.edge_label.len() as u64).to_le_bytes());
        for &c in &self.counts {
            out.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        for &s in &self.edge_start {
            out.extend_from_slice(&s.to_le_bytes());
        }
        out.extend_from_slice(&self.edge_label);
        for &t in &self.edge_target {
            out.extend_from_slice(&t.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses a synopsis previously written by [`Self::to_bytes`].
    ///
    /// Decoding is defensive: every read is length-checked, declared array
    /// sizes are validated against the actual input length *before* any
    /// allocation, the trailing checksum must match, and the decoded CSR
    /// arrays must describe a well-formed tree (monotone offsets, sorted
    /// labels, every non-root node exactly one incoming edge, every node
    /// reachable from the root). Truncated, version-mismatched or
    /// corrupted inputs return `Err`, never panic, and accepted encodings
    /// are canonical: `from_bytes(b)?.to_bytes() == b`.
    ///
    /// # Errors
    /// A [`DecodeError`] describing the first defect found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor::new(bytes);
        let magic: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { found: magic, expected: MAGIC });
        }
        let version = cur.u16()?;
        if version != VERSION {
            return Err(DecodeError::UnsupportedVersion { found: version, expected: VERSION });
        }
        let tag = cur.u8()?;
        let clip = cur.u64()?;
        let mode = match tag {
            // Canonicality: the clip field carries information only for
            // tag 2; any other encoding must use zero so that equal
            // synopses have exactly one byte representation.
            0 | 1 if clip != 0 => {
                return Err(DecodeError::BadField {
                    field: "clip level",
                    detail: format!("nonzero clip level {clip} with mode tag {tag}"),
                });
            }
            0 => CountMode::Document,
            1 => CountMode::Substring,
            2 => {
                let d = usize::try_from(clip).map_err(|_| DecodeError::SizeOverflow)?;
                CountMode::Clipped(d)
            }
            other => {
                return Err(DecodeError::BadField {
                    field: "mode tag",
                    detail: format!("unknown tag {other}"),
                })
            }
        };
        let epsilon = cur.f64()?;
        let delta = cur.f64()?;
        if !(epsilon.is_finite() && epsilon > 0.0) {
            return Err(DecodeError::BadField { field: "epsilon", detail: epsilon.to_string() });
        }
        // `-0.0` would satisfy a plain range check but re-serialize as
        // `+0.0` (PrivacyParams::pure normalizes it), breaking
        // canonicality — reject the sign bit explicitly.
        if delta.is_sign_negative() || !((0.0..1.0).contains(&delta)) {
            return Err(DecodeError::BadField { field: "delta", detail: delta.to_string() });
        }
        let alpha_counts = cur.f64()?;
        let alpha_absent = cur.f64()?;
        let n_docs = cur.usize64()?;
        let max_len = cur.usize64()?;
        let n_nodes = cur.usize64()?;
        let n_edges = cur.usize64()?;
        if n_nodes == 0 {
            return Err(DecodeError::BadField {
                field: "node count",
                detail: "zero (the root is mandatory)".to_string(),
            });
        }
        if n_edges != n_nodes - 1 {
            return Err(DecodeError::BadField {
                field: "edge count",
                detail: format!("{n_edges} != node count {n_nodes} - 1"),
            });
        }
        // Validate the declared payload against the real input length before
        // allocating anything: a corrupt size field must not OOM us (and the
        // arithmetic itself must not overflow on adversarial sizes).
        let payload = n_nodes
            .checked_mul(8)
            .and_then(|a| n_nodes.checked_add(1)?.checked_mul(4)?.checked_add(a))
            .and_then(|a| n_edges.checked_mul(5)?.checked_add(a))
            .and_then(|a| a.checked_add(8))
            .ok_or(DecodeError::SizeOverflow)?;
        let remaining = cur.remaining();
        if remaining < payload {
            return Err(DecodeError::Truncated {
                offset: cur.pos(),
                need: payload,
                have: remaining,
            });
        }
        if remaining > payload {
            return Err(DecodeError::TrailingGarbage { extra: remaining - payload });
        }
        let declared =
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte checksum slice"));
        let actual = fnv1a(&bytes[..bytes.len() - 8]);
        if declared != actual {
            return Err(DecodeError::ChecksumMismatch { stored: declared, computed: actual });
        }
        let counts: Vec<f64> = cur.take(8 * n_nodes)?.chunks_exact(8).map(le_f64).collect();
        let edge_start: Vec<u32> =
            cur.take(4 * (n_nodes + 1))?.chunks_exact(4).map(le_u32).collect();
        let edge_label: Vec<u8> = cur.take(n_edges)?.to_vec();
        let edge_target: Vec<u32> = cur.take(4 * n_edges)?.chunks_exact(4).map(le_u32).collect();

        // Structural validation: the arrays must describe a tree the query
        // path can walk without bounds panics.
        if edge_start[0] != 0 || edge_start[n_nodes] as usize != n_edges {
            return Err(DecodeError::Structural("CSR offsets do not span the edge arrays".into()));
        }
        let mut incoming = vec![false; n_nodes];
        for v in 0..n_nodes {
            let (lo, hi) = (edge_start[v] as usize, edge_start[v + 1] as usize);
            if lo > hi {
                return Err(DecodeError::Structural(format!("CSR offsets decrease at node {v}")));
            }
            for e in lo..hi {
                if e > lo && edge_label[e - 1] >= edge_label[e] {
                    return Err(DecodeError::Structural(format!(
                        "edge labels of node {v} are not strictly sorted"
                    )));
                }
                let t = edge_target[e] as usize;
                if t == 0 || t >= n_nodes {
                    return Err(DecodeError::Structural(format!(
                        "edge target {t} out of range at node {v}"
                    )));
                }
                if incoming[t] {
                    return Err(DecodeError::Structural(format!(
                        "node {t} has two incoming edges"
                    )));
                }
                incoming[t] = true;
            }
        }
        // In-degree alone admits cycles disconnected from the root (e.g.
        // 1→2→1 with a childless root); demand full reachability, which
        // together with `edges = nodes − 1` forces a single tree.
        let mut reachable = 1usize;
        let mut queue = vec![0usize];
        while let Some(v) = queue.pop() {
            for e in edge_start[v] as usize..edge_start[v + 1] as usize {
                reachable += 1;
                queue.push(edge_target[e] as usize);
            }
        }
        if reachable != n_nodes {
            return Err(DecodeError::Structural(format!(
                "{} nodes unreachable from the root",
                n_nodes - reachable
            )));
        }
        let privacy = if delta == 0.0 {
            PrivacyParams::pure(epsilon)
        } else {
            PrivacyParams::approx(epsilon, delta)
        };
        // The arrays passed every structural check above, which is all
        // the acceleration layout assumes.
        let fast = FastPath::build(&edge_start, &edge_label, &edge_target);
        Ok(Self {
            counts,
            edge_start,
            edge_label,
            edge_target,
            fast,
            mode,
            privacy,
            alpha_counts,
            alpha_absent,
            n_docs,
            max_len,
        })
    }
}

impl PrivateCountStructure {
    /// Freezes this structure into the flat serving layout
    /// ([`FrozenSynopsis`]). Post-processing: no privacy cost.
    pub fn freeze(&self) -> FrozenSynopsis {
        FrozenSynopsis::freeze(self)
    }
}

#[inline]
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes(b.try_into().expect("4-byte chunk"))
}

#[inline]
fn le_f64(b: &[u8]) -> f64 {
    f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte chunk")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_structure() -> PrivateCountStructure {
        let mut trie: Trie<f64> = Trie::new(20.0);
        let a = trie.insert_path(b"a", |_| 0.0);
        let ab = trie.insert_path(b"ab", |_| 0.0);
        let ac = trie.insert_path(b"ac", |_| 0.0);
        let b = trie.insert_path(b"b", |_| 0.0);
        *trie.value_mut(a) = 8.25;
        *trie.value_mut(ab) = 4.125;
        *trie.value_mut(ac) = 3.5;
        *trie.value_mut(b) = 6.0;
        PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.5,
            2.5,
            6,
            5,
        )
    }

    #[test]
    fn freeze_preserves_queries_and_metadata() {
        let s = toy_structure();
        let f = s.freeze();
        for pat in [&b""[..], b"a", b"ab", b"ac", b"b", b"ba", b"abc", b"zz"] {
            assert_eq!(f.query(pat).to_bits(), s.query(pat).to_bits(), "pattern {pat:?}");
            assert_eq!(f.contains(pat), s.contains(pat), "pattern {pat:?}");
        }
        assert_eq!(f.node_count(), s.node_count());
        assert_eq!(f.mode(), s.mode());
        assert_eq!(f.privacy(), s.privacy());
        assert_eq!(f.alpha_counts(), s.alpha_counts());
        assert_eq!(f.alpha_absent(), s.alpha_absent());
        assert_eq!(f.alpha(), s.alpha());
        assert_eq!(f.db_params(), s.db_params());
    }

    #[test]
    fn batch_paths_agree_with_single_queries() {
        let s = toy_structure();
        let f = s.freeze();
        let patterns: Vec<&[u8]> = vec![b"", b"a", b"ab", b"ac", b"b", b"zz", b"abc"];
        let single: Vec<f64> = patterns.iter().map(|p| f.query(p)).collect();
        assert_eq!(f.query_batch(&patterns), single);
        for threads in [0usize, 1, 2, 7, 64] {
            assert_eq!(f.query_batch_parallel(&patterns, threads), single, "threads={threads}");
        }
        assert!(f.query_batch_parallel(&[], 4).is_empty());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let s = toy_structure();
        let f = s.freeze();
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.serialized_len());
        let back = FrozenSynopsis::from_bytes(&bytes).expect("roundtrip parses");
        assert_eq!(back, f);
    }

    #[test]
    fn root_only_synopsis_works() {
        let trie: Trie<f64> = Trie::new(7.5);
        let s = PrivateCountStructure::new(
            trie,
            CountMode::Document,
            PrivacyParams::approx(0.5, 1e-8),
            1.0,
            2.0,
            3,
            4,
        );
        let f = s.freeze();
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.query(b""), 7.5);
        assert_eq!(f.query(b"a"), 0.0);
        let back = FrozenSynopsis::from_bytes(&f.to_bytes()).expect("parses");
        assert_eq!(back, f);
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                FrozenSynopsis::from_bytes(&bytes[..len]).is_err(),
                "prefix of length {len} must not parse"
            );
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(FrozenSynopsis::from_bytes(&extended).is_err());
    }

    #[test]
    fn version_and_magic_mismatches_are_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(FrozenSynopsis::from_bytes(&wrong_magic)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(FrozenSynopsis::from_bytes(&wrong_version)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    /// Overwrites `bytes[range]` with `patch` and re-stamps the checksum,
    /// simulating an adversary who keeps the frame valid.
    fn patch_and_restamp(bytes: &[u8], at: usize, patch: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[at..at + patch.len()].copy_from_slice(patch);
        let body = out.len() - 8;
        let sum = fnv1a(&out[..body]);
        out[body..].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn nonzero_clip_with_non_clipped_tag_is_rejected() {
        // toy_structure is Substring (tag 1, clip field 0); setting the
        // clip field with a fixed checksum must fail canonicality.
        let bytes = toy_structure().freeze().to_bytes();
        let clip_offset = 4 + 2 + 1; // magic + version + tag
        let forged = patch_and_restamp(&bytes, clip_offset, &5u64.to_le_bytes());
        let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("clip"), "unexpected error: {err}");
        // The same patch on a Clipped-mode synopsis is meaningful and fine.
        let mut trie: Trie<f64> = Trie::new(1.0);
        trie.insert_path(b"x", |_| 0.5);
        let clipped = PrivateCountStructure::new(
            trie,
            CountMode::Clipped(7),
            PrivacyParams::pure(1.0),
            1.0,
            2.0,
            3,
            4,
        )
        .freeze();
        let reclipped = patch_and_restamp(&clipped.to_bytes(), clip_offset, &5u64.to_le_bytes());
        let parsed = FrozenSynopsis::from_bytes(&reclipped).expect("valid clipped encoding");
        assert_eq!(parsed.mode(), CountMode::Clipped(5));
        assert_eq!(parsed.to_bytes(), reclipped, "canonical re-serialization");
    }

    #[test]
    fn negative_zero_delta_is_rejected() {
        // toy_structure is pure DP (δ = +0.0); flipping δ's sign bit with
        // a restamped checksum must fail rather than decode to a synopsis
        // that re-serializes differently.
        let bytes = toy_structure().freeze().to_bytes();
        let delta_offset = 4 + 2 + 1 + 8 + 8; // magic + version + tag + clip + ε
        let forged = patch_and_restamp(&bytes, delta_offset, &(-0.0f64).to_bits().to_le_bytes());
        let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("delta"), "unexpected error: {err}");
    }

    #[test]
    fn disconnected_cycle_is_rejected() {
        // Hand-build the arrays for: childless root, plus nodes 1 ⇄ 2
        // forming a cycle. Every non-root node has in-degree exactly one
        // and edges = nodes − 1, so only the reachability check can catch
        // it.
        let good = toy_structure().freeze();
        let cyclic = FrozenSynopsis {
            counts: vec![1.0, 2.0, 3.0],
            edge_start: vec![0, 0, 1, 2],
            edge_label: vec![b'a', b'a'],
            edge_target: vec![2, 1],
            ..good
        };
        let err = FrozenSynopsis::from_bytes(&cyclic.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("unreachable"), "unexpected error: {err}");
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    FrozenSynopsis::from_bytes(&corrupt).is_err(),
                    "bit {bit} of byte {pos} flipped silently"
                );
            }
        }
    }
}
