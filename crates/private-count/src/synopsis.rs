//! Frozen serving-layer synopsis: the published trie flattened into an
//! immutable CSR index.
//!
//! [`PrivateCountStructure`] is the *construction-time* artifact: an
//! arena trie whose node-by-node pointer chasing is convenient while the
//! pipeline inserts, prunes and re-counts, but wasteful once the synopsis
//! is released and only ever *read*. Because the released structure is
//! pure post-processing, it can be re-shaped freely with no privacy cost —
//! so [`FrozenSynopsis::freeze`] performs a one-shot flatten into four
//! contiguous arrays (breadth-first node order, CSR edge lists with
//! per-node sorted labels), giving allocation-free lookups instead of a
//! pointer walk through scattered arena nodes. On top of the CSR arrays
//! sits a derived, never-serialized acceleration index (`fastpath`):
//! per-node SWAR label blocks or direct child tables, chosen by fanout,
//! probed branchlessly — one or two cache lines per pattern byte.
//!
//! The frozen form is also the *shippable* form, in two wire dialects:
//!
//! * **v1** ([`FrozenSynopsis::to_bytes`] by default) — the original
//!   compact format: fixed header, four packed arrays, one trailing
//!   FNV-1a checksum. Kept byte-identical for compatibility.
//! * **v2** ([`FrozenSynopsis::to_bytes_v2`], `codec_v2`) — 8-byte-aligned
//!   sections with per-section checksums. Uncompressed v2 snapshots can be
//!   decoded *borrowed* ([`FrozenSynopsis::from_bytes_shared`]): after
//!   validation the arrays point straight into the shared input buffer
//!   (an `Arc<[u8]>`), so installing a shard performs zero per-array
//!   copies. The compressed dialect trades that for size: `edge_start` as
//!   delta+varint degrees, `edge_target` as zigzag-varint gaps.
//!
//! Which dialect a synopsis re-serializes to is carried in
//! [`SnapshotCodec`]; decoding dispatches on the version field, so either
//! dialect round-trips canonically (`from_bytes(b)?.to_bytes() == b`).

use std::sync::Arc;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_strkit::trie::Trie;

use crate::codec::{fnv1a, le_f64, le_u32, require_finite, Cursor, DecodeError};
use crate::codec_v2;
use crate::fastpath::FastPath;
use crate::structure::{CountMode, PrivateCountStructure};

/// Magic bytes opening the binary format ("DP Synopsis, Frozen").
pub(crate) const MAGIC: [u8; 4] = *b"DPSF";
/// Version tag of the original (v1) binary format.
const VERSION: u16 = 1;
/// Fixed-size v1 header: magic(4) version(2) mode(1) clip(8) ε(8) δ(8)
/// α_counts(8) α_absent(8) n_docs(8) ℓ(8) n_nodes(8) n_edges(8).
pub(crate) const HEADER_LEN: usize = 4 + 2 + 1 + 8 * 9;

/// Which wire dialect [`FrozenSynopsis::to_bytes`] emits. Decoders set it
/// to the dialect the bytes arrived in, so re-serialization round-trips
/// canonically; [`FrozenSynopsis::freeze`] defaults to [`Self::V1`],
/// keeping every existing build digest byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SnapshotCodec {
    /// Original format: fixed header, packed arrays, one trailing checksum.
    V1,
    /// Sectioned format with per-section checksums and 8-byte alignment.
    V2 {
        /// Whether the edge arrays use delta/gap varint compression.
        compressed: bool,
    },
}

/// Raw little-endian `(counts, edge_start, edge_label, edge_target)`
/// section bytes of a borrowed storage, exactly sized.
type SectionViews<'a> = (&'a [u8], &'a [u8], &'a [u8], &'a [u8]);

/// Physical backing of the four CSR arrays.
///
/// `Owned` holds decoded `Vec`s (freeze, v1 decode, compressed-v2
/// decode). `Borrowed` points into a shared, already-validated v2 buffer:
/// the offsets address the little-endian section bytes inside `buf`, and
/// every accessor reads fields with `from_le_bytes` — safe code, one load
/// on little-endian targets, no aliasing tricks (the workspace denies
/// `unsafe`). Cloning a `Borrowed` storage clones the `Arc`, not the data.
#[derive(Debug, Clone)]
pub(crate) enum Storage {
    Owned {
        counts: Vec<f64>,
        edge_start: Vec<u32>,
        edge_label: Vec<u8>,
        edge_target: Vec<u32>,
    },
    Borrowed {
        buf: Arc<[u8]>,
        counts_off: usize,
        edge_start_off: usize,
        edge_label_off: usize,
        edge_target_off: usize,
        n_nodes: usize,
        n_edges: usize,
    },
}

impl Storage {
    /// Number of nodes (root included).
    #[inline]
    pub(crate) fn n_nodes(&self) -> usize {
        match self {
            Self::Owned { counts, .. } => counts.len(),
            Self::Borrowed { n_nodes, .. } => *n_nodes,
        }
    }

    /// Number of edges (`n_nodes − 1` for every valid synopsis).
    #[inline]
    pub(crate) fn n_edges(&self) -> usize {
        match self {
            Self::Owned { edge_label, .. } => edge_label.len(),
            Self::Borrowed { n_edges, .. } => *n_edges,
        }
    }

    /// Noisy count of node `v`.
    #[inline]
    pub(crate) fn count(&self, v: usize) -> f64 {
        match self {
            Self::Owned { counts, .. } => counts[v],
            Self::Borrowed { buf, counts_off, .. } => le_f64(buf, counts_off + 8 * v),
        }
    }

    /// CSR offset `edge_start[i]` (valid for `i ≤ n_nodes`).
    #[inline]
    pub(crate) fn edge_start_at(&self, i: usize) -> usize {
        match self {
            Self::Owned { edge_start, .. } => edge_start[i] as usize,
            Self::Borrowed { buf, edge_start_off, .. } => {
                le_u32(buf, edge_start_off + 4 * i) as usize
            }
        }
    }

    /// Edge labels `edge_label[lo..hi]` — labels are plain bytes, so both
    /// storages can hand out a real slice.
    #[inline]
    pub(crate) fn edge_labels(&self, lo: usize, hi: usize) -> &[u8] {
        match self {
            Self::Owned { edge_label, .. } => &edge_label[lo..hi],
            Self::Borrowed { buf, edge_label_off, .. } => {
                &buf[edge_label_off + lo..edge_label_off + hi]
            }
        }
    }

    /// Target of edge `e`.
    #[inline]
    pub(crate) fn edge_target_at(&self, e: usize) -> u32 {
        match self {
            Self::Owned { edge_target, .. } => edge_target[e],
            Self::Borrowed { buf, edge_target_off, .. } => le_u32(buf, edge_target_off + 4 * e),
        }
    }

    /// Whether the arrays alias a shared input buffer.
    #[inline]
    pub(crate) fn is_borrowed(&self) -> bool {
        matches!(self, Self::Borrowed { .. })
    }

    /// The borrowed storage's raw little-endian section views
    /// `(counts, edge_start, edge_label, edge_target)`, exactly sized.
    /// Hot loops bind these once instead of re-dispatching through the
    /// enum accessors per element.
    fn borrowed_views(&self) -> Option<SectionViews<'_>> {
        match self {
            Self::Owned { .. } => None,
            Self::Borrowed {
                buf,
                counts_off,
                edge_start_off,
                edge_label_off,
                edge_target_off,
                n_nodes,
                n_edges,
            } => Some((
                &buf[*counts_off..counts_off + 8 * n_nodes],
                &buf[*edge_start_off..edge_start_off + 4 * (n_nodes + 1)],
                &buf[*edge_label_off..edge_label_off + n_edges],
                &buf[*edge_target_off..edge_target_off + 4 * n_edges],
            )),
        }
    }

    /// Rebuilds the derived acceleration index. Deterministic in the
    /// logical arrays, so owned and borrowed storages of the same
    /// synopsis produce identical layouts.
    pub(crate) fn build_fastpath(&self) -> FastPath {
        match self {
            Self::Owned { edge_start, edge_label, edge_target, .. } => {
                FastPath::build(edge_start, edge_label, edge_target)
            }
            borrowed => {
                let (_, es, lb, tg) = borrowed.borrowed_views().expect("borrowed storage");
                FastPath::build_with(
                    borrowed.n_nodes(),
                    |v| (le_u32(es, 4 * v) as usize, le_u32(es, 4 * v + 4) as usize),
                    |e| lb[e],
                    |e| le_u32(tg, 4 * e),
                )
            }
        }
    }

    /// Structural validation shared by every decoder: the arrays must
    /// describe a tree the query path can walk without bounds panics, and
    /// the stored counts must be finite. Checks run *range-first* — an
    /// adversarial `edge_start` entry past the edge arrays is reported as
    /// an error before anything indexes with it.
    pub(crate) fn validate(&self) -> Result<(), DecodeError> {
        match self {
            Self::Owned { counts, edge_start, edge_label, edge_target } => validate_seq(
                counts.len(),
                edge_label.len(),
                counts.iter().copied(),
                edge_start.iter().map(|&x| x as usize),
                edge_label,
                edge_target.iter().map(|&x| x as usize),
            ),
            borrowed => {
                let (counts, es, lb, tg) = borrowed.borrowed_views().expect("borrowed storage");
                validate_seq(
                    borrowed.n_nodes(),
                    borrowed.n_edges(),
                    counts.chunks_exact(8).map(|c| le_f64(c, 0)),
                    es.chunks_exact(4).map(|c| le_u32(c, 0) as usize),
                    lb,
                    tg.chunks_exact(4).map(|c| le_u32(c, 0) as usize),
                )
            }
        }
    }
}

/// [`Storage::validate`] as one sequential sweep over storage-agnostic
/// element streams, so each backing monomorphizes to straight-line
/// chunked loads (no per-element enum dispatch, no random access).
///
/// The encoder numbers nodes in breadth-first order, so every edge points
/// *forward* (`target > source`). Validating that per edge makes a
/// separate reachability pass redundant: `edges = nodes − 1` targets, all
/// distinct (the in-degree bit set) and all nonzero, give every non-root
/// node exactly one incoming edge, and walking those edges backwards
/// strictly decreases the id until it reaches the root — so cycles and
/// disconnected components are impossible by construction.
fn validate_seq(
    n_nodes: usize,
    n_edges: usize,
    counts: impl Iterator<Item = f64>,
    mut edge_start: impl Iterator<Item = usize>,
    labels: &[u8],
    mut targets: impl Iterator<Item = usize>,
) -> Result<(), DecodeError> {
    let mut lo = edge_start.next().expect("edge_start holds n_nodes + 1 entries");
    if lo != 0 {
        return Err(DecodeError::Structural("CSR offsets do not span the edge arrays".into()));
    }
    let mut incoming = vec![false; n_nodes];
    for v in 0..n_nodes {
        let hi = edge_start.next().expect("edge_start holds n_nodes + 1 entries");
        if hi < lo {
            return Err(DecodeError::Structural(format!("CSR offsets decrease at node {v}")));
        }
        if hi > n_edges {
            return Err(DecodeError::Structural(format!(
                "CSR offsets exceed the edge arrays at node {v}"
            )));
        }
        for e in lo..hi {
            if e > lo && labels[e - 1] >= labels[e] {
                return Err(DecodeError::Structural(format!(
                    "edge labels of node {v} are not strictly sorted"
                )));
            }
            let t = targets.next().expect("targets hold n_edges entries");
            if t <= v || t >= n_nodes {
                return Err(DecodeError::Structural(format!(
                    "edge target {t} at node {v} breaks the BFS numbering \
                     (would be unreachable from the root)"
                )));
            }
            if incoming[t] {
                return Err(DecodeError::Structural(format!("node {t} has two incoming edges")));
            }
            incoming[t] = true;
        }
        lo = hi;
    }
    if lo != n_edges {
        return Err(DecodeError::Structural("CSR offsets do not span the edge arrays".into()));
    }
    for (v, c) in counts.enumerate() {
        if !c.is_finite() {
            return Err(DecodeError::BadField {
                field: "counts",
                detail: format!("non-finite count {c} at node {v}"),
            });
        }
    }
    Ok(())
}

/// Logical array equality across storages. Owned/owned compares the
/// `Vec`s directly; any mix involving a borrowed storage compares
/// element-wise through the accessors.
fn storage_logical_eq(a: &Storage, b: &Storage) -> bool {
    if let (
        Storage::Owned { counts: ca, edge_start: sa, edge_label: la, edge_target: ta },
        Storage::Owned { counts: cb, edge_start: sb, edge_label: lb, edge_target: tb },
    ) = (a, b)
    {
        return ca == cb && sa == sb && la == lb && ta == tb;
    }
    let (n, e) = (a.n_nodes(), a.n_edges());
    n == b.n_nodes()
        && e == b.n_edges()
        && (0..n).all(|v| a.count(v) == b.count(v))
        && (0..=n).all(|i| a.edge_start_at(i) == b.edge_start_at(i))
        && a.edge_labels(0, e) == b.edge_labels(0, e)
        && (0..e).all(|i| a.edge_target_at(i) == b.edge_target_at(i))
}

/// An immutable, flat, serializable `count_Δ` synopsis.
///
/// Node `0` is the root (the empty string); nodes are numbered in
/// breadth-first order, so every node's children occupy a contiguous id
/// range and the edge arrays of consecutive nodes are adjacent in memory.
/// For node `v`, the outgoing edges are
/// `edge_label[edge_start[v]..edge_start[v+1]]` (strictly increasing
/// labels) with parallel targets in `edge_target`; its noisy count is
/// `counts[v]`.
#[derive(Debug, Clone)]
pub struct FrozenSynopsis {
    /// The four CSR arrays, owned or borrowed from a shared v2 buffer.
    pub(crate) store: Storage,
    pub(crate) mode: CountMode,
    pub(crate) privacy: PrivacyParams,
    pub(crate) alpha_counts: f64,
    pub(crate) alpha_absent: f64,
    pub(crate) n_docs: usize,
    pub(crate) max_len: usize,
    /// Wire dialect [`Self::to_bytes`] emits (see [`SnapshotCodec`]).
    pub(crate) codec: SnapshotCodec,
    /// Degree-adaptive branchless edge index (SWAR blocks / direct
    /// tables, see `fastpath`). Derived data: rebuilt identically by
    /// [`Self::freeze`] and [`Self::from_bytes`], never serialized — the
    /// wire format is byte-identical to a synopsis without it.
    pub(crate) fast: FastPath,
}

/// Equality is *logical*: same metadata and same array contents. Storage
/// representation (owned vs borrowed) and the preferred wire dialect are
/// serving details — a borrowed v2 decode of a snapshot equals its owned
/// v1 decode. (`fast` is derived deterministically from the arrays, so it
/// cannot differ when the arrays agree.)
impl PartialEq for FrozenSynopsis {
    fn eq(&self, other: &Self) -> bool {
        self.mode == other.mode
            && self.privacy == other.privacy
            && self.alpha_counts == other.alpha_counts
            && self.alpha_absent == other.alpha_absent
            && self.n_docs == other.n_docs
            && self.max_len == other.max_len
            && storage_logical_eq(&self.store, &other.store)
    }
}

impl FrozenSynopsis {
    /// Flattens a built structure into the frozen serving layout.
    /// One pass of `O(nodes)` work; the input is unchanged (post-processing).
    pub fn freeze(structure: &PrivateCountStructure) -> Self {
        let trie = structure.trie();
        let n = trie.len();
        // Breadth-first order: children (already label-sorted in the arena)
        // receive contiguous frozen ids, so target ranges are contiguous too.
        let mut order: Vec<u32> = Vec::with_capacity(n);
        order.push(Trie::<f64>::ROOT);
        let mut head = 0usize;
        while head < order.len() {
            let u = order[head];
            head += 1;
            order.extend(trie.children(u));
        }
        debug_assert_eq!(order.len(), n);
        let mut frozen_of = vec![0u32; n];
        for (fid, &tid) in order.iter().enumerate() {
            frozen_of[tid as usize] = fid as u32;
        }
        let mut counts = Vec::with_capacity(n);
        let mut edge_start = Vec::with_capacity(n + 1);
        let mut edge_label = Vec::with_capacity(n.saturating_sub(1));
        let mut edge_target = Vec::with_capacity(n.saturating_sub(1));
        edge_start.push(0);
        for &tid in &order {
            counts.push(*trie.value(tid));
            for &(sym, c) in trie.edges(tid) {
                edge_label.push(sym);
                edge_target.push(frozen_of[c as usize]);
            }
            edge_start.push(edge_label.len() as u32);
        }
        let (n_docs, max_len) = structure.db_params();
        let store = Storage::Owned { counts, edge_start, edge_label, edge_target };
        let fast = store.build_fastpath();
        Self {
            store,
            fast,
            mode: structure.mode(),
            privacy: structure.privacy(),
            alpha_counts: structure.alpha_counts(),
            alpha_absent: structure.alpha_absent(),
            n_docs,
            max_len,
            codec: SnapshotCodec::V1,
        }
    }

    /// The frozen node spelling `pattern`, if present — the branchless
    /// tiered walk (`fastpath`): one SWAR block probe or direct-table
    /// load per pattern byte.
    #[inline]
    fn locate(&self, pattern: &[u8]) -> Option<u32> {
        let mut cur = 0u32;
        for &b in pattern {
            cur = self.fast.step(cur, b)?;
        }
        Some(cur)
    }

    /// Reference walk: per-byte binary search over the CSR label ranges.
    /// Kept (not dead code) as the differential-testing oracle for the
    /// fast path and as the baseline the serving benchmarks compare
    /// against; answers are bit-identical to [`Self::locate`].
    #[inline]
    fn locate_naive(&self, pattern: &[u8]) -> Option<u32> {
        let mut cur = 0u32;
        for &b in pattern {
            let lo = self.store.edge_start_at(cur as usize);
            let hi = self.store.edge_start_at(cur as usize + 1);
            let i = self.store.edge_labels(lo, hi).binary_search(&b).ok()?;
            cur = self.store.edge_target_at(lo + i);
        }
        Some(cur)
    }

    /// Walks four patterns in lockstep, one byte per pattern per
    /// iteration: the four child-step loads are independent, so the CPU
    /// overlaps their latencies instead of serializing one walk at a
    /// time. A finished pattern (exhausted or missed) keeps its state.
    #[inline]
    fn locate4(&self, pats: [&[u8]; 4]) -> [Option<u32>; 4] {
        let mut cur = [Some(0u32); 4];
        let max_len = pats.iter().map(|p| p.len()).max().unwrap_or(0);
        for d in 0..max_len {
            for i in 0..4 {
                if let Some(c) = cur[i] {
                    if let Some(&b) = pats[i].get(d) {
                        cur[i] = self.fast.step(c, b);
                    }
                }
            }
        }
        cur
    }

    #[inline]
    fn count_of(&self, node: Option<u32>) -> f64 {
        match node {
            Some(v) => self.store.count(v as usize),
            None => 0.0,
        }
    }

    /// Noisy `count_Δ(P, D)`; absent patterns return 0, exactly as
    /// [`PrivateCountStructure::query`]. Allocation-free; one branchless
    /// edge probe per pattern byte (`O(|P|)` for fanout ≤ 8 and ≥ 32,
    /// `O(|P| · ⌈σ/8⌉)` worst case in between).
    #[inline]
    pub fn query(&self, pattern: &[u8]) -> f64 {
        self.count_of(self.locate(pattern))
    }

    /// [`Self::query`] through the reference binary-search walk — the
    /// pre-acceleration `O(|P| log σ)` path. Exists so tests, benchmarks
    /// and the serving load generator can assert, at runtime, that the
    /// fast path is behaviorally invisible (bit-identical answers).
    #[inline]
    pub fn query_naive(&self, pattern: &[u8]) -> f64 {
        self.count_of(self.locate_naive(pattern))
    }

    /// Whether the pattern is represented in the synopsis.
    #[inline]
    pub fn contains(&self, pattern: &[u8]) -> bool {
        self.locate(pattern).is_some()
    }

    /// [`Self::contains`] through the reference binary-search walk.
    #[inline]
    pub fn contains_naive(&self, pattern: &[u8]) -> bool {
        self.locate_naive(pattern).is_some()
    }

    /// The lockstep batch kernel: answers `patterns` into `out`
    /// (equal lengths), four patterns per iteration.
    fn query_batch_into(&self, patterns: &[&[u8]], out: &mut [f64]) {
        debug_assert_eq!(patterns.len(), out.len());
        let mut quads = patterns.chunks_exact(4);
        let mut outs = out.chunks_exact_mut(4);
        for (quad, o) in quads.by_ref().zip(outs.by_ref()) {
            let located = self.locate4([quad[0], quad[1], quad[2], quad[3]]);
            for (slot, node) in o.iter_mut().zip(located) {
                *slot = self.count_of(node);
            }
        }
        for (p, slot) in quads.remainder().iter().zip(outs.into_remainder()) {
            *slot = self.query(p);
        }
    }

    /// Answers a batch of queries in order. One output allocation; the
    /// per-pattern lookups are allocation-free and advance four patterns
    /// per iteration ([`Self::locate4`]) to hide load latency.
    pub fn query_batch(&self, patterns: &[&[u8]]) -> Vec<f64> {
        let mut out = vec![0.0f64; patterns.len()];
        self.query_batch_into(patterns, &mut out);
        out
    }

    /// Answers a batch of queries across `threads` scoped worker threads
    /// (clamped to the batch size; `0` means one thread). Same output as
    /// [`Self::query_batch`] — the synopsis is immutable, so workers share
    /// it by reference. A single-threaded call (or a batch that fits one
    /// chunk) takes a direct sequential path: no scope, no spawn.
    pub fn query_batch_parallel(&self, patterns: &[&[u8]], threads: usize) -> Vec<f64> {
        if patterns.is_empty() {
            return Vec::new();
        }
        let threads = threads.clamp(1, patterns.len());
        let chunk = patterns.len().div_ceil(threads);
        if threads == 1 || chunk >= patterns.len() {
            return self.query_batch(patterns);
        }
        let mut out = vec![0.0f64; patterns.len()];
        std::thread::scope(|scope| {
            for (pats, outs) in patterns.chunks(chunk).zip(out.chunks_mut(chunk)) {
                scope.spawn(move || self.query_batch_into(pats, outs));
            }
        });
        out
    }

    /// The count mode (`Δ`).
    #[inline]
    pub fn mode(&self) -> CountMode {
        self.mode
    }

    /// The privacy guarantee of the construction that produced this synopsis.
    #[inline]
    pub fn privacy(&self) -> PrivacyParams {
        self.privacy
    }

    /// Error bound on stored noisy counts (high probability).
    #[inline]
    pub fn alpha_counts(&self) -> f64 {
        self.alpha_counts
    }

    /// True-count bound for strings not present in the synopsis.
    #[inline]
    pub fn alpha_absent(&self) -> f64 {
        self.alpha_absent
    }

    /// Overall additive error `α` (present or absent patterns).
    pub fn alpha(&self) -> f64 {
        self.alpha_counts.max(self.alpha_absent)
    }

    /// Number of nodes, root included.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.store.n_nodes()
    }

    /// Database size parameters `(n, ℓ)` the synopsis was built from.
    pub fn db_params(&self) -> (usize, usize) {
        (self.n_docs, self.max_len)
    }

    /// Wire dialect [`Self::to_bytes`] will emit for this value.
    #[inline]
    pub fn codec(&self) -> SnapshotCodec {
        self.codec
    }

    /// Whether the CSR arrays alias a shared input buffer (zero-copy v2
    /// decode via [`Self::from_bytes_shared`]) rather than owned `Vec`s.
    #[inline]
    pub fn is_borrowed(&self) -> bool {
        self.store.is_borrowed()
    }

    /// Size of the serialized form in bytes, in the dialect
    /// [`Self::to_bytes`] would emit: derived from the actual array
    /// lengths (v1) or a size-only encoding pass (v2), so a layout change
    /// cannot silently desync it from [`Self::to_bytes`].
    pub fn serialized_len(&self) -> usize {
        match self.codec {
            SnapshotCodec::V1 => self.serialized_len_v1(),
            SnapshotCodec::V2 { compressed } => codec_v2::encoded_len(self, compressed),
        }
    }

    fn serialized_len_v1(&self) -> usize {
        use std::mem::size_of;
        let n = self.store.n_nodes();
        let e = self.store.n_edges();
        HEADER_LEN
            + size_of::<f64>() * n
            + size_of::<u32>() * (n + 1)
            + size_of::<u8>() * e
            + size_of::<u32>() * e
            + size_of::<u64>() // trailing FNV-1a checksum
    }

    /// Bytes of in-memory acceleration data (`fastpath` blocks and
    /// tables) carried on top of the serialized arrays. Never shipped:
    /// rebuilt locally on decode.
    pub fn accel_memory_bytes(&self) -> usize {
        self.fast.memory_bytes()
    }

    /// Serializes to the dialect recorded in [`Self::codec`] — v1 unless
    /// this value was decoded from (or explicitly encoded to) v2. Both
    /// dialects are canonical: `from_bytes(b)?.to_bytes() == b`.
    pub fn to_bytes(&self) -> Vec<u8> {
        match self.codec {
            SnapshotCodec::V1 => self.to_bytes_v1(),
            SnapshotCodec::V2 { compressed } => codec_v2::encode(self, compressed),
        }
    }

    /// Serializes to the sectioned v2 format regardless of
    /// [`Self::codec`]. With `compressed` the edge arrays use delta/gap
    /// varints (smaller, decodes owned); without, sections are raw
    /// little-endian arrays eligible for zero-copy borrowed decode via
    /// [`Self::from_bytes_shared`].
    pub fn to_bytes_v2(&self, compressed: bool) -> Vec<u8> {
        codec_v2::encode(self, compressed)
    }

    /// Serializes to the original v1 binary format.
    ///
    /// Layout (all integers little-endian, floats as IEEE-754 bit patterns
    /// so counts round-trip exactly): a fixed header — magic `DPSF`,
    /// version, mode tag + clip level, `ε`, `δ`, `α_counts`, `α_absent`,
    /// `n`, `ℓ`, node count, edge count — then the four arrays (`counts`,
    /// `edge_start`, `edge_label`, `edge_target`) and a trailing FNV-1a
    /// checksum of everything before it.
    pub fn to_bytes_v1(&self) -> Vec<u8> {
        let n = self.store.n_nodes();
        let e = self.store.n_edges();
        let mut out = Vec::with_capacity(self.serialized_len_v1());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        let (tag, clip) = mode_wire(self.mode);
        out.push(tag);
        out.extend_from_slice(&clip.to_le_bytes());
        out.extend_from_slice(&self.privacy.epsilon.to_bits().to_le_bytes());
        out.extend_from_slice(&self.privacy.delta.to_bits().to_le_bytes());
        out.extend_from_slice(&self.alpha_counts.to_bits().to_le_bytes());
        out.extend_from_slice(&self.alpha_absent.to_bits().to_le_bytes());
        out.extend_from_slice(&(self.n_docs as u64).to_le_bytes());
        out.extend_from_slice(&(self.max_len as u64).to_le_bytes());
        out.extend_from_slice(&(n as u64).to_le_bytes());
        out.extend_from_slice(&(e as u64).to_le_bytes());
        for v in 0..n {
            out.extend_from_slice(&self.store.count(v).to_bits().to_le_bytes());
        }
        for i in 0..=n {
            out.extend_from_slice(&(self.store.edge_start_at(i) as u32).to_le_bytes());
        }
        out.extend_from_slice(self.store.edge_labels(0, e));
        for i in 0..e {
            out.extend_from_slice(&self.store.edge_target_at(i).to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses a synopsis previously written by [`Self::to_bytes`],
    /// dispatching on the version field: v1 and v2 (either dialect) both
    /// decode into fully owned storage.
    ///
    /// Decoding is defensive: every read is length-checked, declared array
    /// sizes are validated against the actual input length *before* any
    /// allocation, the checksums must match, and the decoded CSR
    /// arrays must describe a well-formed tree (monotone offsets, sorted
    /// labels, every non-root node exactly one incoming edge, every node
    /// reachable from the root) carrying only finite counts. Truncated,
    /// version-mismatched or corrupted inputs return `Err`, never panic,
    /// and accepted encodings are canonical:
    /// `from_bytes(b)?.to_bytes() == b`.
    ///
    /// # Errors
    /// A [`DecodeError`] describing the first defect found.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        match Self::peek_version(bytes)? {
            VERSION => Self::decode_v1(bytes),
            codec_v2::VERSION => codec_v2::decode_owned(bytes),
            found => Err(DecodeError::UnsupportedVersion { found, expected: codec_v2::VERSION }),
        }
    }

    /// Like [`Self::from_bytes`], but hands the decoder shared ownership
    /// of the input. An uncompressed v2 snapshot decodes *borrowed*: the
    /// arrays point into `buf` with zero per-array copies, and the buffer
    /// stays alive for as long as the synopsis does. Compressed v2 and v1
    /// inputs fall back to an owned decode. Validation is identical to
    /// [`Self::from_bytes`] in every case.
    pub fn from_bytes_shared(buf: Arc<[u8]>) -> Result<Self, DecodeError> {
        match Self::peek_version(&buf)? {
            codec_v2::VERSION => codec_v2::decode_shared(&buf),
            _ => Self::from_bytes(&buf),
        }
    }

    /// Reads magic + version without committing to a dialect.
    fn peek_version(bytes: &[u8]) -> Result<u16, DecodeError> {
        let mut cur = Cursor::new(bytes);
        let magic: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
        if magic != MAGIC {
            return Err(DecodeError::BadMagic { found: magic, expected: MAGIC });
        }
        cur.u16()
    }

    fn decode_v1(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut cur = Cursor::new(bytes);
        let magic: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
        debug_assert_eq!(magic, MAGIC, "dispatch checked the magic");
        let version = cur.u16()?;
        debug_assert_eq!(version, VERSION, "dispatch checked the version");
        let tag = cur.u8()?;
        let clip = cur.u64()?;
        let mode = mode_from_wire(tag, clip)?;
        let epsilon = cur.f64()?;
        let delta = cur.f64()?;
        check_privacy_fields(epsilon, delta)?;
        let alpha_counts = cur.f64()?;
        let alpha_absent = cur.f64()?;
        require_finite("alpha_counts", alpha_counts)?;
        require_finite("alpha_absent", alpha_absent)?;
        let n_docs = cur.usize64()?;
        let max_len = cur.usize64()?;
        let n_nodes = cur.usize64()?;
        let n_edges = cur.usize64()?;
        check_tree_shape(n_nodes, n_edges)?;
        // Validate the declared payload against the real input length before
        // allocating anything: a corrupt size field must not OOM us (and the
        // arithmetic itself must not overflow on adversarial sizes).
        let payload = n_nodes
            .checked_mul(8)
            .and_then(|a| n_nodes.checked_add(1)?.checked_mul(4)?.checked_add(a))
            .and_then(|a| n_edges.checked_mul(5)?.checked_add(a))
            .and_then(|a| a.checked_add(8))
            .ok_or(DecodeError::SizeOverflow)?;
        let remaining = cur.remaining();
        if remaining < payload {
            return Err(DecodeError::Truncated {
                offset: cur.pos(),
                need: payload,
                have: remaining,
            });
        }
        if remaining > payload {
            return Err(DecodeError::TrailingGarbage { extra: remaining - payload });
        }
        let declared =
            u64::from_le_bytes(bytes[bytes.len() - 8..].try_into().expect("8-byte checksum slice"));
        let actual = fnv1a(&bytes[..bytes.len() - 8]);
        if declared != actual {
            return Err(DecodeError::ChecksumMismatch { stored: declared, computed: actual });
        }
        let counts: Vec<f64> =
            cur.take(8 * n_nodes)?.chunks_exact(8).map(|c| le_f64(c, 0)).collect();
        let edge_start: Vec<u32> =
            cur.take(4 * (n_nodes + 1))?.chunks_exact(4).map(|c| le_u32(c, 0)).collect();
        let edge_label: Vec<u8> = cur.take(n_edges)?.to_vec();
        let edge_target: Vec<u32> =
            cur.take(4 * n_edges)?.chunks_exact(4).map(|c| le_u32(c, 0)).collect();

        let store = Storage::Owned { counts, edge_start, edge_label, edge_target };
        store.validate()?;
        let privacy = privacy_from_wire(epsilon, delta);
        // The arrays passed every structural check above, which is all
        // the acceleration layout assumes.
        let fast = store.build_fastpath();
        Ok(Self {
            store,
            fast,
            mode,
            privacy,
            alpha_counts,
            alpha_absent,
            n_docs,
            max_len,
            codec: SnapshotCodec::V1,
        })
    }
}

/// Wire encoding of a [`CountMode`]: `(tag, clip level)`.
pub(crate) fn mode_wire(mode: CountMode) -> (u8, u64) {
    match mode {
        CountMode::Document => (0, 0),
        CountMode::Substring => (1, 0),
        CountMode::Clipped(d) => (2, d as u64),
    }
}

/// Decodes and canonicality-checks a mode tag + clip level pair.
pub(crate) fn mode_from_wire(tag: u8, clip: u64) -> Result<CountMode, DecodeError> {
    match tag {
        // Canonicality: the clip field carries information only for
        // tag 2; any other encoding must use zero so that equal
        // synopses have exactly one byte representation.
        0 | 1 if clip != 0 => Err(DecodeError::BadField {
            field: "clip level",
            detail: format!("nonzero clip level {clip} with mode tag {tag}"),
        }),
        0 => Ok(CountMode::Document),
        1 => Ok(CountMode::Substring),
        2 => {
            let d = usize::try_from(clip).map_err(|_| DecodeError::SizeOverflow)?;
            Ok(CountMode::Clipped(d))
        }
        other => {
            Err(DecodeError::BadField { field: "mode tag", detail: format!("unknown tag {other}") })
        }
    }
}

/// Domain checks for the decoded privacy parameters, shared by v1 and v2.
pub(crate) fn check_privacy_fields(epsilon: f64, delta: f64) -> Result<(), DecodeError> {
    if !(epsilon.is_finite() && epsilon > 0.0) {
        return Err(DecodeError::BadField { field: "epsilon", detail: epsilon.to_string() });
    }
    // `-0.0` would satisfy a plain range check but re-serialize as
    // `+0.0` (PrivacyParams::pure normalizes it), breaking
    // canonicality — reject the sign bit explicitly.
    if delta.is_sign_negative() || !((0.0..1.0).contains(&delta)) {
        return Err(DecodeError::BadField { field: "delta", detail: delta.to_string() });
    }
    Ok(())
}

/// Rebuilds [`PrivacyParams`] from validated wire floats.
pub(crate) fn privacy_from_wire(epsilon: f64, delta: f64) -> PrivacyParams {
    if delta == 0.0 {
        PrivacyParams::pure(epsilon)
    } else {
        PrivacyParams::approx(epsilon, delta)
    }
}

/// Node/edge count sanity shared by v1 and v2 headers.
pub(crate) fn check_tree_shape(n_nodes: usize, n_edges: usize) -> Result<(), DecodeError> {
    if n_nodes == 0 {
        return Err(DecodeError::BadField {
            field: "node count",
            detail: "zero (the root is mandatory)".to_string(),
        });
    }
    if n_edges != n_nodes - 1 {
        return Err(DecodeError::BadField {
            field: "edge count",
            detail: format!("{n_edges} != node count {n_nodes} - 1"),
        });
    }
    Ok(())
}

impl PrivateCountStructure {
    /// Freezes this structure into the flat serving layout
    /// ([`FrozenSynopsis`]). Post-processing: no privacy cost.
    pub fn freeze(&self) -> FrozenSynopsis {
        FrozenSynopsis::freeze(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy_structure() -> PrivateCountStructure {
        let mut trie: Trie<f64> = Trie::new(20.0);
        let a = trie.insert_path(b"a", |_| 0.0);
        let ab = trie.insert_path(b"ab", |_| 0.0);
        let ac = trie.insert_path(b"ac", |_| 0.0);
        let b = trie.insert_path(b"b", |_| 0.0);
        *trie.value_mut(a) = 8.25;
        *trie.value_mut(ab) = 4.125;
        *trie.value_mut(ac) = 3.5;
        *trie.value_mut(b) = 6.0;
        PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.5,
            2.5,
            6,
            5,
        )
    }

    #[test]
    fn freeze_preserves_queries_and_metadata() {
        let s = toy_structure();
        let f = s.freeze();
        for pat in [&b""[..], b"a", b"ab", b"ac", b"b", b"ba", b"abc", b"zz"] {
            assert_eq!(f.query(pat).to_bits(), s.query(pat).to_bits(), "pattern {pat:?}");
            assert_eq!(f.contains(pat), s.contains(pat), "pattern {pat:?}");
        }
        assert_eq!(f.node_count(), s.node_count());
        assert_eq!(f.mode(), s.mode());
        assert_eq!(f.privacy(), s.privacy());
        assert_eq!(f.alpha_counts(), s.alpha_counts());
        assert_eq!(f.alpha_absent(), s.alpha_absent());
        assert_eq!(f.alpha(), s.alpha());
        assert_eq!(f.db_params(), s.db_params());
        assert_eq!(f.codec(), SnapshotCodec::V1);
        assert!(!f.is_borrowed());
    }

    #[test]
    fn batch_paths_agree_with_single_queries() {
        let s = toy_structure();
        let f = s.freeze();
        let patterns: Vec<&[u8]> = vec![b"", b"a", b"ab", b"ac", b"b", b"zz", b"abc"];
        let single: Vec<f64> = patterns.iter().map(|p| f.query(p)).collect();
        assert_eq!(f.query_batch(&patterns), single);
        for threads in [0usize, 1, 2, 7, 64] {
            assert_eq!(f.query_batch_parallel(&patterns, threads), single, "threads={threads}");
        }
        assert!(f.query_batch_parallel(&[], 4).is_empty());
    }

    #[test]
    fn binary_roundtrip_is_exact() {
        let s = toy_structure();
        let f = s.freeze();
        let bytes = f.to_bytes();
        assert_eq!(bytes.len(), f.serialized_len());
        let back = FrozenSynopsis::from_bytes(&bytes).expect("roundtrip parses");
        assert_eq!(back, f);
    }

    #[test]
    fn v2_roundtrips_in_both_dialects() {
        let f = toy_structure().freeze();
        for compressed in [false, true] {
            let bytes = f.to_bytes_v2(compressed);
            let back = FrozenSynopsis::from_bytes(&bytes).expect("v2 parses");
            assert_eq!(back, f, "compressed={compressed}");
            assert_eq!(back.codec(), SnapshotCodec::V2 { compressed });
            assert!(!back.is_borrowed(), "from_bytes decodes owned");
            // Canonical: re-serializing in the dialect it arrived in
            // reproduces the input bytes, and serialized_len agrees.
            assert_eq!(back.to_bytes(), bytes, "compressed={compressed}");
            assert_eq!(back.serialized_len(), bytes.len(), "compressed={compressed}");
        }
    }

    #[test]
    fn v2_borrowed_decode_answers_identically() {
        let f = toy_structure().freeze();
        let shared: Arc<[u8]> = f.to_bytes_v2(false).into();
        let borrowed = FrozenSynopsis::from_bytes_shared(Arc::clone(&shared)).expect("parses");
        assert!(borrowed.is_borrowed(), "uncompressed v2 must borrow");
        assert_eq!(borrowed, f);
        for pat in [&b""[..], b"a", b"ab", b"ac", b"b", b"ba", b"abc", b"zz"] {
            assert_eq!(borrowed.query(pat).to_bits(), f.query(pat).to_bits(), "pattern {pat:?}");
            assert_eq!(
                borrowed.query_naive(pat).to_bits(),
                f.query_naive(pat).to_bits(),
                "pattern {pat:?}"
            );
        }
        // Borrowed re-encodes canonically too.
        assert_eq!(borrowed.to_bytes(), &shared[..]);
        // Compressed and v1 inputs fall back to owned decodes.
        let compressed: Arc<[u8]> = f.to_bytes_v2(true).into();
        assert!(!FrozenSynopsis::from_bytes_shared(compressed).expect("parses").is_borrowed());
        let v1: Arc<[u8]> = f.to_bytes().into();
        assert!(!FrozenSynopsis::from_bytes_shared(v1).expect("parses").is_borrowed());
    }

    #[test]
    fn v2_compressed_is_smaller_than_v1_and_uncompressed() {
        // The 192-byte sectioned header only amortizes on realistic
        // sizes, so build a few hundred nodes (all strings of length ≤ 3
        // over a 6-letter alphabet) rather than the 5-node toy.
        let mut trie: Trie<f64> = Trie::new(100.0);
        let sigma = b"abcdef";
        for (i, &a) in sigma.iter().enumerate() {
            for (j, &b) in sigma.iter().enumerate() {
                for (k, &c) in sigma.iter().enumerate() {
                    let id = trie.insert_path(&[a, b, c], |_| 0.0);
                    *trie.value_mut(id) = (i * 36 + j * 6 + k) as f64;
                }
            }
        }
        let f = PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.5,
            2.5,
            50,
            8,
        )
        .freeze();
        let v1 = f.to_bytes().len();
        let v2 = f.to_bytes_v2(false).len();
        let v2c = f.to_bytes_v2(true).len();
        assert!(v2c < v1, "compressed v2 ({v2c}) must undercut v1 ({v1})");
        assert!(v2c < v2, "compressed v2 ({v2c}) must undercut uncompressed v2 ({v2})");
        // And the compressed dialect still roundtrips bit-exactly.
        let back = FrozenSynopsis::from_bytes(&f.to_bytes_v2(true)).expect("parses");
        assert_eq!(back, f);
    }

    #[test]
    fn root_only_synopsis_works() {
        let trie: Trie<f64> = Trie::new(7.5);
        let s = PrivateCountStructure::new(
            trie,
            CountMode::Document,
            PrivacyParams::approx(0.5, 1e-8),
            1.0,
            2.0,
            3,
            4,
        );
        let f = s.freeze();
        assert_eq!(f.node_count(), 1);
        assert_eq!(f.query(b""), 7.5);
        assert_eq!(f.query(b"a"), 0.0);
        let back = FrozenSynopsis::from_bytes(&f.to_bytes()).expect("parses");
        assert_eq!(back, f);
        for compressed in [false, true] {
            let bytes = f.to_bytes_v2(compressed);
            let back = FrozenSynopsis::from_bytes(&bytes).expect("v2 parses");
            assert_eq!(back, f);
            assert_eq!(back.to_bytes(), bytes);
        }
    }

    #[test]
    fn every_truncation_is_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        for len in 0..bytes.len() {
            assert!(
                FrozenSynopsis::from_bytes(&bytes[..len]).is_err(),
                "prefix of length {len} must not parse"
            );
        }
        // Trailing garbage is rejected too.
        let mut extended = bytes.clone();
        extended.push(0);
        assert!(FrozenSynopsis::from_bytes(&extended).is_err());
    }

    #[test]
    fn version_and_magic_mismatches_are_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(FrozenSynopsis::from_bytes(&wrong_magic)
            .unwrap_err()
            .to_string()
            .contains("magic"));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(FrozenSynopsis::from_bytes(&wrong_version)
            .unwrap_err()
            .to_string()
            .contains("version"));
    }

    /// Overwrites `bytes[at..]` with `patch` and re-stamps the trailing v1
    /// checksum, simulating an adversary who keeps the frame valid.
    fn patch_and_restamp(bytes: &[u8], at: usize, patch: &[u8]) -> Vec<u8> {
        let mut out = bytes.to_vec();
        out[at..at + patch.len()].copy_from_slice(patch);
        let body = out.len() - 8;
        let sum = fnv1a(&out[..body]);
        out[body..].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn nonzero_clip_with_non_clipped_tag_is_rejected() {
        // toy_structure is Substring (tag 1, clip field 0); setting the
        // clip field with a fixed checksum must fail canonicality.
        let bytes = toy_structure().freeze().to_bytes();
        let clip_offset = 4 + 2 + 1; // magic + version + tag
        let forged = patch_and_restamp(&bytes, clip_offset, &5u64.to_le_bytes());
        let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("clip"), "unexpected error: {err}");
        // The same patch on a Clipped-mode synopsis is meaningful and fine.
        let mut trie: Trie<f64> = Trie::new(1.0);
        trie.insert_path(b"x", |_| 0.5);
        let clipped = PrivateCountStructure::new(
            trie,
            CountMode::Clipped(7),
            PrivacyParams::pure(1.0),
            1.0,
            2.0,
            3,
            4,
        )
        .freeze();
        let reclipped = patch_and_restamp(&clipped.to_bytes(), clip_offset, &5u64.to_le_bytes());
        let parsed = FrozenSynopsis::from_bytes(&reclipped).expect("valid clipped encoding");
        assert_eq!(parsed.mode(), CountMode::Clipped(5));
        assert_eq!(parsed.to_bytes(), reclipped, "canonical re-serialization");
    }

    #[test]
    fn negative_zero_delta_is_rejected() {
        // toy_structure is pure DP (δ = +0.0); flipping δ's sign bit with
        // a restamped checksum must fail rather than decode to a synopsis
        // that re-serializes differently.
        let bytes = toy_structure().freeze().to_bytes();
        let delta_offset = 4 + 2 + 1 + 8 + 8; // magic + version + tag + clip + ε
        let forged = patch_and_restamp(&bytes, delta_offset, &(-0.0f64).to_bits().to_le_bytes());
        let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("delta"), "unexpected error: {err}");
    }

    #[test]
    fn non_finite_counts_are_rejected() {
        // A NaN count would break `PartialEq` (roundtrip tests go vacuous)
        // and poison every aggregate served from the synopsis; forge one
        // into the counts array with a restamped checksum.
        let bytes = toy_structure().freeze().to_bytes();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let forged = patch_and_restamp(&bytes, HEADER_LEN, &bad.to_bits().to_le_bytes());
            let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
            assert!(err.to_string().contains("counts"), "unexpected error: {err}");
        }
    }

    #[test]
    fn non_finite_alphas_are_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        let alpha_counts_offset = 4 + 2 + 1 + 8 + 8 + 8; // …+ clip + ε + δ
        let alpha_absent_offset = alpha_counts_offset + 8;
        for (offset, field) in
            [(alpha_counts_offset, "alpha_counts"), (alpha_absent_offset, "alpha_absent")]
        {
            for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
                let forged = patch_and_restamp(&bytes, offset, &bad.to_bits().to_le_bytes());
                let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
                assert!(err.to_string().contains(field), "unexpected error: {err}");
            }
        }
    }

    #[test]
    fn forged_oversized_edge_start_is_an_error_not_a_panic() {
        // An edge_start entry far past the edge arrays, with a restamped
        // checksum, must be caught by the range-first structural check —
        // historically this could index out of bounds during validation.
        let f = toy_structure().freeze();
        let n = f.node_count();
        let bytes = f.to_bytes();
        let es1_offset = HEADER_LEN + 8 * n + 4; // counts, then edge_start[1]
        let forged = patch_and_restamp(&bytes, es1_offset, &u32::MAX.to_le_bytes());
        let err = FrozenSynopsis::from_bytes(&forged).unwrap_err();
        assert!(err.to_string().contains("CSR"), "unexpected error: {err}");
    }

    #[test]
    fn disconnected_cycle_is_rejected() {
        // Hand-build the arrays for: childless root, plus nodes 1 ⇄ 2
        // forming a cycle. Every non-root node has in-degree exactly one
        // and edges = nodes − 1, so only the BFS-order edge check (which
        // is what makes every node reachable from the root) can catch it:
        // the cycle necessarily contains a backward edge (2 → 1).
        let good = toy_structure().freeze();
        let cyclic = FrozenSynopsis {
            store: Storage::Owned {
                counts: vec![1.0, 2.0, 3.0],
                edge_start: vec![0, 0, 1, 2],
                edge_label: vec![b'a', b'a'],
                edge_target: vec![2, 1],
            },
            ..good
        };
        let err = FrozenSynopsis::from_bytes(&cyclic.to_bytes()).unwrap_err();
        assert!(err.to_string().contains("BFS"), "unexpected error: {err}");
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let bytes = toy_structure().freeze().to_bytes();
        for pos in 0..bytes.len() {
            for bit in 0..8 {
                let mut corrupt = bytes.clone();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    FrozenSynopsis::from_bytes(&corrupt).is_err(),
                    "bit {bit} of byte {pos} flipped silently"
                );
            }
        }
    }
}
