//! Build-phase span instrumentation: named wall-clock intervals recorded
//! during construction (candidate doubling, exact-count trie, noise,
//! prune) and surfaced by the bench harness in `BENCH_build.json`.
//!
//! The same span vocabulary is reused by the serving daemon's trace ring
//! (`dpsc-serve::trace`) so an operator sees one naming scheme across
//! build-side and serve-side timings. Spans carry **no corpus data** —
//! a phase name, offsets relative to the recorder's origin, and an item
//! count (candidates generated, nodes pruned, …). Recording is
//! `Mutex`-guarded because build phases are coarse (a handful of spans
//! per build, never per-pattern), so contention is irrelevant.

use std::sync::Mutex;
use std::time::Instant;

/// One timed construction phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSpan {
    /// Phase name (`"candidates"`, `"count_trie"`, `"noise"`, `"prune"`).
    pub name: &'static str,
    /// Start offset in nanoseconds relative to the recorder's origin.
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Phase-specific item count (0 when not meaningful): candidates
    /// emitted, trie nodes built, nodes noised, nodes surviving the
    /// prune, …
    pub items: u64,
}

/// Collects [`PhaseSpan`]s during a build. Cheap to share by reference;
/// phases are appended in completion order.
#[derive(Debug, Default)]
pub struct SpanRecorder {
    origin: Option<Instant>,
    spans: Mutex<Vec<PhaseSpan>>,
}

impl SpanRecorder {
    /// A fresh recorder; span offsets count from now.
    pub fn new() -> Self {
        Self { origin: Some(Instant::now()), spans: Mutex::new(Vec::new()) }
    }

    fn now_ns(&self) -> u64 {
        match self.origin {
            Some(o) => o.elapsed().as_nanos().min(u64::MAX as u128) as u64,
            None => 0,
        }
    }

    /// Times `f` and records the interval under `name` with `items = 0`.
    pub fn time<T>(&self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let (out, _) = self.time_items(name, || (f(), 0));
        out
    }

    /// Times `f`; the closure returns `(value, items)` so the span can
    /// carry a phase-specific size alongside its duration.
    pub fn time_items<T>(&self, name: &'static str, f: impl FnOnce() -> (T, u64)) -> (T, u64) {
        let start_ns = self.now_ns();
        let (out, items) = f();
        let dur_ns = self.now_ns().saturating_sub(start_ns);
        self.push(PhaseSpan { name, start_ns, dur_ns, items });
        (out, items)
    }

    /// Current offset from the recorder's origin — pair with [`close`]
    /// when a phase cannot be wrapped in a closure (e.g. it borrows the
    /// caller's RNG mutably across the interval).
    ///
    /// [`close`]: SpanRecorder::close
    pub fn mark(&self) -> u64 {
        self.now_ns()
    }

    /// Records a span opened by [`mark`](SpanRecorder::mark).
    pub fn close(&self, name: &'static str, started_ns: u64, items: u64) {
        let dur_ns = self.now_ns().saturating_sub(started_ns);
        self.push(PhaseSpan { name, start_ns: started_ns, dur_ns, items });
    }

    /// Appends a pre-measured span.
    pub fn push(&self, span: PhaseSpan) {
        self.spans.lock().expect("span mutex not poisoned").push(span);
    }

    /// All spans recorded so far, in completion order.
    pub fn spans(&self) -> Vec<PhaseSpan> {
        self.spans.lock().expect("span mutex not poisoned").clone()
    }

    /// Duration of the first span named `name`, if recorded.
    pub fn dur_ns(&self, name: &str) -> Option<u64> {
        self.spans
            .lock()
            .expect("span mutex not poisoned")
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.dur_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_named_phases_in_order() {
        let rec = SpanRecorder::new();
        let x = rec.time("candidates", || 41 + 1);
        assert_eq!(x, 42);
        let (y, items) = rec.time_items("prune", || ("kept", 7u64));
        assert_eq!((y, items), ("kept", 7));
        let spans = rec.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "candidates");
        assert_eq!(spans[0].items, 0);
        assert_eq!(spans[1].name, "prune");
        assert_eq!(spans[1].items, 7);
        assert!(spans[1].start_ns >= spans[0].start_ns + spans[0].dur_ns);
        assert_eq!(rec.dur_ns("prune"), Some(spans[1].dur_ns));
        assert_eq!(rec.dur_ns("noise"), None);
    }

    #[test]
    fn default_recorder_is_inert_but_usable() {
        let rec = SpanRecorder::default();
        rec.time("count_trie", || ());
        assert_eq!(rec.spans().len(), 1);
        assert_eq!(rec.spans()[0].start_ns, 0);
    }
}
