//! # dpsc-private-count — the paper's core contribution
//!
//! Differentially private data structures for substring and document
//! counting (Bernardini–Bille–Gørtz–Steiner, PODS 2025):
//!
//! * [`builder::build_pure`] — **Theorem 1**: ε-DP structure for `count_Δ`
//!   with additive error `Õ(ℓ/ε)`, built from a private candidate set
//!   ([`candidates`], Lemma 6), a heavy-path-decomposed trie, noisy root
//!   counts, and binary-tree-mechanism prefix sums ([`pipeline`]).
//! * [`builder::build_approx`] — **Theorem 2**: (ε,δ)-DP variant with error
//!   `Õ(√(ℓΔ)/ε)` via Gaussian noise and the Hölder L2 bound.
//! * [`qgram::build_qgram_pure`] — **Theorem 3**: simplified ε-DP pipeline
//!   for fixed-length q-grams.
//! * [`qgram_fast::build_qgram_fast`] — **Theorem 4**: near-linear-time
//!   (ε,δ)-DP q-gram counting using the zero-count-skipping trick
//!   (Lemma 19) over suffix-tree depth groups (Lemma 21).
//! * [`structure::PrivateCountStructure`] — the published artifact:
//!   `O(|P|)` queries, arbitrary-threshold frequent-pattern
//!   [`mining`](structure::PrivateCountStructure::mine) with **no further
//!   privacy loss** (post-processing).
//! * [`synopsis::FrozenSynopsis`] — the serving layer: the published trie
//!   flattened into an immutable CSR index with allocation-free lookups,
//!   batch/parallel query paths, and a checksummed binary codec.
//! * [`baseline::build_simple_trie`] — the `Ω(ℓ²)`-error prior-work
//!   baseline the paper improves on (\[10, 18, 19, 50, 51, 72\]).
//! * [`mining::evaluate_mining`] — Definition 2 contract auditing.
//!
//! ## Privacy model
//! Neighboring databases replace one whole document (user-level privacy for
//! one-document users). All noise calibration is against the *declared*
//! maximum document length `ℓ`. Only the construction touches the data;
//! everything answered from the structure afterwards is post-processing.

pub mod baseline;
pub mod builder;
pub mod candidates;
pub mod codec;
mod codec_v2;
mod fastpath;
pub mod mining;
pub mod pipeline;
pub mod qgram;
pub mod qgram_fast;
pub mod spans;
pub mod structure;
pub mod synopsis;

pub use baseline::{build_simple_trie, SimpleTrieParams};
pub use builder::{build_approx, build_pure, build_pure_traced, BuildError, BuildParams};
pub use candidates::{CandidateOverflow, CandidateParams, CandidateSet};
pub use codec::DecodeError;
pub use mining::{evaluate_mining, frequent_substrings, MiningEvaluation};
pub use qgram::{build_qgram_pure, QgramParams};
pub use qgram_fast::{build_qgram_fast, FastQgramParams, PhaseOverflow};
pub use spans::{PhaseSpan, SpanRecorder};
pub use structure::{CountMode, PrivateCountStructure};
pub use synopsis::{FrozenSynopsis, SnapshotCodec};
