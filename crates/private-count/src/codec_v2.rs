//! `DPSF` v2: the sectioned snapshot codec behind zero-copy serving.
//!
//! v1 packs the four CSR arrays back-to-back behind a fixed header and
//! one trailing checksum — compact, but decoding *must* copy every array
//! into fresh `Vec`s, and a corrupt byte is only ever reported as "the
//! payload". v2 restructures the same data for the serving path:
//!
//! ```text
//! off   size  field
//!   0      4  magic "DPSF"
//!   4      2  version = 2 (u16 LE)
//!   6      2  flags (bit 0 = compressed edge arrays; others reserved = 0)
//!   8      4  mode tag (u32 LE)
//!  12      4  section count = 4 (u32 LE)
//!  16      8  clip level (u64 LE)
//!  24     32  ε, δ, α_counts, α_absent (f64 bit patterns, LE)
//!  56     32  n_docs, ℓ, n_nodes, n_edges (u64 LE)
//!  88     96  section table: 4 × { offset u64, len u64, fnv1a u64 }
//! 184      8  header checksum = fnv1a(bytes[0..184])
//! 192      …  sections, fixed order counts / edge_start / edge_label /
//!             edge_target, each starting on an 8-byte boundary with
//!             zeroed padding between (padding is validated, so the
//!             encoding stays canonical)
//! ```
//!
//! **Borrowing.** Every section offset is a multiple of 8 and the
//! uncompressed sections are raw little-endian arrays, so after the
//! header, table and per-section checksums validate, the decoder can
//! point the synopsis arrays *into the input buffer* (`Arc<[u8]>`) and
//! skip the copies entirely — `Storage::Borrowed`. Reads go through
//! `from_le_bytes` on fixed-size ranges (safe code; compiles to a plain
//! load on little-endian targets), which is what keeps the workspace's
//! `unsafe_code = "deny"` intact: no `&[u8]` → `&[f64]` casts anywhere.
//!
//! **Compression** (flag bit 0): `edge_start` is stored as per-node
//! degrees (delta of the offsets) in LEB128 varints, and `edge_target`
//! as zigzag varints of consecutive gaps — BFS numbering makes targets
//! near-monotone, so gaps are small. Varints are required to be minimal
//! on decode (no redundant continuation bytes), keeping the dialect
//! canonical: `from_bytes(b)?.to_bytes() == b` for both dialects.
//! Compressed snapshots always decode into owned storage.

use std::sync::Arc;

use crate::codec::{fnv1a, le_f64, le_u32, require_finite, Cursor, DecodeError};
use crate::synopsis::{
    check_privacy_fields, check_tree_shape, mode_from_wire, mode_wire, privacy_from_wire,
    FrozenSynopsis, SnapshotCodec, Storage, MAGIC,
};

/// Version tag of the sectioned format.
pub(crate) const VERSION: u16 = 2;
/// Flag bit 0: edge arrays are varint-compressed.
const FLAG_COMPRESSED: u16 = 1;
/// The four sections, in their fixed on-wire order.
const SECTION_NAMES: [&str; 4] = ["counts", "edge_start", "edge_label", "edge_target"];
/// Bytes of fixed header fields before the section table.
const TABLE_OFF: usize = 88;
/// One section-table entry: offset, length, checksum.
const TABLE_ENTRY_LEN: usize = 24;
/// Offset of the header checksum (it covers everything before itself).
const HEADER_SUM_OFF: usize = TABLE_OFF + 4 * TABLE_ENTRY_LEN;
/// Total header size; the first section starts here (8-byte aligned).
pub(crate) const HEADER_LEN: usize = HEADER_SUM_OFF + 8;

/// Next multiple of 8 at or above `x`.
#[inline]
fn align8(x: usize) -> usize {
    (x + 7) & !7
}

/// Appends `v` as a minimal LEB128 varint.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Encoded size of `v` as a minimal LEB128 varint.
#[inline]
fn varint_len(v: u64) -> usize {
    ((64 - v.leading_zeros()).max(1) as usize).div_ceil(7)
}

/// Reads one minimal LEB128 varint from `buf` at `*pos`. Rejects
/// truncation, >64-bit values, and non-minimal encodings (a redundant
/// zero final byte) — minimality is what makes compressed snapshots
/// canonical.
fn read_varint(buf: &[u8], pos: &mut usize, field: &'static str) -> Result<u64, DecodeError> {
    let mut value = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf
            .get(*pos)
            .ok_or(DecodeError::BadField { field, detail: "varint truncated".to_string() })?;
        *pos += 1;
        let payload = (b & 0x7F) as u64;
        if shift == 63 && payload > 1 {
            return Err(DecodeError::BadField {
                field,
                detail: "varint overflows u64".to_string(),
            });
        }
        value |= payload << shift;
        if b & 0x80 == 0 {
            if shift > 0 && b == 0 {
                return Err(DecodeError::BadField {
                    field,
                    detail: "non-minimal varint (redundant zero final byte)".to_string(),
                });
            }
            return Ok(value);
        }
        shift += 7;
        if shift > 63 {
            return Err(DecodeError::BadField {
                field,
                detail: "varint longer than 10 bytes".to_string(),
            });
        }
    }
}

/// Maps a signed gap onto the unsigned varint domain (zigzag).
#[inline]
fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[inline]
fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Byte length of each section in the chosen dialect, in wire order.
fn section_lens(store: &Storage, compressed: bool) -> [usize; 4] {
    let n = store.n_nodes();
    let e = store.n_edges();
    let edge_start = if compressed {
        (0..n)
            .map(|v| varint_len((store.edge_start_at(v + 1) - store.edge_start_at(v)) as u64))
            .sum()
    } else {
        4 * (n + 1)
    };
    let edge_target = if compressed {
        let mut prev = 0i64;
        let mut total = 0usize;
        for i in 0..e {
            let t = store.edge_target_at(i) as i64;
            total += varint_len(zigzag(t - prev));
            prev = t;
        }
        total
    } else {
        4 * e
    };
    [8 * n, edge_start, e, edge_target]
}

/// Section offsets (first at [`HEADER_LEN`], each aligned to 8) and the
/// total encoded size (the last section's end, unpadded).
fn section_layout(lens: &[usize; 4]) -> ([usize; 4], usize) {
    let mut offsets = [0usize; 4];
    let mut off = HEADER_LEN;
    for (slot, len) in offsets.iter_mut().zip(lens) {
        *slot = off;
        off = align8(off + len);
    }
    (offsets, offsets[3] + lens[3])
}

/// Serialized size of `syn` in the v2 dialect — a size-only pass, no
/// encoding. Keeps `FrozenSynopsis::serialized_len` in sync with
/// [`encode`] by construction (both derive from [`section_lens`]).
pub(crate) fn encoded_len(syn: &FrozenSynopsis, compressed: bool) -> usize {
    section_layout(&section_lens(&syn.store, compressed)).1
}

/// Encodes `syn` into the v2 wire format.
pub(crate) fn encode(syn: &FrozenSynopsis, compressed: bool) -> Vec<u8> {
    let store = &syn.store;
    let n = store.n_nodes();
    let e = store.n_edges();
    let lens = section_lens(store, compressed);
    let (offsets, total) = section_layout(&lens);

    let mut counts = Vec::with_capacity(lens[0]);
    for v in 0..n {
        counts.extend_from_slice(&store.count(v).to_bits().to_le_bytes());
    }
    let mut edge_start = Vec::with_capacity(lens[1]);
    if compressed {
        for v in 0..n {
            let degree = store.edge_start_at(v + 1) - store.edge_start_at(v);
            write_varint(&mut edge_start, degree as u64);
        }
    } else {
        for i in 0..=n {
            edge_start.extend_from_slice(&(store.edge_start_at(i) as u32).to_le_bytes());
        }
    }
    let edge_label = store.edge_labels(0, e).to_vec();
    let mut edge_target = Vec::with_capacity(lens[3]);
    if compressed {
        let mut prev = 0i64;
        for i in 0..e {
            let t = store.edge_target_at(i) as i64;
            write_varint(&mut edge_target, zigzag(t - prev));
            prev = t;
        }
    } else {
        for i in 0..e {
            edge_target.extend_from_slice(&store.edge_target_at(i).to_le_bytes());
        }
    }
    let sections = [counts, edge_start, edge_label, edge_target];
    debug_assert!(sections.iter().map(Vec::len).eq(lens.iter().copied()));

    let mut out = Vec::with_capacity(total);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    let flags = if compressed { FLAG_COMPRESSED } else { 0 };
    out.extend_from_slice(&flags.to_le_bytes());
    let (tag, clip) = mode_wire(syn.mode);
    out.extend_from_slice(&(tag as u32).to_le_bytes());
    out.extend_from_slice(&(SECTION_NAMES.len() as u32).to_le_bytes());
    out.extend_from_slice(&clip.to_le_bytes());
    out.extend_from_slice(&syn.privacy.epsilon.to_bits().to_le_bytes());
    out.extend_from_slice(&syn.privacy.delta.to_bits().to_le_bytes());
    out.extend_from_slice(&syn.alpha_counts.to_bits().to_le_bytes());
    out.extend_from_slice(&syn.alpha_absent.to_bits().to_le_bytes());
    out.extend_from_slice(&(syn.n_docs as u64).to_le_bytes());
    out.extend_from_slice(&(syn.max_len as u64).to_le_bytes());
    out.extend_from_slice(&(n as u64).to_le_bytes());
    out.extend_from_slice(&(e as u64).to_le_bytes());
    debug_assert_eq!(out.len(), TABLE_OFF);
    for (offset, section) in offsets.iter().zip(&sections) {
        out.extend_from_slice(&(*offset as u64).to_le_bytes());
        out.extend_from_slice(&(section.len() as u64).to_le_bytes());
        out.extend_from_slice(&fnv1a(section).to_le_bytes());
    }
    debug_assert_eq!(out.len(), HEADER_SUM_OFF);
    let header_sum = fnv1a(&out);
    out.extend_from_slice(&header_sum.to_le_bytes());
    debug_assert_eq!(out.len(), HEADER_LEN);
    for (offset, section) in offsets.iter().zip(&sections) {
        out.resize(*offset, 0); // zeroed alignment padding
        out.extend_from_slice(section);
    }
    debug_assert_eq!(out.len(), total);
    out
}

/// Decodes v2 bytes into fully owned storage.
pub(crate) fn decode_owned(bytes: &[u8]) -> Result<FrozenSynopsis, DecodeError> {
    decode_impl(bytes, None)
}

/// Decodes v2 bytes with shared ownership of the buffer: uncompressed
/// snapshots borrow their arrays from `buf` (zero per-array copies);
/// compressed ones still decode owned.
pub(crate) fn decode_shared(buf: &Arc<[u8]>) -> Result<FrozenSynopsis, DecodeError> {
    decode_impl(buf, Some(buf))
}

fn decode_impl(bytes: &[u8], shared: Option<&Arc<[u8]>>) -> Result<FrozenSynopsis, DecodeError> {
    let mut cur = Cursor::new(bytes);
    let magic: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
    if magic != MAGIC {
        return Err(DecodeError::BadMagic { found: magic, expected: MAGIC });
    }
    let version = cur.u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version, expected: VERSION });
    }
    let flags = cur.u16()?;
    if flags & !FLAG_COMPRESSED != 0 {
        return Err(DecodeError::BadField {
            field: "flags",
            detail: format!("reserved flag bits set: {flags:#06x}"),
        });
    }
    let compressed = flags & FLAG_COMPRESSED != 0;
    let tag = cur.u32()?;
    let tag = u8::try_from(tag).map_err(|_| DecodeError::BadField {
        field: "mode tag",
        detail: format!("unknown tag {tag}"),
    })?;
    let section_count = cur.u32()?;
    if section_count as usize != SECTION_NAMES.len() {
        return Err(DecodeError::BadField {
            field: "section count",
            detail: format!("{section_count} != {}", SECTION_NAMES.len()),
        });
    }
    let clip = cur.u64()?;
    let mode = mode_from_wire(tag, clip)?;
    let epsilon = cur.f64()?;
    let delta = cur.f64()?;
    check_privacy_fields(epsilon, delta)?;
    let alpha_counts = cur.f64()?;
    let alpha_absent = cur.f64()?;
    require_finite("alpha_counts", alpha_counts)?;
    require_finite("alpha_absent", alpha_absent)?;
    let n_docs = cur.usize64()?;
    let max_len = cur.usize64()?;
    let n_nodes = cur.usize64()?;
    let n_edges = cur.usize64()?;
    check_tree_shape(n_nodes, n_edges)?;
    debug_assert_eq!(cur.pos(), TABLE_OFF);
    let mut sections = [(0usize, 0usize); 4];
    let mut section_sums = [0u64; 4];
    for i in 0..SECTION_NAMES.len() {
        let offset = cur.usize64()?;
        let len = cur.usize64()?;
        section_sums[i] = cur.u64()?;
        sections[i] = (offset, len);
    }
    // Authenticate the header (including the section table) before
    // trusting any offset in it.
    let stored = cur.u64()?;
    debug_assert_eq!(cur.pos(), HEADER_LEN);
    let computed = fnv1a(&bytes[..HEADER_SUM_OFF]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    // The layout is fully determined by the header counts: each section
    // must sit at the next 8-aligned offset, and the fixed-width sections
    // must have exactly their computed size. Anything else is
    // non-canonical and rejected.
    let known_lens: [Option<usize>; 4] = [
        Some(8 * n_nodes),
        (!compressed).then(|| 4 * (n_nodes + 1)),
        Some(n_edges),
        (!compressed).then(|| 4 * n_edges),
    ];
    let mut expect_off = HEADER_LEN;
    for (i, &(offset, len)) in sections.iter().enumerate() {
        let name = SECTION_NAMES[i];
        if offset != expect_off {
            return Err(DecodeError::Structural(format!(
                "section {name} at offset {offset}, layout requires {expect_off}"
            )));
        }
        if let Some(want) = known_lens[i] {
            if len != want {
                return Err(DecodeError::BadField {
                    field: "section length",
                    detail: format!("section {name} is {len} bytes, layout requires {want}"),
                });
            }
        }
        let end = offset.checked_add(len).ok_or(DecodeError::SizeOverflow)?;
        expect_off = end.checked_add(7).ok_or(DecodeError::SizeOverflow)? & !7;
    }
    let total = sections[3].0 + sections[3].1;
    if bytes.len() < total {
        return Err(DecodeError::Truncated {
            offset: bytes.len(),
            need: total - bytes.len(),
            have: 0,
        });
    }
    if bytes.len() > total {
        return Err(DecodeError::TrailingGarbage { extra: bytes.len() - total });
    }
    // Alignment padding must be zero (canonicality: exactly one encoding
    // per synopsis) and the per-section checksums must hold, so a corrupt
    // byte anywhere in the payload is caught and *named*.
    for i in 0..3 {
        let gap = sections[i].0 + sections[i].1..sections[i + 1].0;
        if bytes[gap].iter().any(|&b| b != 0) {
            return Err(DecodeError::Structural(format!(
                "nonzero alignment padding after section {}",
                SECTION_NAMES[i]
            )));
        }
    }
    for (i, &(offset, len)) in sections.iter().enumerate() {
        let computed = fnv1a(&bytes[offset..offset + len]);
        if computed != section_sums[i] {
            return Err(DecodeError::SectionChecksumMismatch {
                section: SECTION_NAMES[i],
                stored: section_sums[i],
                computed,
            });
        }
    }

    let store = if compressed {
        Storage::Owned {
            counts: bytes[sections[0].0..sections[0].0 + sections[0].1]
                .chunks_exact(8)
                .map(|c| le_f64(c, 0))
                .collect(),
            edge_start: decode_degrees(
                &bytes[sections[1].0..sections[1].0 + sections[1].1],
                n_nodes,
                n_edges,
            )?,
            edge_label: bytes[sections[2].0..sections[2].0 + sections[2].1].to_vec(),
            edge_target: decode_gaps(
                &bytes[sections[3].0..sections[3].0 + sections[3].1],
                n_edges,
            )?,
        }
    } else if let Some(buf) = shared {
        Storage::Borrowed {
            buf: Arc::clone(buf),
            counts_off: sections[0].0,
            edge_start_off: sections[1].0,
            edge_label_off: sections[2].0,
            edge_target_off: sections[3].0,
            n_nodes,
            n_edges,
        }
    } else {
        Storage::Owned {
            counts: bytes[sections[0].0..sections[0].0 + sections[0].1]
                .chunks_exact(8)
                .map(|c| le_f64(c, 0))
                .collect(),
            edge_start: bytes[sections[1].0..sections[1].0 + sections[1].1]
                .chunks_exact(4)
                .map(|c| le_u32(c, 0))
                .collect(),
            edge_label: bytes[sections[2].0..sections[2].0 + sections[2].1].to_vec(),
            edge_target: bytes[sections[3].0..sections[3].0 + sections[3].1]
                .chunks_exact(4)
                .map(|c| le_u32(c, 0))
                .collect(),
        }
    };
    store.validate()?;
    let fast = store.build_fastpath();
    Ok(FrozenSynopsis {
        store,
        fast,
        mode,
        privacy: privacy_from_wire(epsilon, delta),
        alpha_counts,
        alpha_absent,
        n_docs,
        max_len,
        codec: SnapshotCodec::V2 { compressed },
    })
}

/// Decompresses the `edge_start` section: `n_nodes` per-node degree
/// varints, prefix-summed back into CSR offsets.
fn decode_degrees(buf: &[u8], n_nodes: usize, n_edges: usize) -> Result<Vec<u32>, DecodeError> {
    let mut edge_start = Vec::with_capacity(n_nodes + 1);
    edge_start.push(0u32);
    let mut acc = 0u64;
    let mut pos = 0usize;
    for _ in 0..n_nodes {
        let degree = read_varint(buf, &mut pos, "edge_start")?;
        acc = acc.checked_add(degree).ok_or(DecodeError::SizeOverflow)?;
        if acc > n_edges as u64 {
            return Err(DecodeError::Structural("CSR offsets do not span the edge arrays".into()));
        }
        edge_start.push(acc as u32);
    }
    if pos != buf.len() {
        return Err(DecodeError::BadField {
            field: "edge_start",
            detail: format!("{} trailing bytes after {n_nodes} degree varints", buf.len() - pos),
        });
    }
    Ok(edge_start)
}

/// Decompresses the `edge_target` section: `n_edges` zigzag gap varints
/// cumulated back into absolute targets.
fn decode_gaps(buf: &[u8], n_edges: usize) -> Result<Vec<u32>, DecodeError> {
    let mut edge_target = Vec::with_capacity(n_edges);
    let mut prev = 0i64;
    let mut pos = 0usize;
    for _ in 0..n_edges {
        let gap = unzigzag(read_varint(buf, &mut pos, "edge_target")?);
        let t = prev.checked_add(gap).ok_or(DecodeError::SizeOverflow)?;
        if !(0..=u32::MAX as i64).contains(&t) {
            return Err(DecodeError::BadField {
                field: "edge_target",
                detail: format!("gap-decoded target {t} outside the u32 range"),
            });
        }
        edge_target.push(t as u32);
        prev = t;
    }
    if pos != buf.len() {
        return Err(DecodeError::BadField {
            field: "edge_target",
            detail: format!("{} trailing bytes after {n_edges} gap varints", buf.len() - pos),
        });
    }
    Ok(edge_target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varints_roundtrip_minimally() {
        let values = [0u64, 1, 127, 128, 129, 16_383, 16_384, u32::MAX as u64, u64::MAX];
        for &v in &values {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "value {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos, "test").unwrap(), v);
            assert_eq!(pos, buf.len(), "value {v} fully consumed");
        }
    }

    #[test]
    fn non_minimal_and_oversized_varints_are_rejected() {
        // 0x80 0x00 encodes 0 with a redundant continuation byte.
        let mut pos = 0;
        assert!(read_varint(&[0x80, 0x00], &mut pos, "test").is_err());
        // Truncated: continuation bit set, no next byte.
        let mut pos = 0;
        assert!(read_varint(&[0x80], &mut pos, "test").is_err());
        // 11 bytes of continuation overflow u64.
        let mut pos = 0;
        assert!(read_varint(&[0xFF; 11], &mut pos, "test").is_err());
        // 10th byte may carry only the top bit of a u64.
        let mut buf = vec![0xFF; 9];
        buf.push(0x02);
        let mut pos = 0;
        assert!(read_varint(&buf, &mut pos, "test").is_err());
        let mut buf = vec![0xFF; 9];
        buf.push(0x01);
        let mut pos = 0;
        assert_eq!(read_varint(&buf, &mut pos, "test").unwrap(), u64::MAX);
    }

    #[test]
    fn zigzag_is_a_bijection_on_gaps() {
        for v in [0i64, 1, -1, 2, -2, 63, -64, u32::MAX as i64, -(u32::MAX as i64)] {
            assert_eq!(unzigzag(zigzag(v)), v, "value {v}");
        }
        // Small magnitudes map to small codes (what makes gaps cheap).
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn align8_is_the_next_multiple() {
        for (x, want) in [(0usize, 0usize), (1, 8), (7, 8), (8, 8), (9, 16), (192, 192)] {
            assert_eq!(align8(x), want, "align8({x})");
        }
    }
}
