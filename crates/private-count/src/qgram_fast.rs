//! Theorem 4: fast (ε,δ)-differentially private q-gram counting
//! (Lemmas 19, 20 and 21).
//!
//! The key idea (Lemma 19): under *approximate* DP the algorithm may skip
//! strings whose true count is zero, because with probability ≥ 1 − γ the
//! noise on a zero count stays below the threshold anyway — the skipping is
//! statistically invisible, and the `δ` budget absorbs the difference.
//! This removes the `|P|²` pair enumeration entirely: each phase only
//! touches substrings that actually occur in `D`.
//!
//! Phases (the paper's `Alg_2`):
//! * Phase 0: every distinct letter of the corpus gets a Gaussian-noised
//!   count; those ≥ `2α` are *marked*.
//! * Phase `k`: every distinct `2^k`-substring whose two halves are marked
//!   gets a noised count; mark if ≥ `2α`.
//! * Final phase: every distinct `q`-gram whose length-`2^{⌊log q⌋}` prefix
//!   and suffix are marked gets a noised count; survivors are published.
//!
//! The paper walks `2^k`-minimal suffix-tree nodes with weighted-ancestor
//! queries \[5, 39\]; we enumerate the same nodes as LCP depth groups
//! ([`dpsc_textindex::depth_groups`]) and replace the ancestor queries by
//! hash-set membership of the half-strings — same marks, different
//! dictionary (DESIGN.md §2). Construction is `O(nℓ(log q + log|Σ|))`-ish:
//! one LCP scan per phase.

use std::collections::HashSet;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::noise::Noise;
use dpsc_strkit::hash::HashValue;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::{depth_groups, CorpusIndex};
use rand::Rng;

use crate::qgram::fixup_interior;
use crate::structure::{CountMode, PrivateCountStructure};

/// Parameters for the Theorem 4 construction.
#[derive(Debug, Clone, Copy)]
pub struct FastQgramParams {
    /// The fixed pattern length `q ≤ ℓ`.
    pub q: usize,
    /// The clip level `Δ`.
    pub mode: CountMode,
    /// Total privacy budget; `δ > 0` required (the zero-skipping of
    /// Lemma 19 is what `δ` buys).
    pub privacy: PrivacyParams,
    /// Total failure probability.
    pub beta: f64,
    /// Threshold override. **Clamped from below to the analytic α**: unlike
    /// the pure-DP algorithms, Theorem 4's privacy argument (Lemma 19)
    /// *requires* the threshold to exceed the zero-count noise tail — the
    /// algorithm never adds noise to absent strings, so a too-low threshold
    /// would make "string absent from output" a distinguishing event. (Our
    /// distinguishing-attack suite catches exactly this if the clamp is
    /// removed.)
    pub tau_override: Option<f64>,
}

/// Error: a phase exceeded the `nℓ` cap (probability ≤ β under the
/// analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseOverflow {
    /// Phase index (string length `2^phase`, or `q` for the final phase).
    pub phase: usize,
    /// Number of marked strings.
    pub size: usize,
    /// The `nℓ` cap.
    pub cap: usize,
}

impl std::fmt::Display for PhaseOverflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "fast q-gram phase {} overflowed: {} > {}", self.phase, self.size, self.cap)
    }
}

impl std::error::Error for PhaseOverflow {}

/// Builds the Theorem 4 (ε,δ)-DP q-gram structure in
/// `O(nℓ(log q + log|Σ|))` time and `O(nℓ)` space.
pub fn build_qgram_fast<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &FastQgramParams,
    rng: &mut R,
) -> Result<PrivateCountStructure, PhaseOverflow> {
    build_qgram_fast_impl(idx, params, true, rng)
}

/// Implementation with an `enforce_clamp` switch. The public entry point
/// always enforces the Lemma 19 threshold clamp; unit tests disable it to
/// check the *mechanics* (exact counts, phase plumbing) at toy scale where
/// the clamp floor exceeds every true count. Never expose `false` publicly.
fn build_qgram_fast_impl<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &FastQgramParams,
    enforce_clamp: bool,
    rng: &mut R,
) -> Result<PrivateCountStructure, PhaseOverflow> {
    assert!(params.privacy.delta > 0.0, "Theorem 4 requires δ > 0 (Lemma 19)");
    let ell = idx.max_len();
    let q = params.q;
    assert!(q >= 1 && q <= ell, "q must be in [1, ℓ]");
    let delta_clip = params.mode.delta_clip(ell);
    let n = idx.n_docs();
    let cap = n * ell;
    let sigma = idx.alphabet_size();

    // Paper's parameterization (Lemma 20): j = ⌊log q⌋, ε₁ = ε/(j+2),
    // β₁ = min(β/(j+2), δ/(3e^ε(j+2))), δ₁ ≤ β₁.
    let j = (q as f64).log2().floor() as usize;
    let phases = j + 2;
    let eps1 = params.privacy.epsilon / phases as f64;
    // Work in log space: β₁ involves e^{-ε}, which overflows f64 for large
    // ε while ln(2/δ₁) stays perfectly representable.
    let log_beta1 = (params.beta / phases as f64)
        .ln()
        .min(params.privacy.delta.ln() - (3.0 * phases as f64).ln() - params.privacy.epsilon);
    let ln_2_over_delta1 = std::f64::consts::LN_2 - log_beta1; // δ₁ = β₁

    // σ = 2ε₁⁻¹√(2ℓΔ·ln(2/δ₁)); α from the Gaussian tail over
    // K = max{ℓ²n², |Σ|} counts.
    let sigma_noise = 2.0 / eps1 * (2.0 * ell as f64 * delta_clip as f64 * ln_2_over_delta1).sqrt();
    let noise = Noise::Gaussian { sigma: sigma_noise };
    let k_counts = ((ell * ell) as f64 * (n * n) as f64).max(sigma as f64);
    let alpha = sigma_noise * (2.0 * ((2.0 * k_counts).ln() - log_beta1)).sqrt();
    // Privacy clamp (Lemma 19): with probability ≥ 1 − β₁ no zero-count
    // string's noise reaches α, so any τ ≥ α keeps the skipped strings
    // statistically invisible within the δ budget. Smaller τ would not.
    let floor = if enforce_clamp { alpha } else { f64::NEG_INFINITY };
    let tau = params.tau_override.unwrap_or(2.0 * alpha).max(floor);

    // Phase 0: distinct letters present in the corpus (zero-count letters
    // skipped — the Lemma 19 move).
    let mut marked: HashSet<HashValue> = HashSet::new();
    for g in depth_groups(idx, 1) {
        let c = idx.count_clipped_in_interval(g.interval, delta_clip) as f64;
        if c + noise.sample(rng) >= tau {
            marked.insert(idx.substring_hash(g.witness_pos as usize, 1));
        }
    }
    if marked.len() > cap {
        return Err(PhaseOverflow { phase: 0, size: marked.len(), cap });
    }

    // Phases k = 1..=j: distinct 2^k-substrings with both halves marked.
    for k in 1..=j {
        let len = 1usize << k;
        if len > ell {
            break;
        }
        let half = len / 2;
        let mut next: HashSet<HashValue> = HashSet::new();
        for g in depth_groups(idx, len) {
            let p = g.witness_pos as usize;
            let left = idx.substring_hash(p, half);
            let right = idx.substring_hash(p + half, half);
            if marked.contains(&left) && marked.contains(&right) {
                let c = idx.count_clipped_in_interval(g.interval, delta_clip) as f64;
                if c + noise.sample(rng) >= tau {
                    next.insert(idx.substring_hash(p, len));
                }
            }
        }
        if next.len() > cap {
            return Err(PhaseOverflow { phase: k, size: next.len(), cap });
        }
        marked = next;
    }

    // Final phase: distinct q-grams with marked length-2^j prefix and
    // suffix; survivors are published with their noisy counts.
    let pow = 1usize << j;
    let mut trie: Trie<f64> = Trie::new(idx.count_clipped(b"", delta_clip) as f64);
    let mut published = 0usize;
    for g in depth_groups(idx, q) {
        let p = g.witness_pos as usize;
        let prefix = idx.substring_hash(p, pow);
        let suffix = idx.substring_hash(p + q - pow, pow);
        if marked.contains(&prefix) && marked.contains(&suffix) {
            let c = idx.count_clipped_in_interval(g.interval, delta_clip) as f64;
            let noisy = c + noise.sample(rng);
            if noisy >= tau {
                let gram = idx.decode_substring(p, q);
                let node = trie.insert_path(&gram, |_| f64::NAN);
                *trie.value_mut(node) = noisy;
                published += 1;
                if published > cap {
                    return Err(PhaseOverflow { phase: j + 1, size: published, cap });
                }
            }
        }
    }
    fixup_interior(&mut trie);

    Ok(PrivateCountStructure::new(trie, params.mode, params.privacy, alpha, tau + alpha, n, ell))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn noiseless(q: usize, mode: CountMode) -> (Database, PrivateCountStructure) {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(81);
        let params = FastQgramParams {
            q,
            mode,
            privacy: PrivacyParams::approx(1e9, 1e-9),
            beta: 0.1,
            tau_override: Some(0.9),
        };
        // Clamp disabled: this checks phase mechanics, not the privacy
        // calibration (which the clamp test below and the attack suite cover).
        (db, build_qgram_fast_impl(&idx, &params, false, &mut rng).unwrap())
    }

    #[test]
    fn counts_match_exact_noiselessly() {
        for q in [1usize, 2, 3, 4, 5] {
            let (db, s) = noiseless(q, CountMode::Substring);
            let idx = CorpusIndex::build(&db);
            for doc in db.documents() {
                if doc.len() < q {
                    continue;
                }
                for w in doc.windows(q) {
                    let exact = idx.count(w) as f64;
                    assert!(
                        (s.query(w) - exact).abs() < 0.05,
                        "q={q} gram {:?}: got {} want {}",
                        std::str::from_utf8(w).unwrap(),
                        s.query(w),
                        exact
                    );
                }
            }
        }
    }

    #[test]
    fn absent_qgrams_are_zero() {
        let (_, s) = noiseless(3, CountMode::Substring);
        assert_eq!(s.query(b"zzz"), 0.0);
        assert_eq!(s.query(b"aez"), 0.0);
    }

    #[test]
    fn document_mode_counts() {
        let (db, s) = noiseless(2, CountMode::Document);
        let idx = CorpusIndex::build(&db);
        assert!((s.query(b"ab") - idx.document_count(b"ab") as f64).abs() < 0.05);
        assert!((s.query(b"ee") - idx.document_count(b"ee") as f64).abs() < 0.05);
    }

    #[test]
    fn threshold_prunes_rare_grams() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(82);
        let params = FastQgramParams {
            q: 2,
            mode: CountMode::Substring,
            privacy: PrivacyParams::approx(1e9, 1e-9),
            beta: 0.1,
            tau_override: Some(3.0),
        };
        let s = build_qgram_fast_impl(&idx, &params, false, &mut rng).unwrap();
        // count(ab) = 4 ≥ 3 kept; count(ba) = 2 < 3 pruned.
        assert!(s.query(b"ab") > 3.0);
        assert_eq!(s.query(b"ba"), 0.0);
    }

    #[test]
    fn alpha_scales_with_sqrt_ell_delta() {
        // The Theorem 4 error is O(√(ℓΔ)·polylog): doubling Δ should grow α
        // by ≈ √2.
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(83);
        let mut mk = |delta_clip: usize| {
            let params = FastQgramParams {
                q: 2,
                mode: CountMode::Clipped(delta_clip),
                privacy: PrivacyParams::approx(1.0, 1e-6),
                beta: 0.1,
                tau_override: Some(0.9),
            };
            build_qgram_fast_impl(&idx, &params, false, &mut rng).unwrap().alpha_counts()
        };
        let a1 = mk(1);
        let a4 = mk(4);
        let ratio = a4 / a1;
        assert!((ratio - 2.0).abs() < 0.05, "ratio {ratio} should be ≈ √4 = 2");
    }

    #[test]
    fn public_api_clamps_unsafe_thresholds() {
        // τ far below the analytic α must be raised to α: on the toy
        // database nothing can clear the clamp, so the structure is empty —
        // the honest worst-case outcome, and the behavior the privacy
        // attack suite depends on.
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(84);
        let params = FastQgramParams {
            q: 2,
            mode: CountMode::Substring,
            privacy: PrivacyParams::approx(1.0, 1e-6),
            beta: 0.1,
            tau_override: Some(0.1),
        };
        let s = build_qgram_fast(&idx, &params, &mut rng).unwrap();
        assert_eq!(s.mine_qgrams(2, f64::NEG_INFINITY).len(), 0);
    }
}
