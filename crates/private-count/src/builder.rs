//! Top-level constructors: Theorem 1 (ε-DP) and Theorem 2 ((ε,δ)-DP)
//! data structures for `count_Δ`.
//!
//! Budget split follows the paper exactly: Steps 1 (candidates), 3 (root
//! counts) and 4 (prefix sums) each get a third of `(ε, δ)` and of `β`;
//! Steps 2, 5 and 6 are noise-free post-processing. A
//! [`BudgetAccountant`] enforces the split at runtime.

use dpsc_dpcore::budget::{BudgetAccountant, PrivacyParams};
use dpsc_textindex::CorpusIndex;
use rand::Rng;

use crate::candidates::{
    build_candidates_approx, build_candidates_pure, CandidateOverflow, CandidateParams,
};
use crate::pipeline::{run_pipeline_traced, PipelineParams};
use crate::spans::SpanRecorder;
use crate::structure::{CountMode, PrivateCountStructure};

/// Parameters for building a private counting structure.
#[derive(Debug, Clone, Copy)]
pub struct BuildParams {
    /// Which `count_Δ` to privatize.
    pub mode: CountMode,
    /// Total privacy budget of the construction.
    pub privacy: PrivacyParams,
    /// Total failure probability `β` of the accuracy guarantees.
    pub beta: f64,
    /// Candidate-threshold override (see [`CandidateParams::tau_override`]).
    pub candidate_tau_override: Option<f64>,
    /// Pruning-threshold override (see
    /// [`PipelineParams::prune_override`]).
    pub prune_override: Option<f64>,
    /// Per-level candidate cap override (default `nℓ`).
    pub level_cap_override: Option<usize>,
    /// Worker threads for the construction's parallel sections (Step 1
    /// pair scans, Steps 3–5 heavy-path noise). `0` and `1` both mean
    /// sequential. The built structure is **bit-identical for every
    /// setting** given the same RNG seed: all noise flows from fixed-chunk
    /// and per-path streams derived off single base draws, never from
    /// thread scheduling (see `tests/build_determinism.rs`).
    pub threads: usize,
}

impl BuildParams {
    /// Sensible defaults: analytic thresholds everywhere, sequential build.
    pub fn new(mode: CountMode, privacy: PrivacyParams, beta: f64) -> Self {
        Self {
            mode,
            privacy,
            beta,
            candidate_tau_override: None,
            prune_override: None,
            level_cap_override: None,
            threads: 1,
        }
    }

    /// Replaces both thresholds with fixed values — useful at laptop scale
    /// where the worst-case analytic `α` exceeds every true count. Privacy
    /// is unchanged (thresholding noisy values is post-processing).
    pub fn with_thresholds(mut self, candidate_tau: f64, prune_tau: f64) -> Self {
        self.candidate_tau_override = Some(candidate_tau);
        self.prune_override = Some(prune_tau);
        self
    }

    /// Sets the worker-thread count for the parallel build sections.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// Failures of the construction algorithm.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildError {
    /// The candidate construction aborted (paper's FAIL outcome,
    /// probability ≤ β under the analysis).
    CandidateOverflow(CandidateOverflow),
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::CandidateOverflow(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Theorem 1: ε-differentially private structure for `count_Δ` with error
/// `O(ε⁻¹ ℓ log ℓ (log²(nℓ/β) + log|Σ|))`.
pub fn build_pure<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &BuildParams,
    rng: &mut R,
) -> Result<PrivateCountStructure, BuildError> {
    assert!(params.privacy.is_pure(), "Theorem 1 is pure DP; use build_approx for δ > 0");
    build_impl(idx, params, false, rng, None)
}

/// [`build_pure`] with per-phase wall-clock spans (`"candidates"`,
/// `"count_trie"`, `"noise"`, `"prune"`) recorded into `rec`. Pure
/// observation: given the same RNG state the released structure is
/// bit-identical to [`build_pure`]'s.
pub fn build_pure_traced<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &BuildParams,
    rng: &mut R,
    rec: &SpanRecorder,
) -> Result<PrivateCountStructure, BuildError> {
    assert!(params.privacy.is_pure(), "Theorem 1 is pure DP; use build_approx for δ > 0");
    build_impl(idx, params, false, rng, Some(rec))
}

/// Theorem 2: (ε,δ)-differentially private structure for `count_Δ` with
/// error `O(ε⁻¹ √(ℓΔ log(1/δ)) · polylog)`.
pub fn build_approx<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &BuildParams,
    rng: &mut R,
) -> Result<PrivateCountStructure, BuildError> {
    assert!(params.privacy.delta > 0.0, "Theorem 2 requires δ > 0; use build_pure for δ = 0");
    build_impl(idx, params, true, rng, None)
}

fn build_impl<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    params: &BuildParams,
    gaussian: bool,
    rng: &mut R,
    rec: Option<&SpanRecorder>,
) -> Result<PrivateCountStructure, BuildError> {
    let ell = idx.max_len();
    let delta_clip = params.mode.delta_clip(ell);
    let third = params.privacy.split_even(3);
    let beta_third = params.beta / 3.0;
    let mut accountant = BudgetAccountant::new(params.privacy);

    // Step 1: candidates (ε/3, δ/3, β/3).
    let cand_params = CandidateParams {
        delta_clip,
        privacy: third,
        beta: beta_third,
        tau_override: params.candidate_tau_override,
        level_cap_override: params.level_cap_override,
        threads: params.threads,
    };
    let cand_started = rec.map(|r| r.mark());
    let candidates = if gaussian {
        build_candidates_approx(idx, &cand_params, rng)
    } else {
        build_candidates_pure(idx, &cand_params, rng)
    }
    .map_err(BuildError::CandidateOverflow)?;
    if let (Some(r), Some(s)) = (rec, cand_started) {
        r.close("candidates", s, candidates.strings.len() as u64);
    }
    accountant.charge(third).expect("step 1 within budget");

    // Steps 2–6: trie pipeline (ε/3 for roots, ε/3 for prefix sums,
    // 2β/3 combined).
    let pipe_params = PipelineParams {
        delta_clip,
        privacy_roots: third,
        privacy_diffs: third,
        beta: 2.0 * beta_third,
        gaussian,
        prune_override: params.prune_override,
        threads: params.threads,
    };
    let out = run_pipeline_traced(idx, &candidates.strings, &pipe_params, rng, rec);
    accountant.charge(third).expect("step 3 within budget");
    accountant.charge(third).expect("step 4 within budget");

    // Absent strings are bounded by the worse of: not selected as candidate
    // (count < τ_cand + α_cand ≤ 3α_cand analytically) or pruned
    // (count < prune_threshold + α).
    let alpha_absent = (candidates.tau + candidates.alpha).max(out.prune_threshold + out.alpha);

    Ok(PrivateCountStructure::new(
        out.trie,
        params.mode,
        params.privacy,
        out.alpha,
        alpha_absent,
        idx.n_docs(),
        ell,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn theorem1_noiseless_regime_matches_exact_counts() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(61);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e9), 0.1)
            .with_thresholds(0.9, 0.5);
        let s = build_pure(&idx, &params, &mut rng).unwrap();
        // Example 1: count(ab) = 4; count_1(ab) = 3.
        assert!((s.query(b"ab") - 4.0).abs() < 1e-3);
        assert!((s.query(b"absab") - 1.0).abs() < 1e-3);
        assert_eq!(s.query(b"zz"), 0.0);

        let params_doc = BuildParams::new(CountMode::Document, PrivacyParams::pure(1e9), 0.1)
            .with_thresholds(0.9, 0.5);
        let mut rng = StdRng::seed_from_u64(62);
        let sdoc = build_pure(&idx, &params_doc, &mut rng).unwrap();
        assert!((sdoc.query(b"ab") - 3.0).abs() < 1e-3);
    }

    #[test]
    fn theorem2_noiseless_regime_matches_exact_counts() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(63);
        let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(1e9, 1e-9), 0.1)
            .with_thresholds(0.9, 0.5);
        let s = build_approx(&idx, &params, &mut rng).unwrap();
        assert!((s.query(b"ab") - 3.0).abs() < 1e-3);
        // "be" occurs in abe, babe, bee, bees → document count 4.
        assert!((s.query(b"be") - 4.0).abs() < 1e-3);
        assert!(s.query(b"abe") > 0.5);
    }

    #[test]
    fn realistic_noise_error_within_alpha() {
        // A dense database and demo-grade ε so signal exceeds noise: the
        // worst-case noise scale is Θ(ℓ·log/ε) regardless of n, so either n
        // must be large or ε moderate for a unit-test-sized corpus. The
        // bound check itself is ε-independent (α scales with the noise).
        let docs: Vec<Vec<u8>> = (0..64)
            .map(|i| (0..32u8).map(|j| b'a' + ((i + j as usize) % 3) as u8).collect())
            .collect();
        let db = Database::new(dpsc_strkit::alphabet::Alphabet::lowercase(3), 32, docs).unwrap();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(64);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(20.0), 0.1)
            .with_thresholds(100.0, 100.0);
        let s = build_pure(&idx, &params, &mut rng).unwrap();
        // Every stored count must be within α of the truth (w.p. 0.9; one
        // draw, seed fixed).
        let mut checked = 0;
        for node in s.trie().dfs() {
            if node == dpsc_strkit::trie::Trie::<f64>::ROOT {
                continue;
            }
            let pat = s.trie().string_of(node);
            let exact = idx.count_clipped(&pat, db.max_len()) as f64;
            let got = s.query(&pat);
            assert!(
                (got - exact).abs() <= s.alpha_counts(),
                "{:?}: got {got}, exact {exact}, α={}",
                pat,
                s.alpha_counts()
            );
            checked += 1;
        }
        assert!(checked > 0, "structure should be non-trivial");
    }

    #[test]
    fn traced_build_is_bit_identical_and_records_phases() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e9), 0.1)
            .with_thresholds(0.9, 0.5);
        let mut rng = StdRng::seed_from_u64(77);
        let plain = build_pure(&idx, &params, &mut rng).unwrap();
        let rec = SpanRecorder::new();
        let mut rng = StdRng::seed_from_u64(77);
        let traced = build_pure_traced(&idx, &params, &mut rng, &rec).unwrap();
        assert_eq!(plain.trie().len(), traced.trie().len());
        for pat in [b"ab".as_slice(), b"ba", b"absab", b"zz"] {
            assert_eq!(plain.query(pat), traced.query(pat), "pattern {pat:?}");
        }
        let names: Vec<&str> = rec.spans().iter().map(|s| s.name).collect();
        assert_eq!(names, ["candidates", "count_trie", "noise", "prune"]);
        assert!(rec.spans().iter().all(|s| s.items > 0), "phase item counts populated");
    }

    #[test]
    fn wrong_variant_panics() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(65);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1.0), 0.1);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _ = build_approx(&idx, &params, &mut rng);
        }));
        assert!(r.is_err());
    }
}
