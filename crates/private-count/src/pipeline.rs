//! Steps 2–6 of the main construction: trie, heavy paths, noisy root
//! counts, difference-sequence prefix sums, and pruning.
//!
//! Shared by Theorem 1 (Laplace) and Theorem 2 (Gaussian); the two differ
//! only in the noise calibration:
//!
//! | quantity | ε-DP (Thm 1) | (ε,δ)-DP (Thm 2) |
//! |---|---|---|
//! | root counts | `Lap` on L1 ≤ `2ℓ(⌊log|T_C|⌋+1)` (Obs. 2 + Lemma 10) | `N(0,σ²)` on L2 ≤ `√(L1·Δ)` (Lemma 14/16/17) |
//! | diff prefix sums | Lemma 11 with `L = 2ℓ(⌊log|T_C|⌋+1)` | Lemma 18 with the same `L`, per-path `≤ 2Δ` |
//!
//! The pruning threshold is `2α` where `α` sums the two error bounds — so
//! surviving nodes have true count ≥ `α` w.h.p., which bounds the pruned
//! trie by `O(nℓ²)` nodes (each document contributes ≤ `ℓ²` substrings of
//! count ≥ 1).

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::mechanism::{gaussian_sup_error, l2_from_l1_linf, laplace_sup_error};
use dpsc_dpcore::noise::Noise;
use dpsc_dpcore::tree_mechanism::{
    lemma11_error_bound, lemma11_noise, lemma18_error_bound, lemma18_noise, BinaryTreeMechanism,
};
use dpsc_hierarchy::heavy_path::HeavyPathDecomposition;
use dpsc_hierarchy::tree::Tree;

use crate::spans::SpanRecorder;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::CorpusIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters for Steps 2–6.
#[derive(Debug, Clone, Copy)]
pub struct PipelineParams {
    /// The clip level `Δ`.
    pub delta_clip: usize,
    /// Budget for Step 3 (root counts).
    pub privacy_roots: PrivacyParams,
    /// Budget for Step 4 (difference-sequence prefix sums).
    pub privacy_diffs: PrivacyParams,
    /// Failure probability for Steps 3+4 combined (split evenly).
    pub beta: f64,
    /// Gaussian (Theorem 2) vs Laplace (Theorem 1) calibration.
    pub gaussian: bool,
    /// Pruning threshold override (default: analytic `2α`). Post-processing
    /// only — privacy is unaffected.
    pub prune_override: Option<f64>,
    /// Worker threads for the per-heavy-path noise pass of Steps 3–5. `0`
    /// and `1` both mean sequential; the released structure is identical
    /// for every setting (per-path derived RNG streams).
    pub threads: usize,
}

/// Output of Steps 2–6.
#[derive(Debug, Clone)]
pub struct PipelineOutput {
    /// Pruned trie of noisy counts (root = empty string).
    pub trie: Trie<f64>,
    /// Sup-error bound `α` for the noisy counts of surviving nodes
    /// (w.p. ≥ 1−β over Steps 3–4).
    pub alpha: f64,
    /// Threshold used for pruning (`2α` unless overridden).
    pub prune_threshold: f64,
    /// Trie size before pruning.
    pub nodes_before_prune: usize,
}

/// Builds the exact-count trie `T_C` of the candidate set: one node per
/// distinct prefix of a candidate, each holding its true `count_Δ`.
///
/// Candidates are sorted once and inserted in lexicographic order, which
/// makes the walk LCP-aware: in sorted order the longest common prefix of a
/// candidate with *any* earlier candidate equals its LCP with the previous
/// one, so the insertion resumes from a stack of `(node, SA interval)`
/// frames at the shared-prefix depth instead of re-extending from the root.
/// Inserting a candidate of length `m` then costs `O((m − lcp) log N)` plus
/// the clipped-count evaluation of its *new* nodes only — on overlap-heavy
/// candidate sets (the `C_m` families share all but one symbol) this
/// removes most of Step 2's interval work. Sorting also means every new
/// child label arrives in increasing order, so the arena append fast path
/// applies throughout.
pub fn build_count_trie(idx: &CorpusIndex, candidates: &[Vec<u8>], delta_clip: usize) -> Trie<u64> {
    let root_count = idx.count_clipped(b"", delta_clip);
    let mut trie: Trie<u64> = Trie::new(root_count);
    let mut sorted: Vec<&[u8]> = candidates.iter().map(|c| c.as_slice()).collect();
    sorted.sort_unstable();
    sorted.dedup();
    // stack[d] = (node, interval) of the current candidate's prefix of
    // length d + 1; truncated to the LCP with the next candidate.
    let mut stack: Vec<(u32, dpsc_strkit::search::SaInterval)> = Vec::new();
    let mut prev: &[u8] = b"";
    for cand in sorted {
        let lcp = prev.iter().zip(cand.iter()).take_while(|(a, b)| a == b).count();
        stack.truncate(lcp);
        let (mut cur, mut iv) = match stack.last() {
            Some(&frame) => frame,
            None => (Trie::<u64>::ROOT, idx.full_interval()),
        };
        for (depth, &b) in cand.iter().enumerate().skip(lcp) {
            iv = idx.extend_interval(iv, depth, b);
            let before = trie.len();
            cur = trie.ensure_child(cur, b, 0);
            if trie.len() > before {
                // Newly created node: compute its true clipped count once.
                *trie.value_mut(cur) = idx.count_clipped_in_interval(iv, delta_clip);
            }
            stack.push((cur, iv));
        }
        prev = cand;
    }
    trie
}

/// Runs Steps 2–6 over a candidate set. `candidates` come from
/// [`crate::candidates`]; their counts are recomputed exactly here (Step 2)
/// and only released through noise (Steps 3–5).
pub fn run_pipeline<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    candidates: &[Vec<u8>],
    params: &PipelineParams,
    rng: &mut R,
) -> PipelineOutput {
    run_pipeline_traced(idx, candidates, params, rng, None)
}

/// [`run_pipeline`] with optional phase spans (`"count_trie"`, `"noise"`,
/// `"prune"`) recorded into `rec`. Timing is observation only — the
/// released structure is identical with or without a recorder.
pub fn run_pipeline_traced<R: Rng + ?Sized>(
    idx: &CorpusIndex,
    candidates: &[Vec<u8>],
    params: &PipelineParams,
    rng: &mut R,
    rec: Option<&SpanRecorder>,
) -> PipelineOutput {
    let ell = idx.max_len();
    let delta_clip = params.delta_clip.clamp(1, ell);
    let started = rec.map(|r| r.mark());
    let counts_trie = build_count_trie(idx, candidates, delta_clip);
    if let (Some(r), Some(s)) = (rec, started) {
        r.close("count_trie", s, counts_trie.len() as u64);
    }
    run_pipeline_on_trie_traced(&counts_trie, ell, params, rng, rec)
}

/// Steps 3–6 over a prebuilt exact-count trie. Exposed so the experiment
/// harness can amortize Step 2 (exact counting) across noise trials; the
/// privacy guarantee is identical — the trie is exactly what Step 2 would
/// have produced.
pub fn run_pipeline_on_trie<R: Rng + ?Sized>(
    counts_trie: &Trie<u64>,
    ell: usize,
    params: &PipelineParams,
    rng: &mut R,
) -> PipelineOutput {
    run_pipeline_on_trie_traced(counts_trie, ell, params, rng, None)
}

/// [`run_pipeline_on_trie`] with optional `"noise"` / `"prune"` phase
/// spans recorded into `rec`.
pub fn run_pipeline_on_trie_traced<R: Rng + ?Sized>(
    counts_trie: &Trie<u64>,
    ell: usize,
    params: &PipelineParams,
    rng: &mut R,
    rec: Option<&SpanRecorder>,
) -> PipelineOutput {
    assert!(params.beta > 0.0 && params.beta < 1.0);
    let noise_started = rec.map(|r| r.mark());
    let delta_clip = params.delta_clip.clamp(1, ell);
    let n_nodes = counts_trie.len();
    let tree = trie_topology(counts_trie);
    let hpd = HeavyPathDecomposition::new(&tree);
    let k_paths = hpd.num_paths();
    let levels = (usize::BITS - n_nodes.leading_zeros()) as f64; // ⌊log|T_C|⌋+1

    // Sensitivities (Observation 2, Lemmas 8/10 and 16/17): replacing one
    // document S → S' moves root counts by ≤ ℓ·levels for each of S, S'.
    let l1_roots = 2.0 * ell as f64 * levels;
    let l1_diffs = 2.0 * ell as f64 * levels;
    let beta_half = params.beta / 2.0;

    // Step 3: noisy counts of heavy-path roots.
    let (root_noise, root_error) = if params.gaussian {
        let l2 = l2_from_l1_linf(l1_roots, delta_clip as f64);
        (
            Noise::gaussian_for(params.privacy_roots.epsilon, params.privacy_roots.delta, l2),
            gaussian_sup_error(
                params.privacy_roots.epsilon,
                params.privacy_roots.delta,
                l2,
                k_paths,
                beta_half,
            ),
        )
    } else {
        (
            Noise::laplace_for(params.privacy_roots.epsilon, l1_roots),
            laplace_sup_error(params.privacy_roots.epsilon, l1_roots, k_paths, beta_half),
        )
    };

    // Step 4: noisy prefix sums of difference sequences (binary tree
    // mechanism). T = longest difference sequence ≤ ℓ.
    let max_diff_len =
        hpd.paths().iter().map(|p| p.len().saturating_sub(1)).max().unwrap_or(0).max(1);
    let (diff_noise, diff_error) = if params.gaussian {
        let per_path = 2.0 * delta_clip as f64; // Lemma 16.2
        (
            lemma18_noise(
                params.privacy_diffs.epsilon,
                params.privacy_diffs.delta,
                l1_diffs,
                per_path,
                max_diff_len,
            ),
            lemma18_error_bound(
                params.privacy_diffs.epsilon,
                params.privacy_diffs.delta,
                l1_diffs,
                per_path,
                max_diff_len,
                k_paths,
                beta_half,
            ),
        )
    } else {
        (
            lemma11_noise(params.privacy_diffs.epsilon, l1_diffs, max_diff_len),
            lemma11_error_bound(
                params.privacy_diffs.epsilon,
                l1_diffs,
                max_diff_len,
                k_paths,
                beta_half,
            ),
        )
    };

    // Steps 3–5: per-node noisy counts, one derived RNG stream per heavy
    // path. The base is a single draw off the caller's RNG; each path's
    // draws (root noise, then its tree mechanism) come from its own stream
    // keyed by the path index, so the released structure is identical for
    // every thread count — chunking below is purely a scheduling concern.
    let stream_base: u64 = rng.gen();
    let paths = hpd.paths();
    let mut noisy = vec![0.0f64; n_nodes];
    const PATH_CHUNK: usize = 64;
    let n_chunks = paths.len().div_ceil(PATH_CHUNK);

    // Noisy values of every path in one chunk, each aligned with its path.
    type ChunkValues = Vec<(usize, Vec<f64>)>;
    let process_chunk = |chunk: usize| -> ChunkValues {
        let start = chunk * PATH_CHUNK;
        let end = paths.len().min(start + PATH_CHUNK);
        let mut out = Vec::with_capacity(end - start);
        let mut diff: Vec<f64> = Vec::new();
        for (pi, path) in paths[start..end].iter().enumerate() {
            let mut prng = StdRng::seed_from_u64(crate::candidates::derive_stream(
                stream_base,
                (start + pi) as u64,
            ));
            let root_est = *counts_trie.value(path[0]) as f64 + root_noise.sample(&mut prng);
            let mut vals = Vec::with_capacity(path.len());
            vals.push(root_est);
            if path.len() > 1 {
                diff.clear();
                diff.extend(
                    path.windows(2)
                        .map(|w| *counts_trie.value(w[1]) as f64 - *counts_trie.value(w[0]) as f64),
                );
                let mech = BinaryTreeMechanism::build(&diff, diff_noise, &mut prng);
                for i in 1..path.len() {
                    vals.push(root_est + mech.prefix(i));
                }
            }
            out.push((start + pi, vals));
        }
        out
    };

    let workers = params.threads.max(1).min(n_chunks);
    if workers <= 1 {
        for chunk in 0..n_chunks {
            for (pi, vals) in process_chunk(chunk) {
                for (&v, &x) in paths[pi].iter().zip(vals.iter()) {
                    noisy[v as usize] = x;
                }
            }
        }
    } else {
        let results: Vec<std::sync::Mutex<ChunkValues>> =
            (0..n_chunks).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        let next_chunk = std::sync::atomic::AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let chunk = next_chunk.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if chunk >= n_chunks {
                        break;
                    }
                    *results[chunk].lock().expect("chunk mutex not poisoned") =
                        process_chunk(chunk);
                });
            }
        });
        for m in results {
            for (pi, vals) in m.into_inner().expect("chunk mutex poisoned") {
                for (&v, &x) in paths[pi].iter().zip(vals.iter()) {
                    noisy[v as usize] = x;
                }
            }
        }
    }

    if let (Some(r), Some(s)) = (rec, noise_started) {
        r.close("noise", s, n_nodes as u64);
    }

    // Step 6: prune subtrees with noisy count below the threshold.
    let alpha = root_error + diff_error;
    let prune_threshold = params.prune_override.unwrap_or(2.0 * alpha);
    let prune_started = rec.map(|r| r.mark());
    let pruned = counts_trie.prune_map(
        |node, _| noisy[node as usize] >= prune_threshold,
        |node, _| noisy[node as usize],
    );
    if let (Some(r), Some(s)) = (rec, prune_started) {
        r.close("prune", s, pruned.len() as u64);
    }

    PipelineOutput { trie: pruned, alpha, prune_threshold, nodes_before_prune: n_nodes }
}

/// Converts the trie's parent pointers into a [`Tree`] (ids align).
pub fn trie_topology<V>(trie: &Trie<V>) -> Tree {
    let parents: Vec<Option<u32>> = (0..trie.len() as u32)
        .map(|v| if v == Trie::<V>::ROOT { None } else { Some(trie.parent(v)) })
        .collect();
    Tree::from_parents(&parents)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn all_substrings(db: &Database) -> Vec<Vec<u8>> {
        let mut set = std::collections::BTreeSet::new();
        for doc in db.documents() {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    set.insert(doc[i..j].to_vec());
                }
            }
        }
        set.into_iter().collect()
    }

    #[test]
    fn count_trie_stores_exact_clipped_counts() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let cands = all_substrings(&db);
        for delta in [1usize, 2, 5] {
            let trie = build_count_trie(&idx, &cands, delta);
            for c in &cands {
                let node = trie.walk(c).expect("candidate in trie");
                assert_eq!(
                    *trie.value(node),
                    idx.count_clipped(c, delta),
                    "count of {:?} at Δ={delta}",
                    c
                );
            }
            // Root holds count_Δ of the empty string.
            assert_eq!(*trie.value(Trie::<u64>::ROOT), idx.count_clipped(b"", delta));
        }
    }

    #[test]
    fn counts_monotone_along_paths() {
        // Lemma 8's premise: counts are non-increasing down any trie path.
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let trie = build_count_trie(&idx, &all_substrings(&db), 5);
        for node in trie.dfs() {
            if node != Trie::<u64>::ROOT {
                assert!(
                    trie.value(node) <= trie.value(trie.parent(node)),
                    "count increased along path at {:?}",
                    trie.string_of(node)
                );
            }
        }
    }

    fn tiny_noise_params(gaussian: bool) -> PipelineParams {
        PipelineParams {
            delta_clip: 5,
            privacy_roots: if gaussian {
                PrivacyParams::approx(1e9, 1e-9)
            } else {
                PrivacyParams::pure(1e9)
            },
            privacy_diffs: if gaussian {
                PrivacyParams::approx(1e9, 1e-9)
            } else {
                PrivacyParams::pure(1e9)
            },
            beta: 0.1,
            gaussian,
            prune_override: Some(0.5),
            threads: 1,
        }
    }

    #[test]
    fn near_zero_noise_reproduces_exact_counts() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let cands = all_substrings(&db);
        for gaussian in [false, true] {
            let mut rng = StdRng::seed_from_u64(51);
            let out = run_pipeline(&idx, &cands, &tiny_noise_params(gaussian), &mut rng);
            for c in &cands {
                let node = out.trie.walk(c).expect("present with threshold 0.5");
                let exact = idx.count_clipped(c, 5) as f64;
                assert!(
                    (*out.trie.value(node) - exact).abs() < 1e-3,
                    "{:?}: {} vs {}",
                    c,
                    out.trie.value(node),
                    exact
                );
            }
        }
    }

    #[test]
    fn error_bound_holds_with_high_probability() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let cands = all_substrings(&db);
        let params = PipelineParams {
            delta_clip: 5,
            privacy_roots: PrivacyParams::pure(1.0),
            privacy_diffs: PrivacyParams::pure(1.0),
            beta: 0.2,
            gaussian: false,
            prune_override: Some(f64::NEG_INFINITY), // keep everything
            threads: 1,
        };
        let mut rng = StdRng::seed_from_u64(52);
        let trials = 25;
        let mut violations = 0;
        for _ in 0..trials {
            let out = run_pipeline(&idx, &cands, &params, &mut rng);
            let worst = cands
                .iter()
                .filter_map(|c| {
                    out.trie
                        .walk(c)
                        .map(|n| (*out.trie.value(n) - idx.count_clipped(c, 5) as f64).abs())
                })
                .fold(0.0f64, f64::max);
            if worst > out.alpha {
                violations += 1;
            }
        }
        assert!((violations as f64 / trials as f64) <= 0.2, "violations {violations}/{trials}");
    }

    #[test]
    fn pruning_drops_low_count_subtrees() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        let cands = all_substrings(&db);
        let mut params = tiny_noise_params(false);
        params.prune_override = Some(3.0);
        let mut rng = StdRng::seed_from_u64(53);
        let out = run_pipeline(&idx, &cands, &params, &mut rng);
        // "ab" has count 4 ≥ 3 → kept; "abs" has count 1 < 3 → pruned.
        assert!(out.trie.walk(b"ab").is_some());
        assert!(out.trie.walk(b"abs").is_none());
        assert!(out.nodes_before_prune > out.trie.len());
    }

    #[test]
    fn gaussian_beats_laplace_for_document_counts() {
        // Theorem 2's √(ℓΔ) improvement: at Δ=1 the Gaussian pipeline's
        // analytic α should be well below the Laplace pipeline's for large ℓ.
        // Compare the *bounds* (the measured gap is experiment T2).
        let docs: Vec<Vec<u8>> = (0..8)
            .map(|i| (0..64u8).map(|j| b'a' + ((i * 7 + j as usize) % 4) as u8).collect())
            .collect();
        let db = Database::new(dpsc_strkit::alphabet::Alphabet::lowercase(4), 64, docs).unwrap();
        let idx = CorpusIndex::build(&db);
        let cands = all_substrings(&db);
        let mut rng = StdRng::seed_from_u64(54);
        let lap = run_pipeline(
            &idx,
            &cands,
            &PipelineParams {
                delta_clip: 1,
                privacy_roots: PrivacyParams::pure(0.5),
                privacy_diffs: PrivacyParams::pure(0.5),
                beta: 0.1,
                gaussian: false,
                prune_override: Some(f64::NEG_INFINITY),
                threads: 1,
            },
            &mut rng,
        );
        let gauss = run_pipeline(
            &idx,
            &cands,
            &PipelineParams {
                delta_clip: 1,
                privacy_roots: PrivacyParams::approx(0.5, 1e-6),
                privacy_diffs: PrivacyParams::approx(0.5, 1e-6),
                beta: 0.1,
                gaussian: true,
                prune_override: Some(f64::NEG_INFINITY),
                threads: 1,
            },
            &mut rng,
        );
        assert!(
            gauss.alpha < lap.alpha,
            "Gaussian α {} should beat Laplace α {} at Δ=1, ℓ=64",
            gauss.alpha,
            lap.alpha
        );
    }
}
