//! Shared binary-codec substrate: the typed decode error and the
//! length-checked cursor used by every `DPSF`-discipline format in the
//! workspace.
//!
//! Two decoders follow the same defensive discipline — magic, version,
//! little-endian framing, trailing FNV-1a checksum, every read
//! length-checked so corrupt input is an `Err` and never a panic:
//! [`crate::synopsis::FrozenSynopsis::from_bytes`] (the snapshot codec)
//! and the `dpsc-serve` wire protocol (the request/response frames that
//! carry those snapshots). Both report defects through [`DecodeError`]
//! so callers can branch on the *kind* of damage (truncation vs checksum
//! vs structural) instead of grepping strings; `Display` keeps the old
//! human-readable messages, so stringly call sites just
//! `.map_err(|e| e.to_string())`.

use std::fmt;

/// The first defect found while decoding a binary artifact (snapshot
/// bytes or a wire frame). Decoders stop at the first problem, so one
/// value describes one concrete, located defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Fewer bytes than the format requires at `offset`.
    Truncated {
        /// Byte offset at which the read was attempted.
        offset: usize,
        /// Bytes the read needed.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// Input continues past the end of the declared payload.
    TrailingGarbage {
        /// Number of surplus bytes.
        extra: usize,
    },
    /// The leading magic does not identify this format.
    BadMagic {
        /// The bytes found where the magic belongs.
        found: [u8; 4],
        /// The magic this decoder accepts.
        expected: [u8; 4],
    },
    /// The format version is not one this decoder understands.
    UnsupportedVersion {
        /// Version tag in the input.
        found: u16,
        /// Version this decoder implements.
        expected: u16,
    },
    /// Stored and recomputed FNV-1a checksums disagree.
    ChecksumMismatch {
        /// Checksum carried by the input.
        stored: u64,
        /// Checksum of the bytes actually received.
        computed: u64,
    },
    /// Stored and recomputed FNV-1a checksums of one named section
    /// disagree (snapshot codec v2 carries a checksum per section so a
    /// corrupt section can be named instead of just "the payload").
    SectionChecksumMismatch {
        /// Which section is damaged (`"counts"`, `"edge_start"`, …).
        section: &'static str,
        /// Checksum carried by the section table.
        stored: u64,
        /// Checksum of the section bytes actually received.
        computed: u64,
    },
    /// Declared array sizes overflow the platform's address arithmetic.
    SizeOverflow,
    /// A header field holds a value outside its domain (bad mode tag,
    /// non-finite ε, nonzero clip level for a clip-free mode, …).
    BadField {
        /// Which field is malformed.
        field: &'static str,
        /// What is wrong with it.
        detail: String,
    },
    /// The arrays parse individually but do not describe a well-formed
    /// structure (non-monotone CSR offsets, unsorted labels, cycles, …).
    Structural(String),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated { offset, need, have } => {
                write!(f, "truncated input: need {need} bytes at offset {offset}, have {have}")
            }
            Self::TrailingGarbage { extra } => {
                write!(f, "trailing garbage: {extra} extra bytes")
            }
            Self::BadMagic { found, expected } => {
                write!(f, "bad magic {found:02x?} (expected {expected:02x?})")
            }
            Self::UnsupportedVersion { found, expected } => {
                write!(f, "unsupported format version {found} (expected {expected})")
            }
            Self::ChecksumMismatch { stored, computed } => {
                write!(f, "checksum mismatch: stored {stored:016x}, computed {computed:016x}")
            }
            Self::SectionChecksumMismatch { section, stored, computed } => {
                write!(
                    f,
                    "checksum mismatch in section {section}: \
                     stored {stored:016x}, computed {computed:016x}"
                )
            }
            Self::SizeOverflow => write!(f, "declared sizes overflow"),
            Self::BadField { field, detail } => write!(f, "bad {field}: {detail}"),
            Self::Structural(what) => write!(f, "{what}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// FNV-1a 64-bit over `bytes` — the integrity checksum shared by the
/// snapshot codec and the wire protocol. Not cryptographic; it detects
/// accidental corruption (the synopsis is public data, so tampering is
/// not in the threat model).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Rejects NaN/±∞ in a decoded float field. Non-finite values poison
/// every downstream aggregate (and NaN breaks `PartialEq`, turning
/// round-trip assertions vacuous), so decoders refuse them up front.
pub(crate) fn require_finite(field: &'static str, value: f64) -> Result<(), DecodeError> {
    if value.is_finite() {
        Ok(())
    } else {
        Err(DecodeError::BadField { field, detail: format!("non-finite value {value}") })
    }
}

/// Little-endian `u32` at `bytes[off..off + 4]` (caller guarantees range).
#[inline]
pub(crate) fn le_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4-byte read"))
}

/// Little-endian IEEE-754 `f64` at `bytes[off..off + 8]`.
#[inline]
pub(crate) fn le_f64(bytes: &[u8], off: usize) -> f64 {
    f64::from_bits(u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8-byte read")))
}

/// Length-checked reader over an input buffer. Every accessor returns
/// [`DecodeError::Truncated`] instead of slicing out of bounds.
#[derive(Debug)]
pub struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Current read offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Takes the next `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated {
                offset: self.pos,
                need: n,
                have: self.remaining(),
            });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Next byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Next little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2-byte read")))
    }

    /// Next little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4-byte read")))
    }

    /// Next little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8-byte read")))
    }

    /// Next `f64`, read as its IEEE-754 bit pattern (exact round-trip).
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Next `u64` narrowed to `usize`, rejecting values that do not fit.
    pub fn usize64(&mut self) -> Result<usize, DecodeError> {
        usize::try_from(self.u64()?).map_err(|_| DecodeError::SizeOverflow)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_reads_are_length_checked() {
        let buf = [1u8, 2, 3];
        let mut cur = Cursor::new(&buf);
        assert_eq!(cur.u8().unwrap(), 1);
        assert_eq!(cur.u16().unwrap(), u16::from_le_bytes([2, 3]));
        assert_eq!(cur.u8().unwrap_err(), DecodeError::Truncated { offset: 3, need: 1, have: 0 });
    }

    #[test]
    fn display_messages_keep_the_legacy_keywords() {
        // Stringly call sites (and older tests) grep for these substrings.
        let cases: Vec<(DecodeError, &str)> = vec![
            (DecodeError::Truncated { offset: 0, need: 4, have: 1 }, "truncated"),
            (DecodeError::TrailingGarbage { extra: 3 }, "trailing garbage"),
            (DecodeError::BadMagic { found: [0; 4], expected: *b"DPSF" }, "magic"),
            (DecodeError::UnsupportedVersion { found: 9, expected: 1 }, "version"),
            (DecodeError::ChecksumMismatch { stored: 1, computed: 2 }, "checksum mismatch"),
            (
                DecodeError::SectionChecksumMismatch { section: "counts", stored: 1, computed: 2 },
                "checksum mismatch in section counts",
            ),
            (DecodeError::SizeOverflow, "overflow"),
            (DecodeError::BadField { field: "delta", detail: "-0".into() }, "delta"),
            (DecodeError::Structural("nodes unreachable from the root".into()), "unreachable"),
        ];
        for (err, needle) in cases {
            assert!(err.to_string().contains(needle), "{err} lacks {needle:?}");
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
