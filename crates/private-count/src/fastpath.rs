//! Branchless hot-path edge probing for the frozen synopsis.
//!
//! [`crate::synopsis::FrozenSynopsis::query`] spends essentially its whole
//! budget in the per-pattern-byte child lookup. The CSR layout answers it
//! with a branchy `binary_search` over `edge_label[lo..hi]` plus three
//! dependent loads spread across four arrays — every probe is an
//! unpredictable branch (patterns are adversarial by design) and two or
//! more cache lines.
//!
//! [`FastPath`] is an *in-memory acceleration structure* derived from the
//! CSR arrays — never serialized, rebuilt identically by `freeze()` and
//! `from_bytes()`, so the wire format is untouched and the answers are
//! bit-identical by construction. Nodes are tiered by fanout:
//!
//! * **SWAR blocks** (degree ≤ [`TABLE_MIN_DEGREE`]): out-edges are packed
//!   into [`EdgeBlock`]s of eight labels in one `u64` *interleaved with
//!   their eight `u32` targets*, so one pattern byte touches one 40-byte
//!   record (one or two cache lines) instead of four arrays. The probe is
//!   branchless: broadcast-XOR the query byte across the label word and
//!   find the first zero byte with the classic SWAR zero-detect — plain
//!   `u64` ops, no nightly, no SIMD crates. A node of degree ≤ 8 is a
//!   single block; mid-fanout nodes scan `⌈degree / 8⌉ ≤ 4` blocks.
//! * **Direct tables** (degree > [`TABLE_MIN_DEGREE`], up to σ = 256):
//!   near-root nodes of wide-alphabet corpora (text, logs/URLs) get a
//!   256-entry child table — an O(1) unconditional load per step.
//!
//! The SWAR probe invariant that makes padding safe: the last block of a
//! node is padded with *copies of the node's last real label* (and last
//! real target). A probe byte equal to the padding therefore also matches
//! the real lane, and because the zero-detect reports the **lowest**
//! matching lane, the real edge always wins; a probe matching nothing
//! yields an all-zero mask. Leaf nodes are encoded as zero blocks, so a
//! miss falls out of the same loop with no special case.

/// Degree above which a node gets a direct 256-entry child table instead
/// of SWAR blocks. At 32 edges a probe scans at most 4 blocks; beyond
/// that the 1 KiB table is both faster (one load) and rare enough (only
/// near-root nodes of wide-alphabet tries) that memory is a non-issue.
pub(crate) const TABLE_MIN_DEGREE: usize = 32;

/// Lane count of one SWAR block: eight `u8` labels per `u64`.
pub(crate) const SWAR_LANES: usize = 8;

/// Sentinel in direct tables for "no child with this label".
const NO_CHILD: u32 = u32::MAX;

/// Low bit of every SWAR lane.
const LANES_LO: u64 = 0x0101_0101_0101_0101;
/// High bit of every SWAR lane.
const LANES_HI: u64 = 0x8080_8080_8080_8080;

/// Eight out-edges of one node: the labels packed little-endian into one
/// `u64` and the parallel targets right next to them, so a probe touches
/// one 40-byte record.
#[derive(Debug, Clone, Copy, PartialEq)]
struct EdgeBlock {
    labels: u64,
    targets: [u32; SWAR_LANES],
}

/// Per-node descriptor, packed into one `u64`:
/// bit 63 = direct-table flag; otherwise bits 32..40 hold the block count
/// (0 for leaves, ≤ 4 otherwise) and bits 0..32 the offset into `blocks`
/// (resp. `tables` for the table tier).
#[derive(Debug, Clone, Copy, PartialEq)]
struct NodeRef(u64);

const TABLE_TAG: u64 = 1 << 63;

impl NodeRef {
    /// Packs a SWAR-block reference. The offset field is 32 bits wide, so
    /// a synopsis whose block arena outgrows `u32` cannot be represented:
    /// a `debug_assert!` alone would let a release build wrap the offset
    /// and silently serve the wrong children, hence the checked
    /// conversion with a descriptive panic (building such a synopsis is a
    /// capacity limit, not a recoverable input error).
    #[inline]
    fn blocks(offset: usize, count: usize) -> Self {
        assert!(
            offset <= u32::MAX as usize,
            "fastpath block offset {offset} overflows the 32-bit NodeRef field: \
             the synopsis exceeds the accelerated layout's 2^32-block capacity"
        );
        debug_assert!(count <= TABLE_MIN_DEGREE.div_ceil(SWAR_LANES));
        Self(((count as u64) << 32) | offset as u64)
    }

    /// Packs a direct-table reference; checked like [`Self::blocks`].
    #[inline]
    fn table(index: usize) -> Self {
        assert!(
            index <= u32::MAX as usize,
            "fastpath table index {index} overflows the 32-bit NodeRef field: \
             the synopsis exceeds the accelerated layout's 2^32-table capacity"
        );
        Self(TABLE_TAG | index as u64)
    }

    #[inline]
    fn is_table(self) -> bool {
        self.0 & TABLE_TAG != 0
    }

    #[inline]
    fn offset(self) -> usize {
        (self.0 & u32::MAX as u64) as usize
    }

    #[inline]
    fn block_count(self) -> usize {
        ((self.0 >> 32) & 0xFF) as usize
    }
}

/// SWAR lane mask of labels equal to `probe`: broadcast-XOR, then the
/// classic zero-byte detect `(x − 0x01…) & !x & 0x80…`. Higher lanes can
/// carry borrow artifacts, but the **lowest** set lane is always a true
/// match, and that is the only lane [`FastPath::step`] reads.
#[inline]
fn swar_eq_mask(labels: u64, probe: u8) -> u64 {
    let x = labels ^ (LANES_LO.wrapping_mul(probe as u64));
    x.wrapping_sub(LANES_LO) & !x & LANES_HI
}

/// The degree-adaptive accelerated edge index over a frozen CSR trie.
///
/// Purely derived data: building it from equal CSR arrays yields equal
/// `FastPath` values (everything is deterministic), so it participates in
/// `PartialEq` without weakening synopsis equality.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FastPath {
    node_ref: Vec<NodeRef>,
    blocks: Vec<EdgeBlock>,
    tables: Vec<[u32; 256]>,
}

impl FastPath {
    /// Builds the tiered layout from validated CSR arrays (one `O(edges)`
    /// pass). Callers guarantee what `from_bytes` validates: monotone
    /// offsets spanning the arrays and strictly sorted labels per node.
    pub(crate) fn build(edge_start: &[u32], edge_label: &[u8], edge_target: &[u32]) -> Self {
        Self::build_with(
            edge_start.len() - 1,
            |v| (edge_start[v] as usize, edge_start[v + 1] as usize),
            |e| edge_label[e],
            |e| edge_target[e],
        )
    }

    /// Accessor-based variant of [`Self::build`] for storages that do not
    /// expose contiguous `u32`/`f64` slices (the borrowed snapshot
    /// representation reads little-endian fields straight out of a shared
    /// byte buffer). `span(v)` returns the half-open edge range of node
    /// `v`; `label_at`/`target_at` fetch one edge. Deterministic: equal
    /// logical arrays produce equal layouts regardless of storage.
    pub(crate) fn build_with(
        n_nodes: usize,
        span: impl Fn(usize) -> (usize, usize),
        label_at: impl Fn(usize) -> u8,
        target_at: impl Fn(usize) -> u32,
    ) -> Self {
        let mut node_ref = Vec::with_capacity(n_nodes);
        let mut blocks = Vec::new();
        let mut tables: Vec<[u32; 256]> = Vec::new();
        for v in 0..n_nodes {
            let (lo, hi) = span(v);
            let degree = hi - lo;
            if degree > TABLE_MIN_DEGREE {
                let mut table = [NO_CHILD; 256];
                for e in lo..hi {
                    table[label_at(e) as usize] = target_at(e);
                }
                node_ref.push(NodeRef::table(tables.len()));
                tables.push(table);
            } else {
                let offset = blocks.len();
                for chunk in 0..degree.div_ceil(SWAR_LANES) {
                    let base = lo + chunk * SWAR_LANES;
                    // Pad the final partial block with the node's last
                    // real (label, target): duplicates of a real lane can
                    // never steal a lowest-match win from it.
                    let pad_label = label_at(hi - 1);
                    let pad_target = target_at(hi - 1);
                    let mut word = 0u64;
                    let mut tgts = [pad_target; SWAR_LANES];
                    for lane in 0..SWAR_LANES {
                        let e = base + lane;
                        let byte = if e < hi { label_at(e) } else { pad_label };
                        word |= (byte as u64) << (8 * lane);
                        if e < hi {
                            tgts[lane] = target_at(e);
                        }
                    }
                    blocks.push(EdgeBlock { labels: word, targets: tgts });
                }
                node_ref.push(NodeRef::blocks(offset, blocks.len() - offset));
            }
        }
        Self { node_ref, blocks, tables }
    }

    /// One branch-lean child step: the frozen id of `node`'s child along
    /// `byte`, or `None` if no such edge exists.
    #[inline]
    pub(crate) fn step(&self, node: u32, byte: u8) -> Option<u32> {
        let r = self.node_ref[node as usize];
        if r.is_table() {
            let t = self.tables[r.offset()][byte as usize];
            return (t != NO_CHILD).then_some(t);
        }
        let off = r.offset();
        for block in &self.blocks[off..off + r.block_count()] {
            let mask = swar_eq_mask(block.labels, byte);
            if mask != 0 {
                return Some(block.targets[(mask.trailing_zeros() >> 3) as usize]);
            }
        }
        None
    }

    /// Bytes of auxiliary memory the acceleration layout occupies.
    pub(crate) fn memory_bytes(&self) -> usize {
        self.node_ref.len() * std::mem::size_of::<NodeRef>()
            + self.blocks.len() * std::mem::size_of::<EdgeBlock>()
            + self.tables.len() * std::mem::size_of::<[u32; 256]>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference child lookup: the branchy binary search the fast path
    /// replaces.
    fn naive_step(
        edge_start: &[u32],
        edge_label: &[u8],
        edge_target: &[u32],
        node: u32,
        byte: u8,
    ) -> Option<u32> {
        let lo = edge_start[node as usize] as usize;
        let hi = edge_start[node as usize + 1] as usize;
        let i = edge_label[lo..hi].binary_search(&byte).ok()?;
        Some(edge_target[lo + i])
    }

    /// Builds CSR arrays for a root with the given sorted child labels
    /// (children are leaves).
    fn star_csr(labels: &[u8]) -> (Vec<u32>, Vec<u8>, Vec<u32>) {
        let n = labels.len();
        let mut edge_start = vec![0u32, n as u32];
        edge_start.extend(std::iter::repeat_n(n as u32, n));
        let edge_target: Vec<u32> = (1..=n as u32).collect();
        (edge_start, labels.to_vec(), edge_target)
    }

    fn assert_all_probes_agree(labels: &[u8]) {
        let (es, el, et) = star_csr(labels);
        let fast = FastPath::build(&es, &el, &et);
        for probe in 0..=255u8 {
            assert_eq!(
                fast.step(0, probe),
                naive_step(&es, &el, &et, 0, probe),
                "labels {labels:?}, probe {probe:#04x}"
            );
        }
    }

    #[test]
    fn swar_mask_finds_lowest_matching_lane() {
        let word = u64::from_le_bytes([3, 7, 7, 9, 0x80, 0xFF, 0, 1]);
        for (lane, byte) in [(0u32, 3u8), (1, 7), (3, 9), (4, 0x80), (5, 0xFF), (6, 0)] {
            let mask = swar_eq_mask(word, byte);
            assert_ne!(mask, 0, "byte {byte:#04x} must match");
            assert_eq!(mask.trailing_zeros() >> 3, lane, "byte {byte:#04x}");
        }
        assert_eq!(swar_eq_mask(word, 5), 0);
        assert_eq!(swar_eq_mask(word, 2), 0);
    }

    #[test]
    fn every_degree_tier_agrees_with_binary_search() {
        // Degrees crossing every tier boundary: single partial block,
        // exactly one block, multi-block, table.
        for degree in [1usize, 2, 7, 8, 9, 15, 16, 17, 31, 32, 33, 64, 200, 256] {
            let labels: Vec<u8> = (0..degree).map(|i| (i * 256 / degree) as u8).collect();
            assert_all_probes_agree(&labels);
        }
    }

    #[test]
    fn adversarial_label_sets_agree() {
        // Byte values that exercise SWAR borrow/sign corners, clustered
        // labels, and probes equal to the padding label.
        let cases: &[&[u8]] = &[
            &[0x00],
            &[0xFF],
            &[0x00, 0x01, 0x7F, 0x80, 0x81, 0xFE, 0xFF],
            &[0x7F, 0x80],
            &[0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47, 0x48],
            &[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0A],
        ];
        for labels in cases {
            assert_all_probes_agree(labels);
        }
    }

    #[test]
    fn leaf_nodes_miss_every_probe() {
        let (es, el, et) = star_csr(b"a");
        let fast = FastPath::build(&es, &el, &et);
        for probe in 0..=255u8 {
            assert_eq!(fast.step(1, probe), None, "leaf must have no children");
        }
    }

    #[test]
    fn build_with_accessors_matches_slice_build() {
        for degree in [1usize, 8, 9, 33, 200] {
            let labels: Vec<u8> = (0..degree).map(|i| (i * 256 / degree) as u8).collect();
            let (es, el, et) = star_csr(&labels);
            let by_slice = FastPath::build(&es, &el, &et);
            let by_accessor = FastPath::build_with(
                es.len() - 1,
                |v| (es[v] as usize, es[v + 1] as usize),
                |e| el[e],
                |e| et[e],
            );
            assert_eq!(by_slice, by_accessor, "degree {degree}");
        }
    }

    #[test]
    fn node_ref_packs_full_u32_range() {
        // The boundary value must round-trip without colliding with the
        // table tag (bit 63) or the block-count field (bits 32..40).
        let r = NodeRef::blocks(u32::MAX as usize, 4);
        assert!(!r.is_table());
        assert_eq!(r.offset(), u32::MAX as usize);
        assert_eq!(r.block_count(), 4);
        let t = NodeRef::table(u32::MAX as usize);
        assert!(t.is_table());
        assert_eq!(t.offset(), u32::MAX as usize);
    }

    #[test]
    #[should_panic(expected = "overflows the 32-bit NodeRef field")]
    fn node_ref_block_offset_past_u32_panics() {
        let _ = NodeRef::blocks(u32::MAX as usize + 1, 0);
    }

    #[test]
    #[should_panic(expected = "overflows the 32-bit NodeRef field")]
    fn node_ref_table_index_past_u32_panics() {
        let _ = NodeRef::table(u32::MAX as usize + 1);
    }

    #[test]
    fn tier_selection_matches_degree() {
        let (es, el, et) = star_csr(&(0..=255u8).collect::<Vec<_>>());
        let fast = FastPath::build(&es, &el, &et);
        assert_eq!(fast.tables.len(), 1, "σ=256 root must be a direct table");
        let (es, el, et) = star_csr(&[1, 2, 3]);
        let fast = FastPath::build(&es, &el, &et);
        assert!(fast.tables.is_empty());
        assert_eq!(fast.blocks.len(), 1, "degree 3 must pack into one block");
        assert!(fast.memory_bytes() > 0);
    }
}
