//! Differential tests for the accelerated query layout (`fastpath`).
//!
//! The acceleration tiers (SWAR label blocks, direct child tables) must be
//! *behaviorally invisible*: for every trie shape and every probe byte,
//! [`FrozenSynopsis::query`] / [`FrozenSynopsis::contains`] must be
//! bit-identical to the naive binary-search walk
//! ([`FrozenSynopsis::query_naive`] / [`FrozenSynopsis::contains_naive`])
//! and to the arena-trie walk in [`PrivateCountStructure::query`]. The
//! suite sweeps random tries (including full degree-256 nodes and
//! adversarial label sets near the SWAR borrow boundaries), degenerate
//! patterns (empty / absent / over-long), every batch entry point, and a
//! proptest sweep through the frozen ↔ decoded round trip.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{CountMode, FrozenSynopsis, PrivateCountStructure};
use dpsc_strkit::trie::Trie;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Wraps a hand-built trie in the paper structure so it can be frozen.
fn structure_of(trie: Trie<f64>) -> PrivateCountStructure {
    PrivateCountStructure::new(
        trie,
        CountMode::Substring,
        PrivacyParams::pure(1.0),
        1.5,
        2.5,
        64,
        64,
    )
}

/// Builds a random trie over the given label set: `n_paths` random paths of
/// length up to `max_len`, each node carrying a distinct count value.
fn random_trie(labels: &[u8], n_paths: usize, max_len: usize, rng: &mut StdRng) -> Trie<f64> {
    let mut trie: Trie<f64> = Trie::new(1000.0);
    let mut next_val = 0.0f64;
    for _ in 0..n_paths {
        let len = rng.gen_range(1..=max_len);
        let path: Vec<u8> = (0..len).map(|_| labels[rng.gen_range(0..labels.len())]).collect();
        let node = trie.insert_path(&path, |_| 0.0);
        next_val += 0.37;
        *trie.value_mut(node) = next_val;
    }
    trie
}

/// Asserts all query entry points agree bit-for-bit on `patterns`, for the
/// frozen synopsis, the decoded round trip, and the arena-trie oracle.
fn assert_differential(s: &PrivateCountStructure, patterns: &[Vec<u8>]) {
    let f = s.freeze();
    let bytes = f.to_bytes();
    assert_eq!(bytes.len(), f.serialized_len(), "serialized_len must match to_bytes");
    let decoded = FrozenSynopsis::from_bytes(&bytes).expect("roundtrip parses");
    assert_eq!(decoded, f, "decoded synopsis (incl. rebuilt accel) must equal original");

    let refs: Vec<&[u8]> = patterns.iter().map(|p| p.as_slice()).collect();
    let fast: Vec<f64> = refs.iter().map(|p| f.query(p)).collect();
    for (p, &got) in refs.iter().zip(&fast) {
        let oracle = s.query(p);
        assert_eq!(got.to_bits(), oracle.to_bits(), "fast vs trie walk, pattern {p:?}");
        assert_eq!(got.to_bits(), f.query_naive(p).to_bits(), "fast vs naive, pattern {p:?}");
        assert_eq!(
            got.to_bits(),
            decoded.query(p).to_bits(),
            "fast vs decoded fast, pattern {p:?}"
        );
        assert_eq!(f.contains(p), f.contains_naive(p), "contains vs naive, pattern {p:?}");
        assert_eq!(f.contains(p), s.contains(p), "contains vs trie walk, pattern {p:?}");
    }
    assert_eq!(f.query_batch(&refs), fast, "query_batch must equal per-pattern queries");
    for threads in [1usize, 2, 3, 8] {
        assert_eq!(
            f.query_batch_parallel(&refs, threads),
            fast,
            "query_batch_parallel(threads={threads})"
        );
    }
}

/// Patterns exercising hits, misses, prefixes, over-long extensions and the
/// empty pattern, derived from the trie's own label set.
fn probe_patterns(labels: &[u8], max_len: usize, rng: &mut StdRng) -> Vec<Vec<u8>> {
    let mut pats: Vec<Vec<u8>> = vec![Vec::new()];
    for _ in 0..200 {
        let len = rng.gen_range(1..=max_len + 2); // over-long included
        pats.push((0..len).map(|_| labels[rng.gen_range(0..labels.len())]).collect());
    }
    // Bytes *outside* the label set probe the miss path of every tier.
    for &b in &[0u8, 1, 127, 128, 255] {
        pats.push(vec![b]);
        pats.push(vec![labels[0], b]);
    }
    pats
}

#[test]
fn small_alphabet_tries_match_naive_walk() {
    // Degrees ≤ 8: the single-u64 SWAR tier.
    let mut rng = StdRng::seed_from_u64(0xFA57_0001);
    for labels in [&b"ab"[..], b"abcdefgh", b"\x00\x01\x02"] {
        let trie = random_trie(labels, 40, 6, &mut rng);
        let pats = probe_patterns(labels, 6, &mut rng);
        assert_differential(&structure_of(trie), &pats);
    }
}

#[test]
fn mid_fanout_tries_match_naive_walk() {
    // Degrees 9..=32: the multi-block SWAR tier, including partial final
    // blocks of every residue mod 8.
    let mut rng = StdRng::seed_from_u64(0xFA57_0002);
    for sigma in [9usize, 15, 16, 17, 24, 31, 32] {
        let labels: Vec<u8> = (0..sigma as u8).map(|i| b'a'.wrapping_add(i)).collect();
        let trie = random_trie(&labels, 120, 5, &mut rng);
        let pats = probe_patterns(&labels, 5, &mut rng);
        assert_differential(&structure_of(trie), &pats);
    }
}

#[test]
fn degree_256_root_uses_table_and_matches() {
    // A full-fanout root (all 256 labels) exercises the direct-table tier;
    // children keep mixed small/mid degrees.
    let mut rng = StdRng::seed_from_u64(0xFA57_0003);
    let mut trie: Trie<f64> = Trie::new(500.0);
    for b in 0..=255u8 {
        let child = trie.insert_path(&[b], |_| 0.0);
        *trie.value_mut(child) = f64::from(b) + 0.5;
        // Random sub-paths below some children.
        if b % 3 == 0 {
            for _ in 0..4 {
                let tail: Vec<u8> = (0..rng.gen_range(1..4)).map(|_| rng.gen::<u8>()).collect();
                let mut path = vec![b];
                path.extend_from_slice(&tail);
                let node = trie.insert_path(&path, |_| 0.25);
                *trie.value_mut(node) = f64::from(b) * 2.0 + 0.125;
            }
        }
    }
    let all: Vec<u8> = (0..=255u8).collect();
    let mut pats = probe_patterns(&all, 4, &mut rng);
    pats.extend((0..=255u8).map(|b| vec![b]));
    assert_differential(&structure_of(trie), &pats);
}

#[test]
fn adversarial_labels_near_borrow_boundaries_match() {
    // Labels straddling 0x00/0x7F/0x80/0xFF stress the SWAR zero-detect:
    // the subtraction borrow can set high-lane bits, and only the
    // lowest-matching-lane contract keeps lookups exact.
    let mut rng = StdRng::seed_from_u64(0xFA57_0004);
    let sets: [&[u8]; 4] = [
        &[0x00, 0x01, 0x7F, 0x80, 0x81, 0xFE, 0xFF],
        &[0x00, 0xFF],
        &[0x7E, 0x7F, 0x80, 0x81],
        &[0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80],
    ];
    for labels in sets {
        let trie = random_trie(labels, 60, 5, &mut rng);
        let mut pats = probe_patterns(labels, 5, &mut rng);
        // Dense two-byte probes over the adversarial set.
        for &a in labels {
            for &b in labels {
                pats.push(vec![a, b]);
            }
        }
        assert_differential(&structure_of(trie), &pats);
    }
}

#[test]
fn root_only_and_single_chain_edge_cases() {
    // Leaf-only root: zero blocks, every probe is a miss.
    assert_differential(&structure_of(Trie::new(3.25)), &[vec![], vec![0], vec![97], vec![255]]);
    // Single chain: every node has degree exactly 1.
    let mut trie: Trie<f64> = Trie::new(9.0);
    let node = trie.insert_path(b"chain", |d| d as f64);
    *trie.value_mut(node) = 42.0;
    let pats: Vec<Vec<u8>> = vec![
        vec![],
        b"c".to_vec(),
        b"ch".to_vec(),
        b"chain".to_vec(),
        b"chains".to_vec(), // over-long
        b"x".to_vec(),
        b"cx".to_vec(),
    ];
    assert_differential(&structure_of(trie), &pats);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random tries over a byte-select alphabet: the frozen fast path, the
    /// naive walk, the arena walk, and the decoded round trip agree on
    /// random and planted patterns alike.
    #[test]
    fn fastpath_is_behaviorally_invisible(
        paths in proptest::collection::vec(
            proptest::collection::vec(
                proptest::sample::select(vec![0u8, 1, 9, 64, 65, 127, 128, 200, 255]),
                1..7,
            ),
            1..25,
        ),
        seed in 0u64..1024,
    ) {
        let mut trie: Trie<f64> = Trie::new(77.0);
        for (i, p) in paths.iter().enumerate() {
            let node = trie.insert_path(p, |_| 0.0);
            *trie.value_mut(node) = i as f64 + 0.5;
        }
        let s = structure_of(trie);
        let mut rng = StdRng::seed_from_u64(seed);
        let labels = [0u8, 1, 2, 9, 64, 65, 127, 128, 200, 254, 255];
        let mut pats = probe_patterns(&labels, 7, &mut rng);
        pats.extend(paths); // every inserted path is probed verbatim
        assert_differential(&s, &pats);
    }
}
