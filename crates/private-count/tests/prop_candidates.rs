//! Property tests for the candidate construction and the full pipeline in
//! the noise-free regime: Lemma 6's completeness guarantee must hold
//! exactly when noise is (effectively) disabled.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::candidates::{build_candidates_pure, CandidateParams};
use dpsc_private_count::{build_pure, BuildParams, CountMode};
use dpsc_strkit::alphabet::{Alphabet, Database};
use dpsc_strkit::naive_count;
use dpsc_textindex::CorpusIndex;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn docs_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(
        proptest::collection::vec(proptest::sample::select(vec![b'a', b'b', b'c']), 1..14),
        1..8,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Lemma 6 completeness (exact regime): with τ below every nonzero
    /// count and noise ≈ 0, the candidate set contains every substring of
    /// the database.
    #[test]
    fn candidates_cover_all_substrings(docs in docs_strategy()) {
        let db = Database::from_documents(Alphabet::lowercase(3), docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(1);
        let params = CandidateParams {
            delta_clip: db.max_len(),
            privacy: PrivacyParams::pure(1e12),
            beta: 0.1,
            tau_override: Some(0.5),
            level_cap_override: None,
            threads: 1,
        };
        let set = build_candidates_pure(&idx, &params, &mut rng).unwrap();
        let have: std::collections::HashSet<&[u8]> =
            set.strings.iter().map(|s| s.as_slice()).collect();
        for doc in &docs {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    prop_assert!(
                        have.contains(&doc[i..j]),
                        "substring {:?} missing from C",
                        &doc[i..j]
                    );
                }
            }
        }
    }

    /// End-to-end exactness: the full Theorem 1 pipeline at negligible
    /// noise reproduces every count exactly and answers 0 for absent
    /// patterns.
    #[test]
    fn pipeline_exact_in_noiseless_regime(docs in docs_strategy()) {
        let db = Database::from_documents(Alphabet::lowercase(3), docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(2);
        let params = BuildParams::new(
            CountMode::Substring,
            PrivacyParams::pure(1e12),
            0.1,
        )
        .with_thresholds(0.5, 0.5);
        let s = build_pure(&idx, &params, &mut rng).unwrap();
        for doc in &docs {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len().min(i + 8) {
                    let p = &doc[i..j];
                    let exact: usize = docs.iter().map(|d| naive_count(p, d)).sum();
                    prop_assert!(
                        (s.query(p) - exact as f64).abs() < 1e-3,
                        "{:?}: {} vs {}",
                        p,
                        s.query(p),
                        exact
                    );
                }
            }
        }
        prop_assert_eq!(s.query(b"zzz"), 0.0);
        // Structure size bound (paper: O(nℓ²) with count ≥ 1 strings only).
        let (n, ell) = s.db_params();
        prop_assert!(s.node_count() <= n * ell * ell + 1);
    }

    /// Document-count mode agrees with the distinct-document oracle.
    #[test]
    fn pipeline_document_mode_exact(docs in docs_strategy()) {
        let db = Database::from_documents(Alphabet::lowercase(3), docs.clone()).unwrap();
        let idx = CorpusIndex::build(&db);
        let mut rng = StdRng::seed_from_u64(3);
        let params =
            BuildParams::new(CountMode::Document, PrivacyParams::pure(1e12), 0.1)
                .with_thresholds(0.5, 0.5);
        let s = build_pure(&idx, &params, &mut rng).unwrap();
        for doc in docs.iter().take(3) {
            for w in doc.windows(2.min(doc.len())) {
                let exact = idx.document_count(w) as f64;
                prop_assert!((s.query(w) - exact).abs() < 1e-3);
            }
        }
    }
}

#[test]
fn edge_case_single_document_single_letter() {
    let db = Database::new(Alphabet::lowercase(1), 4, vec![b"aaaa".to_vec()]).unwrap();
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(4);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e12), 0.1)
        .with_thresholds(0.5, 0.5);
    let s = build_pure(&idx, &params, &mut rng).unwrap();
    assert!((s.query(b"a") - 4.0).abs() < 1e-3);
    assert!((s.query(b"aa") - 3.0).abs() < 1e-3);
    assert!((s.query(b"aaaa") - 1.0).abs() < 1e-3);
}

#[test]
fn edge_case_length_one_documents() {
    let db =
        Database::new(Alphabet::lowercase(4), 1, vec![b"a".to_vec(), b"b".to_vec(), b"a".to_vec()])
            .unwrap();
    let idx = CorpusIndex::build(&db);
    let mut rng = StdRng::seed_from_u64(5);
    let params = BuildParams::new(CountMode::Document, PrivacyParams::pure(1e12), 0.1)
        .with_thresholds(0.5, 0.5);
    let s = build_pure(&idx, &params, &mut rng).unwrap();
    assert!((s.query(b"a") - 2.0).abs() < 1e-3);
    assert!((s.query(b"b") - 1.0).abs() < 1e-3);
    assert_eq!(s.query(b"c"), 0.0);
    assert_eq!(s.query(b"ab"), 0.0); // longer than ℓ ⇒ absent
}

#[test]
fn edge_case_max_clip_equals_one_on_long_docs() {
    // Δ = 1 clipping with highly repetitive documents: substring counts are
    // huge but the clipped count is the document count.
    let db = Database::new(Alphabet::lowercase(2), 16, vec![vec![b'a'; 16]; 5]).unwrap();
    let idx = CorpusIndex::build(&db);
    assert_eq!(idx.count(b"a"), 80);
    assert_eq!(idx.count_clipped(b"a", 1), 5);
    assert_eq!(idx.count_clipped(b"a", 3), 15);
    assert_eq!(idx.count_clipped(b"aaaa", 1), 5);
}
