//! Merge-sort tree: static range counting of values below a bound.
//!
//! `O(N log N)` space/construction, `O(log² N)` per query. This powers the
//! distinct-document counting of [`crate::doc_counter`] — the classic
//! colored-range-counting reduction (Muthukrishnan \[58\], cited by the paper
//! as the non-private document counting substrate).

/// Segment tree whose node for range `[l, r)` stores the sorted values of
/// that range.
#[derive(Debug, Clone)]
pub struct MergeSortTree {
    /// `levels\[0\]` is the original array; `levels[k]` merges blocks of size
    /// `2^k` into sorted runs of size `2^{k+1}` — a bottom-up representation
    /// that avoids pointer chasing.
    levels: Vec<Vec<i64>>,
    n: usize,
}

impl MergeSortTree {
    /// Builds the tree over `values`.
    pub fn build(values: &[i64]) -> Self {
        let n = values.len();
        let mut levels = Vec::new();
        levels.push(values.to_vec());
        let mut width = 1usize;
        while width < n {
            let prev = levels.last().expect("at least one level");
            let mut next = Vec::with_capacity(n);
            let mut i = 0usize;
            while i < n {
                let mid = (i + width).min(n);
                let end = (i + 2 * width).min(n);
                // Merge prev[i..mid] and prev[mid..end] (each sorted runs of
                // width `width`, except at level 0 where runs are single
                // elements — also sorted).
                let (mut a, mut b) = (i, mid);
                while a < mid && b < end {
                    if prev[a] <= prev[b] {
                        next.push(prev[a]);
                        a += 1;
                    } else {
                        next.push(prev[b]);
                        b += 1;
                    }
                }
                next.extend_from_slice(&prev[a..mid]);
                next.extend_from_slice(&prev[b..end]);
                i = end;
            }
            levels.push(next);
            width *= 2;
        }
        Self { levels, n }
    }

    /// Number of indices `i ∈ [lo, hi)` with `values[i] < bound`.
    ///
    /// Decomposes `[lo, hi)` into `O(log N)` aligned blocks and binary
    /// searches each.
    pub fn count_less(&self, lo: usize, hi: usize, bound: i64) -> usize {
        assert!(lo <= hi && hi <= self.n, "range out of bounds");
        if lo == hi {
            return 0;
        }
        let mut total = 0usize;
        let mut l = lo;
        let r = hi;
        // Greedy dyadic decomposition: at each step, peel off the largest
        // aligned block at the left/right boundary.
        while l < r {
            // Largest power-of-two block starting at l, inside [l, r).
            let max_by_align = if l == 0 { usize::MAX } else { l & l.wrapping_neg() };
            let mut size = 1usize;
            while size * 2 <= max_by_align.min(r - l) && size * 2 <= self.n {
                size *= 2;
            }
            while size > r - l || !l.is_multiple_of(size) {
                size /= 2;
            }
            let level = size.trailing_zeros() as usize;
            let run = &self.levels[level][l..(l + size).min(self.levels[level].len())];
            total += run.partition_point(|&v| v < bound);
            l += size;
        }
        total
    }

    /// Length of the underlying array.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the array is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(values: &[i64], lo: usize, hi: usize, bound: i64) -> usize {
        values[lo..hi].iter().filter(|&&v| v < bound).count()
    }

    #[test]
    fn matches_naive_exhaustive() {
        let values: Vec<i64> = vec![3, -1, 4, 1, -5, 9, 2, 6, 5, 3, 5, -8, 9, 7];
        let tree = MergeSortTree::build(&values);
        for lo in 0..values.len() {
            for hi in lo..=values.len() {
                for bound in [-10, -5, 0, 1, 3, 5, 9, 10] {
                    assert_eq!(
                        tree.count_less(lo, hi, bound),
                        naive(&values, lo, hi, bound),
                        "[{lo},{hi}) bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_power_of_two_lengths() {
        for n in [1usize, 2, 3, 5, 7, 13, 17, 31, 33] {
            let values: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % 101 - 50).collect();
            let tree = MergeSortTree::build(&values);
            for lo in 0..n {
                for hi in lo..=n {
                    let bound = 0;
                    assert_eq!(tree.count_less(lo, hi, bound), naive(&values, lo, hi, bound));
                }
            }
        }
    }

    #[test]
    fn empty_array() {
        let tree = MergeSortTree::build(&[]);
        assert_eq!(tree.count_less(0, 0, 5), 0);
        assert!(tree.is_empty());
    }
}
