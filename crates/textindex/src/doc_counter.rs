//! Distinct-document counting over suffix-array intervals.
//!
//! Document Count(P) is the number of *distinct* documents among the
//! occurrences of `P`, i.e. the number of distinct colors in the suffix-array
//! interval of `P`. We use the classic reduction (Muthukrishnan \[58\]): let
//! `prev[r]` be the previous rank with the same document as rank `r` (or
//! `-1`). The distinct documents in `[lo, hi)` are exactly the ranks with
//! `prev[r] < lo`, counted with a [`MergeSortTree`] in `O(log² N)`.

use dpsc_strkit::search::SaInterval;
use dpsc_strkit::suffix_array::SuffixArray;

use crate::range_count::MergeSortTree;

/// Distinct-color counter over the suffix array's rank sequence.
#[derive(Debug, Clone)]
pub struct DocDistinctCounter {
    tree: MergeSortTree,
}

impl DocDistinctCounter {
    /// Builds from the suffix array and the per-text-position document ids.
    pub fn build(sa: &SuffixArray, doc_of: &[u32]) -> Self {
        let n = sa.len();
        assert_eq!(n, doc_of.len());
        let n_docs = doc_of.iter().copied().max().map_or(0, |d| d as usize + 1);
        let mut last_rank_of_doc: Vec<i64> = vec![-1; n_docs];
        let mut prev: Vec<i64> = vec![-1; n];
        for (r, &pos) in sa.sa().iter().enumerate() {
            let d = doc_of[pos as usize] as usize;
            prev[r] = last_rank_of_doc[d];
            last_rank_of_doc[d] = r as i64;
        }
        Self { tree: MergeSortTree::build(&prev) }
    }

    /// Number of distinct documents among ranks `[iv.lo, iv.hi)`.
    pub fn distinct(&self, iv: SaInterval) -> usize {
        if iv.is_empty() {
            return 0;
        }
        self.tree.count_less(iv.lo as usize, iv.hi as usize, iv.lo as i64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::search::find_interval;

    #[test]
    fn distinct_matches_naive() {
        // Text "abab|baba|aaaa" as three docs concatenated with sentinels.
        let docs: [&[u8]; 3] = [b"abab", b"baba", b"aaaa"];
        let n_docs = docs.len();
        let mut text: Vec<u32> = Vec::new();
        let mut doc_of: Vec<u32> = Vec::new();
        for (i, d) in docs.iter().enumerate() {
            for &b in *d {
                text.push(n_docs as u32 + b as u32);
                doc_of.push(i as u32);
            }
            text.push(i as u32);
            doc_of.push(i as u32);
        }
        let sa = SuffixArray::from_ints(&text, 256 + n_docs);
        let counter = DocDistinctCounter::build(&sa, &doc_of);

        let check = |pat: &[u8], want: usize| {
            let encoded: Vec<u32> = pat.iter().map(|&b| n_docs as u32 + b as u32).collect();
            let iv = find_interval(&encoded, &text, &sa);
            assert_eq!(counter.distinct(iv), want, "pattern {:?}", pat);
        };
        check(b"ab", 2); // abab, baba
        check(b"a", 3);
        check(b"aa", 1); // aaaa only
        check(b"bb", 0);
        check(b"abab", 1);
    }

    #[test]
    fn empty_interval_is_zero() {
        let sa = SuffixArray::from_bytes(b"ab");
        let counter = DocDistinctCounter::build(&sa, &[0, 0]);
        assert_eq!(counter.distinct(SaInterval::EMPTY), 0);
    }
}
