//! Enumeration of distinct fixed-length substrings (depth groups).
//!
//! For a length `d`, the distinct length-`d` substrings of the corpus
//! partition the valid suffix-array ranks into contiguous runs — these are
//! exactly the leaves below the "`d`-minimal nodes" of the suffix tree used
//! by the paper's fast q-gram algorithm (proof of Lemma 21, phase `k` with
//! `d = 2^k`). Enumerating them costs one linear scan of the LCP array.

use dpsc_strkit::search::SaInterval;

use crate::corpus::CorpusIndex;

/// One distinct length-`d` substring of the corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DepthGroup {
    /// Suffix-array interval of all occurrences.
    pub interval: SaInterval,
    /// Text position of one occurrence (the paper's "witness occurrence",
    /// stored as `leaf(v)` in Lemma 21).
    pub witness_pos: u32,
}

impl DepthGroup {
    /// Total occurrences of the substring.
    #[inline]
    pub fn count(&self) -> usize {
        self.interval.count()
    }
}

/// Enumerates all distinct length-`d` substrings of the corpus, in
/// lexicographic order. `O(N)` time.
///
/// A rank participates iff its suffix has at least `d` symbols left in its
/// document (occurrences never cross sentinels); runs are split where the
/// adjacent LCP drops below `d`.
pub fn depth_groups(idx: &CorpusIndex, d: usize) -> Vec<DepthGroup> {
    assert!(d >= 1, "depth must be at least 1");
    let sa = idx.suffix_array().sa();
    let lcp = idx.lcp().values();
    let n = sa.len();
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for r in 0..n {
        let pos = sa[r] as usize;
        let valid = idx.remaining_in_doc(pos) >= d;
        if !valid {
            debug_assert!(
                run_start.is_none() || (lcp[r] as usize) < d,
                "invalid rank inside a depth-{d} run"
            );
            if let Some(start) = run_start.take() {
                out.push(DepthGroup {
                    interval: SaInterval { lo: start as u32, hi: r as u32 },
                    witness_pos: sa[start],
                });
            }
            continue;
        }
        match run_start {
            Some(start) if (lcp[r] as usize) >= d => {
                // Same d-prefix; extend the run.
                let _ = start;
            }
            Some(start) => {
                out.push(DepthGroup {
                    interval: SaInterval { lo: start as u32, hi: r as u32 },
                    witness_pos: sa[start],
                });
                run_start = Some(r);
            }
            None => run_start = Some(r),
        }
    }
    if let Some(start) = run_start {
        out.push(DepthGroup {
            interval: SaInterval { lo: start as u32, hi: n as u32 },
            witness_pos: sa[start],
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::Database;
    use dpsc_strkit::naive_count;
    use std::collections::BTreeMap;

    fn naive_qgram_counts(db: &Database, d: usize) -> BTreeMap<Vec<u8>, usize> {
        let mut map = BTreeMap::new();
        for doc in db.documents() {
            if doc.len() < d {
                continue;
            }
            for w in doc.windows(d) {
                map.entry(w.to_vec()).or_insert(0);
            }
        }
        for (gram, cnt) in map.iter_mut() {
            *cnt = db.documents().iter().map(|doc| naive_count(gram, doc)).sum();
        }
        map
    }

    #[test]
    fn groups_match_naive_qgrams() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        for d in 1..=5 {
            let groups = depth_groups(&idx, d);
            let naive = naive_qgram_counts(&db, d);
            assert_eq!(groups.len(), naive.len(), "number of distinct {d}-grams");
            // Groups are in lexicographic order, matching the BTreeMap.
            for (g, (gram, cnt)) in groups.iter().zip(naive.iter()) {
                let decoded = idx.decode_substring(g.witness_pos as usize, d);
                assert_eq!(&decoded, gram, "d={d}");
                assert_eq!(g.count(), *cnt, "count of {:?}", gram);
            }
        }
    }

    #[test]
    fn depth_exceeding_docs_yields_empty() {
        let db = Database::paper_example();
        let idx = CorpusIndex::build(&db);
        assert!(depth_groups(&idx, 6).is_empty());
    }
}
