//! # dpsc-textindex — corpus indexing substrate
//!
//! The generalized suffix index over a database `D = S_1, …, S_n` that every
//! mechanism in this system queries for *true* counts before adding noise:
//!
//! * [`CorpusIndex`] — suffix array + LCP + rolling hash over
//!   `S_1 $_1 … S_n $_n` (the construction in the paper's Lemma 7), exposing
//!   `count(P, D)`, the clipped `count_Δ(P, D)`, and `Document Count`
//!   lookups.
//! * [`doc_counter::DocDistinctCounter`] — distinct-document counting over
//!   suffix-array intervals via the prev-occurrence reduction and a
//!   merge-sort tree ([`range_count::MergeSortTree`]).
//! * [`qgrams::depth_groups`] — enumeration of the distinct length-`d`
//!   substrings (the `d`-minimal suffix-tree nodes of Lemma 21), the engine
//!   of the fast (ε,δ)-DP q-gram construction (Theorem 4).
//!
//! Everything here is *non-private*: it computes exact counts. Privacy lives
//! in `dpsc-dpcore` / `dpsc-private-count`, which consume these counts.

pub mod corpus;
pub mod doc_counter;
pub mod qgrams;
pub mod range_count;

pub use corpus::CorpusIndex;
pub use doc_counter::DocDistinctCounter;
pub use qgrams::{depth_groups, DepthGroup};
pub use range_count::MergeSortTree;
