//! Generalized suffix index over a document corpus.
//!
//! Implements the paper's indexing substrate (proof of Lemma 7): the suffix
//! structure of `S = S_1 $_1 S_2 $_2 … S_n $_n` where the `$_i` are `n`
//! distinct sentinels outside `Σ`. We encode the concatenation over `u32`
//! symbols — sentinel `i` maps to `i`, and byte `b` maps to `n + b` — so all
//! sentinels are distinct, smaller than every letter, and SA-IS applies
//! directly.
//!
//! Every count the paper's mechanisms privatize reduces to a suffix-array
//! interval over this text:
//!
//! * `count(P, D)` = interval width ([`CorpusIndex::count`]);
//! * `count_Δ(P, D)` = per-document clipped sum over the interval
//!   ([`CorpusIndex::count_clipped`]);
//! * `count_1(P, D)` (Document Count) = number of distinct documents in the
//!   interval ([`CorpusIndex::document_count`], backed by the
//!   prev-occurrence + merge-sort-tree structure in
//!   [`crate::doc_counter`]).

use dpsc_strkit::alphabet::{Alphabet, Database};
use dpsc_strkit::hash::{HashValue, RollingHash};
use dpsc_strkit::lcp::LcpArray;
use dpsc_strkit::search::{find_interval, SaInterval};
use dpsc_strkit::suffix_array::SuffixArray;

use crate::doc_counter::DocDistinctCounter;

/// Immutable index over a [`Database`].
#[derive(Debug, Clone)]
pub struct CorpusIndex {
    /// Concatenated text with per-document sentinels, in `u32` encoding.
    text: Vec<u32>,
    /// Document id owning each text position (sentinels belong to their
    /// document).
    doc_of: Vec<u32>,
    /// Start offset of each document in `text`.
    doc_start: Vec<u32>,
    sa: SuffixArray,
    lcp: LcpArray,
    hash: RollingHash,
    n_docs: usize,
    max_len: usize,
    alphabet: Alphabet,
    doc_counter: DocDistinctCounter,
}

impl CorpusIndex {
    /// Builds the index in `O(N log N)` time for `N = Σ|S_i| + n`
    /// (the `log` comes from the merge-sort tree; the suffix array itself is
    /// linear).
    pub fn build(db: &Database) -> Self {
        let n_docs = db.n();
        let total: usize = db.total_len() + n_docs;
        let mut text = Vec::with_capacity(total);
        let mut doc_of = Vec::with_capacity(total);
        let mut doc_start = Vec::with_capacity(n_docs);
        for (i, doc) in db.documents().iter().enumerate() {
            doc_start.push(text.len() as u32);
            for &b in doc {
                text.push(n_docs as u32 + b as u32);
                doc_of.push(i as u32);
            }
            text.push(i as u32); // sentinel $_i
            doc_of.push(i as u32);
        }
        let sigma = n_docs + 256;
        let sa = SuffixArray::from_ints(&text, sigma);
        let lcp = LcpArray::build(&text, &sa);
        let hash = RollingHash::new(&text);
        let doc_counter = DocDistinctCounter::build(&sa, &doc_of);
        Self {
            text,
            doc_of,
            doc_start,
            sa,
            lcp,
            hash,
            n_docs,
            max_len: db.max_len(),
            alphabet: db.alphabet(),
            doc_counter,
        }
    }

    /// Number of documents `n`.
    #[inline]
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// Declared maximum document length `ℓ`.
    #[inline]
    pub fn max_len(&self) -> usize {
        self.max_len
    }

    /// Alphabet size `|Σ|` of the underlying database.
    #[inline]
    pub fn alphabet_size(&self) -> usize {
        self.alphabet.size()
    }

    /// The database alphabet.
    #[inline]
    pub fn alphabet(&self) -> Alphabet {
        self.alphabet
    }

    /// Smallest byte value of the alphabet (the alphabet is a contiguous
    /// byte range; see [`Alphabet`]).
    #[inline]
    pub fn alphabet_base(&self) -> u8 {
        self.alphabet.base()
    }

    /// Length of the concatenated text (including sentinels).
    #[inline]
    pub fn text_len(&self) -> usize {
        self.text.len()
    }

    /// The underlying suffix array.
    #[inline]
    pub fn suffix_array(&self) -> &SuffixArray {
        &self.sa
    }

    /// The LCP array companion.
    #[inline]
    pub fn lcp(&self) -> &LcpArray {
        &self.lcp
    }

    /// Encodes a pattern byte into the internal `u32` symbol space.
    #[inline]
    fn encode(&self, b: u8) -> u32 {
        self.n_docs as u32 + b as u32
    }

    /// Suffix-array interval of `pattern` (as raw bytes over `Σ`).
    ///
    /// `O(|P| log N)`. Patterns never contain sentinels, so an interval
    /// position always corresponds to an occurrence fully inside one
    /// document.
    pub fn interval(&self, pattern: &[u8]) -> SaInterval {
        let encoded: Vec<u32> = pattern.iter().map(|&b| self.encode(b)).collect();
        find_interval(&encoded, &self.text, &self.sa)
    }

    /// Narrows a suffix-array interval by one more pattern symbol: given
    /// the interval of suffixes starting with some `P` of length `depth`,
    /// returns the interval of suffixes starting with `P·b`. `O(log N)`.
    ///
    /// This is the incremental form of [`CorpusIndex::interval`]; walking a
    /// pattern symbol-by-symbol costs `O(|P| log N)` total and lets trie
    /// construction share work across candidates with common prefixes. It
    /// is the innermost operation of Step 2 (exact-count trie), so the
    /// binary searches are inlined and allocation-free.
    #[inline]
    pub fn extend_interval(&self, iv: SaInterval, depth: usize, b: u8) -> SaInterval {
        if iv.is_empty() {
            return SaInterval::EMPTY;
        }
        let c = self.encode(b);
        let sa = self.sa.sa();
        let text = &self.text[..];
        // Symbol of rank r at offset `depth`; suffixes shorter than depth+1
        // cannot occur here for sentinel-free prefixes, but guard anyway by
        // treating them as minimal.
        #[inline]
        fn sym(sa: &[u32], text: &[u32], r: u32, depth: usize) -> u32 {
            let pos = sa[r as usize] as usize + depth;
            if pos < text.len() {
                text[pos]
            } else {
                0
            }
        }
        let lo = iv.lo + partition_u32(iv.hi - iv.lo, |off| sym(sa, text, iv.lo + off, depth) < c);
        let hi = iv.lo + partition_u32(iv.hi - iv.lo, |off| sym(sa, text, iv.lo + off, depth) <= c);
        SaInterval { lo, hi }
    }

    /// The full interval `[0, N)` (every suffix matches the empty pattern).
    pub fn full_interval(&self) -> SaInterval {
        SaInterval { lo: 0, hi: self.text.len() as u32 }
    }

    /// `count(P, D)`: total occurrences of `pattern` across all documents.
    ///
    /// For the empty pattern the paper defines `count(ε, S) = |S|`, so the
    /// database-level count is the total symbol count.
    pub fn count(&self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return self.text.len() - self.n_docs;
        }
        self.interval(pattern).count()
    }

    /// `count_Δ(P, D) = Σ_S min(Δ, count(P, S))` (paper §1.1).
    ///
    /// `O(|P| log N + occ)` via interval iteration with a per-document tally.
    pub fn count_clipped(&self, pattern: &[u8], delta: usize) -> u64 {
        assert!(delta >= 1, "Δ must be at least 1");
        if pattern.is_empty() {
            // count(ε, S) = |S|, clipped at Δ per document.
            return self.doc_lengths().map(|len| len.min(delta) as u64).sum();
        }
        let iv = self.interval(pattern);
        self.count_clipped_in_interval(iv, delta)
    }

    /// Clipped count over a precomputed interval.
    ///
    /// Allocation-free on the hot path: the per-document tally lives in a
    /// thread-local dense scratch (one `u32` per document plus a touched
    /// list), reset by touched entries after each call, so repeated calls —
    /// one per candidate pair in Step 1 and one per new trie node in
    /// Step 2 — never hit the allocator or hash a key.
    pub fn count_clipped_in_interval(&self, iv: SaInterval, delta: usize) -> u64 {
        if iv.is_empty() {
            return 0;
        }
        if delta == 1 {
            // count_1 is exactly Document Count: distinct documents in the
            // interval, answered in O(log² N) without touching occurrences.
            return self.doc_counter.distinct(iv) as u64;
        }
        if delta >= self.max_len {
            // min(Δ, count(P,S)) = count(P,S) whenever Δ ≥ ℓ ≥ count(P,S).
            return iv.count() as u64;
        }
        thread_local! {
            static TALLY: std::cell::RefCell<(Vec<u32>, Vec<u32>)> =
                const { std::cell::RefCell::new((Vec::new(), Vec::new())) };
        }
        TALLY.with(|cell| {
            let mut scratch = cell.borrow_mut();
            let (counts, touched) = &mut *scratch;
            if counts.len() < self.n_docs {
                counts.resize(self.n_docs, 0);
            }
            debug_assert!(touched.is_empty());
            let sa = self.sa.sa();
            for r in iv.lo..iv.hi {
                let doc = self.doc_of[sa[r as usize] as usize];
                let slot = &mut counts[doc as usize];
                if *slot == 0 {
                    touched.push(doc);
                }
                *slot += 1;
            }
            let mut total = 0u64;
            for &doc in touched.iter() {
                let slot = &mut counts[doc as usize];
                total += (*slot as usize).min(delta) as u64;
                *slot = 0;
            }
            touched.clear();
            total
        })
    }

    /// `count_1(P, D)` (Document Count): number of documents containing
    /// `pattern`. `O(|P| log N + log² N)` via the merge-sort tree.
    pub fn document_count(&self, pattern: &[u8]) -> usize {
        if pattern.is_empty() {
            return self.n_docs;
        }
        let iv = self.interval(pattern);
        self.document_count_in_interval(iv)
    }

    /// Distinct documents in a precomputed interval.
    pub fn document_count_in_interval(&self, iv: SaInterval) -> usize {
        self.doc_counter.distinct(iv)
    }

    /// All occurrences of `pattern` as `(document, offset_in_document)`
    /// pairs, unordered.
    pub fn occurrences(&self, pattern: &[u8]) -> Vec<(usize, usize)> {
        let iv = self.interval(pattern);
        (iv.lo..iv.hi)
            .map(|r| {
                let pos = self.sa.sa()[r as usize] as usize;
                let doc = self.doc_of[pos] as usize;
                (doc, pos - self.doc_start[doc] as usize)
            })
            .collect()
    }

    /// Length of each document.
    pub fn doc_lengths(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n_docs).map(move |i| {
            let start = self.doc_start[i] as usize;
            let end = if i + 1 < self.n_docs {
                self.doc_start[i + 1] as usize - 1 // exclude sentinel
            } else {
                self.text.len() - 1
            };
            end - start
        })
    }

    /// Number of symbols of position `pos`'s document that remain at and
    /// after `pos` (i.e. before its sentinel). Occurrence starts with
    /// `remaining ≥ |P|` are exactly the valid in-document matches.
    pub fn remaining_in_doc(&self, pos: usize) -> usize {
        let doc = self.doc_of[pos] as usize;
        let sentinel = if doc + 1 < self.n_docs {
            self.doc_start[doc + 1] as usize - 1
        } else {
            self.text.len() - 1
        };
        sentinel - pos
    }

    /// Document id owning text position `pos`.
    #[inline]
    pub fn doc_of(&self, pos: usize) -> usize {
        self.doc_of[pos] as usize
    }

    /// Rolling hash of `text[pos .. pos + len)` (internal symbol space, so
    /// hashes are only comparable to other corpus hashes and to
    /// [`CorpusIndex::hash_pattern`] values).
    pub fn substring_hash(&self, pos: usize, len: usize) -> HashValue {
        self.hash.substring(pos, pos + len)
    }

    /// Hash of two corpus substrings concatenated.
    pub fn concat_hash(&self, a: HashValue, b: HashValue) -> HashValue {
        self.hash.concat(a, b)
    }

    /// Hash of an arbitrary pattern in the corpus symbol space.
    pub fn hash_pattern(&self, pattern: &[u8]) -> HashValue {
        let encoded: Vec<u32> = pattern.iter().map(|&b| self.encode(b)).collect();
        // Hash in the same parameter space as the corpus text.
        let h = RollingHash::new(&encoded);
        h.substring(0, encoded.len())
    }

    /// Decodes `text[pos .. pos+len)` back to raw bytes.
    ///
    /// # Panics
    /// Panics if the range crosses a sentinel.
    pub fn decode_substring(&self, pos: usize, len: usize) -> Vec<u8> {
        self.text[pos..pos + len]
            .iter()
            .map(|&c| {
                assert!(c >= self.n_docs as u32, "range crosses a sentinel");
                (c - self.n_docs as u32) as u8
            })
            .collect()
    }
}

/// First `off ∈ [0, n)` where `pred` flips from true to false.
#[inline]
fn partition_u32(n: u32, pred: impl Fn(u32) -> bool) -> u32 {
    let mut lo = 0u32;
    let mut hi = n;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::alphabet::{Alphabet, Database};
    use dpsc_strkit::{naive_contains, naive_count};

    fn paper_db() -> Database {
        Database::paper_example()
    }

    #[test]
    fn counts_match_example_1() {
        let idx = CorpusIndex::build(&paper_db());
        assert_eq!(idx.document_count(b"ab"), 3);
        assert_eq!(idx.count(b"ab"), 4);
        // count_Δ interpolates.
        assert_eq!(idx.count_clipped(b"ab", 1), 3);
        assert_eq!(idx.count_clipped(b"ab", 5), 4);
        // "a" appears 4+1+2+1+0+0 = 8 times.
        assert_eq!(idx.count(b"a"), 8);
        assert_eq!(idx.count_clipped(b"a", 2), 2 + 1 + 2 + 1);
    }

    #[test]
    fn counts_match_naive_on_all_substrings() {
        let db = paper_db();
        let idx = CorpusIndex::build(&db);
        for doc in db.documents() {
            for i in 0..doc.len() {
                for j in i + 1..=doc.len() {
                    let p = &doc[i..j];
                    let want_count: usize = db.documents().iter().map(|d| naive_count(p, d)).sum();
                    let want_docs = db.documents().iter().filter(|d| naive_contains(p, d)).count();
                    assert_eq!(idx.count(p), want_count, "count of {:?}", p);
                    assert_eq!(idx.document_count(p), want_docs, "doc count of {:?}", p);
                    for delta in 1..=db.max_len() {
                        let want: u64 = db
                            .documents()
                            .iter()
                            .map(|d| naive_count(p, d).min(delta) as u64)
                            .sum();
                        assert_eq!(idx.count_clipped(p, delta), want);
                    }
                }
            }
        }
    }

    #[test]
    fn absent_pattern_counts_zero() {
        let idx = CorpusIndex::build(&paper_db());
        assert_eq!(idx.count(b"zz"), 0);
        assert_eq!(idx.document_count(b"zz"), 0);
        assert_eq!(idx.count_clipped(b"zz", 3), 0);
    }

    #[test]
    fn empty_pattern_conventions() {
        let db = paper_db();
        let idx = CorpusIndex::build(&db);
        let total: usize = db.documents().iter().map(|d| d.len()).sum();
        assert_eq!(idx.count(b""), total);
        assert_eq!(idx.document_count(b""), db.n());
        let want: u64 = db.documents().iter().map(|d| d.len().min(2) as u64).sum();
        assert_eq!(idx.count_clipped(b"", 2), want);
    }

    #[test]
    fn occurrences_positions() {
        let idx = CorpusIndex::build(&paper_db());
        let mut occ = idx.occurrences(b"ab");
        occ.sort_unstable();
        // aaaa:none, abe:0, absab:0 and 3, babe:1.
        assert_eq!(occ, vec![(1, 0), (2, 0), (2, 3), (3, 1)]);
    }

    #[test]
    fn doc_lengths_and_remaining() {
        let db = paper_db();
        let idx = CorpusIndex::build(&db);
        let lens: Vec<usize> = idx.doc_lengths().collect();
        assert_eq!(lens, vec![4, 3, 5, 4, 3, 4]);
        // First doc "aaaa": position 0 has 4 symbols remaining.
        assert_eq!(idx.remaining_in_doc(0), 4);
        assert_eq!(idx.remaining_in_doc(3), 1);
        assert_eq!(idx.remaining_in_doc(4), 0); // sentinel position
    }

    #[test]
    fn single_document_corpus() {
        let db = Database::new(Alphabet::lowercase(26), 6, vec![b"banana".to_vec()]).unwrap();
        let idx = CorpusIndex::build(&db);
        assert_eq!(idx.count(b"an"), 2);
        assert_eq!(idx.document_count(b"an"), 1);
        assert_eq!(idx.count_clipped(b"an", 1), 1);
    }

    #[test]
    fn extend_interval_matches_direct_lookup() {
        let db = paper_db();
        let idx = CorpusIndex::build(&db);
        for pat in [&b"a"[..], b"ab", b"abs", b"absab", b"be", b"bees", b"zz", b"az"] {
            let mut iv = idx.full_interval();
            for (depth, &b) in pat.iter().enumerate() {
                iv = idx.extend_interval(iv, depth, b);
            }
            let direct = idx.interval(pat);
            if direct.is_empty() {
                // Empty intervals may differ in position, never in content.
                assert!(iv.is_empty(), "pattern {:?}", pat);
            } else {
                assert_eq!(iv, direct, "pattern {:?}", pat);
            }
        }
    }

    #[test]
    fn hash_pattern_matches_substring_hash() {
        let db = paper_db();
        let idx = CorpusIndex::build(&db);
        // "abs" occurs in document 2 at offset 0; find its text position.
        let occ = idx.occurrences(b"abs");
        assert_eq!(occ.len(), 1);
        let iv = idx.interval(b"abs");
        let pos = idx.suffix_array().sa()[iv.lo as usize] as usize;
        assert_eq!(idx.substring_hash(pos, 3), idx.hash_pattern(b"abs"));
        assert_eq!(idx.decode_substring(pos, 3), b"abs".to_vec());
    }
}
