//! Applications of the tree-counting theorems: hierarchical histograms and
//! the colored tree counting problem (paper §1.1.3).
//!
//! * **Hierarchical histogram** — leaves are universe elements, `c(v)` is
//!   the number of data items below `v` (zip → area → state rollups, the
//!   range-counting application of \[40\]). Leaf sensitivity `d = 2`,
//!   per-node `Δ = 1` under the replace-one-item neighboring relation.
//! * **Colored tree counting** — every universe element additionally has a
//!   *color*; `c(v)` is the number of **distinct colors** among the data
//!   items below `v` ("counting distinct elements in a time window" \[41\]).
//!   Same sensitivities: replacing one item removes at most one color from
//!   each ancestor of the old leaf and adds at most one to each ancestor of
//!   the new leaf.

use rand::Rng;
use std::collections::HashSet;

use dpsc_dpcore::budget::PrivacyParams;

use crate::tree::{NodeId, Tree};
use crate::tree_counting::{
    private_tree_counts_approx, private_tree_counts_pure, TreeCountEstimate, TreeSensitivity,
};

/// A universe whose elements live at the leaves of a tree, each with a color.
#[derive(Debug, Clone)]
pub struct ColoredUniverse {
    tree: Tree,
    /// Leaf node of each universe element.
    leaf_of: Vec<NodeId>,
    /// Color of each universe element.
    color_of: Vec<u32>,
}

impl ColoredUniverse {
    /// Creates a universe. `leaf_of[e]` must be a leaf of `tree`.
    pub fn new(tree: Tree, leaf_of: Vec<NodeId>, color_of: Vec<u32>) -> Self {
        assert_eq!(leaf_of.len(), color_of.len(), "one color per element");
        for &l in &leaf_of {
            assert!(tree.is_leaf(l), "element mapped to non-leaf node {l}");
        }
        Self { tree, leaf_of, color_of }
    }

    /// The underlying tree.
    #[inline]
    pub fn tree(&self) -> &Tree {
        &self.tree
    }

    /// Number of universe elements.
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.leaf_of.len()
    }

    /// Exact histogram counts: `c(v)` = number of dataset items at leaves
    /// below `v`. `O(|dataset| · h)`.
    pub fn histogram_counts(&self, dataset: &[u32]) -> Vec<u64> {
        let mut counts = vec![0u64; self.tree.n()];
        for &item in dataset {
            let mut v = self.leaf_of[item as usize];
            loop {
                counts[v as usize] += 1;
                if v == self.tree.root() {
                    break;
                }
                v = self.tree.parent(v);
            }
        }
        counts
    }

    /// Exact colored counts: `c(v)` = number of distinct colors among
    /// dataset items below `v`. Small-to-large merging, `O(m log m)` sets.
    pub fn colored_counts(&self, dataset: &[u32]) -> Vec<u64> {
        let n = self.tree.n();
        // Colors present at each leaf.
        let mut at_node: Vec<HashSet<u32>> = vec![HashSet::new(); n];
        for &item in dataset {
            at_node[self.leaf_of[item as usize] as usize].insert(self.color_of[item as usize]);
        }
        let mut counts = vec![0u64; n];
        let order = self.tree.dfs_preorder();
        for &v in order.iter().rev() {
            // Merge children into v (small-to-large): take the largest child
            // set as the base.
            let mut base: HashSet<u32> = std::mem::take(&mut at_node[v as usize]);
            for &c in self.tree.children(v) {
                let child_set = std::mem::take(&mut at_node[c as usize]);
                // Children were already counted; reuse their sets.
                let (mut big, small) = if child_set.len() > base.len() {
                    (child_set, base)
                } else {
                    (base, child_set)
                };
                big.extend(small);
                base = big;
            }
            counts[v as usize] = base.len() as u64;
            at_node[v as usize] = base;
        }
        counts
    }

    /// Sensitivities under the replace-one-item relation, for both the
    /// histogram and the colored variants: `d = 2`, `Δ = 1`.
    pub fn replace_one_sensitivity() -> TreeSensitivity {
        TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 }
    }

    /// ε-DP colored tree counting (Theorem 8 applied to colored counts).
    pub fn private_colored_counts_pure<R: Rng + ?Sized>(
        &self,
        dataset: &[u32],
        privacy: PrivacyParams,
        beta: f64,
        rng: &mut R,
    ) -> TreeCountEstimate {
        let counts = self.colored_counts(dataset);
        private_tree_counts_pure(
            &self.tree,
            &counts,
            Self::replace_one_sensitivity(),
            privacy,
            beta,
            rng,
        )
    }

    /// (ε,δ)-DP colored tree counting (Theorem 9).
    pub fn private_colored_counts_approx<R: Rng + ?Sized>(
        &self,
        dataset: &[u32],
        privacy: PrivacyParams,
        beta: f64,
        rng: &mut R,
    ) -> TreeCountEstimate {
        let counts = self.colored_counts(dataset);
        private_tree_counts_approx(
            &self.tree,
            &counts,
            Self::replace_one_sensitivity(),
            privacy,
            beta,
            rng,
        )
    }

    /// ε-DP hierarchical histogram (Theorem 8 applied to subtree counts).
    pub fn private_histogram_pure<R: Rng + ?Sized>(
        &self,
        dataset: &[u32],
        privacy: PrivacyParams,
        beta: f64,
        rng: &mut R,
    ) -> TreeCountEstimate {
        let counts = self.histogram_counts(dataset);
        private_tree_counts_pure(
            &self.tree,
            &counts,
            Self::replace_one_sensitivity(),
            privacy,
            beta,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree_counting::validate_monotone;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup(seed: u64) -> (ColoredUniverse, Vec<u32>) {
        let tree = Tree::complete_kary(2, 4);
        let leaves = tree.leaves();
        let mut rng = StdRng::seed_from_u64(seed);
        let u = 64usize;
        let leaf_of: Vec<NodeId> = (0..u).map(|_| leaves[rng.gen_range(0..leaves.len())]).collect();
        let color_of: Vec<u32> = (0..u).map(|_| rng.gen_range(0..8)).collect();
        let universe = ColoredUniverse::new(tree, leaf_of, color_of);
        let dataset: Vec<u32> = (0..200).map(|_| rng.gen_range(0..u as u32)).collect();
        (universe, dataset)
    }

    #[test]
    fn colored_counts_match_naive() {
        let (universe, dataset) = setup(41);
        let counts = universe.colored_counts(&dataset);
        // Naive: for each node, collect colors of items below it.
        let depths = universe.tree().depths();
        let _ = depths;
        for v in 0..universe.tree().n() as NodeId {
            let mut colors = HashSet::new();
            for &item in &dataset {
                // Is leaf_of[item] below v?
                let mut cur = universe.leaf_of[item as usize];
                let below = loop {
                    if cur == v {
                        break true;
                    }
                    if cur == universe.tree().root() {
                        break false;
                    }
                    cur = universe.tree().parent(cur);
                };
                if below {
                    colors.insert(universe.color_of[item as usize]);
                }
            }
            assert_eq!(counts[v as usize], colors.len() as u64, "node {v}");
        }
    }

    #[test]
    fn colored_counts_are_monotone() {
        let (universe, dataset) = setup(42);
        let counts = universe.colored_counts(&dataset);
        assert!(validate_monotone(universe.tree(), &counts));
        let hist = universe.histogram_counts(&dataset);
        assert!(validate_monotone(universe.tree(), &hist));
    }

    #[test]
    fn replace_one_item_moves_counts_within_sensitivity() {
        let (universe, dataset) = setup(43);
        let counts = universe.colored_counts(&dataset);
        // Replace item 0 with a different element.
        let mut neighbor = dataset.clone();
        neighbor[0] = (neighbor[0] + 1) % universe.universe_size() as u32;
        let counts2 = universe.colored_counts(&neighbor);
        let sens = ColoredUniverse::replace_one_sensitivity();
        // Per-node: |change| ≤ Δ = 1.
        for v in 0..universe.tree().n() {
            let diff = (counts[v] as i64 - counts2[v] as i64).abs();
            assert!(diff as f64 <= sens.per_node, "node {v} moved by {diff}");
        }
        // Leaves: summed |change| ≤ d = 2.
        let leaf_change: i64 = universe
            .tree()
            .leaves()
            .iter()
            .map(|&l| (counts[l as usize] as i64 - counts2[l as usize] as i64).abs())
            .sum();
        assert!(leaf_change as f64 <= sens.leaf_l1);
    }

    #[test]
    fn private_colored_counts_respect_bound() {
        let (universe, dataset) = setup(44);
        let mut rng = StdRng::seed_from_u64(99);
        let est =
            universe.private_colored_counts_pure(&dataset, PrivacyParams::pure(2.0), 0.1, &mut rng);
        let exact = universe.colored_counts(&dataset);
        assert!(est.max_error(&exact) <= est.error_bound);
        let est2 = universe.private_colored_counts_approx(
            &dataset,
            PrivacyParams::approx(1.0, 1e-6),
            0.1,
            &mut rng,
        );
        assert!(est2.max_error(&exact) <= est2.error_bound);
    }

    use rand::Rng;
}
