//! Rooted trees (arena representation).
//!
//! The generic tree type underlying the paper's Section 5 (counting
//! functions on trees) and the heavy-path machinery shared with the trie
//! pipeline of Sections 3–4.

use rand::Rng;

/// Node identifier (arena index).
pub type NodeId = u32;

/// A rooted tree over nodes `0..n`, stored as parent + children arrays.
#[derive(Debug, Clone)]
pub struct Tree {
    parent: Vec<NodeId>,
    children: Vec<Vec<NodeId>>,
    root: NodeId,
}

impl Tree {
    /// Builds from a parent array: `parents[v] == None` exactly for the
    /// root; otherwise `parents[v]` is `v`'s parent.
    ///
    /// # Panics
    /// Panics if there is not exactly one root, a parent index is out of
    /// range, or the structure contains a cycle.
    pub fn from_parents(parents: &[Option<NodeId>]) -> Self {
        let n = parents.len();
        assert!(n > 0, "tree must be non-empty");
        let mut root = None;
        let mut children = vec![Vec::new(); n];
        for (v, p) in parents.iter().enumerate() {
            match p {
                None => {
                    assert!(root.is_none(), "multiple roots");
                    root = Some(v as NodeId);
                }
                Some(p) => {
                    assert!((*p as usize) < n, "parent out of range");
                    children[*p as usize].push(v as NodeId);
                }
            }
        }
        let root = root.expect("no root");
        let parent: Vec<NodeId> =
            parents.iter().enumerate().map(|(v, p)| p.unwrap_or(v as NodeId)).collect();
        let tree = Self { parent, children, root };
        // Cycle check: every node must be reachable from the root.
        let mut seen = 0usize;
        let mut stack = vec![root];
        let mut visited = vec![false; n];
        visited[root as usize] = true;
        while let Some(v) = stack.pop() {
            seen += 1;
            for &c in tree.children(v) {
                assert!(!visited[c as usize], "cycle detected");
                visited[c as usize] = true;
                stack.push(c);
            }
        }
        assert_eq!(seen, n, "disconnected nodes (cycle among non-root nodes)");
        tree
    }

    /// A complete `b`-ary tree of the given `height` (root at depth 0,
    /// leaves at depth `height`). Nodes are numbered in BFS order.
    pub fn complete_kary(b: usize, height: usize) -> Self {
        assert!(b >= 1);
        let mut parents: Vec<Option<NodeId>> = vec![None];
        let mut level_start = 0usize;
        let mut level_len = 1usize;
        for _ in 0..height {
            let next_start = parents.len();
            for v in level_start..level_start + level_len {
                for _ in 0..b {
                    parents.push(Some(v as NodeId));
                }
            }
            level_start = next_start;
            level_len *= b;
        }
        Self::from_parents(&parents)
    }

    /// A uniformly random recursive tree on `n` nodes (each node `v ≥ 1`
    /// attaches to a uniform node `< v`). Height is `O(log n)` w.h.p.
    pub fn random_recursive<R: Rng + ?Sized>(n: usize, rng: &mut R) -> Self {
        assert!(n >= 1);
        let mut parents: Vec<Option<NodeId>> = Vec::with_capacity(n);
        parents.push(None);
        for v in 1..n {
            parents.push(Some(rng.gen_range(0..v) as NodeId));
        }
        Self::from_parents(&parents)
    }

    /// A path graph (worst-case height).
    pub fn path(n: usize) -> Self {
        assert!(n >= 1);
        let parents: Vec<Option<NodeId>> =
            (0..n).map(|v| if v == 0 { None } else { Some(v as NodeId - 1) }).collect();
        Self::from_parents(&parents)
    }

    /// Number of nodes.
    #[inline]
    pub fn n(&self) -> usize {
        self.parent.len()
    }

    /// The root node.
    #[inline]
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Parent of `v` (the root is its own parent).
    #[inline]
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }

    /// Children of `v`.
    #[inline]
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v as usize]
    }

    /// Whether `v` is a leaf.
    #[inline]
    pub fn is_leaf(&self, v: NodeId) -> bool {
        self.children[v as usize].is_empty()
    }

    /// All leaves, in increasing id order.
    pub fn leaves(&self) -> Vec<NodeId> {
        (0..self.n() as NodeId).filter(|&v| self.is_leaf(v)).collect()
    }

    /// Subtree node counts (`size[v]` includes `v`). `O(n)`.
    pub fn subtree_sizes(&self) -> Vec<u32> {
        let order = self.dfs_preorder();
        let mut size = vec![1u32; self.n()];
        for &v in order.iter().rev() {
            if v != self.root {
                size[self.parent(v) as usize] += size[v as usize];
            }
        }
        size
    }

    /// Depth of every node (root = 0). `O(n)`.
    pub fn depths(&self) -> Vec<u32> {
        let mut depth = vec![0u32; self.n()];
        for &v in &self.dfs_preorder() {
            if v != self.root {
                depth[v as usize] = depth[self.parent(v) as usize] + 1;
            }
        }
        depth
    }

    /// Height of the tree (max depth).
    pub fn height(&self) -> usize {
        self.depths().iter().copied().max().unwrap_or(0) as usize
    }

    /// Pre-order DFS of all nodes starting at the root.
    pub fn dfs_preorder(&self) -> Vec<NodeId> {
        let mut order = Vec::with_capacity(self.n());
        let mut stack = vec![self.root];
        while let Some(v) = stack.pop() {
            order.push(v);
            for &c in self.children(v).iter().rev() {
                stack.push(c);
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn complete_binary_tree_shape() {
        let t = Tree::complete_kary(2, 3);
        assert_eq!(t.n(), 15);
        assert_eq!(t.height(), 3);
        assert_eq!(t.leaves().len(), 8);
        assert_eq!(t.children(0), &[1, 2]);
        assert_eq!(t.parent(14), 6);
        let sizes = t.subtree_sizes();
        assert_eq!(sizes[0], 15);
        assert_eq!(sizes[1], 7);
        assert_eq!(sizes[7], 1);
    }

    #[test]
    fn path_tree() {
        let t = Tree::path(5);
        assert_eq!(t.height(), 4);
        assert_eq!(t.leaves(), vec![4]);
        assert_eq!(t.subtree_sizes(), vec![5, 4, 3, 2, 1]);
    }

    #[test]
    fn random_recursive_is_valid() {
        let mut rng = StdRng::seed_from_u64(11);
        let t = Tree::random_recursive(200, &mut rng);
        assert_eq!(t.n(), 200);
        assert_eq!(t.subtree_sizes()[0], 200);
        // DFS covers all nodes.
        assert_eq!(t.dfs_preorder().len(), 200);
    }

    #[test]
    #[should_panic(expected = "multiple roots")]
    fn two_roots_panics() {
        let _ = Tree::from_parents(&[None, None]);
    }

    #[test]
    #[should_panic]
    fn cycle_panics() {
        // 0 is root; 1 and 2 form a cycle.
        let _ = Tree::from_parents(&[None, Some(2), Some(1)]);
    }

    #[test]
    fn singleton() {
        let t = Tree::from_parents(&[None]);
        assert_eq!(t.n(), 1);
        assert!(t.is_leaf(0));
        assert_eq!(t.height(), 0);
        assert_eq!(t.leaves(), vec![0]);
    }
}
