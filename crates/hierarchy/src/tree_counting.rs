//! Differentially private counting functions on trees (Theorems 8 and 9).
//!
//! Given a tree `T` and a count `c(v)` per node that is
//! (i) *monotone* — `c(v) ≤ Σ_{u child of v} c(u)` for internal `v` — and
//! (ii) has summed leaf sensitivity `d` on neighboring databases, the
//! algorithm releases estimates `ĉ(v)` for **all** nodes with sup error
//! `O(ε⁻¹ d log|V| log h log(hk/β))` (Theorem 8, Laplace) or
//! `O(ε⁻¹ √(dΔ) · polylog)` when each node additionally moves by at most
//! `Δ` (Theorem 9, Gaussian).
//!
//! The algorithm is the paper's heavy-path strategy in its generic form:
//! 1. decompose `T` into heavy paths;
//! 2. privately estimate `c` at every heavy-path root (half the budget);
//! 3. privately estimate all prefix sums of the *difference sequence* along
//!    every heavy path with the binary-tree mechanism (other half);
//! 4. `ĉ(v) = ĉ(path root) + noisy prefix sum up to v`.
//!
//! Why this wins: a change at one leaf `l` moves `c` only on the
//! root-to-`l` path, which crosses ≤ `⌊log|V|⌋ + 1` heavy paths (Lemma 9),
//! so both the root vector and the concatenated difference sequences have
//! sensitivity `O(d log|V|)` instead of `O(d · h)`.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::mechanism::{gaussian_sup_error, l2_from_l1_linf, laplace_sup_error};
use dpsc_dpcore::noise::Noise;
use dpsc_dpcore::tree_mechanism::{
    lemma11_error_bound, lemma11_noise, lemma18_error_bound, lemma18_noise, BinaryTreeMechanism,
};
use rand::Rng;

use crate::heavy_path::HeavyPathDecomposition;
use crate::tree::Tree;

/// Sensitivity bounds of the count function `c` (Theorem 8/9 hypotheses).
#[derive(Debug, Clone, Copy)]
pub struct TreeSensitivity {
    /// `d`: bound on `Σ_leaves |c(l, D) − c(l, D')|` over neighbors.
    pub leaf_l1: f64,
    /// `Δ`: bound on `|c(v, D) − c(v, D')|` per node (needed for the
    /// Gaussian variant of Theorem 9; for Theorem 8 it is unused and may be
    /// set to `leaf_l1`).
    pub per_node: f64,
}

/// Result of the private tree-counting algorithm.
#[derive(Debug, Clone)]
pub struct TreeCountEstimate {
    /// `ĉ(v)` per node id.
    pub values: Vec<f64>,
    /// High-probability sup-error bound `α` (holds with prob. ≥ 1−β).
    pub error_bound: f64,
}

impl TreeCountEstimate {
    /// Maximum absolute deviation from the exact counts.
    pub fn max_error(&self, exact: &[u64]) -> f64 {
        self.values.iter().zip(exact).map(|(&v, &e)| (v - e as f64).abs()).fold(0.0, f64::max)
    }
}

/// Checks the monotonicity hypothesis of Theorems 8/9:
/// `c(v) ≤ Σ_{u child of v} c(u)` for every internal node.
pub fn validate_monotone(tree: &Tree, counts: &[u64]) -> bool {
    assert_eq!(tree.n(), counts.len());
    (0..tree.n() as u32).all(|v| {
        tree.is_leaf(v) || {
            let child_sum: u64 = tree.children(v).iter().map(|&c| counts[c as usize]).sum();
            counts[v as usize] <= child_sum
        }
    })
}

/// Theorem 8: ε-differentially private tree counting with Laplace noise.
///
/// `counts[v]` must be the exact `c(v, D)`; `sens.leaf_l1` is `d`.
/// The released estimates satisfy
/// `max_v |ĉ(v) − c(v)| = O(ε⁻¹ d log|V| log h log(hk/β))` w.p. ≥ 1−β.
pub fn private_tree_counts_pure<R: Rng + ?Sized>(
    tree: &Tree,
    counts: &[u64],
    sens: TreeSensitivity,
    privacy: PrivacyParams,
    beta: f64,
    rng: &mut R,
) -> TreeCountEstimate {
    assert!(privacy.is_pure(), "use private_tree_counts_approx for δ > 0");
    run_pipeline(tree, counts, sens, privacy, beta, false, rng)
}

/// Theorem 9: (ε,δ)-differentially private tree counting with Gaussian
/// noise, error `O(ε⁻¹ √(dΔ) log|V| √(log(1/δ)) log(hk/β) log h)`.
pub fn private_tree_counts_approx<R: Rng + ?Sized>(
    tree: &Tree,
    counts: &[u64],
    sens: TreeSensitivity,
    privacy: PrivacyParams,
    beta: f64,
    rng: &mut R,
) -> TreeCountEstimate {
    assert!(privacy.delta > 0.0, "Theorem 9 requires δ > 0");
    run_pipeline(tree, counts, sens, privacy, beta, true, rng)
}

fn run_pipeline<R: Rng + ?Sized>(
    tree: &Tree,
    counts: &[u64],
    sens: TreeSensitivity,
    privacy: PrivacyParams,
    beta: f64,
    gaussian: bool,
    rng: &mut R,
) -> TreeCountEstimate {
    assert_eq!(tree.n(), counts.len(), "one count per node required");
    assert!(beta > 0.0 && beta < 1.0);
    debug_assert!(validate_monotone(tree, counts), "count function not monotone");

    let n = tree.n();
    let hpd = HeavyPathDecomposition::new(tree);
    let k = hpd.num_paths();
    // ⌊log n⌋ + 1
    let levels = (usize::BITS - n.leading_zeros()) as f64;
    // Sensitivity across all heavy-path roots: each unit of leaf change hits
    // ≤ `levels` roots (Lemma 9).
    let roots_l1 = sens.leaf_l1 * levels;
    // Concatenated difference sequences: each unit of leaf change perturbs a
    // contiguous run on ≤ `levels` paths, moving the difference sequence at
    // two positions per path (Lemma 8 generalized).
    let diffs_l1 = 2.0 * sens.leaf_l1 * levels;
    let max_path_len = hpd.paths().iter().map(Vec::len).max().unwrap_or(1);
    let t = max_path_len.saturating_sub(1).max(1); // difference sequences have |p|−1 entries

    let half = privacy.split_even(2);
    let beta_half = beta / 2.0;

    // Step 2: noisy root counts.
    let (root_noise, root_error) = if gaussian {
        let l2 = l2_from_l1_linf(roots_l1, sens.per_node);
        (
            Noise::gaussian_for(half.epsilon, half.delta, l2),
            gaussian_sup_error(half.epsilon, half.delta, l2, k, beta_half),
        )
    } else {
        (
            Noise::laplace_for(half.epsilon, roots_l1),
            laplace_sup_error(half.epsilon, roots_l1, k, beta_half),
        )
    };
    let mut values = vec![0.0f64; n];
    let mut root_estimates = Vec::with_capacity(k);
    for path in hpd.paths() {
        let r = path[0];
        root_estimates.push(counts[r as usize] as f64 + root_noise.sample(rng));
    }

    // Steps 3–4: binary-tree mechanism over every difference sequence.
    let (diff_noise, diff_error) = if gaussian {
        // Per-path L1 sensitivity ≤ 2Δ (two ±Δ moves), per Lemma 16.2.
        let per_path = 2.0 * sens.per_node;
        (
            lemma18_noise(half.epsilon, half.delta, diffs_l1, per_path, t),
            lemma18_error_bound(half.epsilon, half.delta, diffs_l1, per_path, t, k, beta_half),
        )
    } else {
        (
            lemma11_noise(half.epsilon, diffs_l1, t),
            lemma11_error_bound(half.epsilon, diffs_l1, t, k, beta_half),
        )
    };
    for (pid, path) in hpd.paths().iter().enumerate() {
        let root_est = root_estimates[pid];
        values[path[0] as usize] = root_est;
        if path.len() == 1 {
            continue;
        }
        let diff: Vec<f64> = path
            .windows(2)
            .map(|w| counts[w[1] as usize] as f64 - counts[w[0] as usize] as f64)
            .collect();
        let mech = BinaryTreeMechanism::build(&diff, diff_noise, rng);
        for (i, &v) in path.iter().enumerate().skip(1) {
            values[v as usize] = root_est + mech.prefix(i);
        }
    }

    TreeCountEstimate { values, error_bound: root_error + diff_error }
}

/// Baseline of Zhang et al. \[72\] style: add Laplace noise to every *leaf*
/// (scale `d/ε`) and sum noisy leaves upward. Internal-node errors grow
/// with subtree leaf counts — the failure mode the paper's related-work
/// section calls out.
pub fn baseline_noisy_leaf_sum<R: Rng + ?Sized>(
    tree: &Tree,
    counts: &[u64],
    leaf_l1: f64,
    epsilon: f64,
    rng: &mut R,
) -> Vec<f64> {
    let n = tree.n();
    let noise = Noise::laplace_for(epsilon, leaf_l1);
    let mut values = vec![0.0f64; n];
    let order = tree.dfs_preorder();
    for &v in order.iter().rev() {
        if tree.is_leaf(v) {
            values[v as usize] = counts[v as usize] as f64 + noise.sample(rng);
        } else {
            values[v as usize] = tree.children(v).iter().map(|&c| values[c as usize]).sum();
        }
    }
    values
}

/// Baseline: independent Laplace noise on *every* node, calibrated to the
/// full per-node L1 sensitivity `d·(h+1)` (a leaf change moves all its
/// ancestors). Error `O(ε⁻¹ d h log|V|)` — worse than Theorem 8 by `~h/log h`.
pub fn baseline_per_node_laplace<R: Rng + ?Sized>(
    tree: &Tree,
    counts: &[u64],
    leaf_l1: f64,
    epsilon: f64,
    rng: &mut R,
) -> Vec<f64> {
    let h = tree.height();
    let noise = Noise::laplace_for(epsilon, leaf_l1 * (h as f64 + 1.0));
    counts.iter().map(|&c| c as f64 + noise.sample(rng)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Builds a hierarchical histogram: items are leaf indices; c(v) = number
    /// of items in leaves below v.
    fn histogram_counts(tree: &Tree, items: &[u32]) -> Vec<u64> {
        let mut counts = vec![0u64; tree.n()];
        for &leaf in items {
            let mut v = leaf;
            loop {
                counts[v as usize] += 1;
                if v == tree.root() {
                    break;
                }
                v = tree.parent(v);
            }
        }
        counts
    }

    #[test]
    fn zero_noise_reproduces_exact_counts() {
        let tree = Tree::complete_kary(2, 4);
        let leaves = tree.leaves();
        let mut rng = StdRng::seed_from_u64(31);
        let items: Vec<u32> = (0..100).map(|i| leaves[i % leaves.len()]).collect();
        let counts = histogram_counts(&tree, &items);
        assert!(validate_monotone(&tree, &counts));
        // Mirror the pipeline with Noise::None by passing a huge ε (noise
        // scale → 0 is not reachable through the public API, so check via a
        // very large ε giving tiny noise).
        let est = private_tree_counts_pure(
            &tree,
            &counts,
            TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 },
            PrivacyParams::pure(1e9),
            0.1,
            &mut rng,
        );
        assert!(est.max_error(&counts) < 1e-3);
    }

    #[test]
    fn error_within_bound_with_high_probability() {
        let tree = Tree::complete_kary(2, 6);
        let leaves = tree.leaves();
        let mut rng = StdRng::seed_from_u64(32);
        let items: Vec<u32> = (0..500).map(|i| leaves[(i * 7) % leaves.len()]).collect();
        let counts = histogram_counts(&tree, &items);
        let sens = TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 };
        let beta = 0.1;
        let trials = 40;
        let mut violations = 0;
        for _ in 0..trials {
            let est = private_tree_counts_pure(
                &tree,
                &counts,
                sens,
                PrivacyParams::pure(1.0),
                beta,
                &mut rng,
            );
            if est.max_error(&counts) > est.error_bound {
                violations += 1;
            }
        }
        assert!((violations as f64 / trials as f64) <= beta, "violations {violations}/{trials}");
    }

    #[test]
    fn gaussian_variant_within_bound() {
        let tree = Tree::complete_kary(2, 6);
        let leaves = tree.leaves();
        let mut rng = StdRng::seed_from_u64(33);
        let items: Vec<u32> = (0..500).map(|i| leaves[(i * 13) % leaves.len()]).collect();
        let counts = histogram_counts(&tree, &items);
        let sens = TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 };
        let est = private_tree_counts_approx(
            &tree,
            &counts,
            sens,
            PrivacyParams::approx(1.0, 1e-6),
            0.1,
            &mut rng,
        );
        // Single-shot check against the analytic bound (holds w.p. 0.9).
        assert!(est.max_error(&counts) <= est.error_bound);
    }

    #[test]
    fn heavy_path_beats_per_node_laplace_on_deep_trees() {
        // Theorem 8's win over per-node noise is the `h` → `polylog`
        // improvement: on a deep path-shaped tree the per-node baseline must
        // scale noise with the height (a leaf change moves every ancestor),
        // while the heavy-path mechanism pays only log factors. At depth
        // 2^15 the gap is decisive even with worst-case constants.
        let n = 1 << 15;
        let tree = Tree::path(n);
        // c(v) = number of items at-or-below v: item at depth i contributes
        // to all ancestors. Use items at the single leaf so counts are
        // constant along the path (monotone holds trivially).
        let counts: Vec<u64> = vec![100u64; n];
        let sens = TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 };
        let mut rng = StdRng::seed_from_u64(34);
        let trials = 3;
        let mut hp_avg = 0.0;
        let mut pn_avg = 0.0;
        for _ in 0..trials {
            let est = private_tree_counts_pure(
                &tree,
                &counts,
                sens,
                PrivacyParams::pure(1.0),
                0.1,
                &mut rng,
            );
            let bl = baseline_per_node_laplace(&tree, &counts, 2.0, 1.0, &mut rng);
            for v in 0..n {
                hp_avg += (est.values[v] - counts[v] as f64).abs();
                pn_avg += (bl[v] - counts[v] as f64).abs();
            }
        }
        assert!(
            hp_avg * 2.0 < pn_avg,
            "expected ≥2x win on depth-32768 path: hp {hp_avg} vs per-node {pn_avg}"
        );
    }

    #[test]
    fn monotone_validation_rejects_bad_counts() {
        let tree = Tree::complete_kary(2, 1);
        // Root count exceeds child sum.
        let counts = vec![10u64, 3, 3];
        assert!(!validate_monotone(&tree, &counts));
        let good = vec![6u64, 3, 3];
        assert!(validate_monotone(&tree, &good));
    }

    #[test]
    fn single_node_tree() {
        let tree = Tree::from_parents(&[None]);
        let mut rng = StdRng::seed_from_u64(35);
        let est = private_tree_counts_pure(
            &tree,
            &[42],
            TreeSensitivity { leaf_l1: 1.0, per_node: 1.0 },
            PrivacyParams::pure(1e9),
            0.1,
            &mut rng,
        );
        assert!((est.values[0] - 42.0).abs() < 1e-3);
    }
}
