//! Heavy-path decomposition (Sleator–Tarjan \[62\]).
//!
//! Every non-leaf node has exactly one *heavy* edge, to the child with the
//! largest subtree (ties to the smallest id for determinism); all other
//! edges are *light*. Maximal chains of heavy edges are the *heavy paths*.
//! Lemma 9: any root-to-leaf path crosses at most `⌊log N⌋` light edges —
//! the property the paper leverages so that a single document can influence
//! only `O(ℓ log N)` heavy-path roots (Lemma 10).

use crate::tree::{NodeId, Tree};

/// Heavy-path decomposition of a [`Tree`].
#[derive(Debug, Clone)]
pub struct HeavyPathDecomposition {
    /// Path id of each node.
    path_of: Vec<u32>,
    /// Position of each node within its path (0 = path root).
    pos_in_path: Vec<u32>,
    /// Node lists per path, each ordered from path root downward.
    paths: Vec<Vec<NodeId>>,
}

impl HeavyPathDecomposition {
    /// Computes the decomposition in `O(n)`.
    pub fn new(tree: &Tree) -> Self {
        let n = tree.n();
        let sizes = tree.subtree_sizes();
        // Heavy child per node (or None for leaves).
        let mut heavy: Vec<Option<NodeId>> = vec![None; n];
        for v in 0..n as NodeId {
            let mut best: Option<NodeId> = None;
            for &c in tree.children(v) {
                best = match best {
                    None => Some(c),
                    Some(b) if sizes[c as usize] > sizes[b as usize] => Some(c),
                    Some(b) => Some(b),
                };
            }
            heavy[v as usize] = best;
        }
        let mut path_of = vec![u32::MAX; n];
        let mut pos_in_path = vec![0u32; n];
        let mut paths: Vec<Vec<NodeId>> = Vec::new();
        // A node starts a new heavy path iff it is the root or reached by a
        // light edge. Walk DFS; when we meet a path head, follow heavy edges
        // to the bottom.
        for &v in &tree.dfs_preorder() {
            let is_head = v == tree.root() || heavy[tree.parent(v) as usize] != Some(v);
            if !is_head {
                continue;
            }
            let id = paths.len() as u32;
            let mut path = Vec::new();
            let mut cur = v;
            loop {
                path_of[cur as usize] = id;
                pos_in_path[cur as usize] = path.len() as u32;
                path.push(cur);
                match heavy[cur as usize] {
                    Some(next) => cur = next,
                    None => break,
                }
            }
            paths.push(path);
        }
        debug_assert!(path_of.iter().all(|&p| p != u32::MAX));
        Self { path_of, pos_in_path, paths }
    }

    /// Number of heavy paths (equals the number of leaves).
    #[inline]
    pub fn num_paths(&self) -> usize {
        self.paths.len()
    }

    /// The paths, each from its root downward.
    #[inline]
    pub fn paths(&self) -> &[Vec<NodeId>] {
        &self.paths
    }

    /// Path id containing `v`.
    #[inline]
    pub fn path_of(&self, v: NodeId) -> usize {
        self.path_of[v as usize] as usize
    }

    /// Position of `v` within its path (0 = the path's topmost node).
    #[inline]
    pub fn pos_in_path(&self, v: NodeId) -> usize {
        self.pos_in_path[v as usize] as usize
    }

    /// The root (topmost node) of `v`'s heavy path.
    #[inline]
    pub fn path_root(&self, v: NodeId) -> NodeId {
        self.paths[self.path_of(v)][0]
    }

    /// Roots of all heavy paths, indexed by path id.
    pub fn path_roots(&self) -> Vec<NodeId> {
        self.paths.iter().map(|p| p[0]).collect()
    }

    /// Number of light edges on the path from the root of the tree to `v` —
    /// equivalently, the number of heavy paths the root-to-`v` path crosses,
    /// minus one. Lemma 9 bounds this by `⌊log N⌋`.
    pub fn light_edges_to(&self, tree: &Tree, v: NodeId) -> usize {
        let mut count = 0usize;
        let mut cur = v;
        loop {
            let head = self.path_root(cur);
            if head == tree.root() {
                break;
            }
            // Edge from head's parent to head is light by construction.
            count += 1;
            cur = tree.parent(head);
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn check_invariants(tree: &Tree) {
        let hpd = HeavyPathDecomposition::new(tree);
        let n = tree.n();
        // Every node in exactly one path, positions consistent.
        let mut seen = vec![false; n];
        for (id, path) in hpd.paths().iter().enumerate() {
            for (pos, &v) in path.iter().enumerate() {
                assert!(!seen[v as usize], "node {v} in two paths");
                seen[v as usize] = true;
                assert_eq!(hpd.path_of(v), id);
                assert_eq!(hpd.pos_in_path(v), pos);
                if pos > 0 {
                    assert_eq!(tree.parent(v), path[pos - 1], "path not parent-linked");
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
        // #paths == #leaves (each path ends at a leaf).
        assert_eq!(hpd.num_paths(), tree.leaves().len());
        // Lemma 9: light edges to any node ≤ ⌊log₂ n⌋.
        let bound = if n <= 1 { 0 } else { (usize::BITS - 1 - n.leading_zeros()) as usize };
        for v in 0..n as NodeId {
            assert!(
                hpd.light_edges_to(tree, v) <= bound,
                "node {v}: {} light edges > log bound {bound}",
                hpd.light_edges_to(tree, v)
            );
        }
    }

    #[test]
    fn invariants_on_shapes() {
        check_invariants(&Tree::complete_kary(2, 5));
        check_invariants(&Tree::complete_kary(3, 4));
        check_invariants(&Tree::path(17));
        check_invariants(&Tree::from_parents(&[None]));
        let mut rng = StdRng::seed_from_u64(21);
        for _ in 0..20 {
            check_invariants(&Tree::random_recursive(rng.gen_range(1..300), &mut rng));
        }
    }

    #[test]
    fn path_graph_is_one_heavy_path() {
        let t = Tree::path(10);
        let hpd = HeavyPathDecomposition::new(&t);
        assert_eq!(hpd.num_paths(), 1);
        assert_eq!(hpd.paths()[0].len(), 10);
    }

    #[test]
    fn heavy_child_is_larger_subtree() {
        // Root with a 1-node child and a 3-node chain: the chain is heavy.
        //        0
        //       / \
        //      1   2-3-4 (chain)
        let t = Tree::from_parents(&[None, Some(0), Some(0), Some(2), Some(3)]);
        let hpd = HeavyPathDecomposition::new(&t);
        assert_eq!(hpd.path_of(0), hpd.path_of(2));
        assert_eq!(hpd.path_of(0), hpd.path_of(4));
        assert_ne!(hpd.path_of(0), hpd.path_of(1));
        assert_eq!(hpd.light_edges_to(&t, 1), 1);
        assert_eq!(hpd.light_edges_to(&t, 4), 0);
    }

    use rand::Rng;
}
