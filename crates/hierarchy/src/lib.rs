//! # dpsc-hierarchy — trees, heavy paths, and DP counting on trees
//!
//! The tree substrate of the system plus the paper's Section 5 results:
//!
//! * [`Tree`] — arena rooted trees with the shape generators the
//!   experiments sweep (complete k-ary, random recursive, path).
//! * [`HeavyPathDecomposition`] — Sleator–Tarjan heavy paths with the
//!   Lemma 9 "≤ ⌊log N⌋ light edges per root-to-leaf path" guarantee,
//!   verified by property tests.
//! * [`tree_counting`] — Theorem 8 (ε-DP) and Theorem 9 ((ε,δ)-DP) generic
//!   private counting of any monotone, bounded-sensitivity count function on
//!   a tree, plus the prior-work baselines (noisy-leaf-sum \[72\],
//!   per-node Laplace) the experiments compare against.
//! * [`colored`] — the two motivating applications: hierarchical histograms
//!   \[40\] and colored tree counting / distinct elements \[41\].
//!
//! The trie pipeline of `dpsc-private-count` reuses the same
//! heavy-path + difference-sequence strategy, specialized to substring
//! counts where the sensitivity argument is Lemma 10 rather than Lemma 9
//! alone.

pub mod colored;
pub mod heavy_path;
pub mod tree;
pub mod tree_counting;

pub use colored::ColoredUniverse;
pub use heavy_path::HeavyPathDecomposition;
pub use tree::Tree;
pub use tree_counting::{
    private_tree_counts_approx, private_tree_counts_pure, TreeCountEstimate, TreeSensitivity,
};
