//! Vector-valued Laplace and Gaussian mechanisms with sup-error bounds.
//!
//! Implements Lemma 3 / Lemma 5 (add calibrated iid noise to a vector-valued
//! function) and their high-probability sup-norm corollaries (Corollary 1 /
//! Corollary 2), which the paper uses to set every pruning threshold.

use rand::Rng;

use crate::noise::Noise;

/// Adds iid noise from `noise` to every coordinate, returning floats.
pub fn randomize<R: Rng + ?Sized>(values: &[f64], noise: Noise, rng: &mut R) -> Vec<f64> {
    values.iter().map(|&v| v + noise.sample(rng)).collect()
}

/// Adds iid noise to integer counts (the common case: counts are `u64`).
pub fn randomize_counts<R: Rng + ?Sized>(counts: &[u64], noise: Noise, rng: &mut R) -> Vec<f64> {
    counts.iter().map(|&v| v as f64 + noise.sample(rng)).collect()
}

/// Corollary 1: with probability ≥ 1−β, the Laplace mechanism with scale
/// `b = Δ₁/ε` over `k` coordinates has sup error ≤ `b·ln(k/β)`.
pub fn laplace_sup_error(epsilon: f64, l1_sensitivity: f64, k: usize, beta: f64) -> f64 {
    assert!(epsilon > 0.0 && beta > 0.0 && beta < 1.0);
    let k = k.max(1) as f64;
    (l1_sensitivity / epsilon) * (k / beta).ln().max(0.0)
}

/// Corollary 2: with probability ≥ 1−β, the Gaussian mechanism calibrated to
/// `(ε, δ, Δ₂)` over `k` coordinates has sup error ≤
/// `2·ε⁻¹·Δ₂·√(ln(2/δ)·ln(2k/β))`.
pub fn gaussian_sup_error(
    epsilon: f64,
    delta: f64,
    l2_sensitivity: f64,
    k: usize,
    beta: f64,
) -> f64 {
    assert!(epsilon > 0.0 && delta > 0.0 && beta > 0.0 && beta < 1.0);
    let k = k.max(1) as f64;
    2.0 * l2_sensitivity / epsilon * ((2.0 / delta).ln() * (2.0 * k / beta).ln()).sqrt()
}

/// Hölder bound (Lemma 14): a vector with `‖v‖₁ ≤ M` and `‖v‖_∞ ≤ Δ` has
/// `‖v‖₂ ≤ √(MΔ)`. The paper uses this to convert L1 sensitivity bounds
/// into the L2 bounds the Gaussian mechanism needs.
pub fn l2_from_l1_linf(l1: f64, linf: f64) -> f64 {
    assert!(l1 >= 0.0 && linf >= 0.0);
    (l1 * linf).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn sup_error_bound_holds_with_high_probability() {
        let mut rng = StdRng::seed_from_u64(42);
        let (eps, sens, k, beta) = (1.0, 2.0, 64usize, 0.05);
        let bound = laplace_sup_error(eps, sens, k, beta);
        let noise = Noise::laplace_for(eps, sens);
        let counts = vec![100u64; k];
        let mut violations = 0usize;
        let trials = 2_000;
        for _ in 0..trials {
            let noisy = randomize_counts(&counts, noise, &mut rng);
            let sup = noisy.iter().map(|&v| (v - 100.0).abs()).fold(0.0f64, f64::max);
            if sup > bound {
                violations += 1;
            }
        }
        // Union bound guarantees ≤ β; empirically it is β-ish (tight for
        // Laplace), so allow some sampling slack.
        assert!((violations as f64 / trials as f64) < beta * 1.5, "violations {violations}");
    }

    #[test]
    fn gaussian_sup_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(43);
        let (eps, delta, sens, k, beta) = (1.0, 1e-6, 2.0, 64usize, 0.05);
        let bound = gaussian_sup_error(eps, delta, sens, k, beta);
        let noise = Noise::gaussian_for(eps, delta, sens);
        let counts = vec![0u64; k];
        let trials = 500;
        let violations = (0..trials)
            .filter(|_| {
                let noisy = randomize_counts(&counts, noise, &mut rng);
                noisy.iter().map(|&v| v.abs()).fold(0.0f64, f64::max) > bound
            })
            .count();
        assert!((violations as f64 / trials as f64) <= beta);
    }

    #[test]
    fn hoelder_bound() {
        // v = (Δ, Δ, ..., Δ) with M = kΔ: ‖v‖₂ = Δ√k = √(MΔ). Tight.
        let (m, d) = (16.0, 4.0);
        assert!((l2_from_l1_linf(m, d) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn randomize_none_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let counts = vec![3u64, 1, 4];
        let out = randomize_counts(&counts, Noise::None, &mut rng);
        assert_eq!(out, vec![3.0, 1.0, 4.0]);
    }
}
