//! Privacy parameters and composition accounting.
//!
//! The paper's constructions repeatedly *split* a privacy budget across
//! sub-algorithms (e.g. `ε₁ = ε/(⌊log ℓ⌋+1)` per doubling level in Lemma 6,
//! `ε' = ε/3` across Steps 1/3/4) and rely on **simple composition**
//! (Lemma 1): running an `(ε₁,δ₁)`-DP and an `(ε₂,δ₂)`-DP algorithm in
//! sequence is `(ε₁+ε₂, δ₁+δ₂)`-DP. [`PrivacyParams`] encodes `(ε, δ)`,
//! and [`BudgetAccountant`] enforces at runtime that a pipeline never spends
//! more than it was given — an executable version of the paper's composition
//! arguments.

use std::fmt;

/// An `(ε, δ)` differential-privacy guarantee. `δ = 0` is pure DP.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivacyParams {
    /// The multiplicative privacy-loss bound `ε > 0`.
    pub epsilon: f64,
    /// The additive slack `δ ∈ [0, 1)`.
    pub delta: f64,
}

impl PrivacyParams {
    /// Pure `ε`-DP.
    pub fn pure(epsilon: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        Self { epsilon, delta: 0.0 }
    }

    /// Approximate `(ε, δ)`-DP with `δ > 0`.
    pub fn approx(epsilon: f64, delta: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        assert!((0.0..1.0).contains(&delta), "δ must be in [0,1)");
        Self { epsilon, delta }
    }

    /// Whether this is pure DP (`δ = 0`).
    #[inline]
    pub fn is_pure(&self) -> bool {
        self.delta == 0.0
    }

    /// Splits the budget evenly into `k` parts, each `(ε/k, δ/k)`;
    /// composing the parts (Lemma 1) recovers exactly `(ε, δ)`.
    pub fn split_even(&self, k: usize) -> Self {
        assert!(k >= 1, "cannot split into zero parts");
        Self { epsilon: self.epsilon / k as f64, delta: self.delta / k as f64 }
    }

    /// Takes a `fraction ∈ (0, 1]` of the budget.
    pub fn fraction(&self, fraction: f64) -> Self {
        assert!(fraction > 0.0 && fraction <= 1.0, "fraction must be in (0,1]");
        Self { epsilon: self.epsilon * fraction, delta: self.delta * fraction }
    }

    /// Simple composition (Lemma 1): the guarantee of running `self` then
    /// `other` on the same database.
    pub fn compose(&self, other: &Self) -> Self {
        Self { epsilon: self.epsilon + other.epsilon, delta: self.delta + other.delta }
    }
}

impl fmt::Display for PrivacyParams {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_pure() {
            write!(f, "ε={}", self.epsilon)
        } else {
            write!(f, "(ε={}, δ={:e})", self.epsilon, self.delta)
        }
    }
}

/// Runtime guard for composition accounting.
///
/// Construction pipelines `charge` every mechanism invocation; exceeding the
/// budget is a logic error (the analysis promised it cannot happen), so the
/// accountant returns an error the pipeline turns into a panic in debug and
/// a hard failure in release.
#[derive(Debug, Clone)]
pub struct BudgetAccountant {
    budget: PrivacyParams,
    spent_epsilon: f64,
    spent_delta: f64,
}

/// Overspending error from [`BudgetAccountant::charge`].
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetExceeded {
    /// What the charge would have brought the total ε to.
    pub would_be_epsilon: f64,
    /// What the charge would have brought the total δ to.
    pub would_be_delta: f64,
    /// The configured budget.
    pub budget: PrivacyParams,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "privacy budget exceeded: would spend (ε={}, δ={:e}) of {}",
            self.would_be_epsilon, self.would_be_delta, self.budget
        )
    }
}

impl std::error::Error for BudgetExceeded {}

/// Numerical slack for floating-point accumulation of budget fractions.
const EPS_SLACK: f64 = 1e-9;

impl BudgetAccountant {
    /// Creates an accountant with the given total budget.
    pub fn new(budget: PrivacyParams) -> Self {
        Self { budget, spent_epsilon: 0.0, spent_delta: 0.0 }
    }

    /// Records spending `params`; errors if the total would exceed the
    /// budget (with a tiny float-rounding slack).
    pub fn charge(&mut self, params: PrivacyParams) -> Result<(), BudgetExceeded> {
        let e = self.spent_epsilon + params.epsilon;
        let d = self.spent_delta + params.delta;
        // ε gets a small absolute slack for float accumulation; δ gets a
        // relative slack only, so any positive δ overdraws a pure-DP budget.
        if e > self.budget.epsilon * (1.0 + EPS_SLACK) + 1e-12
            || d > self.budget.delta * (1.0 + EPS_SLACK)
        {
            return Err(BudgetExceeded {
                would_be_epsilon: e,
                would_be_delta: d,
                budget: self.budget,
            });
        }
        self.spent_epsilon = e;
        self.spent_delta = d;
        Ok(())
    }

    /// Total spent so far.
    pub fn spent(&self) -> PrivacyParams {
        PrivacyParams { epsilon: self.spent_epsilon, delta: self.spent_delta }
    }

    /// The configured budget.
    pub fn budget(&self) -> PrivacyParams {
        self.budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_then_compose_is_identity() {
        let p = PrivacyParams::approx(1.0, 1e-6);
        let part = p.split_even(4);
        let mut total = part;
        for _ in 0..3 {
            total = total.compose(&part);
        }
        assert!((total.epsilon - 1.0).abs() < 1e-12);
        assert!((total.delta - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn accountant_enforces_budget() {
        let mut acc = BudgetAccountant::new(PrivacyParams::pure(1.0));
        let third = PrivacyParams::pure(1.0).split_even(3);
        assert!(acc.charge(third).is_ok());
        assert!(acc.charge(third).is_ok());
        assert!(acc.charge(third).is_ok());
        // Fourth third overdraws.
        assert!(acc.charge(third).is_err());
        assert!((acc.spent().epsilon - 1.0).abs() < 1e-9);
    }

    #[test]
    fn accountant_rejects_delta_overdraft_on_pure_budget() {
        let mut acc = BudgetAccountant::new(PrivacyParams::pure(1.0));
        assert!(acc.charge(PrivacyParams::approx(0.1, 1e-9)).is_err());
    }

    #[test]
    fn paper_splits() {
        // Lemma 6: ε₁ = ε/(⌊log ℓ⌋+1).
        let eps = 2.0;
        let ell = 16usize;
        let levels = (ell as f64).log2().floor() as usize + 1;
        let per_level = PrivacyParams::pure(eps).split_even(levels);
        assert!((per_level.epsilon - 0.4).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn zero_epsilon_rejected() {
        let _ = PrivacyParams::pure(0.0);
    }
}
