//! Noise distributions for differential privacy.
//!
//! Self-contained samplers built from `rand` uniforms: inverse-CDF Laplace
//! (Definition 4) and Box–Muller Gaussian (Definition 5). Keeping the
//! samplers in-repo makes the mechanism code auditable end to end and avoids
//! any dependency beyond `rand`.
//!
//! `Noise::None` disables noise entirely; the pipelines use it in tests to
//! verify that with zero noise they reproduce exact counts (a correctness
//! smoke test the paper's analysis implicitly relies on).

use rand::Rng;

/// A centered noise distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Noise {
    /// Degenerate zero noise (testing only — *not* private).
    None,
    /// Laplace with scale `b` (density `(1/2b)·exp(-|x|/b)`).
    Laplace {
        /// Scale parameter `b > 0`.
        b: f64,
    },
    /// Gaussian with standard deviation `sigma`.
    Gaussian {
        /// Standard deviation `σ > 0`.
        sigma: f64,
    },
}

impl Noise {
    /// Laplace noise calibrated to `L1` sensitivity and ε (Lemma 3):
    /// `b = Δ₁/ε`.
    pub fn laplace_for(epsilon: f64, l1_sensitivity: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        assert!(l1_sensitivity >= 0.0, "sensitivity must be non-negative");
        Self::Laplace { b: l1_sensitivity / epsilon }
    }

    /// Gaussian noise calibrated to `L2` sensitivity and (ε, δ) (Lemma 5):
    /// `σ = √(2 ln(1.25/δ)) · Δ₂ / ε`, valid for `ε ∈ (0, 1]` per the
    /// classical analysis (we accept larger ε with the same formula, which
    /// is conservative in our experiments and flagged in docs).
    pub fn gaussian_for(epsilon: f64, delta: f64, l2_sensitivity: f64) -> Self {
        assert!(epsilon > 0.0, "ε must be positive");
        assert!(delta > 0.0 && delta < 1.0, "δ must be in (0,1)");
        assert!(l2_sensitivity >= 0.0, "sensitivity must be non-negative");
        let c = (2.0 * (1.25 / delta).ln()).sqrt();
        Self::Gaussian { sigma: c * l2_sensitivity / epsilon }
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Noise::None => 0.0,
            Noise::Laplace { b } => sample_laplace(b, rng),
            Noise::Gaussian { sigma } => sample_gaussian(sigma, rng),
        }
    }

    /// Fills `out` with independent samples.
    ///
    /// Semantically `for x in out { *x = self.sample(rng) }`, but batched:
    /// the calibration checks run once per call instead of once per draw,
    /// and the Gaussian path uses both Box–Muller coordinates (sine and
    /// cosine), halving the uniform draws and transcendental evaluations.
    /// The stream differs from repeated [`Noise::sample`] calls; it is
    /// deterministic for a given RNG state.
    pub fn sample_many<R: Rng + ?Sized>(&self, out: &mut [f64], rng: &mut R) {
        match *self {
            Noise::None => out.fill(0.0),
            Noise::Laplace { b } => {
                assert!(b >= 0.0);
                if b == 0.0 {
                    out.fill(0.0);
                    return;
                }
                for x in out.iter_mut() {
                    let u: f64 = rng.gen::<f64>() - 0.5;
                    let u = u.clamp(-0.499_999_999_999, 0.499_999_999_999);
                    *x = -b * u.signum() * (1.0 - 2.0 * u.abs()).ln();
                }
            }
            Noise::Gaussian { sigma } => {
                assert!(sigma >= 0.0);
                if sigma == 0.0 {
                    out.fill(0.0);
                    return;
                }
                let mut i = 0;
                while i < out.len() {
                    let u1: f64 = 1.0 - rng.gen::<f64>();
                    let u2: f64 = rng.gen();
                    let r = sigma * (-2.0 * u1.ln()).sqrt();
                    let theta = 2.0 * std::f64::consts::PI * u2;
                    out[i] = r * theta.cos();
                    i += 1;
                    if i < out.len() {
                        out[i] = r * theta.sin();
                        i += 1;
                    }
                }
            }
        }
    }

    /// A bound `t` such that `Pr[|Y| > t] ≤ beta` for a single draw.
    ///
    /// Laplace: `t = b·ln(1/β)` (Lemma 2). Gaussian: `t = σ·√(2 ln(2/β))`
    /// (Lemma 4). Zero noise: `0`.
    pub fn tail_bound(&self, beta: f64) -> f64 {
        assert!(beta > 0.0 && beta < 1.0, "β must be in (0,1)");
        match *self {
            Noise::None => 0.0,
            Noise::Laplace { b } => b * (1.0 / beta).ln(),
            Noise::Gaussian { sigma } => sigma * (2.0 * (2.0 / beta).ln()).sqrt(),
        }
    }

    /// Standard deviation of the distribution.
    pub fn std_dev(&self) -> f64 {
        match *self {
            Noise::None => 0.0,
            Noise::Laplace { b } => b * std::f64::consts::SQRT_2,
            Noise::Gaussian { sigma } => sigma,
        }
    }
}

/// Laplace(0, b) via inverse CDF: `X = -b·sgn(u)·ln(1-2|u|)`, `u ~ U(-1/2, 1/2)`.
pub fn sample_laplace<R: Rng + ?Sized>(b: f64, rng: &mut R) -> f64 {
    assert!(b >= 0.0);
    if b == 0.0 {
        return 0.0;
    }
    // u ∈ (-0.5, 0.5); guard the open bounds.
    let u: f64 = rng.gen::<f64>() - 0.5;
    let u = u.clamp(-0.499_999_999_999, 0.499_999_999_999);
    -b * u.signum() * (1.0 - 2.0 * u.abs()).ln()
}

/// N(0, σ²) via Box–Muller.
pub fn sample_gaussian<R: Rng + ?Sized>(sigma: f64, rng: &mut R) -> f64 {
    assert!(sigma >= 0.0);
    if sigma == 0.0 {
        return 0.0;
    }
    // Draw u1 ∈ (0, 1] to keep ln finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    sigma * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn laplace_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let b = 3.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_laplace(b, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var(Lap(b)) = 2b² = 18.
        assert!((var - 18.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(8);
        let sigma = 2.0;
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| sample_gaussian(sigma, &mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn laplace_tail_bound_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(9);
        let noise = Noise::Laplace { b: 1.5 };
        let beta = 0.05;
        let t = noise.tail_bound(beta);
        let n = 100_000;
        let exceed = (0..n).filter(|_| noise.sample(&mut rng).abs() > t).count();
        // Exceedance probability should be ≈ β (= e^{-t/b} exactly here).
        let rate = exceed as f64 / n as f64;
        assert!(rate < beta * 1.2, "rate {rate} vs β {beta}");
        assert!(rate > beta * 0.8, "Laplace tail bound is tight; rate {rate}");
    }

    #[test]
    fn gaussian_tail_bound_holds_empirically() {
        let mut rng = StdRng::seed_from_u64(10);
        let noise = Noise::Gaussian { sigma: 2.0 };
        let beta = 0.05;
        let t = noise.tail_bound(beta);
        let n = 100_000;
        let exceed = (0..n).filter(|_| noise.sample(&mut rng).abs() > t).count();
        // The bound 2e^{-t²/2σ²} is conservative; exceedance must be ≤ β.
        assert!((exceed as f64 / n as f64) <= beta);
    }

    #[test]
    fn calibration_formulas() {
        let lap = Noise::laplace_for(0.5, 4.0);
        assert_eq!(lap, Noise::Laplace { b: 8.0 });
        let gauss = Noise::gaussian_for(1.0, 1e-6, 2.0);
        if let Noise::Gaussian { sigma } = gauss {
            let expect = (2.0f64 * (1.25e6f64).ln()).sqrt() * 2.0;
            assert!((sigma - expect).abs() < 1e-9);
        } else {
            panic!("expected gaussian");
        }
    }

    #[test]
    fn sample_many_laplace_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let noise = Noise::Laplace { b: 3.0 };
        let mut samples = vec![0.0f64; 200_000];
        noise.sample_many(&mut samples, &mut rng);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        // Var(Lap(3)) = 2·9 = 18, matching the per-sample test's tolerance.
        assert!((var - 18.0).abs() < 0.6, "var {var}");
    }

    #[test]
    fn sample_many_gaussian_moments() {
        let mut rng = StdRng::seed_from_u64(12);
        let noise = Noise::Gaussian { sigma: 2.0 };
        // Odd length exercises the unpaired Box–Muller tail draw.
        let mut samples = vec![0.0f64; 200_001];
        noise.sample_many(&mut samples, &mut rng);
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
        // Pairwise Box–Muller must not correlate adjacent samples.
        let cov =
            samples.windows(2).map(|w| (w[0] - mean) * (w[1] - mean)).sum::<f64>() / (n - 1.0);
        assert!(cov.abs() < 0.05, "lag-1 covariance {cov}");
    }

    #[test]
    fn sample_many_matches_laplace_stream() {
        // The Laplace batch path consumes uniforms exactly like repeated
        // sample() calls, so the streams agree draw for draw.
        let noise = Noise::Laplace { b: 1.5 };
        let mut a = StdRng::seed_from_u64(13);
        let mut b = StdRng::seed_from_u64(13);
        let mut batch = vec![0.0f64; 64];
        noise.sample_many(&mut batch, &mut a);
        for (i, &x) in batch.iter().enumerate() {
            assert_eq!(x, noise.sample(&mut b), "draw {i}");
        }
    }

    #[test]
    fn sample_many_zero_and_none() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut buf = [1.0f64; 7];
        Noise::None.sample_many(&mut buf, &mut rng);
        assert!(buf.iter().all(|&x| x == 0.0));
        let mut buf = [1.0f64; 7];
        Noise::Laplace { b: 0.0 }.sample_many(&mut buf, &mut rng);
        assert!(buf.iter().all(|&x| x == 0.0));
        let mut buf = [1.0f64; 7];
        Noise::Gaussian { sigma: 0.0 }.sample_many(&mut buf, &mut rng);
        assert!(buf.iter().all(|&x| x == 0.0));
        // Empty slice is a no-op, not a panic.
        Noise::Gaussian { sigma: 1.0 }.sample_many(&mut [], &mut rng);
    }

    #[test]
    fn zero_noise_is_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(Noise::None.sample(&mut rng), 0.0);
        assert_eq!(Noise::None.tail_bound(0.1), 0.0);
    }
}
