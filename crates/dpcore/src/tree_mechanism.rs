//! The binary-tree (dyadic) mechanism for private prefix sums.
//!
//! Implements the mechanism of Dwork–Naor–Pitassi–Rothblum \[27\] in the
//! multi-sequence form the paper needs (Lemma 11 for ε-DP with Laplace
//! noise, Lemma 18 for (ε,δ)-DP with Gaussian noise): to release all prefix
//! sums of a length-`T` sequence, add noise to the partial sum of every
//! dyadic interval of `[1, T]`; a prefix `[1, m]` is then the sum of at most
//! `⌊log T⌋ + 1` noisy dyadic sums.
//!
//! Calibration is the caller's job (the sensitivity `L` is summed across all
//! `k` sequences — a key point of the paper's heavy-path analysis); the
//! helpers [`lemma11_noise`]/[`lemma18_noise`] encode the paper's exact
//! scales and [`lemma11_error_bound`]/[`lemma18_error_bound`] the resulting
//! high-probability sup errors.

use rand::Rng;

use crate::noise::Noise;

/// `⌊log₂ t⌋ + 1` for `t ≥ 1` — the maximum number of dyadic intervals
/// covering any prefix of `[1, t]`, and the maximum number of intervals any
/// single index belongs to.
pub fn dyadic_levels(t: usize) -> usize {
    assert!(t >= 1);
    (usize::BITS - t.leading_zeros()) as usize
}

/// Decomposes the prefix `[1, m]` (1-indexed, inclusive) into disjoint
/// dyadic intervals, returned as `(start, size)` with `start` 0-indexed.
///
/// Follows the binary representation of `m` from the most significant bit:
/// the decomposition has at most [`dyadic_levels`]`(m)` parts.
pub fn decompose_prefix(m: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut covered = 0usize;
    let mut remaining = m;
    while remaining > 0 {
        let size = 1usize << (usize::BITS - 1 - remaining.leading_zeros());
        out.push((covered, size));
        covered += size;
        remaining -= size;
    }
    out
}

/// The binary-tree mechanism over one sequence.
///
/// Stores the noisy dyadic partial sums; queries return noisy prefix sums.
#[derive(Debug, Clone)]
pub struct BinaryTreeMechanism {
    /// `noisy[level][j]` = noisy sum of `seq[j·2^level .. (j+1)·2^level)`
    /// (0-indexed), present only for intervals fully inside the sequence.
    noisy: Vec<Vec<f64>>,
    t: usize,
}

impl BinaryTreeMechanism {
    /// Builds the mechanism: one noise draw per dyadic interval.
    ///
    /// `O(T)` intervals in total, `O(T)` time. Noise is drawn per level via
    /// [`Noise::sample_many`], so calibration checks run once per level and
    /// the Gaussian path amortizes its Box–Muller pairs.
    pub fn build<R: Rng + ?Sized>(seq: &[f64], noise: Noise, rng: &mut R) -> Self {
        let t = seq.len();
        // Prefix sums for O(1) interval sums.
        let mut pre = Vec::with_capacity(t + 1);
        pre.push(0.0f64);
        for &v in seq {
            pre.push(pre.last().expect("non-empty") + v);
        }
        let mut scratch = vec![0.0f64; t];
        let mut noisy = Vec::new();
        let mut size = 1usize;
        while size <= t.max(1) {
            let width = t / size;
            let mut level = Vec::with_capacity(width);
            let mut start = 0usize;
            while start + size <= t {
                level.push(pre[start + size] - pre[start]);
                start += size;
            }
            debug_assert_eq!(level.len(), width);
            let draws = &mut scratch[..width];
            noise.sample_many(draws, rng);
            for (s, d) in level.iter_mut().zip(draws.iter()) {
                *s += d;
            }
            noisy.push(level);
            if size > t / 2 {
                break;
            }
            size *= 2;
        }
        Self { noisy, t }
    }

    /// Noisy prefix sum of the first `m` elements (`m ∈ [0, T]`).
    pub fn prefix(&self, m: usize) -> f64 {
        assert!(m <= self.t, "prefix length out of range");
        let mut sum = 0.0;
        for (start, size) in decompose_prefix(m) {
            let level = size.trailing_zeros() as usize;
            sum += self.noisy[level][start / size];
        }
        sum
    }

    /// All noisy prefix sums `[1..=T]` as a vector (index `i` holds the
    /// prefix of length `i + 1`).
    pub fn all_prefixes(&self) -> Vec<f64> {
        (1..=self.t).map(|m| self.prefix(m)).collect()
    }

    /// Sequence length.
    #[inline]
    pub fn len(&self) -> usize {
        self.t
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.t == 0
    }
}

/// Lemma 11 noise scale: `Lap(ε⁻¹ · L · (⌊log T⌋ + 1))` per dyadic interval,
/// where `L` is the *summed* L1 sensitivity across all `k` sequences.
pub fn lemma11_noise(epsilon: f64, l_total: f64, t: usize) -> Noise {
    assert!(epsilon > 0.0);
    let levels = dyadic_levels(t.max(1)) as f64;
    Noise::Laplace { b: l_total * levels / epsilon }
}

/// Lemma 11 error bound: with probability ≥ 1−β, every prefix sum of every
/// one of the `k` sequences (lengths ≤ `t`) errs by at most this.
///
/// From Lemma 12 with `b = ε⁻¹L(⌊log T⌋+1)`:
/// `2b·√(2 ln(2kT/β))·max(√(⌊log T⌋+1), √(ln(2kT/β)))`.
pub fn lemma11_error_bound(epsilon: f64, l_total: f64, t: usize, k: usize, beta: f64) -> f64 {
    assert!(epsilon > 0.0 && beta > 0.0 && beta < 1.0);
    let levels = dyadic_levels(t.max(1)) as f64;
    let b = l_total * levels / epsilon;
    let log_term = (2.0 * (k.max(1) * t.max(1)) as f64 / beta).ln();
    2.0 * b * (2.0 * log_term).sqrt() * levels.sqrt().max(log_term.sqrt())
}

/// Lemma 18 noise scale:
/// `N(0, σ²)` with `σ = ε⁻¹·√(2·L·Δ·(⌊log T⌋+1)·ln(2/δ))`, where `L` is the
/// summed L1 sensitivity and `Δ` the per-sequence L1 (hence L∞-per-interval)
/// sensitivity — the Hölder step of the paper.
pub fn lemma18_noise(epsilon: f64, delta: f64, l_total: f64, delta_inf: f64, t: usize) -> Noise {
    assert!(epsilon > 0.0 && delta > 0.0);
    let levels = dyadic_levels(t.max(1)) as f64;
    let sigma = (2.0 * l_total * delta_inf * levels * (2.0 / delta).ln()).sqrt() / epsilon;
    Noise::Gaussian { sigma }
}

/// Lemma 18 error bound: `σ·√((⌊log T⌋+1)·ln(Tk/β))` with σ from
/// [`lemma18_noise`] — with probability ≥ 1−β over all prefix sums of all
/// `k` sequences.
pub fn lemma18_error_bound(
    epsilon: f64,
    delta: f64,
    l_total: f64,
    delta_inf: f64,
    t: usize,
    k: usize,
    beta: f64,
) -> f64 {
    let Noise::Gaussian { sigma } = lemma18_noise(epsilon, delta, l_total, delta_inf, t) else {
        unreachable!("lemma18_noise always returns Gaussian");
    };
    let levels = dyadic_levels(t.max(1)) as f64;
    // Gaussian tail (Lemma 4) with variance (⌊log T⌋+1)σ², union over kT
    // prefix sums: t = σ₁·√(2 ln(2kT/β)).
    let sigma1 = sigma * levels.sqrt();
    sigma1 * (2.0 * (2.0 * (k.max(1) * t.max(1)) as f64 / beta).ln()).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decompose_prefix_covers_exactly() {
        for m in 1..=64usize {
            let parts = decompose_prefix(m);
            // Disjoint, contiguous from 0, total length m, aligned.
            let mut covered = 0usize;
            for &(start, size) in &parts {
                assert_eq!(start, covered);
                assert!(size.is_power_of_two());
                assert_eq!(start % size, 0, "interval not aligned");
                covered += size;
            }
            assert_eq!(covered, m);
            assert!(parts.len() <= dyadic_levels(m));
        }
    }

    #[test]
    fn zero_noise_gives_exact_prefix_sums() {
        let mut rng = StdRng::seed_from_u64(3);
        for t in [1usize, 2, 3, 7, 8, 9, 31, 64, 100] {
            let seq: Vec<f64> = (0..t).map(|i| (i as f64 * 1.5) - 3.0).collect();
            let mech = BinaryTreeMechanism::build(&seq, Noise::None, &mut rng);
            let mut acc = 0.0;
            for (i, &v) in seq.iter().enumerate() {
                acc += v;
                assert!((mech.prefix(i + 1) - acc).abs() < 1e-9, "t={t} m={}", i + 1);
            }
            assert_eq!(mech.prefix(0), 0.0);
        }
    }

    #[test]
    fn noisy_prefix_error_within_lemma11_bound() {
        let mut rng = StdRng::seed_from_u64(4);
        let t = 128usize;
        let seq: Vec<f64> = (0..t).map(|i| (i % 5) as f64).collect();
        let exact: Vec<f64> = {
            let mut acc = 0.0;
            seq.iter()
                .map(|&v| {
                    acc += v;
                    acc
                })
                .collect()
        };
        let (eps, l, k, beta) = (1.0, 1.0, 1usize, 0.05);
        let noise = lemma11_noise(eps, l, t);
        let bound = lemma11_error_bound(eps, l, t, k, beta);
        let trials = 300;
        let violations = (0..trials)
            .filter(|_| {
                let mech = BinaryTreeMechanism::build(&seq, noise, &mut rng);
                (0..t).any(|m| (mech.prefix(m + 1) - exact[m]).abs() > bound)
            })
            .count();
        assert!(
            (violations as f64 / trials as f64) <= beta,
            "violations {violations}/{trials} vs β={beta}"
        );
    }

    #[test]
    fn noisy_prefix_error_within_lemma18_bound() {
        let mut rng = StdRng::seed_from_u64(5);
        let t = 64usize;
        let seq: Vec<f64> = (0..t).map(|i| ((i * 7) % 3) as f64).collect();
        let exact: Vec<f64> = {
            let mut acc = 0.0;
            seq.iter()
                .map(|&v| {
                    acc += v;
                    acc
                })
                .collect()
        };
        let (eps, delta, l, dinf, k, beta) = (1.0, 1e-6, 4.0, 2.0, 1usize, 0.05);
        let noise = lemma18_noise(eps, delta, l, dinf, t);
        let bound = lemma18_error_bound(eps, delta, l, dinf, t, k, beta);
        let trials = 300;
        let violations = (0..trials)
            .filter(|_| {
                let mech = BinaryTreeMechanism::build(&seq, noise, &mut rng);
                (0..t).any(|m| (mech.prefix(m + 1) - exact[m]).abs() > bound)
            })
            .count();
        assert!((violations as f64 / trials as f64) <= beta);
    }

    #[test]
    fn per_element_interval_membership_is_logarithmic() {
        // Every index belongs to at most ⌊log T⌋+1 dyadic intervals — the
        // crux of the sensitivity argument in Lemma 11's privacy proof.
        for t in [1usize, 5, 16, 33, 100] {
            let levels = dyadic_levels(t);
            for idx in 0..t {
                let mut membership = 0usize;
                let mut size = 1usize;
                while size <= t {
                    if (idx / size) * size + size <= t {
                        membership += 1;
                    }
                    size *= 2;
                }
                assert!(membership <= levels, "t={t} idx={idx}");
            }
        }
    }

    #[test]
    fn empty_sequence() {
        let mut rng = StdRng::seed_from_u64(6);
        let mech = BinaryTreeMechanism::build(&[], Noise::Laplace { b: 1.0 }, &mut rng);
        assert_eq!(mech.prefix(0), 0.0);
        assert!(mech.is_empty());
        assert!(mech.all_prefixes().is_empty());
    }
}
