//! Deterministic RNG-stream derivation.
//!
//! The system's reproducibility story rests on one convention: draw a
//! single base seed from the caller's RNG, then derive an independent
//! stream per unit of work (audit scenario, pair-scan chunk, heavy path)
//! with the SplitMix64 finalizer. This module is the single definition of
//! that finalizer — `audit::matrix`, `private_count::candidates`, the
//! pipeline's heavy-path pass, and the bench experiments all derive
//! through it, so the documented "same derivation pattern" equivalence is
//! structural, not copy-paste.

/// SplitMix64 finalizer turning `(base, tag)` into an independent-looking
/// stream seed, deterministically. Distinct tags give well-spread seeds
/// even when `base` has low entropy.
#[inline]
pub fn derive_stream(base: u64, tag: u64) -> u64 {
    let mut z = base ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_tags_and_bases_spread() {
        let a = derive_stream(1, 1);
        let b = derive_stream(1, 2);
        let c = derive_stream(2, 1);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
    }

    #[test]
    fn deterministic() {
        assert_eq!(derive_stream(42, 7), derive_stream(42, 7));
    }
}
