//! # dpsc-dpcore — differential-privacy substrate
//!
//! The mechanism layer of the system, implementing exactly the tools the
//! paper's Section 2.2 collects plus the binary-tree mechanism its Sections
//! 3–5 build on:
//!
//! * [`Noise`] — Laplace / Gaussian samplers with calibration constructors
//!   (Lemma 3, Lemma 5) and single-draw tail bounds (Lemma 2, Lemma 4).
//! * [`mechanism`] — vector-valued mechanisms and the sup-error corollaries
//!   (Corollary 1, Corollary 2) plus the Hölder `L2 ≤ √(L1·L∞)` conversion
//!   (Lemma 14).
//! * [`PrivacyParams`] / [`BudgetAccountant`] — `(ε, δ)` bookkeeping with
//!   simple composition (Lemma 1) enforced at runtime.
//! * [`BinaryTreeMechanism`] — dyadic prefix-sum release (Dwork et al.
//!   \[27\]) in the multi-sequence calibrations of Lemma 11 (Laplace) and
//!   Lemma 18 (Gaussian), with their exact error-bound formulas.
//!
//! ## Scope note
//! Noise is sampled in `f64`. The paper's model is real-valued noise; we do
//! not implement discretized samplers hardened against floating-point
//! attacks (Mironov 2012) — see DESIGN.md §7.

pub mod budget;
pub mod mechanism;
pub mod noise;
pub mod stream;
pub mod tree_mechanism;

pub use budget::{BudgetAccountant, BudgetExceeded, PrivacyParams};
pub use noise::Noise;
pub use stream::derive_stream;
pub use tree_mechanism::BinaryTreeMechanism;
