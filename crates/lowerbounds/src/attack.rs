//! Empirical distinguishing attacks: privacy as an executable property.
//!
//! Differential privacy upper-bounds the log-likelihood ratio of any output
//! event between neighboring databases. This harness estimates that ratio
//! for a *threshold event* `{output ≥ t}` by Monte-Carlo: a mechanism that
//! is ε-DP must satisfy `ln(Pr_D[E] / Pr_{D'}[E]) ≤ ε`; conversely, a large
//! empirical ratio certifies a privacy failure (e.g. for the exact,
//! non-private counter). The integration tests use this to check that the
//! repository's mechanisms do *not* blatantly violate their declared ε on
//! the Theorem 6 worst-case instance, and that the exact counter does.

/// Result of a Monte-Carlo distinguishing attack.
#[derive(Debug, Clone, Copy)]
pub struct AttackResult {
    /// Empirical `Pr[output ≥ t]` on `D`.
    pub p_db: f64,
    /// Empirical `Pr[output ≥ t]` on the neighbor `D'`.
    pub p_neighbor: f64,
    /// Smoothed empirical log-ratio `ln(p̂_D / p̂_{D'})` (Laplace-smoothed
    /// counts, so finite even at 0 observations — a *lower estimate* of the
    /// true privacy loss when positive).
    pub epsilon_hat: f64,
    /// Number of trials per database.
    pub trials: usize,
}

/// Runs the attack: `trials` independent executions of the mechanism on
/// each database, thresholded at `t`.
///
/// `run_db` / `run_neighbor` must each perform one fresh randomized
/// execution (including fresh noise) and return the output being attacked.
pub fn threshold_attack(
    trials: usize,
    t: f64,
    mut run_db: impl FnMut() -> f64,
    mut run_neighbor: impl FnMut() -> f64,
) -> AttackResult {
    assert!(trials > 0);
    let hits_db = (0..trials).filter(|_| run_db() >= t).count();
    let hits_nb = (0..trials).filter(|_| run_neighbor() >= t).count();
    // Add-one smoothing keeps the estimate finite; it biases toward 0
    // (conservative for certifying leaks).
    let p_db = hits_db as f64 / trials as f64;
    let p_neighbor = hits_nb as f64 / trials as f64;
    let sm_db = (hits_db + 1) as f64 / (trials + 2) as f64;
    let sm_nb = (hits_nb + 1) as f64 / (trials + 2) as f64;
    AttackResult { p_db, p_neighbor, epsilon_hat: (sm_db / sm_nb).ln(), trials }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::substring::theorem6_instance;
    use dpsc_dpcore::noise::Noise;
    use dpsc_strkit::naive_count;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn exact_count(db: &dpsc_strkit::alphabet::Database, pat: &[u8]) -> f64 {
        db.documents().iter().map(|d| naive_count(pat, d)).sum::<usize>() as f64
    }

    #[test]
    fn exact_counter_is_blatantly_non_private() {
        let inst = theorem6_instance(8, 32);
        let res = threshold_attack(
            200,
            16.0,
            || exact_count(&inst.db, &inst.pattern),
            || exact_count(&inst.neighbor, &inst.pattern),
        );
        assert_eq!(res.p_db, 1.0);
        assert_eq!(res.p_neighbor, 0.0);
        // Smoothed ε̂ grows with trials; at 200 trials it certifies ≥ ln(201).
        assert!(res.epsilon_hat > 5.0, "ε̂ = {}", res.epsilon_hat);
    }

    #[test]
    fn laplace_mechanism_respects_epsilon() {
        // One Laplace count with sensitivity ℓ (the single-query release on
        // the Theorem 6 instance) at ε = 0.5 must show ε̂ ≤ 0.5 + sampling
        // slack at every threshold.
        let inst = theorem6_instance(8, 32);
        let eps = 0.5;
        let noise = Noise::laplace_for(eps, inst.gap as f64);
        let mut rng = StdRng::seed_from_u64(31);
        let exact_db = exact_count(&inst.db, &inst.pattern);
        let exact_nb = exact_count(&inst.neighbor, &inst.pattern);
        let trials = 20_000;
        for t in [0.0, 16.0, 32.0, 64.0] {
            let mut rng_db = StdRng::seed_from_u64(rng.gen());
            let mut rng_nb = StdRng::seed_from_u64(rng.gen());
            let res = threshold_attack(
                trials,
                t,
                || exact_db + noise.sample(&mut rng_db),
                || exact_nb + noise.sample(&mut rng_nb),
            );
            assert!(
                res.epsilon_hat <= eps + 0.15,
                "t={t}: ε̂ = {} exceeds ε = {eps}",
                res.epsilon_hat
            );
        }
    }

    #[test]
    fn under_noised_mechanism_is_caught() {
        // Noise calibrated to sensitivity 1 instead of ℓ (a classic bug):
        // the attack should certify far more than the declared ε.
        let inst = theorem6_instance(8, 32);
        let eps = 0.5;
        let noise = Noise::laplace_for(eps, 1.0);
        let mut rng_db = StdRng::seed_from_u64(32);
        let mut rng_nb = StdRng::seed_from_u64(33);
        let exact_db = exact_count(&inst.db, &inst.pattern);
        let exact_nb = exact_count(&inst.neighbor, &inst.pattern);
        let res = threshold_attack(
            5_000,
            16.0,
            || exact_db + noise.sample(&mut rng_db),
            || exact_nb + noise.sample(&mut rng_nb),
        );
        assert!(
            res.epsilon_hat > 2.0 * eps,
            "under-noised mechanism not caught: ε̂ = {}",
            res.epsilon_hat
        );
    }
}
