//! Theorem 6: the `Ω(ℓ)` lower bound for (ε,δ)-DP Substring Count.
//!
//! The instance is a single-document swap: `D` contains one `a^ℓ` among
//! `n−1` copies of `b^ℓ`; the neighbor `D'` replaces it by `b^ℓ`. The
//! pattern `P = a` has `count(P, D) = ℓ` and `count(P, D') = 0`, so any
//! mechanism that is `o(ℓ)`-accurate on both with good probability can
//! distinguish two *neighboring* databases — contradicting DP unless
//! `ε ≥ ln((1−β−δ)/β)` (Equation 1 of the paper).

use dpsc_strkit::alphabet::{Alphabet, Database};

/// The Theorem 6 instance: neighboring databases and the distinguishing
/// pattern.
#[derive(Debug, Clone)]
pub struct SubstringLowerBound {
    /// `D`: one `a^ℓ` and `n−1` copies of `b^ℓ`.
    pub db: Database,
    /// `D'`: all `n` documents are `b^ℓ`.
    pub neighbor: Database,
    /// The query pattern `P = a`.
    pub pattern: Vec<u8>,
    /// The gap `count(P, D) − count(P, D') = ℓ`.
    pub gap: usize,
}

/// Builds the Theorem 6 instance.
pub fn theorem6_instance(n: usize, ell: usize) -> SubstringLowerBound {
    assert!(n >= 1 && ell >= 1);
    let alphabet = Alphabet::lowercase(2);
    let mut docs = vec![vec![b'b'; ell]; n];
    docs[0] = vec![b'a'; ell];
    let db = Database::new(alphabet, ell, docs).expect("valid instance");
    let neighbor = db.neighbor_replacing(0, vec![b'b'; ell]).expect("valid neighbor");
    SubstringLowerBound { db, neighbor, pattern: vec![b'a'], gap: ell }
}

/// The minimum ε any `(α, β, δ)`-mechanism must leak on this instance when
/// `α < ℓ/2` (Equation 1): `ε ≥ ln((1−β−δ)/β)`.
pub fn theorem6_epsilon_floor(beta: f64, delta: f64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0 && delta >= 0.0);
    ((1.0 - beta - delta) / beta).ln()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::naive_count;

    #[test]
    fn instance_has_full_gap() {
        let inst = theorem6_instance(8, 32);
        let c_db: usize = inst.db.documents().iter().map(|d| naive_count(&inst.pattern, d)).sum();
        let c_nb: usize =
            inst.neighbor.documents().iter().map(|d| naive_count(&inst.pattern, d)).sum();
        assert_eq!(c_db, 32);
        assert_eq!(c_nb, 0);
        assert_eq!(inst.gap, 32);
        // They are neighbors: exactly one document differs.
        let diffs = inst
            .db
            .documents()
            .iter()
            .zip(inst.neighbor.documents())
            .filter(|(a, b)| a != b)
            .count();
        assert_eq!(diffs, 1);
    }

    #[test]
    fn epsilon_floor_matches_corollary_9() {
        // Corollary 9(i): for β an arbitrarily small constant and δ small,
        // accurate mechanisms need ε → ∞; at β = (1−δ)/(e+1) the floor is 1.
        let delta = 1e-9;
        let beta = (1.0 - delta) / (std::f64::consts::E + 1.0);
        let floor = theorem6_epsilon_floor(beta, delta);
        assert!((floor - 1.0).abs() < 1e-6, "floor {floor}");
        // Smaller β forces larger ε.
        assert!(theorem6_epsilon_floor(0.001, delta) > 6.0);
    }
}
