//! Theorem 7: the `Ω̃(√ℓ)` lower bound for (ε,δ)-DP Document Count, via
//! reduction from 1-way marginals (Definition 7).
//!
//! Encoding (the paper's position gadgets): for a binary matrix
//! `Y ∈ {0,1}^{n×d}` and alphabet `Σ_b = [0, b−2] ∪ {$}`, row `Y_i` becomes
//! the document
//! `S_i = code(0)·Y_i\[0\]·$ · code(1)·Y_i\[1\]·$ ⋯ code(d−1)·Y_i[d−1]·$`
//! of length `ℓ = d(⌈log_{b−1} d⌉ + 2)`. The `j`-th marginal is recovered
//! as `DocumentCount(code(j)·1) / n`, so an `α`-accurate Document Count
//! mechanism yields an `(α/n)`-accurate marginals mechanism — and the
//! fingerprinting lower bound for marginals \[14, 44, 46\] transfers.

use dpsc_strkit::alphabet::{Alphabet, Database};
use rand::Rng;

/// A marginals instance encoded as a Document Count database.
#[derive(Debug, Clone)]
pub struct MarginalsInstance {
    /// The encoded database.
    pub db: Database,
    /// The binary matrix `Y` (row per user).
    pub matrix: Vec<Vec<u8>>,
    /// Query pattern for each column `j`: `code(j)·1`.
    pub queries: Vec<Vec<u8>>,
    /// Number of columns `d`.
    pub d: usize,
    /// Symbols per code digit (`b − 1` in the paper's notation).
    pub digit_base: usize,
}

/// Digits of `j` in base `base`, padded to `width`, most significant first.
fn code_digits(j: usize, base: usize, width: usize) -> Vec<usize> {
    let mut digits = vec![0usize; width];
    let mut v = j;
    for slot in digits.iter_mut().rev() {
        *slot = v % base;
        v /= base;
    }
    debug_assert_eq!(v, 0, "width too small for value");
    digits
}

/// Encodes a binary matrix as a Document Count instance over an alphabet of
/// size `s ≥ 3` (so `digit_base = s − 2` symbols for code digits, one
/// symbol each for the bit values 0/1 shared with digits 0/1, plus `$`).
///
/// We use the paper's `Σ_b = [0, b−2] ∪ {$}` with `b = min(s, d+1)`:
/// letters `a..` are the digit/bit symbols and `z` plays `$`.
pub fn encode_marginals(matrix: &[Vec<u8>], s: usize) -> MarginalsInstance {
    let n = matrix.len();
    assert!(n > 0, "matrix must have rows");
    let d = matrix[0].len();
    assert!(d >= 1 && matrix.iter().all(|r| r.len() == d), "ragged matrix");
    assert!((3..=26).contains(&s), "alphabet size must be in [3, 26]");
    let b = s.min(d + 1).max(3);
    let digit_base = b - 1;
    // Code width ⌈log_{b-1} d⌉ (at least 1).
    let width = {
        let mut w = 1usize;
        let mut cap = digit_base;
        while cap < d {
            w += 1;
            cap *= digit_base;
        }
        w
    };
    let alphabet = Alphabet::lowercase(26);
    let sym = |digit: usize| b'a' + digit as u8;
    let sep = b'z';

    let mut queries = Vec::with_capacity(d);
    for j in 0..d {
        let mut pat: Vec<u8> = code_digits(j, digit_base, width).into_iter().map(sym).collect();
        pat.push(sym(1)); // the bit value 1
        queries.push(pat);
    }

    let docs: Vec<Vec<u8>> = matrix
        .iter()
        .map(|row| {
            let mut doc = Vec::with_capacity(d * (width + 2));
            for (j, &bit) in row.iter().enumerate() {
                doc.extend(code_digits(j, digit_base, width).into_iter().map(sym));
                doc.push(sym(bit as usize));
                doc.push(sep);
            }
            doc
        })
        .collect();
    let ell = d * (width + 2);
    let db = Database::new(alphabet, ell, docs).expect("valid encoding");
    MarginalsInstance { db, matrix: matrix.to_vec(), queries, d, digit_base }
}

/// Random binary matrix.
pub fn random_matrix<R: Rng + ?Sized>(n: usize, d: usize, rng: &mut R) -> Vec<Vec<u8>> {
    (0..n).map(|_| (0..d).map(|_| rng.gen_range(0..2u8)).collect()).collect()
}

/// Exact marginals of a matrix.
pub fn exact_marginals(matrix: &[Vec<u8>]) -> Vec<f64> {
    let n = matrix.len() as f64;
    let d = matrix[0].len();
    (0..d).map(|j| matrix.iter().map(|r| r[j] as usize).sum::<usize>() as f64 / n).collect()
}

/// Solves marginals through any Document Count oracle: feeds each query
/// pattern and divides by `n`. The max deviation from [`exact_marginals`]
/// is the reduction's accuracy (Theorem 7 transfers lower bounds through
/// this map).
pub fn marginals_via_document_count(
    inst: &MarginalsInstance,
    mut doc_count: impl FnMut(&[u8]) -> f64,
) -> Vec<f64> {
    let n = inst.db.n() as f64;
    inst.queries.iter().map(|q| doc_count(q) / n).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::naive_contains;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn code_digits_roundtrip() {
        for j in 0..27 {
            let digits = code_digits(j, 3, 3);
            let back = digits.iter().fold(0usize, |acc, &d| acc * 3 + d);
            assert_eq!(back, j);
        }
    }

    #[test]
    fn exact_recovery_through_exact_oracle() {
        let mut rng = StdRng::seed_from_u64(11);
        let matrix = random_matrix(20, 10, &mut rng);
        let inst = encode_marginals(&matrix, 4);
        let exact = exact_marginals(&matrix);
        let recovered = marginals_via_document_count(&inst, |pat| {
            inst.db.documents().iter().filter(|doc| naive_contains(pat, doc)).count() as f64
        });
        for (j, (&e, &r)) in exact.iter().zip(&recovered).enumerate() {
            assert!((e - r).abs() < 1e-12, "marginal {j}: exact {e} vs recovered {r}");
        }
    }

    #[test]
    fn queries_are_unambiguous() {
        // A query code(j)·1 must not match any document position other than
        // the j-th gadget: verify on an adversarial all-ones matrix.
        let matrix = vec![vec![1u8; 9]; 3];
        let inst = encode_marginals(&matrix, 3);
        let recovered = marginals_via_document_count(&inst, |pat| {
            inst.db.documents().iter().filter(|doc| naive_contains(pat, doc)).count() as f64
        });
        assert!(recovered.iter().all(|&r| (r - 1.0).abs() < 1e-12));
        // And all-zeros recovers 0.
        let matrix0 = vec![vec![0u8; 9]; 3];
        let inst0 = encode_marginals(&matrix0, 3);
        let rec0 = marginals_via_document_count(&inst0, |pat| {
            inst0.db.documents().iter().filter(|doc| naive_contains(pat, doc)).count() as f64
        });
        assert!(rec0.iter().all(|&r| r.abs() < 1e-12));
    }

    #[test]
    fn document_length_matches_formula() {
        let matrix = vec![vec![0u8; 12]; 2];
        let inst = encode_marginals(&matrix, 4);
        // b = min(4, 13) = 4; digit_base 3; width = ⌈log₃ 12⌉ = 3;
        // ℓ = 12·(3+2) = 60.
        assert_eq!(inst.db.documents()[0].len(), 60);
        assert_eq!(inst.digit_base, 3);
    }

    #[test]
    fn neighboring_rows_give_neighboring_databases() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut matrix = random_matrix(5, 6, &mut rng);
        let inst1 = encode_marginals(&matrix, 4);
        matrix[2][3] ^= 1;
        let inst2 = encode_marginals(&matrix, 4);
        let diffs =
            inst1.db.documents().iter().zip(inst2.db.documents()).filter(|(a, b)| a != b).count();
        assert_eq!(diffs, 1, "changing one row changes exactly one document");
    }
}
