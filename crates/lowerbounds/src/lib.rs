//! # dpsc-lowerbounds — executable lower-bound instances (paper §6)
//!
//! The paper's lower bounds, turned into runnable adversaries:
//!
//! * [`substring`] — **Theorem 6**: the `a^ℓ`/`b^ℓ` neighboring pair that
//!   forces `α = Ω(ℓ)` for Substring Count under any useful `(ε, δ)`.
//! * [`marginals`] — **Theorem 7**: the position-gadget encoding reducing
//!   1-way marginals to Document Count, transferring the fingerprinting
//!   `Ω̃(√ℓ)` bound.
//! * [`packing`] — **Theorem 5**: the packing instance showing
//!   `α = Ω(min(n, ε⁻¹ ℓ log|Σ|))` even for threshold mining of
//!   fixed-length patterns.
//! * [`attack`] — a Monte-Carlo distinguishing harness that measures the
//!   empirical privacy loss of any mechanism on a neighboring pair; used to
//!   certify that the exact counter is blatantly non-private and that the
//!   repository's mechanisms respect their declared ε on the worst-case
//!   instances.

pub mod attack;
pub mod marginals;
pub mod packing;
pub mod substring;

pub use attack::{threshold_attack, AttackResult};
pub use marginals::{
    encode_marginals, exact_marginals, marginals_via_document_count, random_matrix,
    MarginalsInstance,
};
pub use packing::{packing_instance, recovery_event, theorem5_epsilon_floor, PackingInstance};
pub use substring::{theorem6_epsilon_floor, theorem6_instance, SubstringLowerBound};
