//! Theorem 5: the packing lower bound for ε-DP mining of fixed-length
//! patterns.
//!
//! The instance packs `k = ⌊ℓ/m⌋` secret patterns `P_1 … P_k` (over
//! `Σ̂ = Σ∖{0,1}`) into one document `S = P_1·c_1 ⋯ P_k·c_k`, where `c_i`
//! is the `m/2`-bit binary position code of `i`. The database has `B = 2α`
//! copies of `S` and `n−B` filler documents. Any mechanism that reliably
//! mines the planted length-`m` patterns at threshold `τ = B/2` pins down
//! the `(|Σ|−2)^{mk/2}` possible pattern sets, and group privacy over the
//! `B`-neighboring instances forces `α = Ω(min(n, ε⁻¹ℓ log|Σ|))`.
//!
//! Executable here: instance generation, the event `E(P_1 … P_k)` test, and
//! the implied ε floor for a hypothetically-accurate mechanism.

use dpsc_strkit::alphabet::{Alphabet, Database};
use rand::Rng;

/// A packing instance.
#[derive(Debug, Clone)]
pub struct PackingInstance {
    /// The database: `B` copies of the packed document, `n − B` fillers.
    pub db: Database,
    /// The planted length-`m` strings `P_i·c_i` the miner must output.
    pub planted: Vec<Vec<u8>>,
    /// The suffix codes `c_i` (no other output string may end in one).
    pub codes: Vec<Vec<u8>>,
    /// Mining threshold `τ = B/2`.
    pub tau: f64,
    /// Number of packed copies `B`.
    pub b: usize,
    /// Pattern length `m`.
    pub m: usize,
}

/// Builds a packing instance with `B` copies of the packed document among
/// `n` documents of length `ℓ`, alphabet size `sigma ≥ 4`.
///
/// `m` defaults to `2⌈log ℓ⌉` rounded up to even (the theorem's minimum).
pub fn packing_instance<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    sigma: u16,
    b: usize,
    rng: &mut R,
) -> PackingInstance {
    assert!(sigma >= 4, "Theorem 5 needs |Σ| ≥ 4");
    assert!(b <= n, "B must be at most n");
    let alphabet = Alphabet::lowercase(sigma);
    // m ≥ 2⌈log ℓ⌉, even.
    let logl = (usize::BITS - (ell.max(2) - 1).leading_zeros()) as usize;
    let m = (2 * logl.max(1) + 1) & !1usize;
    assert!(m <= ell, "ℓ too small for the packing construction");
    let half = m / 2;
    let k = ell / m;
    assert!(k >= 1);

    // Symbols: 'a' = 0, 'b' = 1 (code symbols); Σ̂ = the rest.
    let zero = alphabet.symbol_at(0);
    let one = alphabet.symbol_at(1);
    let hat: Vec<u8> = (2..alphabet.size()).map(|i| alphabet.symbol_at(i)).collect();

    let mut planted = Vec::with_capacity(k);
    let mut codes = Vec::with_capacity(k);
    let mut packed = Vec::with_capacity(k * m);
    for i in 0..k {
        let pattern: Vec<u8> = (0..half).map(|_| hat[rng.gen_range(0..hat.len())]).collect();
        // c_i: half-bit binary code of i.
        let code: Vec<u8> =
            (0..half).rev().map(|bit| if (i >> bit) & 1 == 1 { one } else { zero }).collect();
        packed.extend_from_slice(&pattern);
        packed.extend_from_slice(&code);
        let mut full = pattern.clone();
        full.extend_from_slice(&code);
        planted.push(full);
        codes.push(code);
    }
    // Pad the packed document to ℓ with the zero symbol.
    packed.resize(ell, zero);

    let mut docs = vec![vec![zero; ell]; n];
    for doc in docs.iter_mut().take(b) {
        *doc = packed.clone();
    }
    let db = Database::new(alphabet, ell, docs).expect("valid packing instance");
    PackingInstance { db, planted, codes, tau: b as f64 / 2.0, b, m }
}

/// The event `E(P_1 … P_k)` of the proof: the mined set contains every
/// planted string and no *other* length-`m` string ending in one of the
/// position codes.
pub fn recovery_event(inst: &PackingInstance, mined: &[Vec<u8>]) -> bool {
    let planted: std::collections::HashSet<&[u8]> =
        inst.planted.iter().map(|p| p.as_slice()).collect();
    // All planted present.
    let all_present = inst.planted.iter().all(|p| mined.iter().any(|m| m == p));
    if !all_present {
        return false;
    }
    // No impostor with a code suffix.
    let half = inst.m / 2;
    for s in mined {
        if s.len() != inst.m {
            continue;
        }
        if planted.contains(s.as_slice()) {
            continue;
        }
        if inst.codes.iter().any(|c| &s[s.len() - half..] == c.as_slice()) {
            return false;
        }
    }
    true
}

/// The ε floor Theorem 5 implies for an algorithm achieving error
/// `α = B/2` on this family: `ε ≥ (mk/2)·ln(|Σ|−2)/B` up to the additive
/// `ln(2/3)` slack.
pub fn theorem5_epsilon_floor(sigma: usize, m: usize, k: usize, b: usize) -> f64 {
    assert!(sigma >= 3 && b >= 1);
    ((m * k) as f64 / 2.0 * ((sigma - 2) as f64).ln() + (2.0f64 / 3.0).ln()) / b as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::naive_count;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn planted_patterns_have_count_b() {
        let mut rng = StdRng::seed_from_u64(21);
        let inst = packing_instance(32, 64, 6, 8, &mut rng);
        for p in &inst.planted {
            let c: usize = inst.db.documents().iter().map(|d| naive_count(p, d)).sum();
            assert_eq!(c, inst.b, "planted {:?}", p);
            assert_eq!(p.len(), inst.m);
        }
    }

    #[test]
    fn filler_documents_lack_codes() {
        let mut rng = StdRng::seed_from_u64(22);
        let inst = packing_instance(16, 64, 6, 4, &mut rng);
        // Any length-m string ending in a code other than the planted ones
        // has count 0 in D.
        let half = inst.m / 2;
        let mut impostor = inst.planted[0].clone();
        impostor[0] = inst.db.alphabet().symbol_at(3); // perturb the pattern half
        if impostor != inst.planted[0] {
            let c: usize = inst.db.documents().iter().map(|d| naive_count(&impostor, d)).sum();
            assert_eq!(c, 0);
        }
        let _ = half;
    }

    #[test]
    fn recovery_event_detects_success_and_failure() {
        let mut rng = StdRng::seed_from_u64(23);
        let inst = packing_instance(16, 64, 6, 4, &mut rng);
        assert!(recovery_event(&inst, &inst.planted));
        // Missing one planted string fails.
        assert!(!recovery_event(&inst, &inst.planted[1..]));
        // An impostor with a code suffix fails.
        let mut with_impostor = inst.planted.clone();
        let mut impostor = inst.planted[0].clone();
        impostor[0] = impostor[0].wrapping_add(1);
        with_impostor.push(impostor);
        assert!(!recovery_event(&inst, &with_impostor));
        // Extra strings without code suffixes are fine.
        let mut with_noise = inst.planted.clone();
        with_noise.push(vec![b'c'; inst.m]);
        assert!(recovery_event(&inst, &with_noise));
    }

    #[test]
    fn epsilon_floor_grows_with_packing_density() {
        let f1 = theorem5_epsilon_floor(6, 12, 5, 16);
        let f2 = theorem5_epsilon_floor(6, 12, 10, 16);
        assert!(f2 > f1);
        // And shrinks as B (the allowed error) grows.
        let f3 = theorem5_epsilon_floor(6, 12, 5, 64);
        assert!(f3 < f1);
    }
}
