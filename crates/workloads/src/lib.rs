//! # dpsc-workloads — synthetic corpus generators
//!
//! Deterministic (seeded) generators for the experiment suite:
//!
//! * [`random_corpus`] — uniform random documents (the "hard" unstructured
//!   case: few repeated substrings).
//! * [`markov_corpus`] — order-1 Markov text with skewed transitions, a
//!   stand-in for natural-language likelihood structure (frequent patterns
//!   exist at every length).
//! * [`dna_corpus`] — `|Σ| = 4` genome-like documents with *planted motifs*
//!   occurring at exactly controlled document frequencies (each motif is
//!   planted into exactly `round(freq·n)` documents at non-overlapping
//!   offsets); exact ground truth for mining utility experiments and the
//!   `dpsc-audit` recall conformance checks (the genome-publishing
//!   application \[50\] of the paper).
//! * [`transit_corpus`] — event sequences over a station alphabet where a
//!   few popular routes dominate (the transit-data application \[19\]).
//! * [`text_corpus`] — natural-language stand-in: documents are sequences
//!   of same-length vocabulary tokens joined by a separator byte, with
//!   token ranks following an *exactly realised* Zipf distribution (the
//!   per-token occurrence counts are planted, not sampled).
//! * [`log_corpus`] — access-log / URL stand-in: each line starts with one
//!   of a small set of planted routes (lowercase + `/` bytes) followed by
//!   filler drawn from a disjoint byte class, so per-route line counts are
//!   exact ground truth.
//!
//! All generators return validated [`Database`] values and take an explicit
//! `Rng`, so every experiment is reproducible from its seed.

use dpsc_strkit::alphabet::{Alphabet, Database};
use rand::Rng;

/// Uniform random corpus: `n` documents of length exactly `ell` over the
/// first `sigma` lowercase letters.
pub fn random_corpus<R: Rng + ?Sized>(n: usize, ell: usize, sigma: u16, rng: &mut R) -> Database {
    let alphabet = Alphabet::lowercase(sigma);
    let docs = (0..n)
        .map(|_| (0..ell).map(|_| alphabet.symbol_at(rng.gen_range(0..alphabet.size()))).collect())
        .collect();
    Database::new(alphabet, ell, docs).expect("generated documents are valid")
}

/// Order-1 Markov text: transition matrix with a strong self-loop mass on a
/// "favored" successor per symbol, producing heavy-tailed substring
/// frequencies like natural text.
pub fn markov_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    sigma: u16,
    skew: f64,
    rng: &mut R,
) -> Database {
    assert!((0.0..1.0).contains(&skew), "skew must be in [0,1)");
    let alphabet = Alphabet::lowercase(sigma);
    let s = alphabet.size();
    let docs = (0..n)
        .map(|_| {
            let mut doc = Vec::with_capacity(ell);
            let mut cur = rng.gen_range(0..s);
            doc.push(alphabet.symbol_at(cur));
            for _ in 1..ell {
                // With probability `skew`, take the favored successor
                // (cur + 1 mod s); otherwise uniform.
                cur = if rng.gen::<f64>() < skew { (cur + 1) % s } else { rng.gen_range(0..s) };
                doc.push(alphabet.symbol_at(cur));
            }
            doc
        })
        .collect();
    Database::new(alphabet, ell, docs).expect("generated documents are valid")
}

/// A DNA corpus with planted motifs.
#[derive(Debug, Clone)]
pub struct DnaCorpus {
    /// The database (alphabet `{A,C,G,T}` encoded as bytes `0..4`).
    pub db: Database,
    /// The planted motifs with their requested document frequencies. Each
    /// motif was planted into exactly `round(freq·n)` distinct documents
    /// (the observed frequency can only exceed that through background
    /// collisions, which are negligible for the motif lengths the
    /// experiments use).
    pub motifs: Vec<(Vec<u8>, f64)>,
}

/// Generates `n` DNA reads of length `ell` and plants each motif (of
/// length `motif_len`) into **exactly** `round(frequencies[i]·n)` distinct
/// documents, chosen by a seeded partial shuffle, at offsets that do not
/// overlap previously planted motifs — so the planted document counts are
/// exact ground truth, not binomial samples.
///
/// Requires `frequencies.len() · motif_len ≤ ell` so every document can
/// host all motifs disjointly.
pub fn dna_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    motif_len: usize,
    frequencies: &[f64],
    rng: &mut R,
) -> DnaCorpus {
    assert!(motif_len <= ell, "motif longer than documents");
    assert!(motif_len >= 1, "motif must be non-empty");
    assert!(frequencies.len() * motif_len <= ell, "motifs must fit disjointly into one document");
    assert!(frequencies.iter().all(|f| (0.0..=1.0).contains(f)), "frequencies must be in [0,1]");
    let alphabet = Alphabet::dna();
    let motifs: Vec<Vec<u8>> = frequencies
        .iter()
        .map(|_| (0..motif_len).map(|_| rng.gen_range(0..4u8)).collect())
        .collect();
    let mut docs: Vec<Vec<u8>> =
        (0..n).map(|_| (0..ell).map(|_| rng.gen_range(0..4u8)).collect()).collect();
    // Plantings go into motif_len-aligned slots after a random per-document
    // phase: the fit assertion guarantees at least `frequencies.len()` free
    // slots per document, so later motifs never clobber earlier plantings
    // (which would silently lower an earlier motif's frequency) and never
    // fail to place. The phase varies the absolute offsets across docs.
    let max_phase = ell - frequencies.len() * motif_len;
    let mut phase: Vec<Option<usize>> = vec![None; n];
    let mut used_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (motif, &freq) in motifs.iter().zip(frequencies) {
        let k = ((freq * n as f64).round() as usize).min(n);
        // Partial Fisher–Yates: the first k entries are a uniform k-subset.
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            order.swap(i, j);
        }
        for &d in &order[..k] {
            let p = *phase[d].get_or_insert_with(|| rng.gen_range(0..=max_phase));
            let n_slots = (ell - p) / motif_len;
            let free: Vec<usize> = (0..n_slots).filter(|s| !used_slots[d].contains(s)).collect();
            let slot = free[rng.gen_range(0..free.len())];
            used_slots[d].push(slot);
            let off = p + slot * motif_len;
            docs[d][off..off + motif_len].copy_from_slice(motif);
        }
    }
    let db = Database::new(alphabet, ell, docs).expect("generated documents are valid");
    DnaCorpus { db, motifs: motifs.into_iter().zip(frequencies.iter().copied()).collect() }
}

/// A transit-log corpus with planted popular routes.
#[derive(Debug, Clone)]
pub struct TransitCorpus {
    /// The database: each document is one rider's trip sequence over a
    /// station alphabet.
    pub db: Database,
    /// The planted route segments (frequent consecutive station runs).
    pub routes: Vec<Vec<u8>>,
}

/// Generates rider trip logs: `n` riders, trips of length up to `ell`, over
/// `stations` stations; `n_routes` popular route segments of length
/// `route_len` are planted, each used by roughly a `popularity` fraction of
/// riders.
pub fn transit_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    stations: u16,
    n_routes: usize,
    route_len: usize,
    popularity: f64,
    rng: &mut R,
) -> TransitCorpus {
    assert!(route_len <= ell);
    let alphabet = Alphabet::lowercase(stations.min(26));
    let s = alphabet.size();
    let routes: Vec<Vec<u8>> = (0..n_routes)
        .map(|_| (0..route_len).map(|_| alphabet.symbol_at(rng.gen_range(0..s))).collect())
        .collect();
    let docs: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            // Trip length varies: [route_len, ell].
            let len = rng.gen_range(route_len..=ell);
            let mut doc: Vec<u8> =
                (0..len).map(|_| alphabet.symbol_at(rng.gen_range(0..s))).collect();
            if !routes.is_empty() && rng.gen::<f64>() < popularity {
                let route = &routes[rng.gen_range(0..routes.len())];
                let off = rng.gen_range(0..=len - route.len());
                doc[off..off + route.len()].copy_from_slice(route);
            }
            doc
        })
        .collect();
    let db = Database::new(alphabet, ell, docs).expect("generated documents are valid");
    TransitCorpus { db, routes }
}

/// Splits `total` into `k` counts following a Zipf(`s`) rank distribution,
/// summing to **exactly** `total` via cumulative rounding: count `r` is
/// `round(total·F(r+1)) − round(total·F(r))` for the normalised CDF `F`,
/// so the telescoping sum is exact and no count is off by more than one
/// from its real-valued target.
fn zipf_counts(total: usize, k: usize, s: f64) -> Vec<usize> {
    assert!(k >= 1);
    assert!(s >= 0.0, "zipf exponent must be non-negative");
    let weights: Vec<f64> = (1..=k).map(|r| (r as f64).powf(-s)).collect();
    let norm: f64 = weights.iter().sum();
    let mut counts = Vec::with_capacity(k);
    let mut cum = 0.0;
    let mut prev = 0usize;
    for (r, w) in weights.iter().enumerate() {
        cum += w / norm;
        // Pin the last boundary to `total` so floating-point drift in the
        // CDF can never make the counts sum to total ± 1.
        let next =
            if r == k - 1 { total } else { ((total as f64 * cum).round() as usize).min(total) };
        counts.push(next.saturating_sub(prev));
        prev = prev.max(next);
    }
    debug_assert_eq!(counts.iter().sum::<usize>(), total);
    counts
}

/// Generates `k` pairwise-distinct byte strings of length `len` where each
/// byte is produced by `sample`. Panics only if the space is too small to
/// hold `k` distinct strings (caller asserts that).
fn distinct_strings<R: Rng + ?Sized>(
    k: usize,
    len: usize,
    rng: &mut R,
    mut sample: impl FnMut(&mut R, usize) -> u8,
) -> Vec<Vec<u8>> {
    let mut seen = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        let cand: Vec<u8> = (0..len).map(|i| sample(rng, i)).collect();
        if seen.insert(cand.clone()) {
            out.push(cand);
        }
    }
    out
}

/// A natural-language-like corpus with an exactly realised Zipf vocabulary.
#[derive(Debug, Clone)]
pub struct TextCorpus {
    /// The database. Alphabet is the contiguous byte range `` `a..z`` plus
    /// the separator `` ` `` (backtick, `0x60`), σ = 27.
    pub db: Database,
    /// The vocabulary by Zipf rank: `(token, occurrences)` where
    /// `occurrences` is the **exact** number of times the token occurs as a
    /// substring of the corpus (counted over all documents).
    pub tokens: Vec<(Vec<u8>, usize)>,
}

/// Generates `n` documents, each a sequence of `tokens_per_doc` vocabulary
/// tokens joined by a separator byte. All `vocab` tokens are pairwise
/// distinct, of identical length `token_len`, and drawn over `a..z`; the
/// separator (backtick) never appears inside a token. Token ranks follow a
/// Zipf(`zipf_s`) distribution realised *exactly*: rank `r` fills
/// `round(T·F(r+1)) − round(T·F(r))` of the `T = n·tokens_per_doc` slots
/// (cumulative rounding, so the counts telescope to exactly `T`), and slot
/// positions are a seeded Fisher–Yates shuffle.
///
/// Because every token has the same length and the separator byte is not a
/// token byte, each maximal separator-free run is exactly one slot — a
/// token occurs as a substring **iff** it occupies a slot. The
/// `occurrences` recorded in [`TextCorpus::tokens`] are therefore exact
/// ground truth, mirroring the [`dna_corpus`] planting guarantee.
pub fn text_corpus<R: Rng + ?Sized>(
    n: usize,
    tokens_per_doc: usize,
    token_len: usize,
    vocab: usize,
    zipf_s: f64,
    rng: &mut R,
) -> TextCorpus {
    assert!(n >= 1 && tokens_per_doc >= 1 && token_len >= 1 && vocab >= 1);
    assert!(
        (26f64).powf(token_len as f64) >= 4.0 * vocab as f64,
        "vocabulary too large for distinct tokens of this length"
    );
    // Backtick (0x60) immediately precedes 'a': one contiguous range.
    let alphabet = Alphabet::new(b'`', 27);
    const SEP: u8 = b'`';
    let tokens = distinct_strings(vocab, token_len, rng, |r, _| b'a' + r.gen_range(0..26u8));

    let total = n * tokens_per_doc;
    let counts = zipf_counts(total, vocab, zipf_s);
    let mut slots: Vec<u32> = Vec::with_capacity(total);
    for (id, &c) in counts.iter().enumerate() {
        slots.extend(std::iter::repeat_n(id as u32, c));
    }
    // Fisher–Yates: uniform assignment of tokens to slots.
    for i in (1..slots.len()).rev() {
        slots.swap(i, rng.gen_range(0..=i));
    }

    let ell = tokens_per_doc * token_len + (tokens_per_doc - 1);
    let docs: Vec<Vec<u8>> = slots
        .chunks_exact(tokens_per_doc)
        .map(|doc_slots| {
            let mut doc = Vec::with_capacity(ell);
            for (j, &t) in doc_slots.iter().enumerate() {
                if j > 0 {
                    doc.push(SEP);
                }
                doc.extend_from_slice(&tokens[t as usize]);
            }
            doc
        })
        .collect();
    let db = Database::new(alphabet, ell, docs).expect("generated documents are valid");
    TextCorpus { db, tokens: tokens.into_iter().zip(counts).collect() }
}

/// An access-log-like corpus with exactly counted planted routes.
#[derive(Debug, Clone)]
pub struct LogCorpus {
    /// The database. Alphabet is the contiguous byte range `0x2F..=0x7A`
    /// (`/`, digits, `:;<=>?@`, uppercase, `` [\]^_` ``, lowercase), σ = 76.
    pub db: Database,
    /// The planted routes by Zipf rank: `(route, lines)` where `lines` is
    /// the **exact** number of log lines (documents) containing the route.
    pub routes: Vec<(Vec<u8>, usize)>,
}

/// Generates `n` log lines of length exactly `line_len`. Each line starts
/// with one of `n_routes` pairwise-distinct planted routes of length
/// `route_len` (a `/`-prefixed path over lowercase bytes with a `/` every
/// few characters), followed by filler drawn only from digits, uppercase
/// and `:=?` — a byte class disjoint from the route bytes. A route can
/// therefore occur in a line **iff** it was planted there (the line's only
/// lowercase/`/` region is the length-`route_len` prefix, and routes are
/// distinct and same-length), so the per-route line counts are exact.
/// Route popularity follows the same exactly-realised Zipf scheme as
/// [`text_corpus`].
pub fn log_corpus<R: Rng + ?Sized>(
    n: usize,
    line_len: usize,
    route_len: usize,
    n_routes: usize,
    zipf_s: f64,
    rng: &mut R,
) -> LogCorpus {
    assert!(n >= 1 && n_routes >= 1);
    assert!(route_len >= 2, "routes need a leading slash plus at least one path byte");
    assert!(route_len < line_len, "lines must have room for filler after the route");
    // Free byte positions: everything except the leading slash and the
    // forced segment breaks at multiples of 6.
    let free_bytes = route_len - 1 - (route_len - 2) / 6;
    assert!(
        (26f64).powf(free_bytes as f64) >= 4.0 * n_routes as f64,
        "too many routes for distinct paths of this length"
    );
    let alphabet = Alphabet::new(b'/', 76);
    let routes = distinct_strings(n_routes, route_len, rng, |r, i| {
        // Leading slash, then a segment break every 6 bytes: "/api/users"-ish.
        if i == 0 || (i % 6 == 0 && i + 1 < route_len) {
            b'/'
        } else {
            b'a' + r.gen_range(0..26u8)
        }
    });

    const FILLER: &[u8] = b"0123456789ABCDEFGHIJKLMNOPQRSTUVWXYZ:=?";
    let counts = zipf_counts(n, n_routes, zipf_s);
    let mut line_route: Vec<u32> = Vec::with_capacity(n);
    for (id, &c) in counts.iter().enumerate() {
        line_route.extend(std::iter::repeat_n(id as u32, c));
    }
    for i in (1..line_route.len()).rev() {
        line_route.swap(i, rng.gen_range(0..=i));
    }

    let docs: Vec<Vec<u8>> = line_route
        .iter()
        .map(|&r| {
            let mut line = routes[r as usize].clone();
            line.extend((route_len..line_len).map(|_| FILLER[rng.gen_range(0..FILLER.len())]));
            line
        })
        .collect();
    let db = Database::new(alphabet, line_len, docs).expect("generated documents are valid");
    LogCorpus { db, routes: routes.into_iter().zip(counts).collect() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::naive_contains;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_corpus_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = random_corpus(10, 20, 4, &mut rng);
        assert_eq!(db.n(), 10);
        assert_eq!(db.max_len(), 20);
        assert!(db.documents().iter().all(|d| d.len() == 20));
        assert_eq!(db.alphabet().size(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_corpus(5, 8, 3, &mut StdRng::seed_from_u64(7));
        let b = random_corpus(5, 8, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn all_generators_are_byte_identical_given_seed() {
        // Same seed ⇒ byte-identical corpus for every generator (and
        // identical planted ground truth); a different seed must differ.
        let rand = |s: u64| random_corpus(8, 12, 4, &mut StdRng::seed_from_u64(s));
        assert_eq!(rand(41).documents(), rand(41).documents());
        assert_ne!(rand(41).documents(), rand(42).documents());

        let markov = |s: u64| markov_corpus(8, 12, 4, 0.6, &mut StdRng::seed_from_u64(s));
        assert_eq!(markov(41).documents(), markov(41).documents());
        assert_ne!(markov(41).documents(), markov(42).documents());

        let dna = |s: u64| dna_corpus(16, 20, 6, &[0.5, 0.25], &mut StdRng::seed_from_u64(s));
        let (d1, d2, d3) = (dna(41), dna(41), dna(42));
        assert_eq!(d1.db.documents(), d2.db.documents());
        assert_eq!(d1.motifs, d2.motifs);
        assert_ne!(d1.db.documents(), d3.db.documents());

        let transit = |s: u64| transit_corpus(16, 20, 10, 2, 4, 0.5, &mut StdRng::seed_from_u64(s));
        let (t1, t2, t3) = (transit(41), transit(41), transit(42));
        assert_eq!(t1.db.documents(), t2.db.documents());
        assert_eq!(t1.routes, t2.routes);
        assert_ne!(t1.db.documents(), t3.db.documents());

        let text = |s: u64| text_corpus(8, 5, 4, 10, 1.0, &mut StdRng::seed_from_u64(s));
        let (x1, x2, x3) = (text(41), text(41), text(42));
        assert_eq!(x1.db.documents(), x2.db.documents());
        assert_eq!(x1.tokens, x2.tokens);
        assert_ne!(x1.db.documents(), x3.db.documents());

        let log = |s: u64| log_corpus(16, 24, 9, 4, 1.0, &mut StdRng::seed_from_u64(s));
        let (l1, l2, l3) = (log(41), log(41), log(42));
        assert_eq!(l1.db.documents(), l2.db.documents());
        assert_eq!(l1.routes, l2.routes);
        assert_ne!(l1.db.documents(), l3.db.documents());
    }

    #[test]
    fn text_token_occurrences_are_exact() {
        // Same-length tokens + separator ⇒ a token occurs iff it fills a
        // slot, so the recorded Zipf counts are exact substring-occurrence
        // ground truth (the analogue of dna_planted_frequencies_are_exact).
        let (n, tpd, vocab) = (40, 6, 12);
        let corpus = text_corpus(n, tpd, 5, vocab, 1.1, &mut StdRng::seed_from_u64(9));
        assert_eq!(corpus.tokens.len(), vocab);
        let total: usize = corpus.tokens.iter().map(|(_, c)| c).sum();
        assert_eq!(total, n * tpd, "slot counts must telescope to exactly n·tokens_per_doc");
        // Zipf counts are non-increasing in rank (up to rounding by one).
        for w in corpus.tokens.windows(2) {
            assert!(w[0].1 + 1 >= w[1].1, "rank counts must be non-increasing");
        }
        for (tok, planted) in &corpus.tokens {
            let observed: usize =
                corpus.db.documents().iter().map(|d| dpsc_strkit::naive_count(tok, d)).sum();
            assert_eq!(observed, *planted, "token {tok:?}");
        }
        // Documents have the exact slot-grid shape.
        let ell = tpd * 5 + (tpd - 1);
        assert!(corpus.db.documents().iter().all(|d| d.len() == ell));
        assert_eq!(corpus.db.n(), n);
    }

    #[test]
    fn log_route_line_counts_are_exact() {
        // Route bytes (lowercase + '/') never appear in filler, and routes
        // are distinct and same-length, so a route occurs in a line iff it
        // was planted there.
        let (n, n_routes) = (60, 5);
        let corpus = log_corpus(n, 32, 13, n_routes, 1.0, &mut StdRng::seed_from_u64(10));
        assert_eq!(corpus.routes.len(), n_routes);
        let total: usize = corpus.routes.iter().map(|(_, c)| c).sum();
        assert_eq!(total, n, "every line carries exactly one route");
        for (route, planted) in &corpus.routes {
            assert_eq!(route[0], b'/');
            let observed =
                corpus.db.documents().iter().filter(|d| naive_contains(route, d)).count();
            assert_eq!(observed, *planted, "route {:?}", String::from_utf8_lossy(route));
        }
        assert!(corpus.db.documents().iter().all(|d| d.len() == 32));
    }

    #[test]
    fn markov_skew_creates_frequent_bigrams() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = markov_corpus(20, 100, 4, 0.9, &mut rng);
        // The favored successor chain makes "ab" much more common than "ba".
        let count = |pat: &[u8]| -> usize {
            db.documents().iter().map(|d| dpsc_strkit::naive_count(pat, d)).sum()
        };
        assert!(count(b"ab") > 3 * count(b"ba"), "ab={} ba={}", count(b"ab"), count(b"ba"));
    }

    #[test]
    fn dna_motifs_reach_target_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = dna_corpus(200, 50, 8, &[0.8, 0.1], &mut rng);
        let (ref m0, _) = corpus.motifs[0];
        let (ref m1, _) = corpus.motifs[1];
        let freq = |m: &[u8]| {
            corpus.db.documents().iter().filter(|d| naive_contains(m, d)).count() as f64
                / corpus.db.n() as f64
        };
        // Random 8-mers almost never collide with background at these sizes.
        assert!(freq(m0) > 0.7, "motif 0 frequency {}", freq(m0));
        assert!(freq(m1) < 0.25, "motif 1 frequency {}", freq(m1));
    }

    #[test]
    fn dna_planted_frequencies_are_exact() {
        // With 16-mers the background collision probability is ≈ 4^-16 per
        // position — zero at these sizes — so the document count of each
        // motif equals exactly round(freq·n). This exactness is what the
        // audit crate's recall conformance checks treat as ground truth.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 160;
        let freqs = [0.8, 0.25, 0.0];
        let corpus = dna_corpus(n, 50, 16, &freqs, &mut rng);
        for (i, (motif, f)) in corpus.motifs.iter().enumerate() {
            let docs_with =
                corpus.db.documents().iter().filter(|d| naive_contains(motif, d)).count();
            let expect = (f * n as f64).round() as usize;
            assert_eq!(docs_with, expect, "motif {i} planted count");
        }
        // Frequency 1.0 plants into every document.
        let all = dna_corpus(40, 40, 16, &[1.0], &mut StdRng::seed_from_u64(6));
        let (motif, _) = &all.motifs[0];
        assert!(all.db.documents().iter().all(|d| naive_contains(motif, d)));
    }

    #[test]
    fn dna_multiple_motifs_do_not_clobber_each_other() {
        // Three motifs at frequency 1.0 must coexist disjointly in every
        // document — the non-overlapping placement is what preserves
        // exactness for earlier motifs.
        let corpus = dna_corpus(30, 36, 10, &[1.0, 1.0, 1.0], &mut StdRng::seed_from_u64(7));
        for (motif, _) in &corpus.motifs {
            let hit = corpus.db.documents().iter().filter(|d| naive_contains(motif, d)).count();
            assert_eq!(hit, 30, "motif {motif:?} lost occurrences to a later planting");
        }
    }

    #[test]
    #[should_panic]
    fn dna_rejects_motifs_that_cannot_fit_disjointly() {
        let _ = dna_corpus(4, 10, 6, &[0.5, 0.5], &mut StdRng::seed_from_u64(8));
    }

    #[test]
    fn transit_routes_are_popular() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = transit_corpus(300, 30, 12, 2, 5, 0.5, &mut rng);
        let total_riders_on_routes: usize = corpus
            .routes
            .iter()
            .map(|r| corpus.db.documents().iter().filter(|d| naive_contains(r, d)).count())
            .sum();
        assert!(total_riders_on_routes > 100, "planted routes too rare: {total_riders_on_routes}");
        // Variable trip lengths.
        let lens: std::collections::HashSet<usize> =
            corpus.db.documents().iter().map(|d| d.len()).collect();
        assert!(lens.len() > 1);
    }
}
