//! # dpsc-workloads — synthetic corpus generators
//!
//! Deterministic (seeded) generators for the experiment suite:
//!
//! * [`random_corpus`] — uniform random documents (the "hard" unstructured
//!   case: few repeated substrings).
//! * [`markov_corpus`] — order-1 Markov text with skewed transitions, a
//!   stand-in for natural-language likelihood structure (frequent patterns
//!   exist at every length).
//! * [`dna_corpus`] — `|Σ| = 4` genome-like documents with *planted motifs*
//!   occurring at exactly controlled document frequencies (each motif is
//!   planted into exactly `round(freq·n)` documents at non-overlapping
//!   offsets); exact ground truth for mining utility experiments and the
//!   `dpsc-audit` recall conformance checks (the genome-publishing
//!   application \[50\] of the paper).
//! * [`transit_corpus`] — event sequences over a station alphabet where a
//!   few popular routes dominate (the transit-data application \[19\]).
//!
//! All generators return validated [`Database`] values and take an explicit
//! `Rng`, so every experiment is reproducible from its seed.

use dpsc_strkit::alphabet::{Alphabet, Database};
use rand::Rng;

/// Uniform random corpus: `n` documents of length exactly `ell` over the
/// first `sigma` lowercase letters.
pub fn random_corpus<R: Rng + ?Sized>(n: usize, ell: usize, sigma: u16, rng: &mut R) -> Database {
    let alphabet = Alphabet::lowercase(sigma);
    let docs = (0..n)
        .map(|_| (0..ell).map(|_| alphabet.symbol_at(rng.gen_range(0..alphabet.size()))).collect())
        .collect();
    Database::new(alphabet, ell, docs).expect("generated documents are valid")
}

/// Order-1 Markov text: transition matrix with a strong self-loop mass on a
/// "favored" successor per symbol, producing heavy-tailed substring
/// frequencies like natural text.
pub fn markov_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    sigma: u16,
    skew: f64,
    rng: &mut R,
) -> Database {
    assert!((0.0..1.0).contains(&skew), "skew must be in [0,1)");
    let alphabet = Alphabet::lowercase(sigma);
    let s = alphabet.size();
    let docs = (0..n)
        .map(|_| {
            let mut doc = Vec::with_capacity(ell);
            let mut cur = rng.gen_range(0..s);
            doc.push(alphabet.symbol_at(cur));
            for _ in 1..ell {
                // With probability `skew`, take the favored successor
                // (cur + 1 mod s); otherwise uniform.
                cur = if rng.gen::<f64>() < skew { (cur + 1) % s } else { rng.gen_range(0..s) };
                doc.push(alphabet.symbol_at(cur));
            }
            doc
        })
        .collect();
    Database::new(alphabet, ell, docs).expect("generated documents are valid")
}

/// A DNA corpus with planted motifs.
#[derive(Debug, Clone)]
pub struct DnaCorpus {
    /// The database (alphabet `{A,C,G,T}` encoded as bytes `0..4`).
    pub db: Database,
    /// The planted motifs with their requested document frequencies. Each
    /// motif was planted into exactly `round(freq·n)` distinct documents
    /// (the observed frequency can only exceed that through background
    /// collisions, which are negligible for the motif lengths the
    /// experiments use).
    pub motifs: Vec<(Vec<u8>, f64)>,
}

/// Generates `n` DNA reads of length `ell` and plants each motif (of
/// length `motif_len`) into **exactly** `round(frequencies[i]·n)` distinct
/// documents, chosen by a seeded partial shuffle, at offsets that do not
/// overlap previously planted motifs — so the planted document counts are
/// exact ground truth, not binomial samples.
///
/// Requires `frequencies.len() · motif_len ≤ ell` so every document can
/// host all motifs disjointly.
pub fn dna_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    motif_len: usize,
    frequencies: &[f64],
    rng: &mut R,
) -> DnaCorpus {
    assert!(motif_len <= ell, "motif longer than documents");
    assert!(motif_len >= 1, "motif must be non-empty");
    assert!(frequencies.len() * motif_len <= ell, "motifs must fit disjointly into one document");
    assert!(frequencies.iter().all(|f| (0.0..=1.0).contains(f)), "frequencies must be in [0,1]");
    let alphabet = Alphabet::dna();
    let motifs: Vec<Vec<u8>> = frequencies
        .iter()
        .map(|_| (0..motif_len).map(|_| rng.gen_range(0..4u8)).collect())
        .collect();
    let mut docs: Vec<Vec<u8>> =
        (0..n).map(|_| (0..ell).map(|_| rng.gen_range(0..4u8)).collect()).collect();
    // Plantings go into motif_len-aligned slots after a random per-document
    // phase: the fit assertion guarantees at least `frequencies.len()` free
    // slots per document, so later motifs never clobber earlier plantings
    // (which would silently lower an earlier motif's frequency) and never
    // fail to place. The phase varies the absolute offsets across docs.
    let max_phase = ell - frequencies.len() * motif_len;
    let mut phase: Vec<Option<usize>> = vec![None; n];
    let mut used_slots: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (motif, &freq) in motifs.iter().zip(frequencies) {
        let k = ((freq * n as f64).round() as usize).min(n);
        // Partial Fisher–Yates: the first k entries are a uniform k-subset.
        let mut order: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = rng.gen_range(i..n);
            order.swap(i, j);
        }
        for &d in &order[..k] {
            let p = *phase[d].get_or_insert_with(|| rng.gen_range(0..=max_phase));
            let n_slots = (ell - p) / motif_len;
            let free: Vec<usize> = (0..n_slots).filter(|s| !used_slots[d].contains(s)).collect();
            let slot = free[rng.gen_range(0..free.len())];
            used_slots[d].push(slot);
            let off = p + slot * motif_len;
            docs[d][off..off + motif_len].copy_from_slice(motif);
        }
    }
    let db = Database::new(alphabet, ell, docs).expect("generated documents are valid");
    DnaCorpus { db, motifs: motifs.into_iter().zip(frequencies.iter().copied()).collect() }
}

/// A transit-log corpus with planted popular routes.
#[derive(Debug, Clone)]
pub struct TransitCorpus {
    /// The database: each document is one rider's trip sequence over a
    /// station alphabet.
    pub db: Database,
    /// The planted route segments (frequent consecutive station runs).
    pub routes: Vec<Vec<u8>>,
}

/// Generates rider trip logs: `n` riders, trips of length up to `ell`, over
/// `stations` stations; `n_routes` popular route segments of length
/// `route_len` are planted, each used by roughly a `popularity` fraction of
/// riders.
pub fn transit_corpus<R: Rng + ?Sized>(
    n: usize,
    ell: usize,
    stations: u16,
    n_routes: usize,
    route_len: usize,
    popularity: f64,
    rng: &mut R,
) -> TransitCorpus {
    assert!(route_len <= ell);
    let alphabet = Alphabet::lowercase(stations.min(26));
    let s = alphabet.size();
    let routes: Vec<Vec<u8>> = (0..n_routes)
        .map(|_| (0..route_len).map(|_| alphabet.symbol_at(rng.gen_range(0..s))).collect())
        .collect();
    let docs: Vec<Vec<u8>> = (0..n)
        .map(|_| {
            // Trip length varies: [route_len, ell].
            let len = rng.gen_range(route_len..=ell);
            let mut doc: Vec<u8> =
                (0..len).map(|_| alphabet.symbol_at(rng.gen_range(0..s))).collect();
            if !routes.is_empty() && rng.gen::<f64>() < popularity {
                let route = &routes[rng.gen_range(0..routes.len())];
                let off = rng.gen_range(0..=len - route.len());
                doc[off..off + route.len()].copy_from_slice(route);
            }
            doc
        })
        .collect();
    let db = Database::new(alphabet, ell, docs).expect("generated documents are valid");
    TransitCorpus { db, routes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_strkit::naive_contains;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_corpus_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let db = random_corpus(10, 20, 4, &mut rng);
        assert_eq!(db.n(), 10);
        assert_eq!(db.max_len(), 20);
        assert!(db.documents().iter().all(|d| d.len() == 20));
        assert_eq!(db.alphabet().size(), 4);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = random_corpus(5, 8, 3, &mut StdRng::seed_from_u64(7));
        let b = random_corpus(5, 8, 3, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn all_generators_are_byte_identical_given_seed() {
        // Same seed ⇒ byte-identical corpus for every generator (and
        // identical planted ground truth); a different seed must differ.
        let rand = |s: u64| random_corpus(8, 12, 4, &mut StdRng::seed_from_u64(s));
        assert_eq!(rand(41).documents(), rand(41).documents());
        assert_ne!(rand(41).documents(), rand(42).documents());

        let markov = |s: u64| markov_corpus(8, 12, 4, 0.6, &mut StdRng::seed_from_u64(s));
        assert_eq!(markov(41).documents(), markov(41).documents());
        assert_ne!(markov(41).documents(), markov(42).documents());

        let dna = |s: u64| dna_corpus(16, 20, 6, &[0.5, 0.25], &mut StdRng::seed_from_u64(s));
        let (d1, d2, d3) = (dna(41), dna(41), dna(42));
        assert_eq!(d1.db.documents(), d2.db.documents());
        assert_eq!(d1.motifs, d2.motifs);
        assert_ne!(d1.db.documents(), d3.db.documents());

        let transit = |s: u64| transit_corpus(16, 20, 10, 2, 4, 0.5, &mut StdRng::seed_from_u64(s));
        let (t1, t2, t3) = (transit(41), transit(41), transit(42));
        assert_eq!(t1.db.documents(), t2.db.documents());
        assert_eq!(t1.routes, t2.routes);
        assert_ne!(t1.db.documents(), t3.db.documents());
    }

    #[test]
    fn markov_skew_creates_frequent_bigrams() {
        let mut rng = StdRng::seed_from_u64(2);
        let db = markov_corpus(20, 100, 4, 0.9, &mut rng);
        // The favored successor chain makes "ab" much more common than "ba".
        let count = |pat: &[u8]| -> usize {
            db.documents().iter().map(|d| dpsc_strkit::naive_count(pat, d)).sum()
        };
        assert!(count(b"ab") > 3 * count(b"ba"), "ab={} ba={}", count(b"ab"), count(b"ba"));
    }

    #[test]
    fn dna_motifs_reach_target_frequency() {
        let mut rng = StdRng::seed_from_u64(3);
        let corpus = dna_corpus(200, 50, 8, &[0.8, 0.1], &mut rng);
        let (ref m0, _) = corpus.motifs[0];
        let (ref m1, _) = corpus.motifs[1];
        let freq = |m: &[u8]| {
            corpus.db.documents().iter().filter(|d| naive_contains(m, d)).count() as f64
                / corpus.db.n() as f64
        };
        // Random 8-mers almost never collide with background at these sizes.
        assert!(freq(m0) > 0.7, "motif 0 frequency {}", freq(m0));
        assert!(freq(m1) < 0.25, "motif 1 frequency {}", freq(m1));
    }

    #[test]
    fn dna_planted_frequencies_are_exact() {
        // With 16-mers the background collision probability is ≈ 4^-16 per
        // position — zero at these sizes — so the document count of each
        // motif equals exactly round(freq·n). This exactness is what the
        // audit crate's recall conformance checks treat as ground truth.
        let mut rng = StdRng::seed_from_u64(5);
        let n = 160;
        let freqs = [0.8, 0.25, 0.0];
        let corpus = dna_corpus(n, 50, 16, &freqs, &mut rng);
        for (i, (motif, f)) in corpus.motifs.iter().enumerate() {
            let docs_with =
                corpus.db.documents().iter().filter(|d| naive_contains(motif, d)).count();
            let expect = (f * n as f64).round() as usize;
            assert_eq!(docs_with, expect, "motif {i} planted count");
        }
        // Frequency 1.0 plants into every document.
        let all = dna_corpus(40, 40, 16, &[1.0], &mut StdRng::seed_from_u64(6));
        let (motif, _) = &all.motifs[0];
        assert!(all.db.documents().iter().all(|d| naive_contains(motif, d)));
    }

    #[test]
    fn dna_multiple_motifs_do_not_clobber_each_other() {
        // Three motifs at frequency 1.0 must coexist disjointly in every
        // document — the non-overlapping placement is what preserves
        // exactness for earlier motifs.
        let corpus = dna_corpus(30, 36, 10, &[1.0, 1.0, 1.0], &mut StdRng::seed_from_u64(7));
        for (motif, _) in &corpus.motifs {
            let hit = corpus.db.documents().iter().filter(|d| naive_contains(motif, d)).count();
            assert_eq!(hit, 30, "motif {motif:?} lost occurrences to a later planting");
        }
    }

    #[test]
    #[should_panic]
    fn dna_rejects_motifs_that_cannot_fit_disjointly() {
        let _ = dna_corpus(4, 10, 6, &[0.5, 0.5], &mut StdRng::seed_from_u64(8));
    }

    #[test]
    fn transit_routes_are_popular() {
        let mut rng = StdRng::seed_from_u64(4);
        let corpus = transit_corpus(300, 30, 12, 2, 5, 0.5, &mut rng);
        let total_riders_on_routes: usize = corpus
            .routes
            .iter()
            .map(|r| corpus.db.documents().iter().filter(|d| naive_contains(r, d)).count())
            .sum();
        assert!(total_riders_on_routes > 100, "planted routes too rare: {total_riders_on_routes}");
        // Variable trip lengths.
        let lens: std::collections::HashSet<usize> =
            corpus.db.documents().iter().map(|d| d.len()).collect();
        assert!(lens.len() > 1);
    }
}
