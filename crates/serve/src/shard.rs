//! Multi-corpus shard routing with atomic hot snapshot swap.
//!
//! A *shard* is one corpus id serving one [`FrozenSynopsis`]. The
//! [`ShardManager`] maps corpus ids to reference-counted snapshots and
//! supports replacing a shard's snapshot while traffic is in flight:
//!
//! ```text
//!            LoadSnapshot bytes
//!                   │
//!            from_bytes()  ← decode + full structural validation,
//!                   │         OUTSIDE any lock (readers untouched)
//!            ShardSnapshot { epoch: E+1, synopsis }
//!                   │
//!            write-lock ── BTreeMap::insert(Arc) ── unlock
//!                              (a pointer swap)
//! ```
//!
//! Readers pin a snapshot with [`ShardManager::snapshot`] — a read-lock
//! held only for a map lookup and an `Arc` clone — and then answer any
//! number of queries against that pinned `Arc` without ever touching the
//! lock again. A request batch therefore observes exactly one epoch:
//! either entirely the old snapshot or entirely the new one, never a
//! blend. Old snapshots die when their last in-flight reader drops them.
//!
//! Epochs come from one global counter, so an `(shard, epoch)` pair
//! uniquely identifies a snapshot's *contents* for the lifetime of the
//! process — which is what makes epochs usable as cache-key components
//! (see [`crate::cache`]).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use dpsc_private_count::codec::DecodeError;
use dpsc_private_count::FrozenSynopsis;

use crate::wire::{MetricsShard, ShardStats};

/// One immutable epoch of one shard.
#[derive(Debug)]
pub struct ShardSnapshot {
    /// Globally unique, strictly increasing install stamp.
    pub epoch: u64,
    /// Canonical `DPSF` encoding size of `synopsis`, recorded at install
    /// time so `Stats` does not re-serialize on demand.
    pub serialized_len: usize,
    /// The synopsis answering this shard's queries.
    pub synopsis: FrozenSynopsis,
}

/// Routes corpus ids to their current [`ShardSnapshot`] and hot-swaps
/// snapshots atomically.
#[derive(Debug)]
pub struct ShardManager {
    shards: RwLock<BTreeMap<u32, Arc<ShardSnapshot>>>,
    next_epoch: AtomicU64,
}

impl Default for ShardManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardManager {
    /// An empty manager; epochs start at 1 (0 means "never installed").
    pub fn new() -> Self {
        Self { shards: RwLock::new(BTreeMap::new()), next_epoch: AtomicU64::new(1) }
    }

    /// Pins the current snapshot of `shard`. The read lock is held only
    /// for the lookup + `Arc` clone; all queries against the returned
    /// snapshot are lock-free and see one consistent epoch.
    pub fn snapshot(&self, shard: u32) -> Option<Arc<ShardSnapshot>> {
        self.shards.read().expect("shard map not poisoned").get(&shard).cloned()
    }

    /// Installs `synopsis` as the new snapshot of `shard`, returning its
    /// epoch. The write lock is held only for the map insert (a pointer
    /// swap); in-flight readers keep their pinned `Arc` and finish on the
    /// old epoch.
    pub fn install(&self, shard: u32, synopsis: FrozenSynopsis, serialized_len: usize) -> u64 {
        self.install_arc(shard, synopsis, serialized_len).epoch
    }

    /// Load → validate → swap: decodes `bytes` (full checksum and
    /// structural validation, no lock held), then installs the result.
    /// On `Err` the previous snapshot keeps serving untouched.
    pub fn load_snapshot(
        &self,
        shard: u32,
        bytes: &[u8],
    ) -> Result<Arc<ShardSnapshot>, DecodeError> {
        let synopsis = FrozenSynopsis::from_bytes(bytes)?;
        Ok(self.install_arc(shard, synopsis, bytes.len()))
    }

    /// [`Self::load_snapshot`] with shared ownership of the buffer: an
    /// uncompressed v2 snapshot decodes *borrowed* — after validation its
    /// arrays point into `bytes`, which the installed [`ShardSnapshot`]
    /// keeps alive through the synopsis — so installing a shard performs
    /// zero per-array copies. v1 and compressed-v2 inputs decode owned,
    /// exactly as [`Self::load_snapshot`].
    pub fn load_snapshot_shared(
        &self,
        shard: u32,
        bytes: Arc<[u8]>,
    ) -> Result<Arc<ShardSnapshot>, DecodeError> {
        let serialized_len = bytes.len();
        let synopsis = FrozenSynopsis::from_bytes_shared(bytes)?;
        Ok(self.install_arc(shard, synopsis, serialized_len))
    }

    /// [`Self::load_snapshot_shared`] under an *explicit* epoch — the
    /// snapshot store's durable epoch, replayed at recovery or allocated
    /// at persist time — instead of a counter-allocated one. The internal
    /// counter is bumped past `epoch`, so later store-less installs can
    /// never collide with (or run behind) a durable epoch, and the
    /// `(shard, epoch)` cache-key uniqueness invariant holds across both
    /// allocation paths.
    pub fn load_snapshot_shared_at(
        &self,
        shard: u32,
        bytes: Arc<[u8]>,
        epoch: u64,
    ) -> Result<Arc<ShardSnapshot>, DecodeError> {
        let serialized_len = bytes.len();
        let synopsis = FrozenSynopsis::from_bytes_shared(bytes)?;
        Ok(self.install_at(shard, synopsis, serialized_len, epoch))
    }

    /// Installs a pre-validated synopsis under an explicit (durable)
    /// epoch. Like [`Self::install`], but the caller owns epoch
    /// allocation; an install whose epoch is *older* than the resident
    /// snapshot's is refused (the resident snapshot is returned), so a
    /// racing pair of store persists can never leave the stale one
    /// serving.
    pub fn install_at(
        &self,
        shard: u32,
        synopsis: FrozenSynopsis,
        serialized_len: usize,
        epoch: u64,
    ) -> Arc<ShardSnapshot> {
        let mut shards = self.shards.write().expect("shard map not poisoned");
        self.next_epoch.fetch_max(epoch + 1, Ordering::Relaxed);
        if let Some(resident) = shards.get(&shard) {
            if resident.epoch >= epoch {
                return Arc::clone(resident);
            }
        }
        let snap = Arc::new(ShardSnapshot { epoch, serialized_len, synopsis });
        shards.insert(shard, Arc::clone(&snap));
        snap
    }

    /// The one swap path. The epoch is allocated *inside* the write
    /// lock: concurrent installs on the same shard then agree that the
    /// snapshot left resident is the one with the highest epoch —
    /// allocating outside would let an older epoch's insert land last
    /// and silently shadow a newer snapshot whose caller was already
    /// told "success".
    fn install_arc(
        &self,
        shard: u32,
        synopsis: FrozenSynopsis,
        serialized_len: usize,
    ) -> Arc<ShardSnapshot> {
        let mut shards = self.shards.write().expect("shard map not poisoned");
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(ShardSnapshot { epoch, serialized_len, synopsis });
        shards.insert(shard, Arc::clone(&snap));
        snap
    }

    /// Shard ids currently resident, ascending.
    pub fn shard_ids(&self) -> Vec<u32> {
        self.shards.read().expect("shard map not poisoned").keys().copied().collect()
    }

    /// Number of resident shards.
    pub fn len(&self) -> usize {
        self.shards.read().expect("shard map not poisoned").len()
    }

    /// Whether no shard is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// One [`MetricsShard`] record per resident shard, ascending by id —
    /// the compact identity triple (`shard_id`, `epoch`,
    /// `serialized_len`) the `Metrics` op reports. The latency columns
    /// start zeroed; the
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry) fills them
    /// from its per-shard histograms when it builds the report.
    pub fn metrics_shards(&self) -> Vec<MetricsShard> {
        let shards = self.shards.read().expect("shard map not poisoned");
        shards
            .iter()
            .map(|(&shard_id, snap)| MetricsShard {
                shard_id,
                epoch: snap.epoch,
                serialized_len: snap.serialized_len as u64,
                ops: 0,
                latency_p50_ns: 0.0,
                latency_p99_ns: 0.0,
            })
            .collect()
    }

    /// One [`ShardStats`] record per resident shard, ascending by id —
    /// the operator's view of what is actually being served, including
    /// the utility bounds (`alpha*`) of each resident synopsis.
    pub fn stats(&self) -> Vec<ShardStats> {
        let shards = self.shards.read().expect("shard map not poisoned");
        shards
            .iter()
            .map(|(&shard_id, snap)| {
                let s = &snap.synopsis;
                let (n_docs, max_len) = s.db_params();
                let privacy = s.privacy();
                ShardStats {
                    shard_id,
                    epoch: snap.epoch,
                    node_count: s.node_count() as u64,
                    serialized_len: snap.serialized_len as u64,
                    n_docs: n_docs as u64,
                    max_len: max_len as u64,
                    epsilon: privacy.epsilon,
                    delta: privacy.delta,
                    alpha: s.alpha(),
                    alpha_counts: s.alpha_counts(),
                    alpha_absent: s.alpha_absent(),
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_dpcore::budget::PrivacyParams;
    use dpsc_private_count::{CountMode, PrivateCountStructure};
    use dpsc_strkit::trie::Trie;

    fn synopsis(count: f64) -> FrozenSynopsis {
        let mut trie: Trie<f64> = Trie::new(count * 2.0);
        let a = trie.insert_path(b"a", |_| 0.0);
        *trie.value_mut(a) = count;
        PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.0,
            1.0,
            4,
            3,
        )
        .freeze()
    }

    #[test]
    fn install_and_route() {
        let m = ShardManager::new();
        assert!(m.is_empty());
        assert!(m.snapshot(0).is_none());
        let e0 = m.install(0, synopsis(5.0), 100);
        let e1 = m.install(1, synopsis(7.0), 200);
        assert!(e1 > e0);
        assert_eq!(m.len(), 2);
        assert_eq!(m.shard_ids(), vec![0, 1]);
        assert_eq!(m.snapshot(0).unwrap().synopsis.query(b"a"), 5.0);
        assert_eq!(m.snapshot(1).unwrap().synopsis.query(b"a"), 7.0);
    }

    #[test]
    fn hot_swap_leaves_pinned_readers_on_the_old_epoch() {
        let m = ShardManager::new();
        m.install(0, synopsis(1.0), 0);
        let pinned = m.snapshot(0).unwrap();
        let new_epoch = m.install(0, synopsis(2.0), 0);
        // The pinned snapshot still answers from the old epoch…
        assert_eq!(pinned.synopsis.query(b"a"), 1.0);
        assert!(pinned.epoch < new_epoch);
        // …while fresh pins see the new one.
        let fresh = m.snapshot(0).unwrap();
        assert_eq!(fresh.epoch, new_epoch);
        assert_eq!(fresh.synopsis.query(b"a"), 2.0);
    }

    #[test]
    fn load_snapshot_rejects_corrupt_bytes_and_keeps_serving() {
        let m = ShardManager::new();
        m.install(3, synopsis(9.0), 0);
        let before = m.snapshot(3).unwrap().epoch;
        let mut bytes = synopsis(1.0).to_bytes();
        bytes[10] ^= 0xFF;
        assert!(m.load_snapshot(3, &bytes).is_err());
        let after = m.snapshot(3).unwrap();
        assert_eq!(after.epoch, before, "failed load must not swap");
        assert_eq!(after.synopsis.query(b"a"), 9.0);
    }

    #[test]
    fn load_snapshot_shared_serves_borrowed_v2() {
        let m = ShardManager::new();
        let f = synopsis(6.5);
        let shared: Arc<[u8]> = f.to_bytes_v2(false).into();
        let snap = m.load_snapshot_shared(4, Arc::clone(&shared)).unwrap();
        assert!(snap.synopsis.is_borrowed(), "uncompressed v2 must serve borrowed");
        assert_eq!(snap.serialized_len, shared.len());
        assert_eq!(snap.synopsis.query(b"a"), 6.5);
        assert_eq!(snap.synopsis, f, "borrowed decode is logically identical");
        // v1 bytes through the shared path still work (owned fallback).
        let v1: Arc<[u8]> = f.to_bytes().into();
        let snap = m.load_snapshot_shared(5, v1).unwrap();
        assert!(!snap.synopsis.is_borrowed());
        assert_eq!(snap.synopsis.query(b"a"), 6.5);
    }

    #[test]
    fn install_at_pins_durable_epochs_and_never_downgrades() {
        let m = ShardManager::new();
        // Recovery replay: install under the manifest's epoch.
        let bytes: Arc<[u8]> = synopsis(3.0).to_bytes().into();
        let snap = m.load_snapshot_shared_at(0, Arc::clone(&bytes), 40).unwrap();
        assert_eq!(snap.epoch, 40);
        // The counter moved past the durable epoch: a store-less install
        // cannot collide.
        assert!(m.install(1, synopsis(1.0), 0) > 40);
        // A stale durable epoch loses to the resident snapshot.
        let newer = m.load_snapshot_shared_at(0, synopsis(9.0).to_bytes().into(), 50).unwrap();
        assert_eq!(newer.epoch, 50);
        let stale = m.install_at(0, synopsis(2.0), 0, 45);
        assert_eq!(stale.epoch, 50, "older epoch must not shadow a newer resident");
        assert_eq!(m.snapshot(0).unwrap().synopsis.query(b"a"), 9.0);
    }

    #[test]
    fn stats_surface_sizes_and_utility_bounds() {
        let m = ShardManager::new();
        let f = synopsis(4.0);
        let bytes = f.to_bytes();
        let snap = m.load_snapshot(2, &bytes).unwrap();
        let stats = m.stats();
        assert_eq!(stats.len(), 1);
        let s = &stats[0];
        assert_eq!(s.shard_id, 2);
        assert_eq!(s.epoch, snap.epoch);
        assert_eq!(s.node_count, f.node_count() as u64);
        assert_eq!(s.serialized_len, bytes.len() as u64);
        assert_eq!(s.alpha, f.alpha());
        assert_eq!(s.alpha_counts, f.alpha_counts());
        assert_eq!(s.alpha_absent, f.alpha_absent());
        assert_eq!(s.epsilon, 1.0);
        assert_eq!(s.delta, 0.0);
        assert_eq!((s.n_docs, s.max_len), (4, 3));
    }
}
