//! Operator-visible serving metrics: lock-free counters the request
//! paths bump on every answered frame, snapshotted on demand by the
//! `Metrics` wire op.
//!
//! Everything is a relaxed atomic — the hot path pays a handful of
//! uncontended `fetch_add`s per request and the two `Instant::now`
//! calls bracketing the answer computation. Latency lands in a
//! fixed-bucket power-of-two histogram ([`LatencyHistogram`]): 64
//! buckets cover the full `u64` nanosecond range, so recording is one
//! `leading_zeros` plus one `fetch_add` and quantiles are a 64-entry
//! scan — no allocation, no locks, no sampling. The reported p50/p99
//! are therefore bucket-resolution estimates (≤ 2× truncation error),
//! which is the right trade for a counter that every request touches.
//!
//! The registry counts *served work*, not wire bytes: `patterns_total`
//! is the number of individual pattern lookups answered (a `QueryBatch`
//! of 16 counts as 16), which is what the benchmark's closed-loop
//! generator reconciles its own counts against.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use crate::wire::{CacheStats, MetricsReport, MetricsShard, OpCounts};

/// Request kinds the registry tracks, one counter each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`crate::wire::Request::Query`]
    Query,
    /// [`crate::wire::Request::QueryBatch`]
    QueryBatch,
    /// [`crate::wire::Request::Contains`]
    Contains,
    /// [`crate::wire::Request::Stats`]
    Stats,
    /// [`crate::wire::Request::LoadSnapshot`]
    LoadSnapshot,
    /// [`crate::wire::Request::Metrics`]
    Metrics,
    /// [`crate::wire::Request::Shutdown`]
    Shutdown,
    /// [`crate::wire::Request::Rollback`]
    Rollback,
}

const OP_KINDS: usize = 8;

/// 64 power-of-two buckets over nanoseconds: bucket `b` holds samples
/// with `floor(log2(max(v, 1))) == b`, i.e. `[2^b, 2^(b+1))` (bucket 0
/// also absorbs 0 ns).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn bucket(ns: u64) -> usize {
        63 - (ns | 1).leading_zeros() as usize
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (0 < q ≤ 1) as the midpoint of the bucket the
    /// quantile sample fell into; 0.0 when empty. Accurate to bucket
    /// resolution (a factor of 2 in the worst case).
    pub fn quantile(&self, q: f64) -> f64 {
        let counts: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let target = ((total as f64 * q).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (b, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint of [2^b, 2^(b+1)); bucket 0 represents ~1 ns.
                return 1.5 * (1u64 << b) as f64;
            }
        }
        unreachable!("quantile target exceeds total");
    }
}

/// The daemon-wide metrics state. One instance per [`crate::Server`],
/// shared by whichever core (readiness or thread-pool) serves traffic.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    ops: [AtomicU64; OP_KINDS],
    errors: AtomicU64,
    patterns: AtomicU64,
    overloaded: AtomicU64,
    idle_reaped: AtomicU64,
    deadline_evicted: AtomicU64,
    recoveries: AtomicU64,
    rollbacks: AtomicU64,
    latency: LatencyHistogram,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry; uptime starts now.
    pub fn new() -> Self {
        Self {
            start: Instant::now(),
            conns_accepted: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            ops: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            patterns: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            deadline_evicted: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    /// A connection was accepted.
    pub fn conn_opened(&self) {
        self.conns_accepted.fetch_add(1, Ordering::Relaxed);
        self.conns_open.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection ended (any reason).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// One request answered: bumps the op counter, adds `patterns`
    /// individual lookups, and records the service latency (time spent
    /// computing the answer, network excluded).
    pub fn record(&self, op: OpKind, patterns: u64, latency_ns: u64) {
        self.ops[op as usize].fetch_add(1, Ordering::Relaxed);
        if patterns > 0 {
            self.patterns.fetch_add(patterns, Ordering::Relaxed);
        }
        self.latency.record(latency_ns);
    }

    /// One error response sent (malformed frame, unknown shard, rejected
    /// snapshot, refused shutdown, …).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Individual pattern lookups answered so far.
    pub fn patterns_total(&self) -> u64 {
        self.patterns.load(Ordering::Relaxed)
    }

    /// Connections currently admitted (opened minus closed). The
    /// admission bound compares against this before accepting more.
    pub fn conns_open_now(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// A connection was shed with an `Overloaded` frame at the admission
    /// bound (it was never admitted; `conn_opened` was not called).
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// An idle connection was reaped by the idle timeout.
    pub fn record_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection stalled mid-frame past the read deadline and was
    /// evicted (slow-loris defense).
    pub fn record_deadline_evicted(&self) {
        self.deadline_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` shards were re-installed from the snapshot store's manifest
    /// at startup.
    pub fn record_recoveries(&self, n: u64) {
        self.recoveries.fetch_add(n, Ordering::Relaxed);
    }

    /// A retained epoch was successfully rolled back in.
    pub fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a wire-ready report. `cache` and
    /// `shards` come from the server (the registry does not own them).
    pub fn report(&self, cache: CacheStats, shards: Vec<MetricsShard>) -> MetricsReport {
        let uptime_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let patterns_total = load(&self.patterns);
        let qps =
            if uptime_ns == 0 { 0.0 } else { patterns_total as f64 / (uptime_ns as f64 / 1e9) };
        let lookups = cache.hits + cache.misses;
        MetricsReport {
            uptime_ns,
            conns_accepted: load(&self.conns_accepted),
            conns_open: load(&self.conns_open),
            ops: OpCounts {
                query: load(&self.ops[OpKind::Query as usize]),
                query_batch: load(&self.ops[OpKind::QueryBatch as usize]),
                contains: load(&self.ops[OpKind::Contains as usize]),
                stats: load(&self.ops[OpKind::Stats as usize]),
                load_snapshot: load(&self.ops[OpKind::LoadSnapshot as usize]),
                rollback: load(&self.ops[OpKind::Rollback as usize]),
                metrics: load(&self.ops[OpKind::Metrics as usize]),
                shutdown: load(&self.ops[OpKind::Shutdown as usize]),
                errors: load(&self.errors),
            },
            patterns_total,
            overloaded_total: load(&self.overloaded),
            idle_reaped_total: load(&self.idle_reaped),
            deadline_evicted_total: load(&self.deadline_evicted),
            recoveries_total: load(&self.recoveries),
            rollbacks_total: load(&self.rollbacks),
            qps,
            latency_p50_ns: self.latency.quantile(0.50),
            latency_p99_ns: self.latency.quantile(0.99),
            cache,
            cache_hit_rate: if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 },
            shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1023), 9);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_track_the_mass() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reports 0");
        // 99 samples near 1 µs, 1 sample near 1 ms: p50 sits in the µs
        // bucket, p995+ in the ms bucket.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50);
        assert!((512.0..2048.0).contains(&p50), "p50 = {p50}");
        let p99 = h.quantile(0.99);
        assert!((512.0..2048.0).contains(&p99), "p99 = {p99} (99/100 samples are ~1 µs)");
        let p995 = h.quantile(0.995);
        assert!(p995 >= 524_288.0, "p995 = {p995} must reach the ms bucket");
    }

    #[test]
    fn registry_counts_ops_patterns_and_conns() {
        let m = MetricsRegistry::new();
        m.conn_opened();
        m.conn_opened();
        m.conn_closed();
        m.record(OpKind::Query, 1, 800);
        m.record(OpKind::QueryBatch, 16, 5_000);
        m.record(OpKind::Stats, 0, 300);
        m.record(OpKind::Rollback, 0, 100);
        m.record_error();
        m.record_overloaded();
        m.record_overloaded();
        m.record_idle_reaped();
        m.record_deadline_evicted();
        m.record_recoveries(4);
        m.record_rollback();
        let report = m.report(
            CacheStats { hits: 3, misses: 1, entries: 4, capacity: 64 },
            vec![MetricsShard { shard_id: 2, epoch: 9, serialized_len: 1234 }],
        );
        assert_eq!(report.conns_accepted, 2);
        assert_eq!(report.conns_open, 1);
        assert_eq!(report.ops.query, 1);
        assert_eq!(report.ops.query_batch, 1);
        assert_eq!(report.ops.stats, 1);
        assert_eq!(report.ops.errors, 1);
        assert_eq!(report.ops.rollback, 1);
        assert_eq!(report.patterns_total, 17);
        assert_eq!(report.overloaded_total, 2);
        assert_eq!(report.idle_reaped_total, 1);
        assert_eq!(report.deadline_evicted_total, 1);
        assert_eq!(report.recoveries_total, 4);
        assert_eq!(report.rollbacks_total, 1);
        assert!(report.qps > 0.0);
        assert!(report.latency_p50_ns > 0.0);
        assert!((report.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].epoch, 9);
    }
}
