//! Operator-visible serving metrics: lock-free counters the request
//! paths bump on every answered frame, snapshotted on demand by the
//! `Metrics` wire op and rendered scrapeable by `MetricsText`.
//!
//! Everything is a relaxed atomic — the hot path pays a handful of
//! uncontended `fetch_add`s per request and the two `Instant::now`
//! calls bracketing the answer computation. Latency lands in
//! fixed-bucket power-of-two histograms ([`LatencyHistogram`]): 64
//! buckets cover the full `u64` nanosecond range, so recording is one
//! `leading_zeros` plus one `fetch_add` and quantiles are a 64-entry
//! scan of a stack-resident snapshot — no allocation, no locks, no
//! sampling. The reported p50/p99 are therefore bucket-resolution
//! estimates (≤ 2× truncation error), which is the right trade for a
//! counter that every request touches. v2 keeps one histogram per op
//! kind and per shard (fixed slot table) next to the global one, so a
//! slow `LoadSnapshot` no longer hides inside the `Query` p99.
//!
//! The registry counts *served work*, not wire bytes: `patterns_total`
//! is the number of individual pattern lookups answered (a `QueryBatch`
//! of 16 counts as 16), which is what the benchmark's closed-loop
//! generator reconciles its own counts against.
//!
//! The registry also owns the optional [`TraceRing`]: rich per-request
//! observations ([`MetricsRegistry::observe`]) append `frame_answered` /
//! `frame_error` events and the slow-op log entries. Every event carries
//! pattern *fingerprints* and lengths only — never pattern bytes
//! (DESIGN.md §16).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::trace::{TraceEvent, TraceKind, TraceRing, NO_SHARD};
use crate::wire::{CacheStats, MetricsReport, MetricsShard, OpCounts, OpLatencies, OpLatency};

/// Request kinds the registry tracks, one counter and one latency
/// histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// [`crate::wire::Request::Query`]
    Query,
    /// [`crate::wire::Request::QueryBatch`]
    QueryBatch,
    /// [`crate::wire::Request::Contains`]
    Contains,
    /// [`crate::wire::Request::Stats`]
    Stats,
    /// [`crate::wire::Request::LoadSnapshot`]
    LoadSnapshot,
    /// [`crate::wire::Request::Metrics`]
    Metrics,
    /// [`crate::wire::Request::Shutdown`]
    Shutdown,
    /// [`crate::wire::Request::Rollback`]
    Rollback,
    /// [`crate::wire::Request::Trace`]
    Trace,
    /// [`crate::wire::Request::MetricsText`]
    MetricsText,
}

const OP_KINDS: usize = 10;

impl OpKind {
    /// Every kind, indexable by `kind as usize`.
    pub const ALL: [OpKind; OP_KINDS] = [
        OpKind::Query,
        OpKind::QueryBatch,
        OpKind::Contains,
        OpKind::Stats,
        OpKind::LoadSnapshot,
        OpKind::Metrics,
        OpKind::Shutdown,
        OpKind::Rollback,
        OpKind::Trace,
        OpKind::MetricsText,
    ];

    /// Stable snake_case label (exposition `op` label values).
    pub fn label(self) -> &'static str {
        match self {
            OpKind::Query => "query",
            OpKind::QueryBatch => "query_batch",
            OpKind::Contains => "contains",
            OpKind::Stats => "stats",
            OpKind::LoadSnapshot => "load_snapshot",
            OpKind::Metrics => "metrics",
            OpKind::Shutdown => "shutdown",
            OpKind::Rollback => "rollback",
            OpKind::Trace => "trace",
            OpKind::MetricsText => "metrics_text",
        }
    }

    /// The wire opcode of this request kind (trace events carry it in
    /// `detail`).
    pub fn wire_code(self) -> u8 {
        match self {
            OpKind::Query => 0,
            OpKind::QueryBatch => 1,
            OpKind::Contains => 2,
            OpKind::Stats => 3,
            OpKind::LoadSnapshot => 4,
            OpKind::Shutdown => 5,
            OpKind::Metrics => 6,
            OpKind::Rollback => 7,
            OpKind::Trace => 8,
            OpKind::MetricsText => 9,
        }
    }
}

/// 64 power-of-two buckets over nanoseconds: bucket `b` holds samples
/// with `floor(log2(max(v, 1))) == b`, i.e. `[2^b, 2^(b+1))` (bucket 0
/// also absorbs 0 ns).
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; 64],
}

/// A consistent point-in-time copy of a [`LatencyHistogram`], loaded in
/// one pass so several quantiles (p50 *and* p99 of the same report) are
/// computed from identical counts. Lives on the stack — no allocation.
#[derive(Debug, Clone, Copy)]
pub struct HistogramSnapshot {
    counts: [u64; 64],
    total: u64,
}

impl HistogramSnapshot {
    /// Total samples in the snapshot.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// The `q`-quantile (0 < q ≤ 1) as the midpoint of the bucket the
    /// quantile sample fell into; 0.0 when empty. Accurate to bucket
    /// resolution (a factor of 2 in the worst case).
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let target = ((self.total as f64 * q).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Midpoint of [2^b, 2^(b+1)); bucket 0 represents ~1 ns.
                return 1.5 * (1u64 << b) as f64;
            }
        }
        unreachable!("quantile target exceeds total");
    }

    /// `(p50, p99)` from this one snapshot.
    pub fn p50_p99(&self) -> (f64, f64) {
        (self.quantile(0.50), self.quantile(0.99))
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    fn bucket(ns: u64) -> usize {
        63 - (ns | 1).leading_zeros() as usize
    }

    /// Records one sample.
    pub fn record(&self, ns: u64) {
        self.buckets[Self::bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// One consistent copy of the bucket counts (single relaxed pass,
    /// stack-allocated).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let counts: [u64; 64] = std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot { counts, total: counts.iter().sum() }
    }

    /// The `q`-quantile of a fresh snapshot. Callers needing several
    /// quantiles from *the same* counts should take one
    /// [`snapshot`](LatencyHistogram::snapshot) and query it.
    pub fn quantile(&self, q: f64) -> f64 {
        self.snapshot().quantile(q)
    }
}

/// Fixed per-shard histogram slots: the first [`SHARD_SLOTS`] distinct
/// shard ids each claim a dedicated histogram via CAS; later ids fall
/// into a shared overflow histogram (reported against no shard).
const SHARD_SLOTS: usize = 16;
const SLOT_EMPTY: u64 = u64::MAX;

#[derive(Debug)]
struct ShardSlot {
    id: AtomicU64,
    latency: LatencyHistogram,
}

/// A rich per-request observation — everything
/// [`MetricsRegistry::observe`] needs to update counters, histograms,
/// and the trace ring in one call. Pattern content appears only as an
/// FNV-1a `fingerprint` plus `len`.
#[derive(Debug, Clone, Copy)]
pub struct OpObservation {
    /// Which request kind was answered.
    pub op: OpKind,
    /// Individual pattern lookups this frame answered.
    pub patterns: u64,
    /// Service latency in nanoseconds (answer computation only).
    pub latency_ns: u64,
    /// Connection id (the accept counter value; 0 = unknown).
    pub conn: u64,
    /// Shard the request routed to, if any.
    pub shard: Option<u32>,
    /// FNV-1a fingerprint of the pattern bytes (first pattern for a
    /// batch), 0 when not applicable.
    pub fingerprint: u64,
    /// Pattern length (or batch size for `QueryBatch`).
    pub len: u32,
    /// Whether the response was an `Error` frame.
    pub error: bool,
}

impl OpObservation {
    /// A minimal observation: op + work + latency, nothing else known.
    pub fn basic(op: OpKind, patterns: u64, latency_ns: u64) -> Self {
        Self {
            op,
            patterns,
            latency_ns,
            conn: 0,
            shard: None,
            fingerprint: 0,
            len: 0,
            error: false,
        }
    }
}

/// The daemon-wide metrics state. One instance per [`crate::Server`],
/// shared by whichever core (readiness or thread-pool) serves traffic.
#[derive(Debug)]
pub struct MetricsRegistry {
    start: Instant,
    conns_accepted: AtomicU64,
    conns_open: AtomicU64,
    ops: [AtomicU64; OP_KINDS],
    errors: AtomicU64,
    patterns: AtomicU64,
    overloaded: AtomicU64,
    idle_reaped: AtomicU64,
    deadline_evicted: AtomicU64,
    recoveries: AtomicU64,
    rollbacks: AtomicU64,
    latency: LatencyHistogram,
    op_latency: [LatencyHistogram; OP_KINDS],
    shard_slots: [ShardSlot; SHARD_SLOTS],
    shard_overflow: LatencyHistogram,
    loop_wait: AtomicU64,
    loop_busy: AtomicU64,
    accept_first: LatencyHistogram,
    parks: AtomicU64,
    unparks: AtomicU64,
    slow_ops: AtomicU64,
    slow_ns: u64,
    trace: Option<Arc<TraceRing>>,
    /// `(uptime_ns, patterns_total)` at the previous `report()` — the
    /// anchor of the windowed-qps delta.
    window: Mutex<(u64, u64)>,
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A fresh registry with tracing and the slow-op log disabled;
    /// uptime starts now.
    pub fn new() -> Self {
        Self::with_observability(0, 0)
    }

    /// A registry owning a [`TraceRing`] of `trace_capacity` events
    /// (0 disables tracing — counters only) and a slow-op threshold in
    /// nanoseconds (0 disables the slow-op log).
    pub fn with_observability(trace_capacity: usize, slow_op_threshold_ns: u64) -> Self {
        Self {
            start: Instant::now(),
            conns_accepted: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            ops: std::array::from_fn(|_| AtomicU64::new(0)),
            errors: AtomicU64::new(0),
            patterns: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            idle_reaped: AtomicU64::new(0),
            deadline_evicted: AtomicU64::new(0),
            recoveries: AtomicU64::new(0),
            rollbacks: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            op_latency: std::array::from_fn(|_| LatencyHistogram::new()),
            shard_slots: std::array::from_fn(|_| ShardSlot {
                id: AtomicU64::new(SLOT_EMPTY),
                latency: LatencyHistogram::new(),
            }),
            shard_overflow: LatencyHistogram::new(),
            loop_wait: AtomicU64::new(0),
            loop_busy: AtomicU64::new(0),
            accept_first: LatencyHistogram::new(),
            parks: AtomicU64::new(0),
            unparks: AtomicU64::new(0),
            slow_ops: AtomicU64::new(0),
            slow_ns: slow_op_threshold_ns,
            trace: (trace_capacity > 0).then(|| Arc::new(TraceRing::new(trace_capacity))),
            window: Mutex::new((0, 0)),
        }
    }

    /// The trace ring, when tracing is enabled. The server and the
    /// snapshot store emit their lifecycle events through this.
    pub fn tracer(&self) -> Option<&Arc<TraceRing>> {
        self.trace.as_ref()
    }

    /// Configured slow-op threshold in nanoseconds (0 = disabled).
    pub fn slow_op_threshold_ns(&self) -> u64 {
        self.slow_ns
    }

    /// A connection was accepted. Returns its connection id (dense,
    /// starting at 1) — trace events reference it.
    pub fn conn_opened(&self) -> u64 {
        let id = self.conns_accepted.fetch_add(1, Ordering::Relaxed) + 1;
        self.conns_open.fetch_add(1, Ordering::Relaxed);
        id
    }

    /// A connection ended (any reason).
    pub fn conn_closed(&self) {
        self.conns_open.fetch_sub(1, Ordering::Relaxed);
    }

    /// One request answered: bumps the op counter, adds `patterns`
    /// individual lookups, and records the service latency (time spent
    /// computing the answer, network excluded) into the global and
    /// per-op histograms. Prefer [`observe`](MetricsRegistry::observe)
    /// on the serving path — it additionally feeds the per-shard
    /// histogram, the trace ring, and the slow-op log.
    pub fn record(&self, op: OpKind, patterns: u64, latency_ns: u64) {
        self.observe(&OpObservation::basic(op, patterns, latency_ns));
    }

    /// The full-fidelity recording path: counters + global/per-op/
    /// per-shard histograms + `frame_answered`/`frame_error` trace
    /// events + the slow-op log.
    pub fn observe(&self, o: &OpObservation) {
        self.ops[o.op as usize].fetch_add(1, Ordering::Relaxed);
        if o.patterns > 0 {
            self.patterns.fetch_add(o.patterns, Ordering::Relaxed);
        }
        self.latency.record(o.latency_ns);
        self.op_latency[o.op as usize].record(o.latency_ns);
        if let Some(shard) = o.shard {
            self.shard_histogram(shard).record(o.latency_ns);
        }
        if o.error {
            self.errors.fetch_add(1, Ordering::Relaxed);
        }
        let slow = !o.error && self.slow_ns > 0 && o.latency_ns >= self.slow_ns;
        if slow {
            self.slow_ops.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(ring) = &self.trace {
            let base = TraceEvent {
                conn: o.conn,
                shard: o.shard.unwrap_or(NO_SHARD),
                fingerprint: o.fingerprint,
                len: o.len,
                dur_ns: o.latency_ns,
                detail: o.op.wire_code() as u64,
                ..TraceEvent::new(if o.error {
                    TraceKind::FrameError
                } else {
                    TraceKind::FrameAnswered
                })
            };
            ring.emit(base);
            if slow {
                ring.emit(TraceEvent {
                    detail: self.slow_ns,
                    ..TraceEvent { kind: TraceKind::SlowOp, ..base }
                });
            }
        }
    }

    /// The histogram a shard's requests land in: its claimed slot, or
    /// the shared overflow histogram once all slots are taken.
    fn shard_histogram(&self, shard: u32) -> &LatencyHistogram {
        let want = shard as u64;
        for slot in &self.shard_slots {
            let id = slot.id.load(Ordering::Relaxed);
            if id == want {
                return &slot.latency;
            }
            if id == SLOT_EMPTY
                && slot
                    .id
                    .compare_exchange(SLOT_EMPTY, want, Ordering::Relaxed, Ordering::Relaxed)
                    .is_ok()
            {
                return &slot.latency;
            }
            // CAS lost to a racer: re-check — the racer may have claimed
            // this very slot for the same shard.
            if slot.id.load(Ordering::Relaxed) == want {
                return &slot.latency;
            }
        }
        &self.shard_overflow
    }

    /// One error response sent (malformed frame, unknown shard, rejected
    /// snapshot, refused shutdown, …). For frames that never decoded to
    /// an op; decoded requests report errors through
    /// [`observe`](MetricsRegistry::observe).
    pub fn record_error(&self) {
        self.errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Individual pattern lookups answered so far.
    pub fn patterns_total(&self) -> u64 {
        self.patterns.load(Ordering::Relaxed)
    }

    /// Connections currently admitted (opened minus closed). The
    /// admission bound compares against this before accepting more.
    pub fn conns_open_now(&self) -> u64 {
        self.conns_open.load(Ordering::Relaxed)
    }

    /// A connection was shed with an `Overloaded` frame at the admission
    /// bound (it was never admitted; `conn_opened` was not called).
    pub fn record_overloaded(&self) {
        self.overloaded.fetch_add(1, Ordering::Relaxed);
    }

    /// An idle connection was reaped by the idle timeout.
    pub fn record_idle_reaped(&self) {
        self.idle_reaped.fetch_add(1, Ordering::Relaxed);
    }

    /// A connection stalled mid-frame past the read deadline and was
    /// evicted (slow-loris defense).
    pub fn record_deadline_evicted(&self) {
        self.deadline_evicted.fetch_add(1, Ordering::Relaxed);
    }

    /// `n` shards were re-installed from the snapshot store's manifest
    /// at startup.
    pub fn record_recoveries(&self, n: u64) {
        self.recoveries.fetch_add(n, Ordering::Relaxed);
    }

    /// A retained epoch was successfully rolled back in.
    pub fn record_rollback(&self) {
        self.rollbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// One readiness event-loop iteration: `wait_ns` blocked in
    /// `epoll_wait`, `busy_ns` servicing readiness events.
    pub fn record_loop(&self, wait_ns: u64, busy_ns: u64) {
        if wait_ns > 0 {
            self.loop_wait.fetch_add(wait_ns, Ordering::Relaxed);
        }
        if busy_ns > 0 {
            self.loop_busy.fetch_add(busy_ns, Ordering::Relaxed);
        }
    }

    /// Accept-to-first-response latency of one connection: admission to
    /// the first response byte handed to the socket layer.
    pub fn record_accept_to_first(&self, ns: u64) {
        self.accept_first.record(ns);
    }

    /// Write backpressure parked a connection's reads.
    pub fn record_park(&self) {
        self.parks.fetch_add(1, Ordering::Relaxed);
    }

    /// A parked connection resumed reading.
    pub fn record_unpark(&self) {
        self.unparks.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshots everything into a wire-ready report. `cache` and
    /// `shards` come from the server (the registry does not own them);
    /// the per-shard latency columns are filled in here from the slot
    /// histograms. Each call advances the windowed-qps anchor — the
    /// reported `qps_window` covers the interval since the previous
    /// `report()` (the full uptime for the first one).
    pub fn report(&self, cache: CacheStats, mut shards: Vec<MetricsShard>) -> MetricsReport {
        let uptime_ns = self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let patterns_total = load(&self.patterns);
        let qps =
            if uptime_ns == 0 { 0.0 } else { patterns_total as f64 / (uptime_ns as f64 / 1e9) };
        let qps_window = {
            let mut anchor = self.window.lock().expect("window mutex not poisoned");
            let (last_ns, last_patterns) = *anchor;
            let dt_ns = uptime_ns.saturating_sub(last_ns);
            let dp = patterns_total.saturating_sub(last_patterns);
            *anchor = (uptime_ns, patterns_total);
            if dt_ns == 0 {
                qps
            } else {
                dp as f64 / (dt_ns as f64 / 1e9)
            }
        };
        for s in shards.iter_mut() {
            let snap = self.shard_histogram(s.shard_id).snapshot();
            s.ops = snap.count();
            (s.latency_p50_ns, s.latency_p99_ns) = snap.p50_p99();
        }
        let (latency_p50_ns, latency_p99_ns) = self.latency.snapshot().p50_p99();
        let op_q = |op: OpKind| -> OpLatency {
            let (p50_ns, p99_ns) = self.op_latency[op as usize].snapshot().p50_p99();
            OpLatency { p50_ns, p99_ns }
        };
        let loop_wait_ns = load(&self.loop_wait);
        let loop_busy_ns = load(&self.loop_busy);
        let loop_total = loop_wait_ns + loop_busy_ns;
        let (accept_to_first_p50_ns, accept_to_first_p99_ns) =
            self.accept_first.snapshot().p50_p99();
        let lookups = cache.hits + cache.misses;
        MetricsReport {
            uptime_ns,
            conns_accepted: load(&self.conns_accepted),
            conns_open: load(&self.conns_open),
            ops: OpCounts {
                query: load(&self.ops[OpKind::Query as usize]),
                query_batch: load(&self.ops[OpKind::QueryBatch as usize]),
                contains: load(&self.ops[OpKind::Contains as usize]),
                stats: load(&self.ops[OpKind::Stats as usize]),
                load_snapshot: load(&self.ops[OpKind::LoadSnapshot as usize]),
                rollback: load(&self.ops[OpKind::Rollback as usize]),
                metrics: load(&self.ops[OpKind::Metrics as usize]),
                shutdown: load(&self.ops[OpKind::Shutdown as usize]),
                trace: load(&self.ops[OpKind::Trace as usize]),
                metrics_text: load(&self.ops[OpKind::MetricsText as usize]),
                errors: load(&self.errors),
            },
            patterns_total,
            overloaded_total: load(&self.overloaded),
            idle_reaped_total: load(&self.idle_reaped),
            deadline_evicted_total: load(&self.deadline_evicted),
            recoveries_total: load(&self.recoveries),
            rollbacks_total: load(&self.rollbacks),
            qps,
            qps_window,
            latency_p50_ns,
            latency_p99_ns,
            op_latency: OpLatencies {
                query: op_q(OpKind::Query),
                query_batch: op_q(OpKind::QueryBatch),
                contains: op_q(OpKind::Contains),
                stats: op_q(OpKind::Stats),
                load_snapshot: op_q(OpKind::LoadSnapshot),
                rollback: op_q(OpKind::Rollback),
                metrics: op_q(OpKind::Metrics),
                shutdown: op_q(OpKind::Shutdown),
                trace: op_q(OpKind::Trace),
                metrics_text: op_q(OpKind::MetricsText),
            },
            loop_wait_ns,
            loop_busy_ns,
            loop_utilization: if loop_total == 0 {
                0.0
            } else {
                loop_busy_ns as f64 / loop_total as f64
            },
            accept_to_first_p50_ns,
            accept_to_first_p99_ns,
            parks_total: load(&self.parks),
            unparks_total: load(&self.unparks),
            slow_ops_total: load(&self.slow_ops),
            slow_op_threshold_ns: self.slow_ns,
            trace_events_total: self.trace.as_ref().map_or(0, |t| t.recorded()),
            trace_overwritten_total: self.trace.as_ref().map_or(0, |t| t.overwritten()),
            cache,
            cache_hit_rate: if lookups == 0 { 0.0 } else { cache.hits as f64 / lookups as f64 },
            shards,
        }
    }
}

/// Renders a [`MetricsReport`] as a Prometheus-style text exposition
/// (`# TYPE` + `dpsc_*` samples), the `MetricsText` op's payload. Pure
/// post-processing of the report — no pattern content can appear here
/// because none exists in the report.
pub fn render_prometheus(m: &MetricsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let counter = |out: &mut String, name: &str, v: u64| {
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {v}");
    };
    let gauge = |out: &mut String, name: &str, v: f64| {
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {v}");
    };
    gauge(&mut out, "dpsc_uptime_seconds", m.uptime_ns as f64 / 1e9);
    counter(&mut out, "dpsc_conns_accepted_total", m.conns_accepted);
    gauge(&mut out, "dpsc_conns_open", m.conns_open as f64);
    out.push_str("# TYPE dpsc_ops_total counter\n");
    for (label, v) in [
        ("query", m.ops.query),
        ("query_batch", m.ops.query_batch),
        ("contains", m.ops.contains),
        ("stats", m.ops.stats),
        ("load_snapshot", m.ops.load_snapshot),
        ("rollback", m.ops.rollback),
        ("metrics", m.ops.metrics),
        ("shutdown", m.ops.shutdown),
        ("trace", m.ops.trace),
        ("metrics_text", m.ops.metrics_text),
    ] {
        let _ = writeln!(out, "dpsc_ops_total{{op=\"{label}\"}} {v}");
    }
    counter(&mut out, "dpsc_errors_total", m.ops.errors);
    counter(&mut out, "dpsc_patterns_total", m.patterns_total);
    counter(&mut out, "dpsc_overloaded_total", m.overloaded_total);
    counter(&mut out, "dpsc_idle_reaped_total", m.idle_reaped_total);
    counter(&mut out, "dpsc_deadline_evicted_total", m.deadline_evicted_total);
    counter(&mut out, "dpsc_recoveries_total", m.recoveries_total);
    counter(&mut out, "dpsc_rollbacks_total", m.rollbacks_total);
    gauge(&mut out, "dpsc_qps_lifetime", m.qps);
    gauge(&mut out, "dpsc_qps_window", m.qps_window);
    out.push_str("# TYPE dpsc_latency_ns summary\n");
    let _ = writeln!(out, "dpsc_latency_ns{{quantile=\"0.5\"}} {}", m.latency_p50_ns);
    let _ = writeln!(out, "dpsc_latency_ns{{quantile=\"0.99\"}} {}", m.latency_p99_ns);
    out.push_str("# TYPE dpsc_op_latency_ns summary\n");
    for (label, ol) in [
        ("query", m.op_latency.query),
        ("query_batch", m.op_latency.query_batch),
        ("contains", m.op_latency.contains),
        ("stats", m.op_latency.stats),
        ("load_snapshot", m.op_latency.load_snapshot),
        ("rollback", m.op_latency.rollback),
        ("metrics", m.op_latency.metrics),
        ("shutdown", m.op_latency.shutdown),
        ("trace", m.op_latency.trace),
        ("metrics_text", m.op_latency.metrics_text),
    ] {
        let _ =
            writeln!(out, "dpsc_op_latency_ns{{op=\"{label}\",quantile=\"0.5\"}} {}", ol.p50_ns);
        let _ =
            writeln!(out, "dpsc_op_latency_ns{{op=\"{label}\",quantile=\"0.99\"}} {}", ol.p99_ns);
    }
    counter(&mut out, "dpsc_loop_wait_ns_total", m.loop_wait_ns);
    counter(&mut out, "dpsc_loop_busy_ns_total", m.loop_busy_ns);
    gauge(&mut out, "dpsc_loop_utilization", m.loop_utilization);
    out.push_str("# TYPE dpsc_accept_to_first_ns summary\n");
    let _ =
        writeln!(out, "dpsc_accept_to_first_ns{{quantile=\"0.5\"}} {}", m.accept_to_first_p50_ns);
    let _ =
        writeln!(out, "dpsc_accept_to_first_ns{{quantile=\"0.99\"}} {}", m.accept_to_first_p99_ns);
    counter(&mut out, "dpsc_parks_total", m.parks_total);
    counter(&mut out, "dpsc_unparks_total", m.unparks_total);
    counter(&mut out, "dpsc_slow_ops_total", m.slow_ops_total);
    gauge(&mut out, "dpsc_slow_op_threshold_ns", m.slow_op_threshold_ns as f64);
    counter(&mut out, "dpsc_trace_events_total", m.trace_events_total);
    counter(&mut out, "dpsc_trace_overwritten_total", m.trace_overwritten_total);
    counter(&mut out, "dpsc_cache_hits_total", m.cache.hits);
    counter(&mut out, "dpsc_cache_misses_total", m.cache.misses);
    gauge(&mut out, "dpsc_cache_entries", m.cache.entries as f64);
    gauge(&mut out, "dpsc_cache_capacity", m.cache.capacity as f64);
    gauge(&mut out, "dpsc_cache_hit_rate", m.cache_hit_rate);
    if !m.shards.is_empty() {
        out.push_str("# TYPE dpsc_shard_epoch gauge\n");
        for s in &m.shards {
            let _ = writeln!(out, "dpsc_shard_epoch{{shard=\"{}\"}} {}", s.shard_id, s.epoch);
        }
        out.push_str("# TYPE dpsc_shard_serialized_bytes gauge\n");
        for s in &m.shards {
            let _ = writeln!(
                out,
                "dpsc_shard_serialized_bytes{{shard=\"{}\"}} {}",
                s.shard_id, s.serialized_len
            );
        }
        out.push_str("# TYPE dpsc_shard_ops_total counter\n");
        for s in &m.shards {
            let _ = writeln!(out, "dpsc_shard_ops_total{{shard=\"{}\"}} {}", s.shard_id, s.ops);
        }
        out.push_str("# TYPE dpsc_shard_latency_ns summary\n");
        for s in &m.shards {
            let _ = writeln!(
                out,
                "dpsc_shard_latency_ns{{shard=\"{}\",quantile=\"0.5\"}} {}",
                s.shard_id, s.latency_p50_ns
            );
            let _ = writeln!(
                out,
                "dpsc_shard_latency_ns{{shard=\"{}\",quantile=\"0.99\"}} {}",
                s.shard_id, s.latency_p99_ns
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_power_of_two() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 0);
        assert_eq!(LatencyHistogram::bucket(2), 1);
        assert_eq!(LatencyHistogram::bucket(3), 1);
        assert_eq!(LatencyHistogram::bucket(4), 2);
        assert_eq!(LatencyHistogram::bucket(1023), 9);
        assert_eq!(LatencyHistogram::bucket(1024), 10);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_track_the_mass() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0, "empty histogram reports 0");
        // 99 samples near 1 µs, 1 sample near 1 ms: p50 sits in the µs
        // bucket, p995+ in the ms bucket.
        for _ in 0..99 {
            h.record(1_000);
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        let (p50, p99) = snap.p50_p99();
        assert!((512.0..2048.0).contains(&p50), "p50 = {p50}");
        assert!((512.0..2048.0).contains(&p99), "p99 = {p99} (99/100 samples are ~1 µs)");
        let p995 = snap.quantile(0.995);
        assert!(p995 >= 524_288.0, "p995 = {p995} must reach the ms bucket");
        // Direct quantile calls agree with the snapshot on a quiet
        // histogram.
        assert_eq!(h.quantile(0.5), p50);
    }

    #[test]
    fn registry_counts_ops_patterns_and_conns() {
        let m = MetricsRegistry::new();
        assert_eq!(m.conn_opened(), 1);
        assert_eq!(m.conn_opened(), 2);
        m.conn_closed();
        m.record(OpKind::Query, 1, 800);
        m.record(OpKind::QueryBatch, 16, 5_000);
        m.record(OpKind::Stats, 0, 300);
        m.record(OpKind::Rollback, 0, 100);
        m.record(OpKind::Trace, 0, 200);
        m.record(OpKind::MetricsText, 0, 250);
        m.record_error();
        m.record_overloaded();
        m.record_overloaded();
        m.record_idle_reaped();
        m.record_deadline_evicted();
        m.record_recoveries(4);
        m.record_rollback();
        let report = m.report(
            CacheStats { hits: 3, misses: 1, entries: 4, capacity: 64 },
            vec![MetricsShard {
                shard_id: 2,
                epoch: 9,
                serialized_len: 1234,
                ops: 0,
                latency_p50_ns: 0.0,
                latency_p99_ns: 0.0,
            }],
        );
        assert_eq!(report.conns_accepted, 2);
        assert_eq!(report.conns_open, 1);
        assert_eq!(report.ops.query, 1);
        assert_eq!(report.ops.query_batch, 1);
        assert_eq!(report.ops.stats, 1);
        assert_eq!(report.ops.errors, 1);
        assert_eq!(report.ops.rollback, 1);
        assert_eq!(report.ops.trace, 1);
        assert_eq!(report.ops.metrics_text, 1);
        assert_eq!(report.patterns_total, 17);
        assert_eq!(report.overloaded_total, 2);
        assert_eq!(report.idle_reaped_total, 1);
        assert_eq!(report.deadline_evicted_total, 1);
        assert_eq!(report.recoveries_total, 4);
        assert_eq!(report.rollbacks_total, 1);
        assert!(report.qps > 0.0);
        assert!(report.latency_p50_ns > 0.0);
        assert!((report.cache_hit_rate - 0.75).abs() < 1e-12);
        assert_eq!(report.shards.len(), 1);
        assert_eq!(report.shards[0].epoch, 9);
        // Per-op histograms separate the kinds.
        assert!(report.op_latency.query.p50_ns > 0.0);
        assert!(report.op_latency.query_batch.p50_ns > report.op_latency.query.p50_ns);
        assert_eq!(report.op_latency.load_snapshot.p50_ns, 0.0, "no LoadSnapshot recorded");
        // First report's window equals the lifetime average.
        assert!((report.qps_window - report.qps).abs() / report.qps < 0.5);
    }

    #[test]
    fn per_shard_histograms_claim_slots_and_overflow() {
        let m = MetricsRegistry::new();
        for shard in 0..(SHARD_SLOTS as u32 + 4) {
            m.observe(&OpObservation {
                shard: Some(shard),
                ..OpObservation::basic(OpKind::Query, 1, 1_000 + shard as u64 * 10)
            });
        }
        // Slot-resident shards report their own counts…
        let mk = |id: u32| MetricsShard {
            shard_id: id,
            epoch: 1,
            serialized_len: 10,
            ops: 0,
            latency_p50_ns: 0.0,
            latency_p99_ns: 0.0,
        };
        let report = m.report(CacheStats::default(), (0..SHARD_SLOTS as u32).map(mk).collect());
        for s in &report.shards {
            assert_eq!(s.ops, 1, "shard {}", s.shard_id);
            assert!(s.latency_p50_ns > 0.0);
        }
        // …and the late shards all share the overflow histogram.
        assert_eq!(m.shard_overflow.count(), 4);
    }

    #[test]
    fn observe_feeds_trace_ring_and_slow_op_log() {
        let m = MetricsRegistry::with_observability(64, 1_000_000);
        assert_eq!(m.slow_op_threshold_ns(), 1_000_000);
        m.observe(&OpObservation {
            conn: 7,
            shard: Some(3),
            fingerprint: 0xDEAD_BEEF,
            len: 4,
            ..OpObservation::basic(OpKind::Query, 1, 2_000)
        });
        m.observe(&OpObservation {
            conn: 7,
            shard: Some(3),
            fingerprint: 0xFEED_F00D,
            len: 9,
            ..OpObservation::basic(OpKind::Query, 1, 5_000_000)
        });
        m.observe(&OpObservation {
            conn: 8,
            error: true,
            ..OpObservation::basic(OpKind::Rollback, 0, 3_000_000)
        });
        let ring = m.tracer().expect("tracing enabled");
        let events = ring.snapshot(100);
        let kinds: Vec<TraceKind> = events.iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                TraceKind::FrameAnswered,
                TraceKind::FrameAnswered,
                TraceKind::SlowOp,
                TraceKind::FrameError,
            ],
            "slow op follows its frame; errors never enter the slow-op log"
        );
        assert_eq!(events[1].fingerprint, 0xFEED_F00D);
        assert_eq!(events[2].fingerprint, 0xFEED_F00D, "slow-op entry carries the fingerprint");
        assert_eq!(events[2].detail, 1_000_000, "slow-op detail is the threshold");
        assert_eq!(events[3].conn, 8);
        let report = m.report(CacheStats::default(), Vec::new());
        assert_eq!(report.slow_ops_total, 1);
        assert_eq!(report.ops.errors, 1);
        assert_eq!(report.trace_events_total, 4);
        assert_eq!(report.trace_overwritten_total, 0);
    }

    #[test]
    fn windowed_qps_reflects_recent_activity_only() {
        let m = MetricsRegistry::new();
        m.record(OpKind::Query, 1_000, 500);
        let first = m.report(CacheStats::default(), Vec::new());
        assert!(first.qps_window > 0.0);
        // Nothing served since the first report: the window drops to 0
        // while the lifetime average stays positive.
        std::thread::sleep(std::time::Duration::from_millis(2));
        let second = m.report(CacheStats::default(), Vec::new());
        assert!(second.qps > 0.0);
        assert_eq!(second.qps_window, 0.0);
        // New work shows up in the next window.
        m.record(OpKind::Query, 10, 500);
        std::thread::sleep(std::time::Duration::from_millis(2));
        let third = m.report(CacheStats::default(), Vec::new());
        assert!(third.qps_window > 0.0);
        assert!(third.qps < first.qps, "lifetime average decays");
    }

    #[test]
    fn prometheus_exposition_has_the_required_families() {
        let m = MetricsRegistry::with_observability(16, 1);
        m.observe(&OpObservation {
            shard: Some(0),
            fingerprint: 42,
            len: 3,
            ..OpObservation::basic(OpKind::Query, 1, 900)
        });
        let report = m.report(
            CacheStats { hits: 1, misses: 1, entries: 1, capacity: 8 },
            vec![MetricsShard {
                shard_id: 0,
                epoch: 2,
                serialized_len: 100,
                ops: 0,
                latency_p50_ns: 0.0,
                latency_p99_ns: 0.0,
            }],
        );
        let text = render_prometheus(&report);
        for needle in [
            "# TYPE dpsc_ops_total counter",
            "dpsc_ops_total{op=\"query\"} 1",
            "dpsc_patterns_total 1",
            "dpsc_latency_ns{quantile=\"0.5\"}",
            "dpsc_op_latency_ns{op=\"query\",quantile=\"0.99\"}",
            "dpsc_qps_window",
            "dpsc_loop_utilization",
            "dpsc_accept_to_first_ns{quantile=\"0.5\"}",
            "dpsc_slow_ops_total 1",
            "dpsc_trace_events_total 2",
            "dpsc_shard_epoch{shard=\"0\"} 2",
            "dpsc_shard_latency_ns{shard=\"0\",quantile=\"0.99\"}",
        ] {
            assert!(text.contains(needle), "exposition missing `{needle}`:\n{text}");
        }
        // Every line is a comment or `name[{labels}] value`.
        for line in text.lines() {
            assert!(
                line.starts_with('#')
                    || line.split_once(' ').is_some_and(
                        |(name, v)| name.starts_with("dpsc_") && v.parse::<f64>().is_ok()
                    ),
                "malformed exposition line `{line}`"
            );
        }
    }
}
