//! Readiness polling for the event-driven server core: a thin, std-only
//! wrapper over the Linux `epoll` family plus a self-pipe waker.
//!
//! `std` exposes no readiness API and the build environment has no
//! registry access (no `libc`, no `mio`), so this module follows the
//! PR 1 vendoring pattern: declare exactly the C entry points we need
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`, `pipe2`, `read`,
//! `write`) against the libc that `std` already links, and wrap them in
//! a minimal safe API. Everything `unsafe` lives in the [`sys`]
//! submodule behind four shim functions; the rest of the crate stays
//! under the workspace `unsafe_code = "deny"` lint.
//!
//! The API is deliberately small — exactly what [`crate::server`]'s
//! event loop needs:
//!
//! * [`Poller`] — create/register/rearm/deregister file descriptors and
//!   wait for readiness events, each tagged with a caller-chosen `u64`
//!   token.
//! * [`Interest`] — readable and/or writable, always edge-triggered
//!   (`EPOLLET`): the event loop drains sockets to `WouldBlock` on every
//!   event, which is the discipline edge triggering requires and the
//!   reason a 10k-connection daemon does not re-scan 10k fds per wake.
//! * [`WakePipe`] — a non-blocking self-pipe whose read end is
//!   registered like any connection; writing one byte from any thread
//!   wakes `epoll_wait` immediately. This replaces the old 100 ms
//!   read-timeout shutdown polls: shutdown latency is now one pipe write,
//!   not a poll interval.
//!
//! This module is `cfg(target_os = "linux")`; on other platforms the
//! server falls back to the portable thread-pool core behind the same
//! `Server` API (see `server::CoreKind`).

use std::io;
use std::os::fd::{AsRawFd, OwnedFd, RawFd};

/// Readiness interest for a registered descriptor. Registration is
/// always edge-triggered; see the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the descriptor becomes readable (`EPOLLIN`).
    pub readable: bool,
    /// Wake when the descriptor becomes writable (`EPOLLOUT`).
    pub writable: bool,
}

impl Interest {
    /// Readable only — the steady state of an idle connection.
    pub const READ: Self = Self { readable: true, writable: false };
    /// Writable only — a connection under write backpressure (reading
    /// paused until the outbound queue drains).
    pub const WRITE: Self = Self { readable: false, writable: true };
    /// Both directions — a connection with queued output that still
    /// accepts new requests.
    pub const READ_WRITE: Self = Self { readable: true, writable: true };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token the descriptor was registered with.
    pub token: u64,
    /// Readable (or: a peer hang-up that a read will observe as EOF).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hang-up condition (`EPOLLERR`/`EPOLLHUP`); the owner
    /// should read to collect the error and close.
    pub error: bool,
}

/// Reusable event buffer for [`Poller::wait`].
#[derive(Debug)]
pub struct Events {
    buf: Vec<sys::EpollEvent>,
    len: usize,
}

impl Events {
    /// A buffer receiving at most `capacity` events per wait (clamped to
    /// at least 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self { buf: vec![sys::EpollEvent::default(); capacity.max(1)], len: 0 }
    }

    /// The events delivered by the last [`Poller::wait`].
    pub fn iter(&self) -> impl Iterator<Item = Event> + '_ {
        self.buf[..self.len].iter().map(|e| Event {
            token: e.data(),
            readable: e.events() & (sys::EPOLLIN | sys::EPOLLRDHUP) != 0,
            writable: e.events() & sys::EPOLLOUT != 0,
            error: e.events() & (sys::EPOLLERR | sys::EPOLLHUP) != 0,
        })
    }
}

/// An `epoll` instance. Dropping closes it (and implicitly deregisters
/// everything).
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

impl Poller {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    pub fn new() -> io::Result<Self> {
        Ok(Self { epfd: sys::epoll_create1()? })
    }

    /// Registers `fd` with edge-triggered `interest`, delivering `token`
    /// on every event.
    pub fn add(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_ADD, fd, interest, token)
    }

    /// Rearms an already registered `fd` with a new `interest` set.
    pub fn modify(&self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_MOD, fd, interest, token)
    }

    /// Deregisters `fd`. Harmless to call for an fd about to be closed —
    /// closing deregisters too, but an explicit delete keeps the kernel
    /// interest list exact while the `TcpStream` is still alive.
    pub fn delete(&self, fd: RawFd) -> io::Result<()> {
        sys::epoll_ctl(self.epfd.as_raw_fd(), sys::EPOLL_CTL_DEL, fd, Interest::READ, 0)
    }

    /// Blocks until ≥1 event or the timeout (`None` = forever), filling
    /// `events`. Returns the number delivered; `EINTR` is retried
    /// internally.
    pub fn wait(&self, events: &mut Events, timeout_ms: Option<i32>) -> io::Result<usize> {
        let n = sys::epoll_wait(self.epfd.as_raw_fd(), &mut events.buf, timeout_ms.unwrap_or(-1))?;
        events.len = n;
        Ok(n)
    }
}

/// A non-blocking self-pipe: register [`WakePipe::read_fd`] in a
/// [`Poller`], call [`WakePipe::wake`] from any thread to make the next
/// (or current) `wait` return, and [`WakePipe::drain`] on delivery so the
/// edge can fire again.
#[derive(Debug)]
pub struct WakePipe {
    read: OwnedFd,
    write: OwnedFd,
}

impl WakePipe {
    /// Creates the pipe (`O_NONBLOCK | O_CLOEXEC` on both ends).
    pub fn new() -> io::Result<Self> {
        let (read, write) = sys::pipe2()?;
        Ok(Self { read, write })
    }

    /// The fd to register for readable interest.
    pub fn read_fd(&self) -> RawFd {
        self.read.as_raw_fd()
    }

    /// Wakes the poller. A full pipe means wakes are already pending, so
    /// `EAGAIN` counts as success; any other error is reported.
    pub fn wake(&self) -> io::Result<()> {
        match sys::write_byte(self.write.as_raw_fd()) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            other => other,
        }
    }

    /// Consumes every pending wake byte (so a future `wake` produces a
    /// fresh edge).
    pub fn drain(&self) {
        sys::drain(self.read.as_raw_fd());
    }
}

/// A thread-safe handle that can wake the poller from outside the event
/// loop (e.g. [`crate::ServerHandle::shutdown`]). Cloning shares the
/// pipe's write end.
#[derive(Debug, Clone)]
pub struct Waker {
    write: std::sync::Arc<OwnedFd>,
}

impl WakePipe {
    /// A cloneable waker sharing this pipe's write end. The pipe itself
    /// stays with the event loop (which owns the read end).
    pub fn waker(&self) -> io::Result<Waker> {
        Ok(Waker { write: std::sync::Arc::new(self.write.try_clone()?) })
    }
}

impl Waker {
    /// Same contract as [`WakePipe::wake`].
    pub fn wake(&self) {
        if let Err(e) = match sys::write_byte(self.write.as_raw_fd()) {
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => Ok(()),
            other => other,
        } {
            // A failed wake only delays shutdown until an organic event;
            // nothing sensible to do beyond noting it.
            eprintln!("[dpsc-serve] waker write failed: {e}");
        }
    }
}

/// The one `unsafe` island of the crate: C declarations for the five
/// entry points and four thin shims translating `-1`/`errno` into
/// `io::Result`. Every pointer handed to C is derived from a live Rust
/// reference with the length passed alongside, and every fd returned by
/// C is immediately wrapped in `OwnedFd` so it cannot leak.
#[allow(unsafe_code)]
mod sys {
    use std::io;
    use std::os::fd::{FromRawFd, OwnedFd, RawFd};

    // Event mask bits (uapi/linux/eventpoll.h).
    pub const EPOLLIN: u32 = 0x001;
    pub const EPOLLOUT: u32 = 0x004;
    pub const EPOLLERR: u32 = 0x008;
    pub const EPOLLHUP: u32 = 0x010;
    pub const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    pub const EPOLL_CTL_ADD: i32 = 1;
    pub const EPOLL_CTL_DEL: i32 = 2;
    pub const EPOLL_CTL_MOD: i32 = 3;

    // open(2) flag values shared by every Linux architecture this
    // workspace builds for (x86_64, aarch64, riscv64).
    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const O_NONBLOCK: i32 = 0o4000;
    const O_CLOEXEC: i32 = 0o2000000;

    /// The kernel's `struct epoll_event`: packed on x86_64 (12 bytes),
    /// naturally aligned (16 bytes) everywhere else — mirroring the
    /// `EPOLL_PACKED` dance in the kernel headers is what makes calling
    /// the glibc wrappers ABI-correct on both layouts.
    #[derive(Debug, Clone, Copy, Default)]
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    pub struct EpollEvent {
        events: u32,
        data: u64,
    }

    impl EpollEvent {
        pub fn events(&self) -> u32 {
            self.events
        }

        pub fn data(&self) -> u64 {
            self.data
        }
    }

    /// Raw C declarations, resolved against the libc `std` already
    /// links. Nested so the safe shims below can reuse the C names.
    mod c {
        use super::EpollEvent;

        extern "C" {
            pub fn epoll_create1(flags: i32) -> i32;
            pub fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            pub fn epoll_wait(
                epfd: i32,
                events: *mut EpollEvent,
                maxevents: i32,
                timeout: i32,
            ) -> i32;
            pub fn pipe2(pipefd: *mut i32, flags: i32) -> i32;
            pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
            pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        }
    }

    fn check(ret: i32) -> io::Result<i32> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    pub fn epoll_create1() -> io::Result<OwnedFd> {
        // SAFETY: no pointers; a non-negative return is a fresh fd we
        // immediately take ownership of.
        let fd = check(unsafe { c::epoll_create1(EPOLL_CLOEXEC) })?;
        Ok(unsafe { OwnedFd::from_raw_fd(fd) })
    }

    pub fn epoll_ctl(
        epfd: RawFd,
        op: i32,
        fd: RawFd,
        interest: super::Interest,
        token: u64,
    ) -> io::Result<()> {
        let mut events = EPOLLET | EPOLLRDHUP;
        if interest.readable {
            events |= EPOLLIN;
        }
        if interest.writable {
            events |= EPOLLOUT;
        }
        let mut ev = EpollEvent { events, data: token };
        // SAFETY: `ev` is a live stack value for the duration of the
        // call; the kernel copies it and keeps no reference (DEL ignores
        // it entirely).
        check(unsafe { c::epoll_ctl(epfd, op, fd, &mut ev) })?;
        Ok(())
    }

    pub fn epoll_wait(
        epfd: RawFd,
        events: &mut [EpollEvent],
        timeout_ms: i32,
    ) -> io::Result<usize> {
        loop {
            // SAFETY: the pointer/length pair describes `events`, a live
            // mutable slice; the kernel writes at most `len` entries.
            let ret = unsafe {
                c::epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms)
            };
            match check(ret) {
                Ok(n) => return Ok(n as usize),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    pub fn pipe2() -> io::Result<(OwnedFd, OwnedFd)> {
        let mut fds = [0i32; 2];
        // SAFETY: `fds` is a live 2-element array the kernel fills; on
        // success both fds are fresh and we take ownership of each.
        check(unsafe { c::pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(unsafe { (OwnedFd::from_raw_fd(fds[0]), OwnedFd::from_raw_fd(fds[1])) })
    }

    pub fn write_byte(fd: RawFd) -> io::Result<()> {
        let byte = 1u8;
        // SAFETY: one live byte, length 1.
        let n = unsafe { c::write(fd, &byte, 1) };
        if n < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(())
        }
    }

    pub fn drain(fd: RawFd) {
        let mut buf = [0u8; 64];
        loop {
            // SAFETY: the pointer/length pair describes `buf`, a live
            // mutable array.
            let n = unsafe { c::read(fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                // EAGAIN (empty), EOF, or a real error: in every case the
                // pipe has no more wake bytes to consume right now.
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    const TOKEN_PIPE: u64 = 7;
    const TOKEN_LISTENER: u64 = 11;

    #[test]
    fn wake_pipe_delivers_and_drains() {
        let poller = Poller::new().expect("epoll_create1");
        let pipe = WakePipe::new().expect("pipe2");
        poller.add(pipe.read_fd(), TOKEN_PIPE, Interest::READ).expect("register pipe");
        let mut events = Events::with_capacity(8);

        // Nothing pending: a zero timeout returns no events.
        assert_eq!(poller.wait(&mut events, Some(0)).expect("wait"), 0);

        pipe.wake().expect("wake");
        assert_eq!(poller.wait(&mut events, Some(1000)).expect("wait"), 1);
        let ev = events.iter().next().expect("one event");
        assert_eq!(ev.token, TOKEN_PIPE);
        assert!(ev.readable);

        // Edge-triggered: without draining, a *new* wake still produces a
        // fresh edge after the level was consumed.
        pipe.drain();
        assert_eq!(poller.wait(&mut events, Some(0)).expect("wait"), 0, "drained pipe is quiet");
        pipe.wake().expect("wake again");
        assert_eq!(poller.wait(&mut events, Some(1000)).expect("wait"), 1);
        pipe.drain();
    }

    #[test]
    fn waker_wakes_from_another_thread() {
        let poller = Poller::new().expect("epoll_create1");
        let pipe = WakePipe::new().expect("pipe2");
        poller.add(pipe.read_fd(), TOKEN_PIPE, Interest::READ).expect("register pipe");
        let waker = pipe.waker().expect("waker");
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        let mut events = Events::with_capacity(4);
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert_eq!(n, 1);
        assert_eq!(events.iter().next().unwrap().token, TOKEN_PIPE);
        t.join().unwrap();
    }

    #[test]
    fn repeated_wakes_coalesce_but_never_block() {
        let pipe = WakePipe::new().expect("pipe2");
        // Far more wakes than the pipe buffer holds: every call must
        // return Ok (EAGAIN counts as "already pending").
        for _ in 0..100_000 {
            pipe.wake().expect("wake never errors");
        }
        pipe.drain();
    }

    #[test]
    fn listener_readiness_and_rearm() {
        let poller = Poller::new().expect("epoll_create1");
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        listener.set_nonblocking(true).expect("nonblocking");
        let addr = listener.local_addr().unwrap();
        use std::os::fd::AsRawFd;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).expect("register");

        let mut events = Events::with_capacity(4);
        assert_eq!(poller.wait(&mut events, Some(0)).expect("wait"), 0);

        let mut client = TcpStream::connect(addr).expect("connect");
        assert_eq!(poller.wait(&mut events, Some(5_000)).expect("wait"), 1);
        assert_eq!(events.iter().next().unwrap().token, TOKEN_LISTENER);
        let (stream, _) = listener.accept().expect("accept");

        // Register the accepted socket for read interest and make the
        // peer's bytes wake us.
        stream.set_nonblocking(true).expect("nonblocking");
        poller.add(stream.as_raw_fd(), 42, Interest::READ).expect("register conn");
        client.write_all(b"ping").expect("write");
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 42 && e.readable));

        // Rearm for write interest: an idle socket with kernel buffer
        // space reports writable immediately (edge on MOD).
        poller.modify(stream.as_raw_fd(), 42, Interest::READ_WRITE).expect("rearm");
        let n = poller.wait(&mut events, Some(5_000)).expect("wait");
        assert!(n >= 1);
        assert!(events.iter().any(|e| e.token == 42 && e.writable));

        poller.delete(stream.as_raw_fd()).expect("deregister");
        drop(client);
    }
}
