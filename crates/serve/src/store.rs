//! Crash-safe on-disk snapshot store with epoch retention and rollback.
//!
//! The paper's release-once DP model makes durability privacy-critical:
//! a released synopsis that is lost must be rebuilt, and rebuilding
//! spends *fresh* ε. So every installed snapshot is persisted so that a
//! crash at **any** instruction boundary leaves the store recoverable to
//! a whole epoch — the old one or the fully committed new one, never a
//! blend, never a wedge.
//!
//! ## On-disk layout
//!
//! ```text
//! <dir>/
//!   MANIFEST                          append-only record log (see below)
//!   snap-<corpus:08x>-<epoch:016x>.dpsf   one snapshot payload per install
//!   *.tmp                             in-flight writes (removed at recovery)
//! ```
//!
//! `MANIFEST` opens with an 8-byte header (`DPSM`, LE `u16` version, two
//! zero bytes) followed by fixed-size 44-byte records:
//!
//! | field | bytes | meaning |
//! |---|---|---|
//! | `corpus` | 4 | shard / corpus id |
//! | `epoch` | 8 | durable epoch this record installs |
//! | `src_epoch` | 8 | epoch whose payload file holds the bytes (= `epoch` for a fresh persist; an older epoch for a rollback record) |
//! | `len` | 8 | payload length in bytes |
//! | `fnv` | 8 | FNV-1a of the payload |
//! | `sum` | 8 | FNV-1a of the 36 bytes above (per-record checksum) |
//!
//! ## Persist protocol (the crash-point enumeration)
//!
//! ```text
//! write snap.tmp → fsync(snap.tmp) → rename(snap.tmp, snap) → fsync(dir)
//!   → append MANIFEST record → fsync(MANIFEST)          [= commit point]
//! ```
//!
//! A crash strictly before the manifest fsync leaves at worst a torn
//! temp file or a torn trailing record; recovery truncates the manifest
//! to its last valid record prefix, discards records whose payload is
//! missing or fails its checksum (falling back to the next older
//! epoch), and deletes unreferenced files. A crash after the commit
//! point recovers the new epoch. There is no in-between state.
//!
//! ## Fault injection
//!
//! All mutating filesystem traffic goes through the [`StoreIo`] trait.
//! [`RealIo`] is the production implementation; [`FaultyIo`] wraps it
//! with a deterministic [`FaultPlan`] that kills the process-equivalent
//! (every later operation fails) at the N-th operation, optionally after
//! writing only a byte prefix — so tests enumerate every crash point
//! between "start persist" and "manifest committed" and assert the
//! recovery invariant at each one.

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{ErrorKind, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use dpsc_private_count::codec::fnv1a;
use dpsc_private_count::FrozenSynopsis;

use crate::trace::{TraceEvent, TraceKind, TraceRing};

/// Manifest file name inside the store directory.
pub const MANIFEST_NAME: &str = "MANIFEST";
/// Manifest header: magic + LE version + two reserved zero bytes.
pub const MANIFEST_HEADER: [u8; 8] = *b"DPSM\x01\x00\x00\x00";
/// Fixed size of one manifest record (payload + trailing checksum).
pub const MANIFEST_RECORD_LEN: usize = 44;

/// The payload file name for `(corpus, epoch)`.
pub fn snap_file_name(corpus: u32, epoch: u64) -> String {
    format!("snap-{corpus:08x}-{epoch:016x}.dpsf")
}

/// Why a store operation failed.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem trouble (including injected crashes under test).
    Io(std::io::Error),
    /// A payload or manifest structure failed validation.
    Corrupt(String),
    /// A rollback target that is not retained (never persisted, already
    /// pruned by retention, or its payload no longer validates).
    UnknownEpoch {
        /// Corpus the rollback addressed.
        corpus: u32,
        /// The requested durable epoch.
        epoch: u64,
        /// Epochs currently retained for the corpus (rollback targets).
        retained: Vec<u64>,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "store io error: {e}"),
            Self::Corrupt(what) => write!(f, "store corruption: {what}"),
            Self::UnknownEpoch { corpus, epoch, retained } => write!(
                f,
                "epoch {epoch} of corpus {corpus} is not retained (retained: {retained:?})"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

/// The filesystem surface the store drives. Production uses [`RealIo`];
/// tests wrap it in [`FaultyIo`] to enumerate crash points
/// deterministically. Reads are part of the trait so a "dead" faulty io
/// also refuses reads — after a simulated crash nothing else runs.
pub trait StoreIo: Send + Sync + fmt::Debug {
    /// Creates (truncating) `path` and writes `bytes`.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// Appends `bytes` to `path`, creating it if missing.
    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;
    /// fsyncs `path`'s contents.
    fn sync_file(&self, path: &Path) -> std::io::Result<()>;
    /// fsyncs the directory entry table of `dir` (makes renames durable).
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;
    /// Removes a file.
    fn remove_file(&self, path: &Path) -> std::io::Result<()>;
    /// Reads a whole file.
    fn read_file(&self, path: &Path) -> std::io::Result<Vec<u8>>;
    /// Lists the entries of `dir`.
    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>>;
}

/// The production [`StoreIo`]: plain `std::fs`, real fsyncs.
#[derive(Debug, Default)]
pub struct RealIo;

impl StoreIo for RealIo {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(bytes)
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        let mut f = OpenOptions::new().create(true).append(true).open(path)?;
        f.write_all(bytes)
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        File::open(path)?.sync_all()
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        // Opening a directory read-only and fsyncing it is the portable
        // std spelling of fsync(dirfd) on Linux.
        File::open(dir)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        std::fs::rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        std::fs::remove_file(path)
    }

    fn read_file(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        let mut out = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            out.push(entry?.path());
        }
        out.sort();
        Ok(out)
    }
}

/// One deterministic crash schedule for [`FaultyIo`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// 0-based index of the *mutating* operation at which the simulated
    /// crash fires ([`usize::MAX`] = never crash — counting mode).
    pub crash_at: usize,
    /// When the crash lands on `write_file`/`append_file`: how many
    /// bytes actually hit the disk first (`None` = zero). Ignored for
    /// other operations.
    pub partial_bytes: Option<usize>,
    /// Make `sync_file`/`sync_dir` silent no-ops (they still count as
    /// operations, so crash indices stay stable across plans). Models a
    /// build that "skips fsync"; on a live filesystem the data still
    /// lands, so this knob is about schedule enumeration, not about
    /// simulating page-cache loss.
    pub skip_fsync: bool,
}

impl FaultPlan {
    /// A plan that never crashes — used to count a flow's operations.
    pub fn counting() -> Self {
        Self { crash_at: usize::MAX, partial_bytes: None, skip_fsync: false }
    }

    /// Crash before the `n`-th mutating operation.
    pub fn crash_at(n: usize) -> Self {
        Self { crash_at: n, partial_bytes: None, skip_fsync: false }
    }

    /// Crash at operation `n` after `bytes` bytes of it were written.
    pub fn crash_mid_write(n: usize, bytes: usize) -> Self {
        Self { crash_at: n, partial_bytes: Some(bytes), skip_fsync: false }
    }
}

/// A [`StoreIo`] that simulates a crash mid-persist: at the planned
/// operation it optionally writes a byte prefix, then *dies* — every
/// subsequent call (reads included) fails, exactly as if the process had
/// been killed at that instruction.
#[derive(Debug)]
pub struct FaultyIo {
    inner: RealIo,
    plan: FaultPlan,
    ops: AtomicUsize,
    dead: AtomicBool,
}

impl FaultyIo {
    /// Wraps the real filesystem under `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        Self { inner: RealIo, plan, ops: AtomicUsize::new(0), dead: AtomicBool::new(false) }
    }

    /// Mutating operations executed so far (counting mode's output: run
    /// a flow with [`FaultPlan::counting`], read this, then enumerate
    /// `crash_at` over `0..ops_executed()`).
    pub fn ops_executed(&self) -> usize {
        self.ops.load(Ordering::SeqCst)
    }

    /// Whether the simulated crash has fired.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    fn injected() -> std::io::Error {
        std::io::Error::other("injected crash (FaultyIo)")
    }

    /// Admission for one mutating op: returns its index, or the injected
    /// error once dead.
    fn gate(&self) -> std::io::Result<usize> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::injected());
        }
        Ok(self.ops.fetch_add(1, Ordering::SeqCst))
    }

    fn maybe_die(&self, op: usize) -> std::io::Result<()> {
        if op == self.plan.crash_at {
            self.dead.store(true, Ordering::SeqCst);
            return Err(Self::injected());
        }
        Ok(())
    }

    fn faulty_write(
        &self,
        path: &Path,
        bytes: &[u8],
        write: impl Fn(&Path, &[u8]) -> std::io::Result<()>,
    ) -> std::io::Result<()> {
        let op = self.gate()?;
        if op == self.plan.crash_at {
            let keep = self.plan.partial_bytes.unwrap_or(0).min(bytes.len());
            let _ = write(path, &bytes[..keep]);
            self.dead.store(true, Ordering::SeqCst);
            return Err(Self::injected());
        }
        write(path, bytes)
    }
}

impl StoreIo for FaultyIo {
    fn write_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.faulty_write(path, bytes, |p, b| self.inner.write_file(p, b))
    }

    fn append_file(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        self.faulty_write(path, bytes, |p, b| self.inner.append_file(p, b))
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        let op = self.gate()?;
        self.maybe_die(op)?;
        if self.plan.skip_fsync {
            return Ok(());
        }
        self.inner.sync_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        let op = self.gate()?;
        self.maybe_die(op)?;
        if self.plan.skip_fsync {
            return Ok(());
        }
        self.inner.sync_dir(dir)
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        let op = self.gate()?;
        self.maybe_die(op)?;
        self.inner.rename(from, to)
    }

    fn remove_file(&self, path: &Path) -> std::io::Result<()> {
        let op = self.gate()?;
        self.maybe_die(op)?;
        self.inner.remove_file(path)
    }

    fn read_file(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::injected());
        }
        self.inner.read_file(path)
    }

    fn list_dir(&self, dir: &Path) -> std::io::Result<Vec<PathBuf>> {
        if self.dead.load(Ordering::SeqCst) {
            return Err(Self::injected());
        }
        self.inner.list_dir(dir)
    }
}

/// One committed manifest record (see the module docs for the layout).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestRecord {
    /// Corpus id.
    pub corpus: u32,
    /// Durable epoch this record installs.
    pub epoch: u64,
    /// Epoch whose payload file carries the bytes (= `epoch` for a fresh
    /// persist, older for a rollback re-install).
    pub src_epoch: u64,
    /// Payload length.
    pub len: u64,
    /// Payload FNV-1a.
    pub fnv: u64,
}

impl ManifestRecord {
    fn encode_into(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.extend_from_slice(&self.corpus.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.src_epoch.to_le_bytes());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.extend_from_slice(&self.fnv.to_le_bytes());
        let sum = fnv1a(&out[start..]);
        out.extend_from_slice(&sum.to_le_bytes());
        debug_assert_eq!(out.len() - start, MANIFEST_RECORD_LEN);
    }

    /// Decodes one record; `None` when the checksum does not match
    /// (torn or bit-flipped — the last-valid-prefix scan stops here).
    fn decode(raw: &[u8; MANIFEST_RECORD_LEN]) -> Option<Self> {
        let body = &raw[..MANIFEST_RECORD_LEN - 8];
        let stored = u64::from_le_bytes(raw[MANIFEST_RECORD_LEN - 8..].try_into().ok()?);
        if fnv1a(body) != stored {
            return None;
        }
        let u32at = |i: usize| u32::from_le_bytes(raw[i..i + 4].try_into().expect("4 bytes"));
        let u64at = |i: usize| u64::from_le_bytes(raw[i..i + 8].try_into().expect("8 bytes"));
        Some(Self {
            corpus: u32at(0),
            epoch: u64at(4),
            src_epoch: u64at(12),
            len: u64at(20),
            fnv: u64at(28),
        })
    }
}

/// A snapshot the manifest replay chose to serve for one corpus: the
/// newest epoch whose payload exists, matches its recorded checksum, and
/// decodes as a valid synopsis.
#[derive(Debug, Clone)]
pub struct RecoveredSnapshot {
    /// Corpus id.
    pub corpus: u32,
    /// The durable epoch recovered.
    pub epoch: u64,
    /// The validated payload, shared so the shard manager can serve an
    /// uncompressed v2 snapshot borrowed straight from it.
    pub bytes: Arc<[u8]>,
}

#[derive(Debug)]
struct StoreState {
    /// Per corpus, retained records ascending by epoch.
    records: BTreeMap<u32, Vec<ManifestRecord>>,
    next_epoch: u64,
    manifest_exists: bool,
    /// What the open-time replay chose to serve; drained by
    /// [`SnapshotStore::take_recovered`].
    recovered: Vec<RecoveredSnapshot>,
}

/// The crash-safe snapshot store. One instance owns one directory; all
/// mutation is serialized under an internal lock, so manifest order
/// always matches install order.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    io: Box<dyn StoreIo>,
    retain: usize,
    state: Mutex<StoreState>,
    /// Optional trace sink ([`SnapshotStore::set_tracer`]): each of the
    /// six mutating persist ops emits a `store_op` event as it
    /// completes, plus `persist_committed`/`rollback_committed` at the
    /// commit points. Events carry corpus/epoch/lengths — never payload
    /// bytes.
    tracer: Mutex<Option<Arc<TraceRing>>>,
}

impl SnapshotStore {
    /// Opens (creating if needed) the store at `dir` with the real
    /// filesystem, replaying the manifest: torn tails are truncated,
    /// corrupt or missing payloads discarded (older epochs take over),
    /// leftover temp and unreferenced files removed. `retain` is the
    /// per-corpus epoch retention depth (clamped to ≥ 1).
    pub fn open(dir: impl Into<PathBuf>, retain: usize) -> Result<Self, StoreError> {
        Self::open_with(dir, retain, Box::new(RealIo))
    }

    /// [`Self::open`] with an injected [`StoreIo`] (fault injection).
    pub fn open_with(
        dir: impl Into<PathBuf>,
        retain: usize,
        io: Box<dyn StoreIo>,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = Self {
            dir,
            io,
            retain: retain.max(1),
            state: Mutex::new(StoreState {
                records: BTreeMap::new(),
                next_epoch: 1,
                manifest_exists: false,
                recovered: Vec::new(),
            }),
            tracer: Mutex::new(None),
        };
        store.recover()?;
        Ok(store)
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Wires a trace ring into the store (the server does this at bind
    /// when tracing is enabled). Emits `store_op` events for the six
    /// mutating persist ops and commit events thereafter.
    pub fn set_tracer(&self, ring: Arc<TraceRing>) {
        *self.tracer.lock().expect("tracer slot not poisoned") = Some(ring);
    }

    fn trace(&self, ev: TraceEvent) {
        if let Some(ring) = self.tracer.lock().expect("tracer slot not poisoned").as_ref() {
            ring.emit(ev);
        }
    }

    /// A `store_op` event: `detail` indexes the six-op persist sequence
    /// (0 write-temp, 1 sync-temp, 2 rename, 3 sync-dir, 4
    /// manifest-append, 5 manifest-sync — the commit point), emitted as
    /// each op *completes*, so the trace shows exactly how far a persist
    /// got.
    fn trace_store_op(&self, corpus: u32, epoch: u64, op_index: u64) {
        self.trace(TraceEvent {
            shard: corpus,
            epoch,
            detail: op_index,
            ..TraceEvent::new(TraceKind::StoreOp)
        });
    }

    fn manifest_path(&self) -> PathBuf {
        self.dir.join(MANIFEST_NAME)
    }

    /// Drains the snapshots the open-time replay selected (newest valid
    /// epoch per corpus, ascending by corpus id). The server installs
    /// these before serving.
    pub fn take_recovered(&self) -> Vec<RecoveredSnapshot> {
        std::mem::take(&mut self.state.lock().expect("store state not poisoned").recovered)
    }

    /// The rollback-targetable epochs of `corpus`, ascending (empty when
    /// the corpus has never been persisted).
    pub fn retained_epochs(&self, corpus: u32) -> Vec<u64> {
        let st = self.state.lock().expect("store state not poisoned");
        st.records.get(&corpus).map(|v| v.iter().map(|r| r.epoch).collect()).unwrap_or_default()
    }

    /// The manifest replay (runs once, at open). Everything here must
    /// tolerate arbitrary prior crash points.
    fn recover(&self) -> Result<(), StoreError> {
        let mut st = self.state.lock().expect("store state not poisoned");
        let raw = match self.io.read_file(&self.manifest_path()) {
            Ok(b) => Some(b),
            Err(e) if e.kind() == ErrorKind::NotFound => None,
            Err(e) => return Err(e.into()),
        };

        // Last-valid-prefix scan. A corrupt *header* means no record was
        // ever committed (the header lands with the first append): fresh
        // start, like an absent manifest.
        let mut ordered: Vec<ManifestRecord> = Vec::new();
        let mut valid_len = 0usize;
        let mut dirty = false;
        if let Some(raw) = &raw {
            st.manifest_exists = true;
            if raw.len() >= MANIFEST_HEADER.len() && raw[..8] == MANIFEST_HEADER {
                let mut off = MANIFEST_HEADER.len();
                while off + MANIFEST_RECORD_LEN <= raw.len() {
                    let chunk: &[u8; MANIFEST_RECORD_LEN] =
                        raw[off..off + MANIFEST_RECORD_LEN].try_into().expect("sized chunk");
                    match ManifestRecord::decode(chunk) {
                        Some(rec) => {
                            ordered.push(rec);
                            off += MANIFEST_RECORD_LEN;
                        }
                        None => break,
                    }
                }
                valid_len = off;
            }
            dirty = valid_len != raw.len();
        }

        // Group per corpus; duplicate epochs keep the last occurrence
        // (re-persist after a half-committed attempt).
        let mut records: BTreeMap<u32, Vec<ManifestRecord>> = BTreeMap::new();
        for rec in &ordered {
            let v = records.entry(rec.corpus).or_default();
            v.retain(|r| r.epoch != rec.epoch);
            v.push(*rec);
            st.next_epoch = st.next_epoch.max(rec.epoch + 1).max(rec.src_epoch + 1);
        }
        for v in records.values_mut() {
            v.sort_by_key(|r| r.epoch);
        }

        // Choose the newest *valid* epoch per corpus; records newer than
        // the chosen one (their payloads are torn/corrupt/missing) are
        // dropped for good. Older records stay as rollback targets and
        // are re-validated on demand.
        let mut recovered = Vec::new();
        for (&corpus, recs) in records.iter_mut() {
            let mut chosen_at: Option<usize> = None;
            for i in (0..recs.len()).rev() {
                match self.validate_record(corpus, &recs[i]) {
                    Ok(bytes) => {
                        recovered.push(RecoveredSnapshot { corpus, epoch: recs[i].epoch, bytes });
                        chosen_at = Some(i);
                        break;
                    }
                    Err(_) => dirty = true,
                }
            }
            match chosen_at {
                Some(i) => recs.truncate(i + 1),
                None => {
                    dirty |= !recs.is_empty();
                    recs.clear();
                }
            }
        }
        records.retain(|_, v| !v.is_empty());

        st.records = records;
        st.recovered = recovered;

        // Repair pass: rewrite the manifest without the torn tail /
        // discarded records (atomic — a crash here re-runs the same
        // replay next time), then sweep temp files and unreferenced
        // payloads.
        if dirty {
            self.rewrite_manifest(&mut st)?;
        }
        self.sweep_files(&st);
        Ok(())
    }

    /// Reads and fully validates one record's payload: existence,
    /// length, FNV-1a, and a structural synopsis decode (codec checksums
    /// reject bit rot the manifest fnv might theoretically collide on).
    fn validate_record(&self, corpus: u32, rec: &ManifestRecord) -> Result<Arc<[u8]>, StoreError> {
        let path = self.dir.join(snap_file_name(corpus, rec.src_epoch));
        let bytes = self.io.read_file(&path)?;
        if bytes.len() as u64 != rec.len {
            return Err(StoreError::Corrupt(format!(
                "{}: {} bytes on disk, {} recorded",
                path.display(),
                bytes.len(),
                rec.len
            )));
        }
        if fnv1a(&bytes) != rec.fnv {
            return Err(StoreError::Corrupt(format!(
                "{}: payload checksum mismatch",
                path.display()
            )));
        }
        let bytes: Arc<[u8]> = bytes.into();
        FrozenSynopsis::from_bytes_shared(Arc::clone(&bytes))
            .map_err(|e| StoreError::Corrupt(format!("{}: {e}", path.display())))?;
        Ok(bytes)
    }

    /// Durably persists `bytes` as a new epoch of `corpus`, returning
    /// the epoch. The caller is expected to have validated `bytes` as a
    /// decodable synopsis (the server does); the store records length
    /// and checksum regardless. On `Err` nothing is committed: recovery
    /// serves the prior epoch. Failed attempts burn their epoch, so a
    /// retry never reuses a file a half-dead attempt may have touched.
    pub fn persist(&self, corpus: u32, bytes: &[u8]) -> Result<u64, StoreError> {
        let mut st = self.state.lock().expect("store state not poisoned");
        let epoch = st.next_epoch;
        st.next_epoch += 1;

        let name = snap_file_name(corpus, epoch);
        let final_path = self.dir.join(&name);
        let tmp_path = self.dir.join(format!("{name}.tmp"));
        self.io.write_file(&tmp_path, bytes)?;
        self.trace_store_op(corpus, epoch, 0);
        self.io.sync_file(&tmp_path)?;
        self.trace_store_op(corpus, epoch, 1);
        self.io.rename(&tmp_path, &final_path)?;
        self.trace_store_op(corpus, epoch, 2);
        self.io.sync_dir(&self.dir)?;
        self.trace_store_op(corpus, epoch, 3);

        let rec = ManifestRecord {
            corpus,
            epoch,
            src_epoch: epoch,
            len: bytes.len() as u64,
            fnv: fnv1a(bytes),
        };
        self.commit_record(&mut st, rec)?;
        self.trace(TraceEvent {
            shard: corpus,
            epoch,
            len: bytes.len().min(u32::MAX as usize) as u32,
            ..TraceEvent::new(TraceKind::PersistCommitted)
        });
        Ok(epoch)
    }

    /// Re-installs retained `epoch` of `corpus` under a fresh durable
    /// epoch (append-only: the manifest gains a record aliasing the old
    /// payload file). Returns the new epoch and the validated payload.
    pub fn rollback(&self, corpus: u32, epoch: u64) -> Result<(u64, Arc<[u8]>), StoreError> {
        let mut st = self.state.lock().expect("store state not poisoned");
        let Some(rec) = st
            .records
            .get(&corpus)
            .and_then(|v| v.iter().rev().find(|r| r.epoch == epoch))
            .copied()
        else {
            let retained = st
                .records
                .get(&corpus)
                .map(|v| v.iter().map(|r| r.epoch).collect())
                .unwrap_or_default();
            return Err(StoreError::UnknownEpoch { corpus, epoch, retained });
        };
        let bytes = self.validate_record(corpus, &rec)?;
        let new_epoch = st.next_epoch;
        st.next_epoch += 1;
        let new_rec = ManifestRecord { corpus, epoch: new_epoch, ..rec };
        self.commit_record(&mut st, new_rec)?;
        // detail carries the epoch rolled back to.
        self.trace(TraceEvent {
            shard: corpus,
            epoch: new_epoch,
            detail: epoch,
            ..TraceEvent::new(TraceKind::RollbackCommitted)
        });
        Ok((new_epoch, bytes))
    }

    /// Appends (and fsyncs) one record — the commit point — then applies
    /// retention. Writes the header first when the manifest is new.
    fn commit_record(&self, st: &mut StoreState, rec: ManifestRecord) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(MANIFEST_HEADER.len() + MANIFEST_RECORD_LEN);
        if !st.manifest_exists {
            buf.extend_from_slice(&MANIFEST_HEADER);
        }
        rec.encode_into(&mut buf);
        let manifest = self.manifest_path();
        self.io.append_file(&manifest, &buf)?;
        self.trace_store_op(rec.corpus, rec.epoch, 4);
        self.io.sync_file(&manifest)?;
        self.trace_store_op(rec.corpus, rec.epoch, 5);
        st.manifest_exists = true;
        st.records.entry(rec.corpus).or_default().push(rec);

        // Retention runs after the commit point: its failures (or a
        // crash inside it) never lose the just-committed epoch, so they
        // do not fail the persist.
        self.apply_retention(st);
        Ok(())
    }

    /// Prunes beyond-retention records, compacts the manifest, and
    /// deletes unreferenced payload files. Best-effort by design: every
    /// step is either atomic (compaction via temp + rename) or
    /// individually harmless (deleting a file no retained record
    /// references).
    fn apply_retention(&self, st: &mut StoreState) {
        let mut dropped = false;
        let retain = self.retain;
        for recs in st.records.values_mut() {
            if recs.len() > retain {
                recs.drain(..recs.len() - retain);
                dropped = true;
            }
        }
        if !dropped {
            return;
        }
        // Compact first: once the manifest stops referencing a record,
        // deleting its file cannot strand a reader. (Even with a crash
        // between the two, recovery only *needs* each corpus's newest
        // file, which retention never deletes.)
        let _ = self.rewrite_manifest(st);
        self.sweep_files(st);
    }

    /// Atomically replaces the manifest with header + the retained
    /// records (same write-temp → fsync → rename → fsync(dir) protocol
    /// as payloads).
    fn rewrite_manifest(&self, st: &mut StoreState) -> Result<(), StoreError> {
        let mut buf = Vec::with_capacity(
            MANIFEST_HEADER.len()
                + st.records.values().map(Vec::len).sum::<usize>() * MANIFEST_RECORD_LEN,
        );
        buf.extend_from_slice(&MANIFEST_HEADER);
        let mut all: Vec<ManifestRecord> = st.records.values().flatten().copied().collect();
        all.sort_by_key(|r| r.epoch);
        for rec in &all {
            rec.encode_into(&mut buf);
        }
        let manifest = self.manifest_path();
        let tmp = self.dir.join(format!("{MANIFEST_NAME}.tmp"));
        self.io.write_file(&tmp, &buf)?;
        self.io.sync_file(&tmp)?;
        self.io.rename(&tmp, &manifest)?;
        self.io.sync_dir(&self.dir)?;
        st.manifest_exists = true;
        Ok(())
    }

    /// Deletes leftover `*.tmp` files and `snap-*.dpsf` payloads no
    /// retained record references (finishing any interrupted persist or
    /// retention pass). Best-effort.
    fn sweep_files(&self, st: &StoreState) {
        let live: std::collections::BTreeSet<String> = st
            .records
            .iter()
            .flat_map(|(&corpus, recs)| {
                recs.iter().map(move |r| snap_file_name(corpus, r.src_epoch))
            })
            .collect();
        let Ok(entries) = self.io.list_dir(&self.dir) else { return };
        for path in entries {
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else { continue };
            let stale_tmp = name.ends_with(".tmp");
            let dead_snap =
                name.starts_with("snap-") && name.ends_with(".dpsf") && !live.contains(name);
            if stale_tmp || dead_snap {
                let _ = self.io.remove_file(&path);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_dpcore::budget::PrivacyParams;
    use dpsc_private_count::{CountMode, PrivateCountStructure};
    use dpsc_strkit::trie::Trie;
    use std::sync::atomic::AtomicU64;

    fn synopsis_bytes(count: f64) -> Vec<u8> {
        let mut trie: Trie<f64> = Trie::new(count * 2.0);
        let a = trie.insert_path(b"a", |_| 0.0);
        *trie.value_mut(a) = count;
        PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.0,
            1.0,
            4,
            3,
        )
        .freeze()
        .to_bytes()
    }

    fn scratch_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::SeqCst);
        let dir =
            std::env::temp_dir().join(format!("dpsc-store-unit-{}-{tag}-{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn fresh_dir_is_a_fresh_start_not_an_error() {
        let dir = scratch_dir("fresh");
        let store = SnapshotStore::open(&dir, 3).expect("empty dir opens");
        assert!(store.take_recovered().is_empty());
        assert!(store.retained_epochs(0).is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn persist_then_reopen_recovers_bit_identical_bytes() {
        let dir = scratch_dir("roundtrip");
        let bytes = synopsis_bytes(5.0);
        let store = SnapshotStore::open(&dir, 3).unwrap();
        let epoch = store.persist(7, &bytes).unwrap();
        assert_eq!(epoch, 1);
        drop(store);

        let store = SnapshotStore::open(&dir, 3).unwrap();
        let rec = store.take_recovered();
        assert_eq!(rec.len(), 1);
        assert_eq!(rec[0].corpus, 7);
        assert_eq!(rec[0].epoch, 1);
        assert_eq!(&rec[0].bytes[..], &bytes[..], "recovered payload is bit-identical");
        // Epochs continue past the recovered ones.
        assert_eq!(store.persist(7, &bytes).unwrap(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_prunes_old_epochs_and_their_files() {
        let dir = scratch_dir("retain");
        let store = SnapshotStore::open(&dir, 2).unwrap();
        for i in 0..5 {
            store.persist(0, &synopsis_bytes(i as f64 + 1.0)).unwrap();
        }
        assert_eq!(store.retained_epochs(0), vec![4, 5]);
        let files: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.starts_with("snap-"))
            .collect();
        assert_eq!(files.len(), 2, "pruned payload files are deleted: {files:?}");
        // The compacted manifest replays to the same retained set.
        drop(store);
        let store = SnapshotStore::open(&dir, 2).unwrap();
        assert_eq!(store.retained_epochs(0), vec![4, 5]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_re_installs_a_retained_epoch_under_a_new_one() {
        let dir = scratch_dir("rollback");
        let old_bytes = synopsis_bytes(1.0);
        let new_bytes = synopsis_bytes(2.0);
        let store = SnapshotStore::open(&dir, 4).unwrap();
        let e1 = store.persist(3, &old_bytes).unwrap();
        let e2 = store.persist(3, &new_bytes).unwrap();
        let (e3, bytes) = store.rollback(3, e1).unwrap();
        assert!(e3 > e2);
        assert_eq!(&bytes[..], &old_bytes[..]);
        // Reopen: the rollback record wins (newest epoch, old payload).
        drop(store);
        let store = SnapshotStore::open(&dir, 4).unwrap();
        let rec = store.take_recovered();
        assert_eq!(rec[0].epoch, e3);
        assert_eq!(&rec[0].bytes[..], &old_bytes[..]);
        // Unknown targets are typed errors carrying the retained list.
        match store.rollback(3, 999) {
            Err(StoreError::UnknownEpoch { retained, .. }) => {
                assert_eq!(retained, vec![e1, e2, e3])
            }
            other => panic!("expected UnknownEpoch, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_crash_mid_persist_recovers_the_old_epoch() {
        let dir = scratch_dir("crash");
        let old_bytes = synopsis_bytes(1.0);
        let new_bytes = synopsis_bytes(9.0);
        {
            let store = SnapshotStore::open(&dir, 3).unwrap();
            store.persist(0, &old_bytes).unwrap();
        }
        // Crash at the very first mutating op of the second persist
        // (partial payload temp write).
        {
            let io = Box::new(FaultyIo::new(FaultPlan::crash_mid_write(0, 7)));
            let store = SnapshotStore::open_with(&dir, 3, io).unwrap();
            store.take_recovered();
            assert!(matches!(store.persist(0, &new_bytes), Err(StoreError::Io(_))));
        }
        let store = SnapshotStore::open(&dir, 3).unwrap();
        let rec = store.take_recovered();
        assert_eq!(rec.len(), 1);
        assert_eq!(&rec[0].bytes[..], &old_bytes[..], "old epoch survives the torn persist");
        // The torn temp file was swept.
        assert!(std::fs::read_dir(&dir).unwrap().all(|e| !e
            .unwrap()
            .file_name()
            .to_string_lossy()
            .ends_with(".tmp")));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn faulty_io_counts_ops_deterministically() {
        let dir = scratch_dir("count");
        let bytes = synopsis_bytes(2.0);
        // write tmp, fsync tmp, rename, fsync dir, append manifest,
        // fsync manifest — six mutating ops, no retention activity.
        let ops = 6;
        let faulty = Arc::new(FaultyIo::new(FaultPlan::counting()));
        struct Shared(Arc<FaultyIo>);
        impl fmt::Debug for Shared {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                self.0.fmt(f)
            }
        }
        impl StoreIo for Shared {
            fn write_file(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
                self.0.write_file(p, b)
            }
            fn append_file(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
                self.0.append_file(p, b)
            }
            fn sync_file(&self, p: &Path) -> std::io::Result<()> {
                self.0.sync_file(p)
            }
            fn sync_dir(&self, p: &Path) -> std::io::Result<()> {
                self.0.sync_dir(p)
            }
            fn rename(&self, a: &Path, b: &Path) -> std::io::Result<()> {
                self.0.rename(a, b)
            }
            fn remove_file(&self, p: &Path) -> std::io::Result<()> {
                self.0.remove_file(p)
            }
            fn read_file(&self, p: &Path) -> std::io::Result<Vec<u8>> {
                self.0.read_file(p)
            }
            fn list_dir(&self, p: &Path) -> std::io::Result<Vec<PathBuf>> {
                self.0.list_dir(p)
            }
        }
        let store =
            SnapshotStore::open_with(&dir, 3, Box::new(Shared(Arc::clone(&faulty)))).unwrap();
        store.persist(0, &bytes).unwrap();
        assert_eq!(faulty.ops_executed(), ops, "persist is exactly {ops} mutating ops");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
