//! The TCP serving daemon: a scoped-thread worker pool answering wire
//! frames over [`ShardManager`] shards with per-connection request
//! batching and the epoch-keyed [`QueryCache`].
//!
//! ## Architecture
//! One acceptor (the thread that called [`Server::run`]) hands accepted
//! connections to `workers` pool threads through an mpsc channel; each
//! worker owns one connection at a time for its whole lifetime. Inside a
//! connection the worker *pipelines*: it blocks for the first complete
//! frame, then opportunistically drains every further byte the client
//! has already sent (non-blocking reads into the connection buffer),
//! decodes all complete frames, answers them in order against snapshots
//! pinned once per drain round, and flushes all responses in a single
//! write. A client that ships 50 requests back-to-back pays one syscall
//! round instead of 50.
//!
//! ## Consistency invariant
//! For each drain round the worker pins at most one [`ShardSnapshot`]
//! per shard id (first use pins it; a `LoadSnapshot` in the middle of a
//! round un-pins, so later requests see the new epoch). Every individual
//! request — in particular every `QueryBatch` — is therefore answered
//! from exactly one epoch: a hot swap never produces a blended answer.
//! Cache entries are keyed by the pinned snapshot's epoch, so a hit can
//! only ever return bytes the same epoch's synopsis produced.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::cache::QueryCache;
use crate::shard::{ShardManager, ShardSnapshot};
use crate::wire::{
    decode_request, encode_response, frame_len, CacheStats, Request, Response, ServerStats,
};

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads (each serves one connection at a time). Clamped to
    /// at least 1.
    pub workers: usize,
    /// Total query-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self { addr: "127.0.0.1:0".to_string(), workers: 4, cache_capacity: 8192 }
    }
}

/// The serving daemon. Bind with [`Server::bind`], then either block the
/// current thread in [`Server::run`] or detach with [`Server::spawn`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    manager: Arc<ShardManager>,
    cache: QueryCache,
    workers: usize,
    shutdown: Arc<AtomicBool>,
}

/// Handle to a daemon detached via [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The daemon's bound address (resolved ephemeral port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon and joins its threads: sets the shutdown flag,
    /// wakes the acceptor with a throwaway connection, and waits for the
    /// worker pool to drain.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        wake_acceptor(self.addr);
        let _ = self.join.join();
    }
}

/// The address a *local* throwaway connection can actually reach. A
/// daemon bound to a wildcard (`0.0.0.0:p` or `[::]:p`) reports the
/// wildcard as its local address, but connecting *to* the unspecified
/// address is not reliably routable — so the shutdown wake must aim at
/// loopback with the bound port instead.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

/// Wakes a blocked `accept` with a throwaway loopback connection. Bounded
/// by a short timeout so shutdown can never hang on a dead route; if the
/// connect fails the acceptor still exits on its next organic wake.
fn wake_acceptor(bound: SocketAddr) {
    let _ = TcpStream::connect_timeout(&wake_addr(bound), Duration::from_secs(1));
}

/// After this many doublings the accept backoff stops growing: 1ms·2⁶ =
/// 64ms per failed accept, enough to take a fd-exhausted acceptor from a
/// hot spin to ~16 wakeups/s while staying responsive once fds free up.
const ACCEPT_BACKOFF_CAP_DOUBLINGS: u32 = 7;

/// Exponential accept-error backoff: 1ms, 2ms, … capped at 64ms.
fn accept_backoff(consecutive_errors: u32) -> Duration {
    Duration::from_millis(1 << (consecutive_errors.saturating_sub(1)).min(6))
}

impl Server {
    /// Binds the listener (no threads yet).
    pub fn bind(config: ServerConfig, manager: Arc<ShardManager>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        Ok(Self {
            listener,
            local_addr,
            manager,
            cache: QueryCache::new(config.cache_capacity),
            workers: config.workers.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Runs the accept loop on the calling thread and the worker pool on
    /// scoped threads; returns after shutdown (via a `Shutdown` frame or
    /// a [`ServerHandle`]). Worker threads borrow the server state
    /// directly — the scope guarantees they end before `run` returns.
    pub fn run(&self) {
        let (tx, rx): (Sender<TcpStream>, Receiver<TcpStream>) = std::sync::mpsc::channel();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop(&rx));
            }
            // Consecutive accept failures (EMFILE/ENFILE under fd
            // exhaustion persists until *something* closes) must not
            // busy-spin the acceptor at 100% CPU: back off exponentially,
            // bounded, and reset on the next successful accept.
            let mut accept_errors = 0u32;
            for conn in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        accept_errors = 0;
                        // Send fails only if all workers exited (shutdown).
                        if tx.send(stream).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        accept_errors = (accept_errors + 1).min(ACCEPT_BACKOFF_CAP_DOUBLINGS);
                        std::thread::sleep(accept_backoff(accept_errors));
                    }
                }
            }
            drop(tx); // workers drain the queue, then see Err and exit
        });
    }

    /// Binds and detaches the daemon onto a background thread.
    pub fn spawn(
        config: ServerConfig,
        manager: Arc<ShardManager>,
    ) -> std::io::Result<ServerHandle> {
        let server = Self::bind(config, manager)?;
        let addr = server.local_addr();
        let shutdown = Arc::clone(&server.shutdown);
        let join = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, shutdown, join })
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<TcpStream>>) {
        loop {
            let stream = {
                let guard = rx.lock().expect("connection queue not poisoned");
                guard.recv()
            };
            match stream {
                Ok(stream) => self.handle_connection(stream),
                Err(_) => return, // acceptor gone: shutdown
            }
        }
    }

    /// Serves one connection to completion (client close, shutdown, or a
    /// fatal framing/IO error).
    fn handle_connection(&self, stream: TcpStream) {
        let _ = stream.set_nodelay(true);
        // A finite read timeout turns blocking reads into shutdown polls.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        // A bounded write timeout keeps a client that stops *reading* from
        // wedging this worker forever on a full send buffer (write_all
        // failing with TimedOut/WouldBlock drops the connection below),
        // which would otherwise also hang ServerHandle::shutdown's join.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        let mut out: Vec<u8> = Vec::with_capacity(4096);
        let mut peer_closed = false;

        'conn: loop {
            // Phase 1: block (in timeout slices) until one complete frame.
            loop {
                match frame_len(&buf) {
                    Err(_) => break 'conn, // corrupt length: unrecoverable stream
                    Ok(Some(_)) => break,
                    Ok(None) => {
                        if peer_closed || self.shutdown.load(Ordering::SeqCst) {
                            break 'conn;
                        }
                        match read_chunk(&mut stream, &mut buf) {
                            ReadOutcome::Data => {}
                            ReadOutcome::WouldBlock => {}
                            ReadOutcome::Closed => peer_closed = true,
                            ReadOutcome::Fatal => break 'conn,
                        }
                    }
                }
            }

            // Phase 2: drain whatever else the client already sent, up to
            // a bounded backlog. The bound matters: on a fast link a
            // client that pipelines non-stop would otherwise keep this
            // loop in `Data` forever and grow `buf` without limit (the
            // per-frame cap bounds one frame, not the connection buffer).
            // Whatever stays unread waits in the kernel buffer — TCP
            // backpressure — for the next round.
            const DRAIN_CAP: usize = 4 << 20;
            if !peer_closed && stream.set_nonblocking(true).is_ok() {
                while buf.len() < DRAIN_CAP {
                    match read_chunk(&mut stream, &mut buf) {
                        ReadOutcome::Data => {}
                        ReadOutcome::WouldBlock => break,
                        ReadOutcome::Closed => {
                            peer_closed = true;
                            break;
                        }
                        ReadOutcome::Fatal => break 'conn,
                    }
                }
                let _ = stream.set_nonblocking(false);
            }

            // Phase 3: decode every complete frame in the buffer.
            let mut requests: Vec<Result<Request, String>> = Vec::new();
            let mut consumed = 0usize;
            loop {
                match frame_len(&buf[consumed..]) {
                    Err(e) => {
                        // Unrecoverable: answer what we have plus the error,
                        // then drop the connection.
                        requests.push(Err(e.to_string()));
                        consumed = buf.len();
                        peer_closed = true;
                        break;
                    }
                    Ok(None) => break,
                    Ok(Some(total)) => {
                        let body = &buf[consumed + 4..consumed + total];
                        requests.push(decode_request(body).map_err(|e| e.to_string()));
                        consumed += total;
                    }
                }
            }
            buf.drain(..consumed);

            // Phase 4: answer the whole round, pinning one snapshot per
            // shard, and flush in a single write.
            let mut pinned: HashMap<u32, Option<Arc<ShardSnapshot>>> = HashMap::new();
            out.clear();
            let mut stop_after_flush = false;
            for req in requests {
                let resp = match req {
                    Err(message) => Response::Error { message },
                    Ok(req) => {
                        if matches!(req, Request::Shutdown) {
                            stop_after_flush = true;
                        }
                        self.answer(req, &mut pinned)
                    }
                };
                out.extend_from_slice(&encode_response(&resp));
            }
            if !out.is_empty() && stream.write_all(&out).is_err() {
                break 'conn;
            }
            if stop_after_flush {
                self.shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor so `run` can return (via loopback —
                // the bound address may be a wildcard).
                wake_acceptor(self.local_addr);
                break 'conn;
            }
            if peer_closed && buf.is_empty() {
                break 'conn;
            }
        }
    }

    /// Answers one request. `pinned` caches the snapshot per shard for
    /// the current drain round (see the module docs for the invariant).
    fn answer(
        &self,
        req: Request,
        pinned: &mut HashMap<u32, Option<Arc<ShardSnapshot>>>,
    ) -> Response {
        let manager = &self.manager;
        let pin = |shard: u32,
                   pinned: &mut HashMap<u32, Option<Arc<ShardSnapshot>>>|
         -> Option<Arc<ShardSnapshot>> {
            pinned.entry(shard).or_insert_with(|| manager.snapshot(shard)).clone()
        };
        match req {
            Request::Query { shard, pattern } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::Query { value: self.cached_query(shard, &snap, &pattern) },
            },
            Request::QueryBatch { shard, patterns } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::QueryBatch {
                    values: patterns.iter().map(|p| self.cached_query(shard, &snap, p)).collect(),
                },
            },
            Request::Contains { shard, pattern } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::Contains { present: snap.synopsis.contains(&pattern) },
            },
            Request::Stats => {
                let shards = self.manager.stats();
                // Stats is the one response without a payload-derived
                // bound; past ~2M shard records (~92 bytes each) the
                // frame would trip `seal`'s MAX_FRAME_LEN invariant and
                // panic the worker — answer with an error instead.
                const MAX_STATS_SHARDS: usize = 1 << 21;
                if shards.len() > MAX_STATS_SHARDS {
                    return Response::Error {
                        message: format!(
                            "{} shards exceed the {MAX_STATS_SHARDS}-record Stats frame limit",
                            shards.len()
                        ),
                    };
                }
                Response::Stats(ServerStats {
                    cache: CacheStats {
                        hits: self.cache.hits(),
                        misses: self.cache.misses(),
                        entries: self.cache.entries() as u64,
                        capacity: self.cache.capacity() as u64,
                    },
                    shards,
                })
            }
            Request::LoadSnapshot { shard, snapshot } => {
                // Shared ownership end to end: an uncompressed v2
                // snapshot is installed borrowed, pointing into the very
                // buffer the wire decoder produced — no array copies.
                match self.manager.load_snapshot_shared(shard, snapshot) {
                    Ok(snap) => {
                        // Later requests in this round must see the new
                        // epoch: drop the stale pin.
                        pinned.remove(&shard);
                        Response::LoadSnapshot {
                            epoch: snap.epoch,
                            node_count: snap.synopsis.node_count() as u64,
                        }
                    }
                    Err(e) => Response::Error { message: format!("snapshot rejected: {e}") },
                }
            }
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// One pattern against one pinned snapshot, through the cache. The
    /// cache key carries the snapshot's epoch, so hits are always values
    /// this exact synopsis produced — bit-identical to a cold walk.
    fn cached_query(&self, shard: u32, snap: &ShardSnapshot, pattern: &[u8]) -> f64 {
        if let Some(v) = self.cache.get(shard, snap.epoch, pattern) {
            return v;
        }
        let v = snap.synopsis.query(pattern);
        self.cache.insert(shard, snap.epoch, pattern, v);
        v
    }
}

fn unknown_shard(shard: u32) -> Response {
    Response::Error { message: format!("unknown shard {shard}") }
}

enum ReadOutcome {
    /// ≥1 byte appended to the buffer.
    Data,
    /// Nothing available right now (timeout or `WouldBlock`).
    WouldBlock,
    /// Orderly EOF from the peer.
    Closed,
    /// Unrecoverable IO error.
    Fatal,
}

/// One `read` into `buf`'s tail, classifying the result.
fn read_chunk(stream: &mut TcpStream, buf: &mut Vec<u8>) -> ReadOutcome {
    let mut chunk = [0u8; 16 * 1024];
    match stream.read(&mut chunk) {
        Ok(0) => ReadOutcome::Closed,
        Ok(n) => {
            buf.extend_from_slice(&chunk[..n]);
            ReadOutcome::Data
        }
        Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
            ReadOutcome::WouldBlock
        }
        Err(e) if e.kind() == ErrorKind::Interrupted => ReadOutcome::WouldBlock,
        Err(_) => ReadOutcome::Fatal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_addr_maps_wildcards_to_loopback() {
        let v4: SocketAddr = "0.0.0.0:8125".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:8125".parse().unwrap());
        let v6: SocketAddr = "[::]:8125".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:8125".parse().unwrap());
        // Concrete addresses pass through untouched.
        let concrete: SocketAddr = "192.0.2.7:9000".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
        let lo: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        assert_eq!(wake_addr(lo), lo);
    }

    #[test]
    fn accept_backoff_doubles_then_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(3), Duration::from_millis(4));
        assert_eq!(accept_backoff(ACCEPT_BACKOFF_CAP_DOUBLINGS), Duration::from_millis(64));
        // Saturates: arbitrarily long failure streaks stay at the cap.
        assert_eq!(accept_backoff(u32::MAX), Duration::from_millis(64));
    }
}
