//! The TCP serving daemon, with two interchangeable cores behind one
//! `Server` API:
//!
//! * **Readiness core** (Linux, the default): a single event-loop thread
//!   multiplexing every connection over [`crate::poll`]'s edge-triggered
//!   epoll wrapper. Each connection is an explicit state machine
//!   (`ReadingFrame → Answering → Writing{offset}`) over the incremental
//!   frame decoder; accept is non-blocking; shutdown is a self-pipe
//!   write (no poll interval); and a per-connection outbound high-water
//!   mark provides write backpressure (reading pauses — `EPOLLIN`
//!   deregistered — until the queue drains). Concurrency is bounded by
//!   fds, not threads: 10k+ connections are one thread and one epoll
//!   set.
//! * **Thread-pool core** (portable fallback, and selectable for tests):
//!   the original acceptor + `workers` scoped threads, each owning one
//!   connection at a time, with 100 ms read-timeout shutdown polls.
//!   Concurrency is capped at `workers`; connections beyond that queue.
//!
//! Both cores share the request path ([`Server::answer`]), the
//! per-round snapshot pinning that keeps every `QueryBatch` on exactly
//! one epoch, the [`QueryCache`], the [`MetricsRegistry`] counters, and
//! the connection-lifecycle contract:
//!
//! * a **corrupt length prefix** — first frame or fiftieth — is answered
//!   with an error frame, the answer is flushed, and only then is the
//!   connection closed (the stream cannot be resynchronized, but the
//!   client always learns why it was dropped);
//! * **`Shutdown` is gated** by [`ShutdownPolicy`] on the peer address
//!   (loopback-only by default — a daemon bound to a wildcard address
//!   must not be killable by anyone who can reach the port); refused
//!   peers get an error response and stay connected.
//!
//! ## Consistency invariant
//! For each processing round a core pins at most one [`ShardSnapshot`]
//! per shard id (first use pins it; a `LoadSnapshot` in the middle of a
//! round un-pins, so later requests see the new epoch). Every individual
//! request — in particular every `QueryBatch` — is therefore answered
//! from exactly one epoch: a hot swap never produces a blended answer.
//! Cache entries are keyed by the pinned snapshot's epoch, so a hit can
//! only ever return bytes the same epoch's synopsis produced.
//!
//! ## Durability and degradation
//! With a [`SnapshotStore`] configured ([`ServerConfig::store_dir`] or an
//! injected [`ServerConfig::store`]), `LoadSnapshot` persists bytes
//! crash-safely *before* they start serving (the daemon never serves an
//! epoch it cannot recover), startup replays the manifest and serves the
//! newest valid epoch per corpus, and the `Rollback` wire op re-installs
//! a retained prior epoch. The front door degrades instead of wedging:
//! [`ServerConfig::max_conns`] sheds connections beyond the admission
//! bound with a retryable `Overloaded` frame, and
//! [`ServerConfig::read_deadline`] / [`ServerConfig::idle_timeout`]
//! evict mid-frame stalls (slow-loris) and silent idlers on both cores.
//! On the readiness core, snapshot installs decode and persist on a
//! dedicated installer thread so a multi-MB `LoadSnapshot` never stalls
//! unrelated connections.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use dpsc_private_count::codec::fnv1a;
use dpsc_private_count::FrozenSynopsis;

use crate::cache::QueryCache;
use crate::metrics::{render_prometheus, MetricsRegistry, OpKind, OpObservation};
use crate::shard::{ShardManager, ShardSnapshot};
use crate::store::SnapshotStore;
use crate::trace::{TraceEvent, TraceKind};
use crate::wire::{
    decode_request, encode_response, frame_len, CacheStats, Request, Response, ServerStats,
};

/// Which serving core [`Server::run`] drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreKind {
    /// Readiness core on Linux, thread-pool elsewhere.
    #[default]
    Auto,
    /// The epoll event loop. Falls back to [`CoreKind::ThreadPool`] on
    /// platforms without the poller.
    Readiness,
    /// The portable blocking worker pool.
    ThreadPool,
}

impl CoreKind {
    /// The core that will actually run on this platform.
    pub fn resolved(self) -> CoreKind {
        match self {
            CoreKind::ThreadPool => CoreKind::ThreadPool,
            CoreKind::Auto | CoreKind::Readiness => {
                if cfg!(target_os = "linux") {
                    CoreKind::Readiness
                } else {
                    CoreKind::ThreadPool
                }
            }
        }
    }
}

/// Who may ask the daemon to exit over the wire. The default is
/// loopback-only: a daemon bound to `0.0.0.0` serves queries to anyone
/// but takes `Shutdown` only from the local machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShutdownPolicy {
    /// Honor `Shutdown` only from loopback peers (including
    /// IPv4-mapped-in-IPv6 loopback).
    #[default]
    LoopbackOnly,
    /// Honor `Shutdown` from any connected peer (pre-gate behavior; for
    /// deployments behind a trusted network boundary).
    AllowRemote,
    /// Refuse `Shutdown` from everyone; only [`ServerHandle::shutdown`]
    /// can stop the daemon.
    Deny,
}

/// Whether `policy` lets a peer at `peer` shut the daemon down.
fn shutdown_allowed(policy: ShutdownPolicy, peer: IpAddr) -> bool {
    match policy {
        ShutdownPolicy::AllowRemote => true,
        ShutdownPolicy::Deny => false,
        ShutdownPolicy::LoopbackOnly => match peer {
            IpAddr::V4(ip) => ip.is_loopback(),
            IpAddr::V6(ip) => {
                ip.is_loopback() || ip.to_ipv4_mapped().is_some_and(|v4| v4.is_loopback())
            }
        },
    }
}

/// Tuning knobs for [`Server`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind; port 0 picks an ephemeral port (see
    /// [`Server::local_addr`]).
    pub addr: String,
    /// Worker threads for the thread-pool core (each serves one
    /// connection at a time; clamped to at least 1). The readiness core
    /// ignores this — its concurrency is per-fd, not per-thread.
    pub workers: usize,
    /// Total query-cache capacity in entries; 0 disables caching.
    pub cache_capacity: usize,
    /// Which core serves traffic.
    pub core: CoreKind,
    /// Who may shut the daemon down over the wire.
    pub shutdown_policy: ShutdownPolicy,
    /// Per-connection outbound high-water mark in bytes (readiness core):
    /// above it the connection stops reading (and answering) until the
    /// peer drains its responses. The budget is checked between frames,
    /// so one response can always be queued no matter how small this is
    /// (clamped to ≥ 1 KiB to keep re-arm churn sane).
    pub write_high_water: usize,
    /// Crash-safe snapshot store directory. When set, `bind` opens (and
    /// recovers) a [`SnapshotStore`] there: installs persist before they
    /// serve, startup replays the manifest, and `Rollback` works.
    /// `None` (the default) keeps the historical memory-only daemon.
    pub store_dir: Option<PathBuf>,
    /// A pre-opened store, overriding `store_dir`. The fault-injection
    /// tests use this to wire a `FaultyIo` store through a live daemon.
    pub store: Option<Arc<SnapshotStore>>,
    /// Per-corpus durable epoch retention depth (rollback window) for a
    /// store opened via `store_dir`; clamped to ≥ 1.
    pub retain_epochs: usize,
    /// Admission bound: accepted connections beyond this many open ones
    /// are shed with a retryable `Overloaded` frame instead of queueing
    /// unboundedly. `usize::MAX` (the default) disables shedding.
    pub max_conns: usize,
    /// How long a connection may sit on an *incomplete* frame before
    /// being evicted (slow-loris defense). The clock starts when the
    /// partial frame is first observed and is not reset by trickled
    /// bytes. `None` (the default) disables eviction.
    pub read_deadline: Option<Duration>,
    /// How long a connection may sit with no buffered input and no
    /// pending output before being reaped. `None` (the default)
    /// disables reaping.
    pub idle_timeout: Option<Duration>,
    /// Capacity of the structured trace ring (rounded up to a power of
    /// two; 0 disables tracing entirely — the emit sites reduce to one
    /// branch, the counters-only mode the overhead benchmark measures).
    /// Drained over the wire by the `Trace` op.
    pub trace_capacity: usize,
    /// Answers slower than this are counted and logged to the trace
    /// ring as `slow_op` events (fingerprint + latency, never pattern
    /// bytes). `None` (the default) disables the slow-op log.
    pub slow_op_threshold: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            cache_capacity: 8192,
            core: CoreKind::Auto,
            shutdown_policy: ShutdownPolicy::LoopbackOnly,
            write_high_water: 1 << 20,
            store_dir: None,
            store: None,
            retain_epochs: 4,
            max_conns: usize::MAX,
            read_deadline: None,
            idle_timeout: None,
            trace_capacity: 1024,
            slow_op_threshold: None,
        }
    }
}

/// A cloneable handle that wakes the readiness event loop from another
/// thread. On platforms without the poller this is a unit stub — the
/// thread-pool core is woken by a loopback connect instead.
#[cfg(target_os = "linux")]
type LoopWaker = crate::poll::Waker;
#[cfg(not(target_os = "linux"))]
#[derive(Debug, Clone)]
struct LoopWaker;
#[cfg(not(target_os = "linux"))]
impl LoopWaker {
    fn wake(&self) {}
}

/// The serving daemon. Bind with [`Server::bind`], then either block the
/// current thread in [`Server::run`] or detach with [`Server::spawn`].
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    local_addr: SocketAddr,
    manager: Arc<ShardManager>,
    cache: QueryCache,
    metrics: Arc<MetricsRegistry>,
    workers: usize,
    core: CoreKind,
    shutdown_policy: ShutdownPolicy,
    write_high_water: usize,
    store: Option<Arc<SnapshotStore>>,
    max_conns: usize,
    read_deadline: Option<Duration>,
    idle_timeout: Option<Duration>,
    shutdown: Arc<AtomicBool>,
    /// Filled by the readiness loop on startup so [`ServerHandle`] can
    /// wake it; `None` while (or wherever) the thread-pool core runs.
    waker: Arc<Mutex<Option<LoopWaker>>>,
}

/// Handle to a daemon detached via [`Server::spawn`].
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    waker: Arc<Mutex<Option<LoopWaker>>>,
    join: std::thread::JoinHandle<()>,
}

impl ServerHandle {
    /// The daemon's bound address (resolved ephemeral port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the daemon and joins its threads: sets the shutdown flag,
    /// wakes the core (self-pipe for the event loop, a throwaway
    /// loopback connection for the blocking acceptor), and waits for the
    /// serving thread to drain.
    pub fn shutdown(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        let waker = self.waker.lock().expect("waker slot not poisoned").clone();
        match waker {
            Some(w) => w.wake(),
            // Thread-pool core, or an event loop that has not registered
            // its waker yet: a loopback connect wakes either (the pending
            // accept is observed by whichever core starts).
            None => wake_acceptor(self.addr),
        }
        let _ = self.join.join();
    }
}

/// The address a *local* throwaway connection can actually reach. A
/// daemon bound to a wildcard (`0.0.0.0:p` or `[::]:p`) reports the
/// wildcard as its local address, but connecting *to* the unspecified
/// address is not reliably routable — so the shutdown wake must aim at
/// loopback with the bound port instead.
fn wake_addr(bound: SocketAddr) -> SocketAddr {
    let ip = match bound.ip() {
        IpAddr::V4(ip) if ip.is_unspecified() => IpAddr::V4(Ipv4Addr::LOCALHOST),
        IpAddr::V6(ip) if ip.is_unspecified() => IpAddr::V6(Ipv6Addr::LOCALHOST),
        ip => ip,
    };
    SocketAddr::new(ip, bound.port())
}

/// Wakes a blocked `accept` with a throwaway loopback connection. Bounded
/// by a short timeout so shutdown can never hang on a dead route; if the
/// connect fails the acceptor still exits on its next organic wake.
fn wake_acceptor(bound: SocketAddr) {
    let _ = TcpStream::connect_timeout(&wake_addr(bound), Duration::from_secs(1));
}

/// After this many doublings the accept backoff stops growing:
/// 1 ms · 2⁶ = 64 ms per failed accept, enough to take a fd-exhausted
/// acceptor from a hot spin to ~16 wakeups/s while staying responsive
/// once fds free up. The shift below derives directly from this
/// constant, so the cap lives in exactly one place.
const ACCEPT_BACKOFF_CAP_DOUBLINGS: u32 = 6;

/// Exponential accept-error backoff: 1 ms, 2 ms, … capped at
/// 2^[`ACCEPT_BACKOFF_CAP_DOUBLINGS`] ms.
fn accept_backoff(consecutive_errors: u32) -> Duration {
    Duration::from_millis(
        1 << (consecutive_errors.saturating_sub(1)).min(ACCEPT_BACKOFF_CAP_DOUBLINGS),
    )
}

/// Bound on buffered-but-unanswered inbound bytes per connection per
/// round. Whatever stays unread waits in the kernel buffer — TCP
/// backpressure — for the next round.
const DRAIN_CAP: usize = 4 << 20;

/// What one processing round did to a connection.
#[derive(Debug, Default)]
struct RoundStatus {
    /// A corrupt length prefix was hit: the error response is queued and
    /// the connection must close once it is flushed.
    corrupt: bool,
    /// An honored `Shutdown` request: the ack is queued; the daemon
    /// stops once it is flushed.
    shutdown: bool,
    /// An install (`LoadSnapshot`/`Rollback`) the caller asked to defer:
    /// the frame is consumed, the round stopped (responses stay in
    /// request order), and the request handed back for off-thread
    /// execution.
    deferred: Option<Request>,
}

impl Server {
    /// Binds the listener (no threads yet). When a snapshot store is
    /// configured this also replays its manifest: the newest valid epoch
    /// per corpus starts serving before the first connection is
    /// accepted, and `recoveries_total` counts the replayed corpora.
    pub fn bind(config: ServerConfig, manager: Arc<ShardManager>) -> std::io::Result<Self> {
        let listener = TcpListener::bind(config.addr.as_str())?;
        let local_addr = listener.local_addr()?;
        let slow_ns =
            config.slow_op_threshold.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        let metrics = Arc::new(MetricsRegistry::with_observability(config.trace_capacity, slow_ns));
        // An injected store wins (tests wire fault injection through
        // it); otherwise `store_dir` opens one on the real filesystem.
        let store = match (&config.store, &config.store_dir) {
            (Some(store), _) => Some(Arc::clone(store)),
            (None, Some(dir)) => Some(Arc::new(
                SnapshotStore::open(dir, config.retain_epochs)
                    .map_err(|e| std::io::Error::other(e.to_string()))?,
            )),
            (None, None) => None,
        };
        if let Some(store) = &store {
            if let Some(ring) = metrics.tracer() {
                store.set_tracer(Arc::clone(ring));
            }
            let mut recovered = 0u64;
            for snap in store.take_recovered() {
                let (corpus, epoch) = (snap.corpus, snap.epoch);
                if manager.load_snapshot_shared_at(snap.corpus, snap.bytes, snap.epoch).is_ok() {
                    recovered += 1;
                    if let Some(ring) = metrics.tracer() {
                        ring.emit(TraceEvent {
                            shard: corpus,
                            epoch,
                            ..TraceEvent::new(TraceKind::Recovery)
                        });
                    }
                }
            }
            metrics.record_recoveries(recovered);
        }
        Ok(Self {
            listener,
            local_addr,
            manager,
            cache: QueryCache::new(config.cache_capacity),
            metrics,
            workers: config.workers.max(1),
            core: config.core,
            shutdown_policy: config.shutdown_policy,
            write_high_water: config.write_high_water.max(1024),
            store,
            max_conns: config.max_conns.max(1),
            read_deadline: config.read_deadline,
            idle_timeout: config.idle_timeout,
            shutdown: Arc::new(AtomicBool::new(false)),
            waker: Arc::new(Mutex::new(None)),
        })
    }

    /// The snapshot store this daemon persists to, if any.
    pub fn store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    /// The bound address (with the ephemeral port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The core this server will serve with on this platform.
    pub fn core(&self) -> CoreKind {
        self.core.resolved()
    }

    /// The daemon's metrics registry (shared with whichever core runs).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Serves until shutdown (via an admitted `Shutdown` frame or a
    /// [`ServerHandle`]), blocking the calling thread. Dispatches to the
    /// resolved [`CoreKind`].
    pub fn run(&self) {
        match self.core.resolved() {
            #[cfg(target_os = "linux")]
            CoreKind::Readiness => self.run_readiness(),
            _ => self.run_thread_pool(),
        }
    }

    /// Binds and detaches the daemon onto a background thread.
    pub fn spawn(
        config: ServerConfig,
        manager: Arc<ShardManager>,
    ) -> std::io::Result<ServerHandle> {
        let server = Self::bind(config, manager)?;
        let addr = server.local_addr();
        let shutdown = Arc::clone(&server.shutdown);
        let waker = Arc::clone(&server.waker);
        let join = std::thread::spawn(move || server.run());
        Ok(ServerHandle { addr, shutdown, waker, join })
    }

    // ------------------------------------------------------------------
    // The portable thread-pool core.
    // ------------------------------------------------------------------

    /// Runs the accept loop on the calling thread and the worker pool on
    /// scoped threads; workers borrow the server state directly — the
    /// scope guarantees they end before `run` returns.
    fn run_thread_pool(&self) {
        // Each admitted connection travels with its id and accept time,
        // so accept-to-first-response includes the queueing delay behind
        // busy workers — exactly the latency the admission bound trades.
        type Admitted = (u64, Instant, TcpStream);
        let (tx, rx): (Sender<Admitted>, Receiver<Admitted>) = std::sync::mpsc::channel();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..self.workers {
                scope.spawn(|| self.worker_loop(&rx));
            }
            // Consecutive accept failures (EMFILE/ENFILE under fd
            // exhaustion persists until *something* closes) must not
            // busy-spin the acceptor at 100% CPU: back off exponentially,
            // bounded, and reset on the next successful accept.
            let mut accept_errors = 0u32;
            for conn in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match conn {
                    Ok(stream) => {
                        accept_errors = 0;
                        // Admission bound: shed instead of queueing
                        // unboundedly behind busy workers. Counting at
                        // the acceptor (not the worker) makes queued
                        // connections count against the bound too.
                        if self.metrics.conns_open_now() >= self.max_conns as u64 {
                            self.shed_overloaded(stream);
                            continue;
                        }
                        let conn_id = self.metrics.conn_opened();
                        self.trace_emit(TraceEvent {
                            conn: conn_id,
                            ..TraceEvent::new(TraceKind::ConnAccepted)
                        });
                        // Send fails only if all workers exited (shutdown).
                        if tx.send((conn_id, Instant::now(), stream)).is_err() {
                            break;
                        }
                    }
                    Err(_) => {
                        accept_errors = accept_errors.saturating_add(1);
                        std::thread::sleep(accept_backoff(accept_errors));
                    }
                }
            }
            drop(tx); // workers drain the queue, then see Err and exit
        });
    }

    fn worker_loop(&self, rx: &Mutex<Receiver<(u64, Instant, TcpStream)>>) {
        loop {
            let stream = {
                let guard = rx.lock().expect("connection queue not poisoned");
                guard.recv()
            };
            match stream {
                Ok((conn_id, accepted_at, stream)) => {
                    self.handle_connection(conn_id, accepted_at, stream)
                }
                Err(_) => return, // acceptor gone: shutdown
            }
        }
    }

    /// Serves one connection to completion (client close, shutdown, or a
    /// fatal framing/IO error).
    fn handle_connection(&self, conn_id: u64, accepted_at: Instant, stream: TcpStream) {
        // conn_opened is recorded by the acceptor (admission bound).
        let _ = stream.set_nodelay(true);
        // A finite read timeout turns blocking reads into shutdown polls.
        let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
        // A bounded write timeout keeps a client that stops *reading* from
        // wedging this worker forever on a full send buffer (write_all
        // failing with TimedOut/WouldBlock drops the connection below),
        // which would otherwise also hang ServerHandle::shutdown's join.
        let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
        // An unknowable peer cannot be loopback: shutdown stays gated.
        let peer = stream.peer_addr().map(|a| a.ip()).unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
        let mut stream = stream;
        let mut buf = RecvBuf::new();
        let mut out: Vec<u8> = Vec::with_capacity(4096);
        let mut peer_closed = false;
        let mut first_resp_pending = true;
        // Abuse tracking: when the current *incomplete* frame was first
        // observed (read deadline — trickled bytes do not reset it) and
        // when this connection last finished a round (idle timeout).
        let mut frame_start: Option<Instant> = None;
        let mut round_end = Instant::now();

        'conn: loop {
            // Phase 1: block (in timeout slices) until one complete frame.
            // A corrupt length prefix falls through to the processing
            // round, which queues the error response — same error-then-
            // close contract as a corrupt frame later in the stream.
            loop {
                match frame_len(buf.filled()) {
                    Err(_) | Ok(Some(_)) => break,
                    Ok(None) => {
                        if peer_closed || self.shutdown.load(Ordering::SeqCst) {
                            break 'conn;
                        }
                        if buf.is_empty() {
                            frame_start = None;
                            if let Some(idle) = self.idle_timeout {
                                if round_end.elapsed() >= idle {
                                    self.metrics.record_idle_reaped();
                                    self.trace_emit(TraceEvent {
                                        conn: conn_id,
                                        ..TraceEvent::new(TraceKind::ConnIdleReaped)
                                    });
                                    break 'conn;
                                }
                            }
                        } else {
                            let started = *frame_start.get_or_insert_with(Instant::now);
                            if let Some(deadline) = self.read_deadline {
                                if started.elapsed() >= deadline {
                                    self.metrics.record_deadline_evicted();
                                    self.trace_emit(TraceEvent {
                                        conn: conn_id,
                                        ..TraceEvent::new(TraceKind::ConnDeadlineEvicted)
                                    });
                                    break 'conn;
                                }
                            }
                        }
                        match buf.read_from(&mut stream) {
                            ReadOutcome::Data => {}
                            ReadOutcome::WouldBlock => {}
                            ReadOutcome::Closed => peer_closed = true,
                            ReadOutcome::Fatal => break 'conn,
                        }
                    }
                }
            }

            // Phase 2: drain whatever else the client already sent, up to
            // a bounded backlog (the per-frame cap bounds one frame, not
            // the connection buffer).
            if !peer_closed && stream.set_nonblocking(true).is_ok() {
                while buf.len() < DRAIN_CAP {
                    match buf.read_from(&mut stream) {
                        ReadOutcome::Data => {}
                        ReadOutcome::WouldBlock => break,
                        ReadOutcome::Closed => {
                            peer_closed = true;
                            break;
                        }
                        ReadOutcome::Fatal => break 'conn,
                    }
                }
                let _ = stream.set_nonblocking(false);
            }

            // Phase 3: decode + answer every complete frame, then flush
            // the whole round in a single write.
            out.clear();
            let status = self.process_round(&mut buf, &mut out, peer, conn_id, usize::MAX, false);
            frame_start = None;
            round_end = Instant::now();
            if !out.is_empty() {
                if stream.write_all(&out).is_err() {
                    break 'conn;
                }
                if first_resp_pending {
                    first_resp_pending = false;
                    self.metrics.record_accept_to_first(
                        accepted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                    );
                }
                self.trace_emit(TraceEvent {
                    conn: conn_id,
                    len: out.len().min(u32::MAX as usize) as u32,
                    ..TraceEvent::new(TraceKind::Flush)
                });
            }
            if status.shutdown {
                self.shutdown.store(true, Ordering::SeqCst);
                // Wake the acceptor so `run` can return (via loopback —
                // the bound address may be a wildcard).
                wake_acceptor(self.local_addr);
                break 'conn;
            }
            if status.corrupt {
                break 'conn; // error response flushed above
            }
            if peer_closed && buf.is_empty() {
                break 'conn;
            }
        }
        self.metrics.conn_closed();
        self.trace_emit(TraceEvent { conn: conn_id, ..TraceEvent::new(TraceKind::ConnClosed) });
    }

    // ------------------------------------------------------------------
    // The shared request path.
    // ------------------------------------------------------------------

    /// Decodes and answers every complete frame in `buf`, appending the
    /// encoded responses to `out`, until the buffer has no complete
    /// frame, a corrupt length prefix is hit (error queued, `corrupt`
    /// set), or `out` exceeds `out_budget` (write backpressure: the
    /// remaining frames stay buffered for the next round). Snapshots are
    /// pinned per shard for the duration of the round. With
    /// `defer_installs`, a `LoadSnapshot`/`Rollback` frame is consumed
    /// but *not* answered: the round stops and hands the request back in
    /// `deferred` (the readiness core runs it on the installer thread so
    /// multi-MB decodes never stall the event loop; later frames wait so
    /// responses stay in request order).
    fn process_round(
        &self,
        buf: &mut RecvBuf,
        out: &mut Vec<u8>,
        peer: IpAddr,
        conn: u64,
        out_budget: usize,
        defer_installs: bool,
    ) -> RoundStatus {
        let mut status = RoundStatus::default();
        let mut pinned: HashMap<u32, Option<Arc<ShardSnapshot>>> = HashMap::new();
        loop {
            if out.len() > out_budget {
                break;
            }
            match frame_len(buf.filled()) {
                Ok(None) => break,
                Err(e) => {
                    // Unrecoverable stream: answer with the reason, then
                    // close once it is flushed. Resynchronizing an LE
                    // byte stream after a corrupt length is not possible.
                    self.metrics.record_error();
                    // detail = u64::MAX marks "no opcode ever decoded".
                    self.trace_emit(TraceEvent {
                        conn,
                        detail: u64::MAX,
                        ..TraceEvent::new(TraceKind::FrameError)
                    });
                    out.extend_from_slice(&encode_response(&Response::Error {
                        message: e.to_string(),
                    }));
                    buf.consume(buf.len());
                    status.corrupt = true;
                    break;
                }
                Ok(Some(total)) => {
                    let resp = match decode_request(&buf.filled()[4..total]) {
                        Err(e) => {
                            self.metrics.record_error();
                            self.trace_emit(TraceEvent {
                                conn,
                                len: total.min(u32::MAX as usize) as u32,
                                detail: u64::MAX,
                                ..TraceEvent::new(TraceKind::FrameError)
                            });
                            Response::Error { message: e.to_string() }
                        }
                        Ok(req)
                            if defer_installs
                                && matches!(
                                    req,
                                    Request::LoadSnapshot { .. } | Request::Rollback { .. }
                                ) =>
                        {
                            buf.consume(total);
                            status.deferred = Some(req);
                            break;
                        }
                        Ok(req) => {
                            let (resp, initiate) = self.answer_timed(req, &mut pinned, peer, conn);
                            status.shutdown |= initiate;
                            resp
                        }
                    };
                    out.extend_from_slice(&encode_response(&resp));
                    buf.consume(total);
                }
            }
        }
        status
    }

    /// Answers an over-admission connection with a retryable
    /// `Overloaded` frame and closes it. Best-effort and bounded: the
    /// socket is fresh, so the ~30-byte frame either fits the empty
    /// send buffer immediately or the peer loses a race it was losing
    /// anyway.
    fn shed_overloaded(&self, mut stream: TcpStream) {
        self.metrics.record_overloaded();
        // Shed connections were never admitted, so they have no id.
        self.trace_emit(TraceEvent { ..TraceEvent::new(TraceKind::ConnShed) });
        let _ = stream.set_nodelay(true);
        let _ = stream.set_write_timeout(Some(Duration::from_millis(100)));
        let _ = stream.write_all(&encode_response(&Response::Overloaded));
    }

    /// Emits a trace event when tracing is enabled; one branch otherwise.
    fn trace_emit(&self, ev: TraceEvent) {
        if let Some(ring) = self.metrics.tracer() {
            ring.emit(ev);
        }
    }

    /// Answers one request with full observability (op counter, pattern
    /// count, service latency into the global/per-op/per-shard
    /// histograms, error counter, `frame_answered`/`frame_error` trace
    /// events, the slow-op log) and the shutdown gate. Returns the
    /// response and whether an admitted `Shutdown` should stop the
    /// daemon.
    fn answer_timed(
        &self,
        req: Request,
        pinned: &mut HashMap<u32, Option<Arc<ShardSnapshot>>>,
        peer: IpAddr,
        conn: u64,
    ) -> (Response, bool) {
        let (op, patterns) = match &req {
            Request::Query { .. } => (OpKind::Query, 1),
            Request::QueryBatch { patterns, .. } => (OpKind::QueryBatch, patterns.len() as u64),
            Request::Contains { .. } => (OpKind::Contains, 1),
            Request::Stats => (OpKind::Stats, 0),
            Request::LoadSnapshot { .. } => (OpKind::LoadSnapshot, 0),
            Request::Rollback { .. } => (OpKind::Rollback, 0),
            Request::Metrics => (OpKind::Metrics, 0),
            Request::Shutdown => (OpKind::Shutdown, 0),
            Request::Trace { .. } => (OpKind::Trace, 0),
            Request::MetricsText => (OpKind::MetricsText, 0),
        };
        // Fingerprints cost a hash of the pattern bytes, so they are
        // computed only when a trace ring exists to carry them. Events
        // never carry the bytes themselves (DESIGN.md §16).
        let tracing = self.metrics.tracer().is_some();
        let (shard, fingerprint, len) = match &req {
            Request::Query { shard, pattern } | Request::Contains { shard, pattern } => (
                Some(*shard),
                if tracing { fnv1a(pattern) } else { 0 },
                pattern.len().min(u32::MAX as usize) as u32,
            ),
            Request::QueryBatch { shard, patterns } => (
                Some(*shard),
                if tracing { patterns.first().map_or(0, |p| fnv1a(p)) } else { 0 },
                patterns.len().min(u32::MAX as usize) as u32,
            ),
            Request::LoadSnapshot { shard, snapshot } => {
                (Some(*shard), 0, snapshot.len().min(u32::MAX as usize) as u32)
            }
            Request::Rollback { shard, .. } => (Some(*shard), 0, 0),
            _ => (None, 0, 0),
        };
        let t0 = Instant::now();
        let mut initiate = false;
        let resp = if matches!(req, Request::Shutdown) {
            if shutdown_allowed(self.shutdown_policy, peer) {
                initiate = true;
                Response::Shutdown
            } else {
                Response::Error {
                    message: format!(
                        "shutdown refused: peer {peer} not admitted by {:?} policy",
                        self.shutdown_policy
                    ),
                }
            }
        } else {
            self.answer(req, pinned)
        };
        let latency_ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let error = matches!(resp, Response::Error { .. });
        self.metrics.observe(&OpObservation {
            op,
            patterns: if error { 0 } else { patterns },
            latency_ns,
            conn,
            shard,
            fingerprint,
            len,
            error,
        });
        (resp, initiate)
    }

    /// Answers one request. `pinned` caches the snapshot per shard for
    /// the current round (see the module docs for the invariant).
    /// `Shutdown` is handled (and gated) by [`Server::answer_timed`].
    fn answer(
        &self,
        req: Request,
        pinned: &mut HashMap<u32, Option<Arc<ShardSnapshot>>>,
    ) -> Response {
        let manager = &self.manager;
        let pin = |shard: u32,
                   pinned: &mut HashMap<u32, Option<Arc<ShardSnapshot>>>|
         -> Option<Arc<ShardSnapshot>> {
            pinned.entry(shard).or_insert_with(|| manager.snapshot(shard)).clone()
        };
        match req {
            Request::Query { shard, pattern } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::Query { value: self.cached_query(shard, &snap, &pattern) },
            },
            Request::QueryBatch { shard, patterns } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::QueryBatch {
                    values: patterns.iter().map(|p| self.cached_query(shard, &snap, p)).collect(),
                },
            },
            Request::Contains { shard, pattern } => match pin(shard, pinned) {
                None => unknown_shard(shard),
                Some(snap) => Response::Contains { present: snap.synopsis.contains(&pattern) },
            },
            Request::Stats => {
                let shards = self.manager.stats();
                // Stats is the one response without a payload-derived
                // bound; past ~2M shard records (~92 bytes each) the
                // frame would trip `seal`'s MAX_FRAME_LEN invariant and
                // panic the worker — answer with an error instead.
                const MAX_STATS_SHARDS: usize = 1 << 21;
                if shards.len() > MAX_STATS_SHARDS {
                    return Response::Error {
                        message: format!(
                            "{} shards exceed the {MAX_STATS_SHARDS}-record Stats frame limit",
                            shards.len()
                        ),
                    };
                }
                Response::Stats(ServerStats { cache: self.cache_stats(), shards })
            }
            Request::Metrics => Response::Metrics(Box::new(
                self.metrics.report(self.cache_stats(), self.manager.metrics_shards()),
            )),
            Request::MetricsText => Response::MetricsText {
                text: render_prometheus(
                    &self.metrics.report(self.cache_stats(), self.manager.metrics_shards()),
                ),
            },
            // The snapshot is taken before this Trace op's own
            // frame_answered event lands, so a drain never sees itself.
            Request::Trace { max } => Response::Trace {
                events: self
                    .metrics
                    .tracer()
                    .map_or_else(Vec::new, |ring| ring.snapshot(max as usize)),
            },
            Request::LoadSnapshot { shard, snapshot } => {
                let resp = self.install_snapshot(shard, snapshot);
                if matches!(resp, Response::LoadSnapshot { .. }) {
                    // Later requests in this round must see the new
                    // epoch: drop the stale pin.
                    pinned.remove(&shard);
                }
                resp
            }
            Request::Rollback { shard, epoch } => {
                let resp = self.rollback_snapshot(shard, epoch);
                if matches!(resp, Response::Rollback { .. }) {
                    pinned.remove(&shard);
                }
                resp
            }
            Request::Shutdown => Response::Shutdown,
        }
    }

    /// The `LoadSnapshot` implementation. Without a store: the original
    /// shared-ownership install (an uncompressed v2 snapshot serves
    /// borrowed straight from the wire buffer). With a store: validate,
    /// persist crash-safely, then install under the durable epoch — in
    /// that order, so the daemon never serves an epoch it cannot
    /// recover, and a persist failure leaves the old epoch serving.
    fn install_snapshot(&self, shard: u32, snapshot: Arc<[u8]>) -> Response {
        let snap_len = snapshot.len().min(u32::MAX as usize) as u32;
        let Some(store) = &self.store else {
            return match self.manager.load_snapshot_shared(shard, snapshot) {
                Ok(snap) => {
                    self.trace_emit(TraceEvent {
                        shard,
                        epoch: snap.epoch,
                        len: snap_len,
                        ..TraceEvent::new(TraceKind::SnapshotInstalled)
                    });
                    Response::LoadSnapshot {
                        epoch: snap.epoch,
                        node_count: snap.synopsis.node_count() as u64,
                    }
                }
                Err(e) => Response::Error { message: format!("snapshot rejected: {e}") },
            };
        };
        if let Err(e) = FrozenSynopsis::from_bytes_shared(Arc::clone(&snapshot)) {
            return Response::Error { message: format!("snapshot rejected: {e}") };
        }
        let epoch = match store.persist(shard, &snapshot) {
            Ok(epoch) => epoch,
            Err(e) => {
                return Response::Error {
                    message: format!("snapshot not persisted (prior epoch keeps serving): {e}"),
                }
            }
        };
        match self.manager.load_snapshot_shared_at(shard, snapshot, epoch) {
            Ok(snap) => {
                self.trace_emit(TraceEvent {
                    shard,
                    epoch: snap.epoch,
                    len: snap_len,
                    ..TraceEvent::new(TraceKind::SnapshotInstalled)
                });
                Response::LoadSnapshot {
                    epoch: snap.epoch,
                    node_count: snap.synopsis.node_count() as u64,
                }
            }
            Err(e) => Response::Error { message: format!("snapshot rejected: {e}") },
        }
    }

    /// The `Rollback` implementation: re-reads and re-validates the
    /// retained epoch's payload from the store, commits it under a fresh
    /// durable epoch, and hot-swaps it in.
    fn rollback_snapshot(&self, shard: u32, epoch: u64) -> Response {
        let Some(store) = &self.store else {
            return Response::Error {
                message: "rollback refused: the daemon runs without a snapshot store".to_string(),
            };
        };
        match store.rollback(shard, epoch) {
            Err(e) => Response::Error { message: format!("rollback refused: {e}") },
            Ok((new_epoch, bytes)) => {
                let snap_len = bytes.len().min(u32::MAX as usize) as u32;
                match self.manager.load_snapshot_shared_at(shard, bytes, new_epoch) {
                    Ok(snap) => {
                        self.metrics.record_rollback();
                        // detail carries the epoch rolled back *to*.
                        self.trace_emit(TraceEvent {
                            shard,
                            epoch: snap.epoch,
                            len: snap_len,
                            detail: epoch,
                            ..TraceEvent::new(TraceKind::SnapshotInstalled)
                        });
                        Response::Rollback { epoch: snap.epoch }
                    }
                    Err(e) => Response::Error { message: format!("rollback refused: {e}") },
                }
            }
        }
    }

    fn cache_stats(&self) -> CacheStats {
        CacheStats {
            hits: self.cache.hits(),
            misses: self.cache.misses(),
            entries: self.cache.entries() as u64,
            capacity: self.cache.capacity() as u64,
        }
    }

    /// One pattern against one pinned snapshot, through the cache. The
    /// cache key carries the snapshot's epoch, so hits are always values
    /// this exact synopsis produced — bit-identical to a cold walk.
    fn cached_query(&self, shard: u32, snap: &ShardSnapshot, pattern: &[u8]) -> f64 {
        if let Some(v) = self.cache.get(shard, snap.epoch, pattern) {
            return v;
        }
        let v = snap.synopsis.query(pattern);
        self.cache.insert(shard, snap.epoch, pattern, v);
        v
    }
}

fn unknown_shard(shard: u32) -> Response {
    Response::Error { message: format!("unknown shard {shard}") }
}

enum ReadOutcome {
    /// ≥1 byte appended to the buffer.
    Data,
    /// Nothing available right now (timeout or `WouldBlock`).
    WouldBlock,
    /// Orderly EOF from the peer.
    Closed,
    /// Unrecoverable IO error.
    Fatal,
}

/// Read size per syscall.
const READ_CHUNK: usize = 16 * 1024;

/// The inbound frame buffer: reads land directly in the buffer's tail
/// (no intermediate stack copy) and decoded frames advance a consumed
/// offset instead of `drain`-memmoving the unread remainder on every
/// round. Compaction happens only when the writable tail runs out, and
/// then moves just the unconsumed remainder (usually a partial frame).
#[derive(Debug)]
struct RecvBuf {
    data: Vec<u8>,
    start: usize,
    end: usize,
}

impl RecvBuf {
    fn new() -> Self {
        Self { data: Vec::new(), start: 0, end: 0 }
    }

    /// The unconsumed bytes.
    fn filled(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Marks `n` leading bytes of [`Self::filled`] as decoded.
    fn consume(&mut self, n: usize) {
        debug_assert!(n <= self.len());
        self.start += n;
        if self.start == self.end {
            self.start = 0;
            self.end = 0;
        }
    }

    /// One `read` into the buffer's tail, classifying the result.
    fn read_from(&mut self, stream: &mut TcpStream) -> ReadOutcome {
        if self.data.len() - self.end < READ_CHUNK {
            if self.start > 0 {
                // Reclaim the consumed prefix before growing.
                self.data.copy_within(self.start..self.end, 0);
                self.end -= self.start;
                self.start = 0;
            }
            if self.data.len() - self.end < READ_CHUNK {
                // Zeroing happens only on growth; steady-state reads
                // reuse the allocation.
                self.data.resize(self.end + READ_CHUNK, 0);
            }
        }
        match stream.read(&mut self.data[self.end..]) {
            Ok(0) => ReadOutcome::Closed,
            Ok(n) => {
                self.end += n;
                ReadOutcome::Data
            }
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {
                ReadOutcome::WouldBlock
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => ReadOutcome::WouldBlock,
            Err(_) => ReadOutcome::Fatal,
        }
    }
}

// ----------------------------------------------------------------------
// The readiness (epoll) core.
// ----------------------------------------------------------------------

#[cfg(target_os = "linux")]
mod readiness {
    use super::*;
    use crate::poll::{Events, Interest, Poller, WakePipe};
    use std::os::fd::AsRawFd;

    /// Event-buffer capacity per `epoll_wait`.
    const EVENT_BATCH: usize = 1024;
    /// How long shutdown waits for queued acks/errors to flush before
    /// closing connections anyway.
    const SHUTDOWN_FLUSH_BUDGET: Duration = Duration::from_secs(1);

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKE: u64 = 1;
    const TOKEN_CONN_BASE: u64 = 2;

    /// The per-connection state machine. The daemon-facing states are
    /// explicit:
    ///
    /// ```text
    /// ReadingFrame ──complete frame──► Answering ──responses queued──► Writing{offset}
    ///      ▲                             (transient, same wake)              │
    ///      └──────────── outbound queue drained below high water ────────────┘
    /// ```
    ///
    /// `ReadingFrame` is "out queue empty, `EPOLLIN` armed"; `Answering`
    /// happens inline while processing a wake; `Writing{offset}` is "out
    /// queue non-empty, `EPOLLOUT` armed, `offset` bytes already sent" —
    /// with `EPOLLIN` dropped whenever the pending output exceeds the
    /// high-water mark (write backpressure).
    struct Conn {
        stream: TcpStream,
        peer: IpAddr,
        /// The accept-counter id trace events reference.
        id: u64,
        /// When the connection was admitted (accept-to-first clock).
        accepted_at: Instant,
        /// No response byte has reached the socket yet.
        first_resp_pending: bool,
        /// Reading is currently parked by write backpressure (the
        /// park/unpark counters track edges, not states).
        parked: bool,
        generation: u32,
        buf: RecvBuf,
        /// Queued output; `sent` is the `Writing{offset}` cursor.
        out: Vec<u8>,
        sent: usize,
        /// The interest set currently registered with the poller.
        interest: Interest,
        peer_closed: bool,
        /// Close once `out` is flushed (corrupt stream or honored
        /// shutdown ack).
        closing: bool,
        /// This connection carries the shutdown ack; the loop ends when
        /// it is flushed.
        shutdown_ack: bool,
        /// An install is in flight on the installer thread: reading and
        /// answering pause (responses must stay in request order) until
        /// the completion comes back through the wake pipe.
        blocked: bool,
        /// Last readiness/pump activity (idle-reap clock).
        last_activity: Instant,
        /// When the current incomplete frame was first observed by the
        /// sweeper (read-deadline clock; trickled bytes do not reset it,
        /// so a slow-loris drip still runs out the deadline).
        stall_since: Option<Instant>,
    }

    impl Conn {
        fn pending_out(&self) -> usize {
            self.out.len() - self.sent
        }
    }

    /// A deferred install travelling to the installer thread.
    struct InstallJob {
        idx: usize,
        gen: u32,
        peer: IpAddr,
        conn: u64,
        req: Request,
    }

    /// The installer's finished, already-encoded answer travelling back.
    struct InstallDone {
        idx: usize,
        gen: u32,
        resp: Vec<u8>,
    }

    /// What a pump pass decided about the connection.
    enum Pump {
        Keep,
        Close,
    }

    impl Server {
        /// The readiness event loop: one thread, one epoll set, every
        /// connection multiplexed. See the module docs for the state
        /// machine and invariants.
        pub(super) fn run_readiness(&self) {
            let poller = match Poller::new() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("[dpsc-serve] epoll unavailable ({e}); thread-pool fallback");
                    return self.run_thread_pool();
                }
            };
            let wake = match WakePipe::new() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("[dpsc-serve] self-pipe unavailable ({e}); thread-pool fallback");
                    return self.run_thread_pool();
                }
            };
            if self.listener.set_nonblocking(true).is_err()
                || poller.add(self.listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ).is_err()
                || poller.add(wake.read_fd(), TOKEN_WAKE, Interest::READ).is_err()
            {
                eprintln!("[dpsc-serve] poller registration failed; thread-pool fallback");
                let _ = self.listener.set_nonblocking(false);
                return self.run_thread_pool();
            }
            let loop_waker = wake.waker().ok();
            if let Some(w) = &loop_waker {
                *self.waker.lock().expect("waker slot not poisoned") = Some(w.clone());
            }
            // Eviction sweeps run at a fraction of the tightest timeout,
            // so an offender is caught within ~25% past its nominal
            // deadline; None (no deadlines configured) keeps the
            // historical block-forever wait.
            let sweep_tick = [self.read_deadline, self.idle_timeout]
                .into_iter()
                .flatten()
                .min()
                .map(|d| (d / 4).clamp(Duration::from_millis(5), Duration::from_millis(250)));

            let (inst_tx, inst_rx) = std::sync::mpsc::channel::<InstallJob>();
            let done: Mutex<Vec<InstallDone>> = Mutex::new(Vec::new());
            let done = &done;
            std::thread::scope(|scope| {
                let installer_waker = loop_waker.clone();
                let srv = self;
                scope.spawn(move || {
                    // The installer thread: LoadSnapshot/Rollback decode,
                    // validate, and persist here — off the event loop —
                    // so a multi-MB install never stalls unrelated
                    // connections. answer_timed records the op metrics.
                    while let Ok(job) = inst_rx.recv() {
                        let mut pinned = HashMap::new();
                        let (resp, _) = srv.answer_timed(job.req, &mut pinned, job.peer, job.conn);
                        done.lock().expect("install completions not poisoned").push(InstallDone {
                            idx: job.idx,
                            gen: job.gen,
                            resp: encode_response(&resp),
                        });
                        if let Some(w) = &installer_waker {
                            w.wake();
                        }
                    }
                });

                let mut conns: Vec<Option<Conn>> = Vec::new();
                let mut free: Vec<usize> = Vec::new();
                let mut generation: u32 = 0;
                let mut events = Events::with_capacity(EVENT_BATCH);
                let mut accept_errors = 0u32;
                let mut shutdown_deadline: Option<Instant> = None;
                let mut last_sweep = Instant::now();

                'event_loop: loop {
                    let shutting_down = self.shutdown.load(Ordering::SeqCst);
                    if shutting_down {
                        // Exit once no ack is pending (or the flush budget
                        // is spent); until then, poll with a short timeout
                        // so a wedged ack peer cannot hold shutdown
                        // hostage.
                        let deadline = *shutdown_deadline
                            .get_or_insert_with(|| Instant::now() + SHUTDOWN_FLUSH_BUDGET);
                        let acks_pending =
                            conns.iter().flatten().any(|c| c.shutdown_ack && c.pending_out() > 0);
                        if !acks_pending || Instant::now() >= deadline {
                            break 'event_loop;
                        }
                    }
                    let timeout = if shutting_down {
                        Some(50)
                    } else if sweep_tick.is_some() && self.metrics.conns_open_now() > 0 {
                        sweep_tick.map(|t| (t.as_millis().max(1)) as i32)
                    } else if loop_waker.is_none() {
                        // No self-pipe: poll so installer completions and
                        // handle shutdowns still get noticed.
                        Some(50)
                    } else {
                        None
                    };
                    let wait_start = Instant::now();
                    if poller.wait(&mut events, timeout).is_err() {
                        break 'event_loop;
                    }
                    // Loop utilization: time blocked in epoll_wait vs
                    // time servicing the readiness batch (through the
                    // sweep at the bottom of this iteration).
                    let busy_start = Instant::now();
                    let batch: Vec<crate::poll::Event> = events.iter().collect();
                    for ev in batch {
                        match ev.token {
                            TOKEN_WAKE => {
                                wake.drain();
                                // Drain installer completions: queue the
                                // response, unblock, and pump the
                                // connection forward (it may have more
                                // buffered frames to answer).
                                let completions: Vec<InstallDone> = {
                                    let mut guard =
                                        done.lock().expect("install completions not poisoned");
                                    guard.drain(..).collect()
                                };
                                for d in completions {
                                    let Some(slot) = conns.get_mut(d.idx) else { continue };
                                    let Some(conn) = slot.as_mut() else { continue };
                                    if conn.generation != d.gen || !conn.blocked {
                                        continue; // connection recycled meanwhile
                                    }
                                    conn.out.extend_from_slice(&d.resp);
                                    conn.blocked = false;
                                    if matches!(
                                        self.pump(&poller, conn, d.idx, &inst_tx),
                                        Pump::Close
                                    ) {
                                        let conn = slot.take().expect("checked above");
                                        let _ = poller.delete(conn.stream.as_raw_fd());
                                        free.push(d.idx);
                                        self.metrics.conn_closed();
                                        self.trace_emit(TraceEvent {
                                            conn: conn.id,
                                            ..TraceEvent::new(TraceKind::ConnClosed)
                                        });
                                    }
                                }
                            }
                            TOKEN_LISTENER => {
                                if self.shutdown.load(Ordering::SeqCst) {
                                    continue;
                                }
                                accept_errors = self.accept_ready(
                                    &poller,
                                    &mut conns,
                                    &mut free,
                                    &mut generation,
                                    accept_errors,
                                );
                            }
                            token => {
                                let idx = (token & 0xFFFF_FFFF) as usize - TOKEN_CONN_BASE as usize;
                                let gen = (token >> 32) as u32;
                                let Some(slot) = conns.get_mut(idx) else { continue };
                                let Some(conn) = slot.as_mut() else { continue };
                                if conn.generation != gen {
                                    continue; // stale event for a recycled slot
                                }
                                let verdict = if ev.error {
                                    Pump::Close
                                } else {
                                    self.pump(&poller, conn, idx, &inst_tx)
                                };
                                if matches!(verdict, Pump::Close) {
                                    let conn = slot.take().expect("checked above");
                                    let _ = poller.delete(conn.stream.as_raw_fd());
                                    free.push(idx);
                                    self.metrics.conn_closed();
                                    self.trace_emit(TraceEvent {
                                        conn: conn.id,
                                        ..TraceEvent::new(TraceKind::ConnClosed)
                                    });
                                }
                            }
                        }
                    }
                    if let Some(tick) = sweep_tick {
                        let now = Instant::now();
                        if now.duration_since(last_sweep) >= tick {
                            self.sweep_conns(&poller, &mut conns, &mut free, now);
                            last_sweep = now;
                        }
                    }
                    self.metrics.record_loop(
                        busy_start.duration_since(wait_start).as_nanos().min(u64::MAX as u128)
                            as u64,
                        busy_start.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                    );
                }

                // Teardown: every remaining connection closes; the
                // installer sees the channel hang up and exits before the
                // scope joins it.
                for conn in conns.into_iter().flatten() {
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    let id = conn.id;
                    drop(conn.stream);
                    self.metrics.conn_closed();
                    self.trace_emit(TraceEvent {
                        conn: id,
                        ..TraceEvent::new(TraceKind::ConnClosed)
                    });
                }
                drop(inst_tx);
            });
            let _ = self.listener.set_nonblocking(false);
            *self.waker.lock().expect("waker slot not poisoned") = None;
        }

        /// One timeout sweep over every connection: evict mid-frame
        /// stalls past the read deadline (slow-loris) and reap
        /// connections idle past the idle timeout. Blocked (install in
        /// flight) and closing connections are exempt — they are waiting
        /// on us, not the other way around.
        fn sweep_conns(
            &self,
            poller: &Poller,
            conns: &mut [Option<Conn>],
            free: &mut Vec<usize>,
            now: Instant,
        ) {
            for idx in 0..conns.len() {
                let Some(conn) = conns[idx].as_mut() else { continue };
                if conn.closing || conn.blocked {
                    continue;
                }
                let mut evict = false;
                let mid_frame =
                    !conn.buf.is_empty() && matches!(frame_len(conn.buf.filled()), Ok(None));
                if let Some(deadline) = self.read_deadline {
                    if mid_frame {
                        // The stall clock starts when the partial frame
                        // is first observed and is *not* reset by
                        // trickled bytes: a slow-loris drip never
                        // completes the frame, so it runs out the
                        // deadline no matter how often it sends.
                        let since = *conn.stall_since.get_or_insert(now);
                        if now.duration_since(since) >= deadline {
                            evict = true;
                            self.metrics.record_deadline_evicted();
                            self.trace_emit(TraceEvent {
                                conn: conn.id,
                                dur_ns: now.duration_since(since).as_nanos().min(u64::MAX as u128)
                                    as u64,
                                ..TraceEvent::new(TraceKind::ConnDeadlineEvicted)
                            });
                        }
                    } else {
                        conn.stall_since = None;
                    }
                }
                if !evict {
                    if let Some(idle) = self.idle_timeout {
                        if conn.buf.is_empty()
                            && conn.pending_out() == 0
                            && now.duration_since(conn.last_activity) >= idle
                        {
                            evict = true;
                            self.metrics.record_idle_reaped();
                            self.trace_emit(TraceEvent {
                                conn: conn.id,
                                dur_ns: now
                                    .duration_since(conn.last_activity)
                                    .as_nanos()
                                    .min(u64::MAX as u128)
                                    as u64,
                                ..TraceEvent::new(TraceKind::ConnIdleReaped)
                            });
                        }
                    }
                }
                if evict {
                    let conn = conns[idx].take().expect("checked above");
                    let _ = poller.delete(conn.stream.as_raw_fd());
                    free.push(idx);
                    self.metrics.conn_closed();
                    self.trace_emit(TraceEvent {
                        conn: conn.id,
                        ..TraceEvent::new(TraceKind::ConnClosed)
                    });
                }
            }
        }

        /// Accepts until `WouldBlock`, registering each connection for
        /// read interest. Returns the updated consecutive-error count
        /// (the same bounded backoff as the thread-pool acceptor).
        fn accept_ready(
            &self,
            poller: &Poller,
            conns: &mut Vec<Option<Conn>>,
            free: &mut Vec<usize>,
            generation: &mut u32,
            mut accept_errors: u32,
        ) -> u32 {
            loop {
                match self.listener.accept() {
                    Ok((stream, peer)) => {
                        accept_errors = 0;
                        // Admission bound: shed with a retryable
                        // Overloaded frame instead of multiplexing
                        // without limit.
                        if self.metrics.conns_open_now() >= self.max_conns as u64 {
                            self.shed_overloaded(stream);
                            continue;
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue; // a socket we cannot drive; drop it
                        }
                        let _ = stream.set_nodelay(true);
                        *generation = generation.wrapping_add(1);
                        let idx = free.pop().unwrap_or_else(|| {
                            conns.push(None);
                            conns.len() - 1
                        });
                        let token = conn_token(idx, *generation);
                        if poller.add(stream.as_raw_fd(), token, Interest::READ).is_err() {
                            free.push(idx);
                            continue;
                        }
                        let conn_id = self.metrics.conn_opened();
                        conns[idx] = Some(Conn {
                            stream,
                            peer: peer.ip(),
                            id: conn_id,
                            accepted_at: Instant::now(),
                            first_resp_pending: true,
                            parked: false,
                            generation: *generation,
                            buf: RecvBuf::new(),
                            out: Vec::new(),
                            sent: 0,
                            interest: Interest::READ,
                            peer_closed: false,
                            closing: false,
                            shutdown_ack: false,
                            blocked: false,
                            last_activity: Instant::now(),
                            stall_since: None,
                        });
                        self.trace_emit(TraceEvent {
                            conn: conn_id,
                            ..TraceEvent::new(TraceKind::ConnAccepted)
                        });
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => return accept_errors,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // EMFILE and friends: the pending connection stays
                        // in the backlog. Bounded sleep (the event loop
                        // owns this thread, so a sleep here is the same
                        // trade the blocking acceptor makes) keeps a
                        // fd-exhausted daemon from spinning hot.
                        accept_errors = accept_errors.saturating_add(1);
                        std::thread::sleep(accept_backoff(accept_errors));
                        return accept_errors;
                    }
                }
            }
        }

        /// Drives one connection as far as readiness allows: drain reads
        /// (edge-triggered contract), answer buffered frames within the
        /// write budget, flush, and re-arm the right interest set.
        fn pump(
            &self,
            poller: &Poller,
            conn: &mut Conn,
            idx: usize,
            inst_tx: &Sender<InstallJob>,
        ) -> Pump {
            let high_water = self.write_high_water;
            conn.last_activity = Instant::now();
            loop {
                // Answer whatever is already buffered, bounded by the
                // write budget (backpressure pauses answering too — the
                // unanswered frames stay in `buf`).
                if !conn.closing && !conn.blocked {
                    // The budget bounds *pending* (unsent) output: `out`
                    // may still carry a flushed-but-uncompacted prefix of
                    // `sent` bytes, which must not eat the allowance.
                    let budget = conn.sent.saturating_add(high_water);
                    let status = self.process_round(
                        &mut conn.buf,
                        &mut conn.out,
                        conn.peer,
                        conn.id,
                        budget,
                        true,
                    );
                    if status.shutdown {
                        self.shutdown.store(true, Ordering::SeqCst);
                        conn.shutdown_ack = true;
                        conn.closing = true;
                    }
                    if status.corrupt {
                        conn.closing = true;
                    }
                    if let Some(req) = status.deferred {
                        // Hand the install to the installer thread and
                        // pause this connection until the completion
                        // comes back (responses stay in request order).
                        conn.blocked = true;
                        let _ = inst_tx.send(InstallJob {
                            idx,
                            gen: conn.generation,
                            peer: conn.peer,
                            conn: conn.id,
                            req,
                        });
                    }
                }
                let pending_before = conn.pending_out();
                let outcome = flush_out(conn);
                let flushed = pending_before - conn.pending_out();
                if flushed > 0 {
                    if conn.first_resp_pending {
                        conn.first_resp_pending = false;
                        self.metrics.record_accept_to_first(
                            conn.accepted_at.elapsed().as_nanos().min(u64::MAX as u128) as u64,
                        );
                    }
                    self.trace_emit(TraceEvent {
                        conn: conn.id,
                        len: flushed.min(u32::MAX as usize) as u32,
                        ..TraceEvent::new(TraceKind::Flush)
                    });
                }
                match outcome {
                    FlushOutcome::Fatal => return Pump::Close,
                    FlushOutcome::Blocked | FlushOutcome::Drained => {}
                }
                if conn.pending_out() == 0 && conn.closing {
                    return Pump::Close;
                }
                // Over the high-water mark, blocked on an install, or
                // closing: reading — and therefore answering — pauses.
                if conn.closing || conn.blocked || conn.pending_out() > high_water {
                    break;
                }
                if conn.peer_closed {
                    match frame_len(conn.buf.filled()) {
                        // Still answerable frames (or a corrupt length to
                        // report): another round.
                        Ok(Some(_)) | Err(_) => continue,
                        // Nothing left (or an unfinishable partial frame):
                        // flush whatever is queued, then close.
                        Ok(None) => {
                            conn.closing = true;
                            continue;
                        }
                    }
                }
                match conn.buf.read_from(&mut conn.stream) {
                    ReadOutcome::Data => continue,
                    ReadOutcome::WouldBlock => match frame_len(conn.buf.filled()) {
                        // The socket is dry but the write budget left
                        // complete frames unanswered (the flush freed
                        // room since): keep answering — no readable
                        // event will come for bytes already read.
                        Ok(Some(_)) | Err(_) => continue,
                        // Settled: back to ReadingFrame.
                        Ok(None) => break,
                    },
                    ReadOutcome::Closed => {
                        conn.peer_closed = true;
                        continue;
                    }
                    ReadOutcome::Fatal => return Pump::Close,
                }
            }
            // Park/unpark edges: reading pauses exactly while the
            // pending output exceeds the high-water mark (closing and
            // blocked pauses are not backpressure).
            let backpressured = !conn.closing && !conn.blocked && conn.pending_out() > high_water;
            if backpressured && !conn.parked {
                conn.parked = true;
                self.metrics.record_park();
                self.trace_emit(TraceEvent {
                    conn: conn.id,
                    len: conn.pending_out().min(u32::MAX as usize) as u32,
                    ..TraceEvent::new(TraceKind::Park)
                });
            } else if !backpressured && conn.parked {
                conn.parked = false;
                self.metrics.record_unpark();
                self.trace_emit(TraceEvent {
                    conn: conn.id,
                    len: conn.pending_out().min(u32::MAX as usize) as u32,
                    ..TraceEvent::new(TraceKind::Unpark)
                });
            }
            // Re-arm: readable unless backpressured/blocked/closing,
            // writable while output is pending.
            let want = Interest {
                readable: !conn.closing
                    && !conn.blocked
                    && conn.pending_out() <= high_water
                    && !conn.peer_closed,
                writable: conn.pending_out() > 0,
            };
            if (want.readable || want.writable) && want != conn.interest {
                let token = conn_token(idx, conn.generation);
                if poller.modify(conn.stream.as_raw_fd(), token, want).is_err() {
                    return Pump::Close;
                }
                conn.interest = want;
            }
            Pump::Keep
        }
    }

    fn conn_token(idx: usize, generation: u32) -> u64 {
        ((generation as u64) << 32) | (idx as u64 + TOKEN_CONN_BASE)
    }

    enum FlushOutcome {
        /// Everything queued went out.
        Drained,
        /// The kernel buffer filled; `EPOLLOUT` will resume.
        Blocked,
        /// The connection is dead.
        Fatal,
    }

    /// Writes as much queued output as the socket accepts, advancing the
    /// `Writing{offset}` cursor; resets the queue when fully drained.
    fn flush_out(conn: &mut Conn) -> FlushOutcome {
        let outcome = loop {
            if conn.sent == conn.out.len() {
                break FlushOutcome::Drained;
            }
            match conn.stream.write(&conn.out[conn.sent..]) {
                Ok(0) => return FlushOutcome::Fatal,
                Ok(n) => conn.sent += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => break FlushOutcome::Blocked,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return FlushOutcome::Fatal,
            }
        };
        // Reclaim the flushed prefix: free on a full drain, an amortized
        // memmove of the (high-water-bounded) remainder when the prefix
        // gets large — without this a long-lived connection that always
        // keeps a little backlog would grow `out` without bound.
        if conn.sent == conn.out.len() {
            conn.out.clear();
            conn.sent = 0;
        } else if conn.sent >= 64 * 1024 {
            conn.out.drain(..conn.sent);
            conn.sent = 0;
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wake_addr_maps_wildcards_to_loopback() {
        let v4: SocketAddr = "0.0.0.0:8125".parse().unwrap();
        assert_eq!(wake_addr(v4), "127.0.0.1:8125".parse().unwrap());
        let v6: SocketAddr = "[::]:8125".parse().unwrap();
        assert_eq!(wake_addr(v6), "[::1]:8125".parse().unwrap());
        // Concrete addresses pass through untouched.
        let concrete: SocketAddr = "192.0.2.7:9000".parse().unwrap();
        assert_eq!(wake_addr(concrete), concrete);
        let lo: SocketAddr = "127.0.0.1:9000".parse().unwrap();
        assert_eq!(wake_addr(lo), lo);
    }

    #[test]
    fn accept_backoff_doubles_then_caps() {
        assert_eq!(accept_backoff(1), Duration::from_millis(1));
        assert_eq!(accept_backoff(2), Duration::from_millis(2));
        assert_eq!(accept_backoff(3), Duration::from_millis(4));
        // The cap is derived from the constant: one more error than the
        // doubling cap reaches the ceiling…
        let cap_ms = 1u64 << ACCEPT_BACKOFF_CAP_DOUBLINGS;
        assert_eq!(accept_backoff(ACCEPT_BACKOFF_CAP_DOUBLINGS + 1), Duration::from_millis(cap_ms));
        // …and arbitrarily long failure streaks stay there.
        assert_eq!(accept_backoff(u32::MAX), Duration::from_millis(cap_ms));
        assert_eq!(accept_backoff(u32::MAX), accept_backoff(ACCEPT_BACKOFF_CAP_DOUBLINGS + 1));
    }

    #[test]
    fn shutdown_gate_admits_loopback_rejects_remote() {
        use ShutdownPolicy::*;
        let lo4: IpAddr = "127.0.0.1".parse().unwrap();
        let lo4_high: IpAddr = "127.0.0.53".parse().unwrap();
        let lo6: IpAddr = "::1".parse().unwrap();
        let mapped_lo: IpAddr = "::ffff:127.0.0.1".parse().unwrap();
        let remote4: IpAddr = "192.0.2.7".parse().unwrap();
        let remote6: IpAddr = "2001:db8::1".parse().unwrap();
        let unspecified: IpAddr = "0.0.0.0".parse().unwrap();

        // Default policy: every loopback spelling is admitted…
        for ip in [lo4, lo4_high, lo6, mapped_lo] {
            assert!(shutdown_allowed(LoopbackOnly, ip), "{ip} is loopback");
        }
        // …and nothing else is (including the unknowable-peer sentinel).
        for ip in [remote4, remote6, unspecified] {
            assert!(!shutdown_allowed(LoopbackOnly, ip), "{ip} is not loopback");
        }

        // AllowRemote admits everyone; Deny admits no one.
        for ip in [lo4, lo6, mapped_lo, remote4, remote6] {
            assert!(shutdown_allowed(AllowRemote, ip));
            assert!(!shutdown_allowed(Deny, ip));
        }
    }

    #[test]
    fn core_kind_resolves_per_platform() {
        let native =
            if cfg!(target_os = "linux") { CoreKind::Readiness } else { CoreKind::ThreadPool };
        assert_eq!(CoreKind::Auto.resolved(), native);
        assert_eq!(CoreKind::Readiness.resolved(), native);
        assert_eq!(CoreKind::ThreadPool.resolved(), CoreKind::ThreadPool);
    }

    #[test]
    fn recv_buf_consumes_without_memmove_and_compacts_on_refill() {
        let mut buf = RecvBuf::new();
        // Simulate a read landing bytes in the tail.
        buf.data = vec![0u8; 64];
        buf.data[..10].copy_from_slice(b"0123456789");
        buf.end = 10;
        assert_eq!(buf.filled(), b"0123456789");
        buf.consume(4);
        assert_eq!(buf.filled(), b"456789");
        assert_eq!(buf.len(), 6);
        // Consuming everything resets the cursors (no compaction needed).
        buf.consume(6);
        assert!(buf.is_empty());
        assert_eq!((buf.start, buf.end), (0, 0));
    }
}
