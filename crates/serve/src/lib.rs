//! # dpsc-serve — the sharded query-serving daemon
//!
//! The paper's synopsis is built once under the privacy budget and then
//! *queried forever*; this crate is the process boundary that makes the
//! querying side a real service. Everything here is post-processing of
//! released synopses — no privacy accounting happens at serving time.
//!
//! Std-only (no registry dependencies), four layers:
//!
//! * [`wire`] — the versioned length-prefixed binary protocol
//!   (`DPSQ`/`DPSR` frames: magic, LE framing, FNV-1a checksum,
//!   length-checked decode via the shared
//!   [`DecodeError`](dpsc_private_count::DecodeError)); request kinds
//!   `Query`, `QueryBatch`, `Contains`, `Stats`, `LoadSnapshot`,
//!   `Shutdown`.
//! * [`shard`] — [`ShardManager`]: corpus-id routing over
//!   `Arc<ShardSnapshot>` shards with atomic hot swap
//!   (load → validate → swap; readers pin an `Arc` and never block on a
//!   swap, every answer comes from exactly one epoch).
//! * [`cache`] — [`QueryCache`]: a sharded LRU keyed on
//!   `(shard, epoch, pattern)`, so a hot swap invalidates by
//!   construction (old epochs become unaddressable) and hits are
//!   bit-identical to cold walks of the same epoch.
//! * [`metrics`] — [`MetricsRegistry`](metrics::MetricsRegistry):
//!   lock-free per-op counters, global/per-op/per-shard fixed-bucket
//!   latency histograms, event-loop utilization, and a slow-op log,
//!   snapshotted by the `Metrics` wire op and rendered as a
//!   Prometheus-style text exposition by `MetricsText`.
//! * [`trace`] — [`TraceRing`](trace::TraceRing): a bounded lock-free
//!   ring of structured [`TraceEvent`](trace::TraceEvent)s (connection
//!   lifecycle, frame service, snapshot-store crash points, overload
//!   decisions), drained over the wire by the `Trace` op. Events carry
//!   pattern fingerprints and lengths only — never pattern bytes.
//! * [`store`] — [`SnapshotStore`]: the crash-safe on-disk snapshot
//!   store (write-temp → fsync → rename → fsync(dir) under a
//!   checksummed append-only `MANIFEST`), with epoch retention, the
//!   `Rollback` wire op's backing re-install, and a deterministic
//!   fault-injection [`StoreIo`](store::StoreIo) layer for enumerating
//!   crash points under test.
//! * [`poll`] (Linux) — a std-only edge-triggered epoll wrapper plus a
//!   self-pipe waker, the readiness layer under the default server core.
//! * [`server`] / [`client`] — the TCP daemon (readiness event loop on
//!   Linux, portable thread-pool fallback; see
//!   [`CoreKind`](server::CoreKind)) with per-connection request
//!   batching, and the blocking client used by the examples, tests, and
//!   the `serve_throughput` load generator.
//!
//! ```no_run
//! use std::sync::Arc;
//! use dpsc_serve::{Client, Server, ServerConfig, ShardManager};
//!
//! let manager = Arc::new(ShardManager::new());
//! let handle = Server::spawn(ServerConfig::default(), Arc::clone(&manager)).unwrap();
//! let mut client = Client::connect(handle.addr()).unwrap();
//! # let snapshot_bytes: Vec<u8> = Vec::new();
//! client.load_snapshot(0, &snapshot_bytes).unwrap();
//! let count = client.query(0, b"acgt").unwrap();
//! # let _ = count;
//! client.shutdown_server().unwrap();
//! handle.shutdown();
//! ```

pub mod cache;
pub mod client;
pub mod metrics;
#[cfg(target_os = "linux")]
pub mod poll;
pub mod server;
pub mod shard;
pub mod store;
pub mod trace;
pub mod wire;

pub use cache::QueryCache;
pub use client::{Client, ClientConfig, ClientError, RetryPolicy};
pub use metrics::{render_prometheus, MetricsRegistry, OpKind, OpObservation};
pub use server::{CoreKind, Server, ServerConfig, ServerHandle, ShutdownPolicy};
pub use shard::{ShardManager, ShardSnapshot};
pub use store::{
    FaultPlan, FaultyIo, RealIo, RecoveredSnapshot, SnapshotStore, StoreError, StoreIo,
};
pub use trace::{TraceEvent, TraceKind, TraceRing, NO_SHARD};
pub use wire::{
    CacheStats, MetricsReport, MetricsShard, OpCounts, OpLatencies, OpLatency, Request, Response,
    ServerStats, ShardStats,
};
