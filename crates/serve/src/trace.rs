//! Structured trace ring: a bounded, lock-free event buffer the daemon's
//! hot paths append to and the `Trace` wire op snapshots.
//!
//! ## Design
//!
//! The ring is a power-of-two array of slots. A global sequence counter
//! assigns each emitted event a unique, ever-increasing `seq`; the event
//! lands in slot `seq & (capacity - 1)`, overwriting whatever was there
//! `capacity` events ago. Readers never block writers and writers never
//! block each other: every slot is a tiny seqlock (a version word that is
//! odd while a write is in flight, plus one `AtomicU64` per event field),
//! which keeps the whole structure within safe Rust — the workspace
//! denies `unsafe_code`. A reader accepts a slot only when the version
//! reads `2·seq + 2` before *and* after the field loads and the slot's
//! recorded `seq` matches; anything else (mid-write, overwritten, torn by
//! a racing lap) is silently skipped. Tracing is therefore **best
//! effort by construction**: under wrap-around contention an event can
//! be lost, never corrupted into a plausible-looking lie that passes the
//! version/seq check, and never unsafe.
//!
//! ## Privacy
//!
//! Events carry pattern **fingerprints** (FNV-1a of the pattern bytes)
//! and **lengths**, never pattern bytes. This is the observability
//! layer's privacy rule (DESIGN.md §16), certified by the audit matrix's
//! `observability` scenario: the entire trace/metrics surface is
//! post-processing of released synopses plus content-free request
//! metadata, so it consumes no privacy budget.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of packed `u64` fields per event (see [`TraceEvent::pack`]).
const FIELDS: usize = 10;

/// Sentinel for "no shard" in [`TraceEvent::shard`].
pub const NO_SHARD: u32 = u32::MAX;

/// What happened. Codes are stable wire values (see the `Trace` op).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A connection was admitted (`conn` = connection id).
    ConnAccepted = 1,
    /// A connection ended for any reason.
    ConnClosed = 2,
    /// A connection was shed with an `Overloaded` frame at the admission
    /// bound (never admitted).
    ConnShed = 3,
    /// An idle connection was reaped by the idle timeout.
    ConnIdleReaped = 4,
    /// A connection stalled mid-frame past the read deadline and was
    /// evicted (slow-loris defense).
    ConnDeadlineEvicted = 5,
    /// One request frame answered; `dur_ns` spans decode→answer,
    /// `detail` holds the wire opcode, `fingerprint`/`len` describe the
    /// pattern (batch: fingerprint of the first pattern, `len` = batch
    /// size).
    FrameAnswered = 6,
    /// An `Error` response was produced (malformed frame, unknown shard,
    /// rejected snapshot, …); `detail` holds the wire opcode when the
    /// frame decoded far enough to know it, else `u64::MAX`.
    FrameError = 7,
    /// A request exceeded the slow-op threshold; `detail` holds the
    /// threshold in nanoseconds, `dur_ns` the actual service time. This
    /// is the slow-op log: privacy-clean by the same fingerprint rule.
    SlowOp = 8,
    /// A snapshot was installed into the shard map (`shard`, `epoch`).
    SnapshotInstalled = 9,
    /// One mutating store operation of a persist completed; `detail` is
    /// the op index 0–5 (write-temp, fsync-temp, rename, fsync-dir,
    /// manifest-append, manifest-fsync — DESIGN.md §15's crash points).
    StoreOp = 10,
    /// A persist committed durably (`shard`, `epoch`, `len` = snapshot
    /// bytes, `dur_ns` = full persist time).
    PersistCommitted = 11,
    /// A retained epoch was rolled back in via the store manifest.
    RollbackCommitted = 12,
    /// A shard was re-installed from the manifest at startup.
    Recovery = 13,
    /// Output bytes flushed to a socket (`len` = bytes written).
    Flush = 14,
    /// Write backpressure parked reads on a connection (pending output
    /// above the high-water mark).
    Park = 15,
    /// A parked connection resumed reading (output drained).
    Unpark = 16,
}

impl TraceKind {
    /// Stable numeric code used in slots and on the wire.
    pub fn code(self) -> u32 {
        self as u32
    }

    /// Inverse of [`code`](TraceKind::code); `None` for unknown codes.
    pub fn from_code(code: u32) -> Option<Self> {
        use TraceKind::*;
        Some(match code {
            1 => ConnAccepted,
            2 => ConnClosed,
            3 => ConnShed,
            4 => ConnIdleReaped,
            5 => ConnDeadlineEvicted,
            6 => FrameAnswered,
            7 => FrameError,
            8 => SlowOp,
            9 => SnapshotInstalled,
            10 => StoreOp,
            11 => PersistCommitted,
            12 => RollbackCommitted,
            13 => Recovery,
            14 => Flush,
            15 => Park,
            16 => Unpark,
            _ => return None,
        })
    }

    /// Stable snake_case label (used by the text exposition and the
    /// example's trace printer).
    pub fn label(self) -> &'static str {
        use TraceKind::*;
        match self {
            ConnAccepted => "conn_accepted",
            ConnClosed => "conn_closed",
            ConnShed => "conn_shed",
            ConnIdleReaped => "conn_idle_reaped",
            ConnDeadlineEvicted => "conn_deadline_evicted",
            FrameAnswered => "frame_answered",
            FrameError => "frame_error",
            SlowOp => "slow_op",
            SnapshotInstalled => "snapshot_installed",
            StoreOp => "store_op",
            PersistCommitted => "persist_committed",
            RollbackCommitted => "rollback_committed",
            Recovery => "recovery",
            Flush => "flush",
            Park => "park",
            Unpark => "unpark",
        }
    }
}

/// One drained trace event. All fields are content-free metadata:
/// patterns appear only as FNV-1a fingerprints and lengths.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEvent {
    /// Ring-assigned sequence number (dense, starts at 0).
    pub seq: u64,
    /// Monotonic nanoseconds since the ring was created.
    pub ts_ns: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Connection id (the accept counter value; 0 = not tied to a
    /// connection).
    pub conn: u64,
    /// Corpus/shard id, [`NO_SHARD`] when not applicable.
    pub shard: u32,
    /// Snapshot epoch, 0 when not applicable.
    pub epoch: u64,
    /// FNV-1a fingerprint of the pattern bytes, 0 when not applicable.
    pub fingerprint: u64,
    /// Pattern length, batch size, or byte count depending on `kind`.
    pub len: u32,
    /// Span duration in nanoseconds (0 for point events).
    pub dur_ns: u64,
    /// Kind-specific detail (wire opcode, store-op index, threshold…).
    pub detail: u64,
}

impl TraceEvent {
    /// A point event of `kind` with every optional field cleared.
    pub fn new(kind: TraceKind) -> Self {
        Self {
            seq: 0,
            ts_ns: 0,
            kind,
            conn: 0,
            shard: NO_SHARD,
            epoch: 0,
            fingerprint: 0,
            len: 0,
            dur_ns: 0,
            detail: 0,
        }
    }

    fn pack(&self) -> [u64; FIELDS] {
        [
            self.seq,
            self.ts_ns,
            self.kind.code() as u64,
            self.conn,
            self.shard as u64,
            self.epoch,
            self.fingerprint,
            self.len as u64,
            self.dur_ns,
            self.detail,
        ]
    }

    fn unpack(f: [u64; FIELDS]) -> Option<Self> {
        Some(Self {
            seq: f[0],
            ts_ns: f[1],
            kind: TraceKind::from_code(u32::try_from(f[2]).ok()?)?,
            conn: f[3],
            shard: u32::try_from(f[4]).ok()?,
            epoch: f[5],
            fingerprint: f[6],
            len: u32::try_from(f[7]).ok()?,
            dur_ns: f[8],
            detail: f[9],
        })
    }
}

/// One seqlocked slot: `version` is `2·seq + 1` while the writer of
/// event `seq` is mid-flight and `2·seq + 2` once stable.
#[derive(Debug)]
struct Slot {
    version: AtomicU64,
    fields: [AtomicU64; FIELDS],
}

/// The bounded event ring. Capacity 0 disables tracing entirely
/// ([`emit`](TraceRing::emit) is one branch); otherwise capacity is
/// rounded up to a power of two.
#[derive(Debug)]
pub struct TraceRing {
    origin: Instant,
    mask: u64,
    seq: AtomicU64,
    slots: Vec<Slot>,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` events (rounded up to a
    /// power of two; 0 = disabled).
    pub fn new(capacity: usize) -> Self {
        let cap = if capacity == 0 { 0 } else { capacity.next_power_of_two() };
        let slots = (0..cap)
            .map(|_| Slot {
                version: AtomicU64::new(0),
                fields: std::array::from_fn(|_| AtomicU64::new(0)),
            })
            .collect();
        Self {
            origin: Instant::now(),
            mask: (cap as u64).wrapping_sub(1),
            seq: AtomicU64::new(0),
            slots,
        }
    }

    /// Whether events are being recorded at all.
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Slot count (0 when disabled).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Events ever emitted (including overwritten ones).
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// Events no longer retrievable because the ring lapped them.
    pub fn overwritten(&self) -> u64 {
        self.recorded().saturating_sub(self.slots.len() as u64)
    }

    /// Appends an event; `seq` and `ts_ns` are assigned by the ring
    /// (caller values are ignored). No-op when disabled.
    pub fn emit(&self, mut ev: TraceEvent) {
        if self.slots.is_empty() {
            return;
        }
        let s = self.seq.fetch_add(1, Ordering::AcqRel);
        ev.seq = s;
        ev.ts_ns = self.origin.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let slot = &self.slots[(s & self.mask) as usize];
        slot.version.store(2 * s + 1, Ordering::Release);
        for (dst, v) in slot.fields.iter().zip(ev.pack()) {
            dst.store(v, Ordering::Relaxed);
        }
        slot.version.store(2 * s + 2, Ordering::Release);
    }

    fn read_slot(&self, s: u64) -> Option<TraceEvent> {
        let slot = &self.slots[(s & self.mask) as usize];
        let want = 2 * s + 2;
        if slot.version.load(Ordering::Acquire) != want {
            return None;
        }
        let fields: [u64; FIELDS] = std::array::from_fn(|i| slot.fields[i].load(Ordering::Relaxed));
        if slot.version.load(Ordering::Acquire) != want {
            return None;
        }
        let ev = TraceEvent::unpack(fields)?;
        if ev.seq != s {
            return None;
        }
        Some(ev)
    }

    /// The most recent `max` events in ascending `seq` order. Read-only
    /// and non-destructive — two back-to-back snapshots of a quiet ring
    /// return the same events, which is what makes the `Trace` wire op
    /// idempotent and safe to retry.
    pub fn snapshot(&self, max: usize) -> Vec<TraceEvent> {
        if self.slots.is_empty() || max == 0 {
            return Vec::new();
        }
        let head = self.seq.load(Ordering::Acquire);
        let window = (self.slots.len() as u64).min(max as u64).min(head);
        let mut out = Vec::with_capacity(window as usize);
        for s in head - window..head {
            if let Some(ev) = self.read_slot(s) {
                out.push(ev);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for code in 0..32u32 {
            if let Some(k) = TraceKind::from_code(code) {
                assert_eq!(k.code(), code);
                assert!(!k.label().is_empty());
            }
        }
        assert_eq!(TraceKind::from_code(0), None);
        assert_eq!(TraceKind::from_code(17), None);
        assert_eq!(TraceKind::from_code(u32::MAX), None);
    }

    #[test]
    fn emits_and_snapshots_in_order() {
        let ring = TraceRing::new(8);
        assert!(ring.enabled());
        for i in 0..5u64 {
            ring.emit(TraceEvent {
                conn: i,
                shard: i as u32,
                fingerprint: 100 + i,
                ..TraceEvent::new(TraceKind::FrameAnswered)
            });
        }
        let evs = ring.snapshot(100);
        assert_eq!(evs.len(), 5);
        for (i, ev) in evs.iter().enumerate() {
            assert_eq!(ev.seq, i as u64);
            assert_eq!(ev.conn, i as u64);
            assert_eq!(ev.fingerprint, 100 + i as u64);
            assert_eq!(ev.kind, TraceKind::FrameAnswered);
        }
        assert!(evs.windows(2).all(|w| w[1].ts_ns >= w[0].ts_ns));
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.overwritten(), 0);
    }

    #[test]
    fn wraparound_keeps_most_recent_and_counts_overwrites() {
        let ring = TraceRing::new(4);
        for i in 0..11u64 {
            ring.emit(TraceEvent { detail: i, ..TraceEvent::new(TraceKind::StoreOp) });
        }
        let evs = ring.snapshot(100);
        assert_eq!(evs.len(), 4);
        assert_eq!(evs.iter().map(|e| e.detail).collect::<Vec<_>>(), vec![7, 8, 9, 10]);
        assert_eq!(ring.overwritten(), 7);
        // `max` trims from the oldest side.
        let last2 = ring.snapshot(2);
        assert_eq!(last2.iter().map(|e| e.detail).collect::<Vec<_>>(), vec![9, 10]);
    }

    #[test]
    fn capacity_rounds_up_and_zero_disables() {
        assert_eq!(TraceRing::new(5).capacity(), 8);
        let off = TraceRing::new(0);
        assert!(!off.enabled());
        off.emit(TraceEvent::new(TraceKind::ConnAccepted));
        assert_eq!(off.recorded(), 0);
        assert!(off.snapshot(10).is_empty());
    }

    #[test]
    fn concurrent_writers_never_yield_torn_events() {
        let ring = std::sync::Arc::new(TraceRing::new(32));
        let writers = 4;
        let per = 5_000u64;
        std::thread::scope(|scope| {
            for w in 0..writers {
                let ring = std::sync::Arc::clone(&ring);
                scope.spawn(move || {
                    for i in 0..per {
                        // fingerprint is derived from detail so a torn
                        // mix of two events is detectable below.
                        let detail = w * per + i;
                        ring.emit(TraceEvent {
                            detail,
                            fingerprint: detail.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            ..TraceEvent::new(TraceKind::FrameAnswered)
                        });
                    }
                });
            }
            let ring = std::sync::Arc::clone(&ring);
            scope.spawn(move || {
                for _ in 0..200 {
                    for ev in ring.snapshot(32) {
                        assert_eq!(
                            ev.fingerprint,
                            ev.detail.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                            "torn event escaped the seqlock check"
                        );
                    }
                }
            });
        });
        assert_eq!(ring.recorded(), writers * per);
    }
}
