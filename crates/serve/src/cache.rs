//! Sharded LRU cache for repeated query patterns.
//!
//! Keys are `(shard id, shard epoch, pattern)`. The epoch component is
//! the whole cache-invalidation story: a hot snapshot swap bumps the
//! shard's epoch, so every entry cached against the old snapshot simply
//! stops being *addressable* — no flush, no scan, no coordination with
//! readers. Stale entries age out through normal LRU eviction. The
//! invariant the serving tests pin: a cache hit returns a value
//! bit-identical to what a cold walk of the *same epoch's* synopsis
//! returns, because that walk is exactly what populated it.
//!
//! Concurrency: the key space is split across segments by key
//! fingerprint, each behind its own mutex, so worker threads serving
//! different patterns rarely contend. Within a segment, entries form a
//! doubly-linked LRU list over a slab; the map from fingerprint to slab
//! slot confirms the full key on every probe (same fingerprint-probe +
//! full-confirm discipline as the build path's `IntervalTable`), so a
//! fingerprint collision can evict a twin but can never answer with the
//! wrong value.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use dpsc_private_count::codec::fnv1a;

/// Slab index meaning "no entry".
const NIL: u32 = u32::MAX;

/// Number of independently locked segments.
const SEGMENTS: usize = 8;

struct Entry {
    /// Full key, confirmed on every probe.
    shard: u32,
    epoch: u64,
    pattern: Box<[u8]>,
    value: f64,
    /// LRU list neighbours (towards MRU / towards LRU).
    prev: u32,
    next: u32,
}

/// One locked segment: fingerprint map + LRU slab.
struct Segment {
    map: HashMap<u64, u32>,
    slab: Vec<Entry>,
    capacity: usize,
    /// Most recently used entry.
    head: u32,
    /// Least recently used entry (next eviction victim).
    tail: u32,
}

impl Segment {
    fn new(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slab: Vec::with_capacity(capacity),
            capacity,
            head: NIL,
            tail: NIL,
        }
    }

    /// Unlinks slot `i` from the LRU list.
    fn unlink(&mut self, i: u32) {
        let (prev, next) = (self.slab[i as usize].prev, self.slab[i as usize].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p as usize].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n as usize].prev = prev,
        }
    }

    /// Links slot `i` at the MRU end.
    fn link_front(&mut self, i: u32) {
        self.slab[i as usize].prev = NIL;
        self.slab[i as usize].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h as usize].prev = i,
        }
        self.head = i;
    }

    fn get(&mut self, fp: u64, shard: u32, epoch: u64, pattern: &[u8]) -> Option<f64> {
        let &i = self.map.get(&fp)?;
        let e = &self.slab[i as usize];
        if e.shard != shard || e.epoch != epoch || &*e.pattern != pattern {
            return None; // fingerprint collision: treat as a miss
        }
        let value = e.value;
        self.unlink(i);
        self.link_front(i);
        Some(value)
    }

    fn insert(&mut self, fp: u64, shard: u32, epoch: u64, pattern: &[u8], value: f64) {
        if self.capacity == 0 {
            return;
        }
        if let Some(&i) = self.map.get(&fp) {
            // Same fingerprint: overwrite in place (collisions evict the
            // twin — the full key stored here keeps gets correct).
            let e = &mut self.slab[i as usize];
            e.shard = shard;
            e.epoch = epoch;
            e.pattern = pattern.into();
            e.value = value;
            self.unlink(i);
            self.link_front(i);
            return;
        }
        let i = if self.slab.len() < self.capacity {
            self.slab.push(Entry {
                shard,
                epoch,
                pattern: pattern.into(),
                value,
                prev: NIL,
                next: NIL,
            });
            (self.slab.len() - 1) as u32
        } else {
            // Evict the LRU entry and reuse its slot.
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "capacity > 0 and slab full implies a tail");
            self.unlink(victim);
            let old_fp = {
                let e = &self.slab[victim as usize];
                key_fingerprint(e.shard, e.epoch, &e.pattern)
            };
            self.map.remove(&old_fp);
            let e = &mut self.slab[victim as usize];
            e.shard = shard;
            e.epoch = epoch;
            e.pattern = pattern.into();
            e.value = value;
            victim
        };
        self.map.insert(fp, i);
        self.link_front(i);
    }
}

/// Fingerprint of a cache key: FNV-1a over shard id, epoch, and pattern
/// (all little-endian). Allocation-free, so the read path never copies
/// the pattern just to probe.
fn key_fingerprint(shard: u32, epoch: u64, pattern: &[u8]) -> u64 {
    let mut prefix = [0u8; 12];
    prefix[..4].copy_from_slice(&shard.to_le_bytes());
    prefix[4..].copy_from_slice(&epoch.to_le_bytes());
    // FNV-1a is byte-serial, so hashing prefix then pattern equals
    // hashing their concatenation.
    let mut h = fnv1a(&prefix);
    for &b in pattern {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The serving-layer query cache: [`SEGMENTS`] independently locked LRU
/// segments plus global hit/miss counters.
pub struct QueryCache {
    segments: Vec<Mutex<Segment>>,
    hits: AtomicU64,
    misses: AtomicU64,
    capacity: usize,
}

impl std::fmt::Debug for QueryCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryCache")
            .field("capacity", &self.capacity)
            .field("entries", &self.entries())
            .field("hits", &self.hits())
            .field("misses", &self.misses())
            .finish()
    }
}

impl QueryCache {
    /// A cache holding at most `capacity` entries, rounded up to a
    /// multiple of the segment count so every segment gets equal slots;
    /// [`Self::capacity`] (and `Stats` over the wire) report the rounded
    /// *effective* capacity, keeping `entries ≤ capacity` a true
    /// invariant. `capacity == 0` disables caching entirely: gets miss
    /// without counting and inserts are dropped.
    pub fn new(capacity: usize) -> Self {
        let per_segment = capacity.div_ceil(SEGMENTS);
        Self {
            segments: (0..SEGMENTS).map(|_| Mutex::new(Segment::new(per_segment))).collect(),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            capacity: per_segment * SEGMENTS,
        }
    }

    fn segment(&self, fp: u64) -> &Mutex<Segment> {
        // High bits pick the segment so the map's low-bit buckets stay
        // well distributed within each segment.
        &self.segments[(fp >> 56) as usize % SEGMENTS]
    }

    /// Cached value for `(shard, epoch, pattern)`, updating recency and
    /// the hit/miss counters.
    pub fn get(&self, shard: u32, epoch: u64, pattern: &[u8]) -> Option<f64> {
        if self.capacity == 0 {
            return None;
        }
        let fp = key_fingerprint(shard, epoch, pattern);
        let got = self
            .segment(fp)
            .lock()
            .expect("cache segment not poisoned")
            .get(fp, shard, epoch, pattern);
        match got {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Caches `value` for `(shard, epoch, pattern)`, evicting the
    /// segment's LRU entry when full.
    pub fn insert(&self, shard: u32, epoch: u64, pattern: &[u8], value: f64) {
        if self.capacity == 0 {
            return;
        }
        let fp = key_fingerprint(shard, epoch, pattern);
        self.segment(fp)
            .lock()
            .expect("cache segment not poisoned")
            .insert(fp, shard, epoch, pattern, value);
    }

    /// Lookups answered from the cache so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Entries currently resident (sums segment sizes; momentarily stale
    /// under concurrent writers, exact when quiescent).
    pub fn entries(&self) -> usize {
        self.segments.iter().map(|s| s.lock().expect("cache segment not poisoned").map.len()).sum()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_returns_the_inserted_bits() {
        let cache = QueryCache::new(64);
        let v = f64::from_bits(0x4009_21FB_5444_2D18); // π, exact bits
        cache.insert(1, 7, b"acgt", v);
        assert_eq!(cache.get(1, 7, b"acgt").map(f64::to_bits), Some(v.to_bits()));
        assert_eq!(cache.hits(), 1);
        assert_eq!(cache.misses(), 0);
    }

    #[test]
    fn epoch_is_part_of_the_key() {
        let cache = QueryCache::new(64);
        cache.insert(1, 1, b"ab", 10.0);
        // Same shard + pattern, new epoch: the old entry is unreachable.
        assert_eq!(cache.get(1, 2, b"ab"), None);
        cache.insert(1, 2, b"ab", 20.0);
        assert_eq!(cache.get(1, 2, b"ab"), Some(20.0));
        assert_eq!(cache.get(1, 1, b"ab"), Some(10.0));
    }

    #[test]
    fn lru_evicts_the_coldest_entry() {
        // One segment's worth of keys that all land in the same segment is
        // hard to force through the fingerprint, so use capacity ≥ SEGMENTS
        // and check global behaviour: with capacity c, after inserting many
        // more than c distinct keys the resident count stays ≤ c.
        let cache = QueryCache::new(32);
        for i in 0..1000u64 {
            cache.insert(0, 1, &i.to_le_bytes(), i as f64);
        }
        assert!(
            cache.entries() <= cache.capacity(),
            "entries {} exceed effective capacity {}",
            cache.entries(),
            cache.capacity()
        );
        // The most recent key is still present.
        assert_eq!(cache.get(0, 1, &999u64.to_le_bytes()), Some(999.0));
    }

    #[test]
    fn recency_protects_hot_keys() {
        let cache = QueryCache::new(SEGMENTS); // one slot per segment
        cache.insert(0, 1, b"hot", 1.0);
        for i in 0..100u64 {
            // Touch the hot key between cold inserts; the cold keys spread
            // over all segments, so the hot key's segment sees evictions
            // too — recency must keep it alive whenever its segment evicts.
            let _ = cache.get(0, 1, b"hot");
            cache.insert(0, 1, &i.to_le_bytes(), 0.0);
        }
        // The hot key survives only if its own segment never evicted it
        // while cold keys shared that segment. With one slot per segment
        // that is not guaranteed — so assert the weaker, always-true
        // invariant: a get never returns a wrong value.
        if let Some(v) = cache.get(0, 1, b"hot") {
            assert_eq!(v, 1.0);
        }
    }

    #[test]
    fn zero_capacity_disables_the_cache() {
        let cache = QueryCache::new(0);
        cache.insert(0, 0, b"x", 1.0);
        assert_eq!(cache.get(0, 0, b"x"), None);
        assert_eq!(cache.entries(), 0);
        assert_eq!(cache.hits() + cache.misses(), 0, "disabled cache counts nothing");
    }
}
