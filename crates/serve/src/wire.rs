//! The versioned binary wire protocol spoken between [`crate::Server`]
//! and [`crate::Client`].
//!
//! Every message is one *frame*: a little-endian `u32` body length
//! followed by the body. The body follows the same codec discipline as
//! the `DPSF` snapshot format ([`FrozenSynopsis::to_bytes`]
//! (dpsc_private_count::FrozenSynopsis::to_bytes)): a 4-byte magic
//! (`DPSQ` for requests, `DPSR` for responses), a `u16` protocol
//! version, the opcode/status bytes, the payload, and a trailing FNV-1a
//! checksum of everything before it. Decoding is defensive throughout —
//! length-checked reads, a hard frame-size cap *before* any allocation,
//! checksum verification — and reports defects through the same typed
//! [`DecodeError`] the snapshot codec uses. Accepted frames are
//! canonical: decoding then re-encoding reproduces the identical bytes.
//!
//! | opcode | request payload | ok-response payload |
//! |---|---|---|
//! | 0 `Query` | shard `u32`, pattern (`u32` len + bytes) | count `f64` |
//! | 1 `QueryBatch` | shard `u32`, count `u32`, patterns | count `u32`, `f64` × count |
//! | 2 `Contains` | shard `u32`, pattern | present `u8` |
//! | 3 `Stats` | — | cache stats + per-shard stats (see [`ServerStats`]) |
//! | 4 `LoadSnapshot` | shard `u32`, `u64` len + `DPSF` bytes | epoch `u64`, node count `u64` |
//! | 5 `Shutdown` | — | — |
//! | 6 `Metrics` | — | counters + latency percentiles + per-shard records (see [`MetricsReport`]) |
//! | 7 `Rollback` | shard `u32`, epoch `u64` | epoch `u64` (the re-installed snapshot's new serving epoch) |
//! | 8 `Trace` | max `u32` | count `u32`, fixed 68-byte [`TraceEvent`] records |
//! | 9 `MetricsText` | — | Prometheus-style UTF-8 exposition (`u32` len + bytes) |
//!
//! An error response carries status `1` and a UTF-8 message instead of
//! the ok payload. Status `2` is `Overloaded` — an empty-payload,
//! *retryable* rejection the daemon sheds load with when its admission
//! bound is hit (the connection is closed after the frame; reconnect and
//! retry with backoff). Floats travel as IEEE-754 bit patterns, so
//! served counts round-trip bit-exactly.

use std::sync::Arc;

use dpsc_private_count::codec::{fnv1a, Cursor, DecodeError};

use crate::trace::{TraceEvent, TraceKind};

/// Magic opening every request body ("DP Serve, Query direction").
pub const MAGIC_REQUEST: [u8; 4] = *b"DPSQ";
/// Magic opening every response body ("DP Serve, Reply direction").
pub const MAGIC_RESPONSE: [u8; 4] = *b"DPSR";
/// Wire protocol version.
pub const VERSION: u16 = 1;
/// Hard cap on a frame body (256 MiB — room for a ~15M-node snapshot),
/// small enough that a corrupt length field cannot OOM the peer (the cap
/// is enforced before any allocation).
pub const MAX_FRAME_LEN: usize = 1 << 28;
/// Hard cap on patterns per `QueryBatch` (and values per response).
/// Bounds the response size a request can demand: `MAX_BATCH` values of
/// 8 bytes stay far inside [`MAX_FRAME_LEN`].
pub const MAX_BATCH: usize = 1 << 20;

/// Opcodes, shared between requests and (echoed in) responses.
const OP_QUERY: u8 = 0;
const OP_QUERY_BATCH: u8 = 1;
const OP_CONTAINS: u8 = 2;
const OP_STATS: u8 = 3;
const OP_LOAD_SNAPSHOT: u8 = 4;
const OP_SHUTDOWN: u8 = 5;
const OP_METRICS: u8 = 6;
const OP_ROLLBACK: u8 = 7;
const OP_TRACE: u8 = 8;
const OP_METRICS_TEXT: u8 = 9;

/// Wire size of one [`TraceEvent`] record inside a `Trace` response.
const TRACE_EVENT_REC: usize = 8 * 7 + 4 * 3;

/// Response status bytes.
const STATUS_OK: u8 = 0;
const STATUS_ERROR: u8 = 1;
const STATUS_OVERLOADED: u8 = 2;

/// A request frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// One noisy count for `pattern` against shard `shard`.
    Query {
        /// Corpus id the query routes to.
        shard: u32,
        /// Pattern bytes.
        pattern: Vec<u8>,
    },
    /// Many counts in one round-trip, all answered from a single shard
    /// epoch (the server pins one snapshot for the whole batch).
    QueryBatch {
        /// Corpus id the batch routes to.
        shard: u32,
        /// Patterns, answered in order.
        patterns: Vec<Vec<u8>>,
    },
    /// Whether the pattern is represented in the shard's synopsis.
    Contains {
        /// Corpus id the probe routes to.
        shard: u32,
        /// Pattern bytes.
        pattern: Vec<u8>,
    },
    /// Operator stats: per-shard epoch/size/utility-bound fields plus
    /// cache counters.
    Stats,
    /// Atomically install (or hot-swap) a shard from serialized `DPSF`
    /// snapshot bytes. Decode + validation happen off the read path.
    LoadSnapshot {
        /// Corpus id to install the snapshot under.
        shard: u32,
        /// `FrozenSynopsis::to_bytes` payload. Shared ownership so the
        /// server can hand the buffer to the shard manager without
        /// copying — an uncompressed v2 snapshot is then served
        /// *borrowed* straight from these bytes.
        snapshot: Arc<[u8]>,
    },
    /// Ask the daemon to stop accepting connections and exit. Honored
    /// only from peers the server's shutdown policy admits (loopback by
    /// default); refused peers get an error response and stay connected.
    Shutdown,
    /// Operator metrics: served qps, per-op counters, latency
    /// percentiles from the fixed-bucket histogram, cache hit rate, and
    /// per-shard epoch/size — see [`MetricsReport`].
    Metrics,
    /// Re-install a prior retained epoch of `shard` from the daemon's
    /// snapshot store (the release-once escape hatch: a bad install is
    /// undone without rebuilding — and re-spending ε on — the synopsis).
    /// Refused when the daemon runs without a store or the epoch is no
    /// longer retained.
    Rollback {
        /// Corpus id to roll back.
        shard: u32,
        /// The *durable* epoch to re-install, as previously reported by
        /// `LoadSnapshot`/`Stats` while it was resident.
        epoch: u64,
    },
    /// Snapshot the most recent trace events from the daemon's ring
    /// buffer (see [`crate::trace::TraceRing`]). Read-only and
    /// non-destructive: the ring is not drained, so the op is idempotent
    /// and safe to retry.
    Trace {
        /// Upper bound on returned events (further capped by the ring's
        /// capacity).
        max: u32,
    },
    /// The [`MetricsReport`] rendered as a Prometheus-style text
    /// exposition — scrapeable without speaking the binary protocol
    /// beyond this one op.
    MetricsText,
}

/// A response frame, decoded.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Query`].
    Query {
        /// The noisy count, bit-identical to a local `FrozenSynopsis::query`.
        value: f64,
    },
    /// Answer to [`Request::QueryBatch`]; `values[i]` answers `patterns[i]`.
    QueryBatch {
        /// Noisy counts in request order.
        values: Vec<f64>,
    },
    /// Answer to [`Request::Contains`].
    Contains {
        /// Whether the pattern has a node in the synopsis.
        present: bool,
    },
    /// Answer to [`Request::Stats`].
    Stats(ServerStats),
    /// Answer to [`Request::LoadSnapshot`].
    LoadSnapshot {
        /// Epoch the new snapshot serves under (strictly increasing).
        epoch: u64,
        /// Node count of the installed synopsis.
        node_count: u64,
    },
    /// Acknowledges [`Request::Shutdown`].
    Shutdown,
    /// Answer to [`Request::Metrics`]. Boxed: the report (per-op
    /// latencies and all) dwarfs every other variant, and metrics is a
    /// rare admin op — one allocation keeps the common `Response` small.
    Metrics(Box<MetricsReport>),
    /// Answer to [`Request::Rollback`].
    Rollback {
        /// The new serving epoch the retained snapshot was re-installed
        /// under (strictly increasing, like every install).
        epoch: u64,
    },
    /// Answer to [`Request::Trace`]: the most recent events in ascending
    /// sequence order. Empty when tracing is disabled
    /// (`trace_capacity = 0`).
    Trace {
        /// Drained event copies (fingerprints and lengths only — never
        /// pattern bytes).
        events: Vec<TraceEvent>,
    },
    /// Answer to [`Request::MetricsText`].
    MetricsText {
        /// The exposition text (`# HELP`/`# TYPE` + `dpsc_*` samples).
        text: String,
    },
    /// The daemon's admission bound is hit: the request was *not*
    /// executed and the connection closes after this frame. Retryable by
    /// construction — reconnect with backoff (see
    /// [`crate::client::RetryPolicy`]).
    Overloaded,
    /// The request could not be served (unknown shard, corrupt
    /// snapshot, …). Carries a human-readable reason.
    Error {
        /// What went wrong.
        message: String,
    },
}

/// Per-request-kind counters inside [`MetricsReport`]. Each field counts
/// answered frames of that kind; `errors` counts error responses of any
/// cause (malformed frames, unknown shards, rejected snapshots, refused
/// shutdowns).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCounts {
    /// `Query` frames answered.
    pub query: u64,
    /// `QueryBatch` frames answered (see `patterns_total` for lookups).
    pub query_batch: u64,
    /// `Contains` frames answered.
    pub contains: u64,
    /// `Stats` frames answered.
    pub stats: u64,
    /// `LoadSnapshot` frames answered (successful installs).
    pub load_snapshot: u64,
    /// `Rollback` frames answered (successful re-installs).
    pub rollback: u64,
    /// `Metrics` frames answered.
    pub metrics: u64,
    /// `Shutdown` frames honored.
    pub shutdown: u64,
    /// `Trace` frames answered.
    pub trace: u64,
    /// `MetricsText` frames answered.
    pub metrics_text: u64,
    /// Error responses sent.
    pub errors: u64,
}

/// One resident shard's identity and serving profile inside
/// [`MetricsReport`]: *what* is serving (epoch), *how big* it is on the
/// wire, and how fast its requests complete; the full utility bounds
/// stay on the `Stats` op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MetricsShard {
    /// Corpus id.
    pub shard_id: u32,
    /// Epoch of the resident snapshot.
    pub epoch: u64,
    /// Size of the resident snapshot's wire encoding in bytes.
    pub serialized_len: u64,
    /// Requests answered against this shard (any op that routes to it).
    pub ops: u64,
    /// Median service latency of this shard's requests, bucket
    /// resolution (0 when none were recorded).
    pub latency_p50_ns: f64,
    /// 99th-percentile service latency of this shard's requests.
    pub latency_p99_ns: f64,
}

/// Latency percentiles of one request kind, from its dedicated
/// fixed-bucket histogram (bucket resolution, like the global pair).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpLatency {
    /// Median service latency in nanoseconds.
    pub p50_ns: f64,
    /// 99th-percentile service latency in nanoseconds.
    pub p99_ns: f64,
}

/// Per-op latency percentiles inside [`MetricsReport`] — one
/// [`OpLatency`] per request kind, so a slow `LoadSnapshot` no longer
/// poisons the readable `Query` p99.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct OpLatencies {
    /// `Query` latency percentiles.
    pub query: OpLatency,
    /// `QueryBatch` latency percentiles.
    pub query_batch: OpLatency,
    /// `Contains` latency percentiles.
    pub contains: OpLatency,
    /// `Stats` latency percentiles.
    pub stats: OpLatency,
    /// `LoadSnapshot` latency percentiles.
    pub load_snapshot: OpLatency,
    /// `Rollback` latency percentiles.
    pub rollback: OpLatency,
    /// `Metrics` latency percentiles.
    pub metrics: OpLatency,
    /// `Shutdown` latency percentiles.
    pub shutdown: OpLatency,
    /// `Trace` latency percentiles.
    pub trace: OpLatency,
    /// `MetricsText` latency percentiles.
    pub metrics_text: OpLatency,
}

/// The [`Response::Metrics`] body: a point-in-time snapshot of the
/// daemon's serving counters (see [`crate::metrics::MetricsRegistry`]).
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsReport {
    /// Nanoseconds since the daemon bound its listener.
    pub uptime_ns: u64,
    /// Connections accepted over the daemon's lifetime.
    pub conns_accepted: u64,
    /// Connections currently open.
    pub conns_open: u64,
    /// Per-op request counters.
    pub ops: OpCounts,
    /// Individual pattern lookups answered (a `QueryBatch` of k adds k).
    pub patterns_total: u64,
    /// Connections shed with an `Overloaded` frame at the admission
    /// bound (each was closed without executing a request).
    pub overloaded_total: u64,
    /// Idle connections reaped by the idle timeout.
    pub idle_reaped_total: u64,
    /// Connections evicted for stalling mid-frame past the read deadline
    /// (slow-loris defense).
    pub deadline_evicted_total: u64,
    /// Shards re-installed from the snapshot store at startup (manifest
    /// replay recoveries).
    pub recoveries_total: u64,
    /// Successful `Rollback` re-installs over the daemon's lifetime.
    pub rollbacks_total: u64,
    /// `patterns_total` over uptime: the lifetime average served qps.
    /// Decays toward 0 on an idle daemon — use `qps_window` for "what is
    /// the daemon doing *now*".
    pub qps: f64,
    /// Windowed throughput: Δ`patterns_total` / Δuptime between this
    /// report and the previous one served by the same daemon. The first
    /// report's window spans the full uptime (equal to `qps`); an idle
    /// window reports 0 without dragging the lifetime average around.
    pub qps_window: f64,
    /// Median per-request service latency (answer computation, network
    /// excluded) from the fixed-bucket histogram — bucket resolution.
    /// p50 and p99 come from one consistent histogram snapshot.
    pub latency_p50_ns: f64,
    /// 99th-percentile service latency, same histogram snapshot.
    pub latency_p99_ns: f64,
    /// Per-op latency percentiles (each op's own histogram).
    pub op_latency: OpLatencies,
    /// Nanoseconds the readiness event loop spent blocked in
    /// `epoll_wait` (0 under the thread-pool core).
    pub loop_wait_ns: u64,
    /// Nanoseconds the readiness event loop spent servicing readiness
    /// events (0 under the thread-pool core).
    pub loop_busy_ns: u64,
    /// `loop_busy_ns / (loop_wait_ns + loop_busy_ns)` — event-loop
    /// utilization in [0, 1]; 0 when neither was recorded.
    pub loop_utilization: f64,
    /// Median accept-to-first-response latency: connection admission to
    /// the first byte of its first response handed to the socket layer.
    pub accept_to_first_p50_ns: f64,
    /// 99th percentile of the same, one consistent snapshot.
    pub accept_to_first_p99_ns: f64,
    /// Times write backpressure parked a connection's reads (pending
    /// output crossed the high-water mark).
    pub parks_total: u64,
    /// Times a parked connection resumed reading (output drained).
    pub unparks_total: u64,
    /// Requests that exceeded the slow-op threshold (0 when disabled).
    pub slow_ops_total: u64,
    /// Configured slow-op threshold in nanoseconds (0 = disabled).
    pub slow_op_threshold_ns: u64,
    /// Trace events ever emitted (including overwritten ones).
    pub trace_events_total: u64,
    /// Trace events no longer retrievable because the ring lapped them.
    pub trace_overwritten_total: u64,
    /// Query-cache counters (same numbers `Stats` reports).
    pub cache: CacheStats,
    /// `hits / (hits + misses)`, 0 when the cache is untouched.
    pub cache_hit_rate: f64,
    /// One record per resident shard, ascending by `shard_id`.
    pub shards: Vec<MetricsShard>,
}

/// Serving-cache counters, part of [`ServerStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to walk the synopsis.
    pub misses: u64,
    /// Entries currently resident.
    pub entries: u64,
    /// Configured capacity (0 disables the cache).
    pub capacity: u64,
}

/// Everything an operator needs to audit one serving shard: identity,
/// epoch, size on the wire, and the utility bounds of what is actually
/// being served.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// Corpus id this shard serves.
    pub shard_id: u32,
    /// Epoch of the resident snapshot.
    pub epoch: u64,
    /// Nodes in the resident synopsis.
    pub node_count: u64,
    /// Size of the snapshot's canonical `DPSF` encoding in bytes.
    pub serialized_len: u64,
    /// Documents in the corpus the synopsis was built from.
    pub n_docs: u64,
    /// Declared maximum document length ℓ.
    pub max_len: u64,
    /// Privacy budget ε of the construction.
    pub epsilon: f64,
    /// Privacy budget δ of the construction (0 for pure DP).
    pub delta: f64,
    /// Overall additive error bound α.
    pub alpha: f64,
    /// Error bound on stored counts.
    pub alpha_counts: f64,
    /// True-count bound for absent strings.
    pub alpha_absent: f64,
}

/// The [`Response::Stats`] body.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerStats {
    /// Cache counters.
    pub cache: CacheStats,
    /// One record per resident shard, ascending by `shard_id`.
    pub shards: Vec<ShardStats>,
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn push_pattern(out: &mut Vec<u8>, pattern: &[u8]) {
    push_u32(out, pattern.len() as u32);
    out.extend_from_slice(pattern);
}

fn take_pattern(cur: &mut Cursor<'_>) -> Result<Vec<u8>, DecodeError> {
    let len = cur.u32()? as usize;
    Ok(cur.take(len)?.to_vec())
}

/// Seals `body` (magic + version + opcode/status + payload so far) into a
/// framed message: appends the checksum, then prefixes the length.
fn seal(mut body: Vec<u8>) -> Vec<u8> {
    let sum = fnv1a(&body);
    body.extend_from_slice(&sum.to_le_bytes());
    assert!(body.len() <= MAX_FRAME_LEN, "frame body exceeds MAX_FRAME_LEN");
    let mut framed = Vec::with_capacity(4 + body.len());
    push_u32(&mut framed, body.len() as u32);
    framed.extend_from_slice(&body);
    framed
}

/// Checks the frame envelope shared by both directions: magic, version,
/// and trailing checksum. Returns a cursor spanning *only* the payload
/// (checksum excluded), so no inner length field — however crafted — can
/// read into or past the checksum bytes.
fn open_body<'a>(body: &'a [u8], magic: [u8; 4]) -> Result<Cursor<'a>, DecodeError> {
    let mut cur = Cursor::new(body);
    let found: [u8; 4] = cur.take(4)?.try_into().expect("4-byte magic");
    if found != magic {
        return Err(DecodeError::BadMagic { found, expected: magic });
    }
    let version = cur.u16()?;
    if version != VERSION {
        return Err(DecodeError::UnsupportedVersion { found: version, expected: VERSION });
    }
    if body.len() < cur.pos() + 8 {
        return Err(DecodeError::Truncated {
            offset: cur.pos(),
            need: 8,
            have: body.len() - cur.pos(),
        });
    }
    let payload_end = body.len() - 8;
    let stored = u64::from_le_bytes(body[payload_end..].try_into().expect("8-byte checksum"));
    let computed = fnv1a(&body[..payload_end]);
    if stored != computed {
        return Err(DecodeError::ChecksumMismatch { stored, computed });
    }
    Ok(Cursor::new(&body[cur.pos()..payload_end]))
}

/// Rejects unconsumed payload bytes — the canonical encodings have none.
fn finish(cur: &Cursor<'_>) -> Result<(), DecodeError> {
    if cur.remaining() != 0 {
        return Err(DecodeError::TrailingGarbage { extra: cur.remaining() });
    }
    Ok(())
}

/// Encodes a request into a complete frame (length prefix included).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.extend_from_slice(&MAGIC_REQUEST);
    body.extend_from_slice(&VERSION.to_le_bytes());
    match req {
        Request::Query { shard, pattern } => {
            body.push(OP_QUERY);
            push_u32(&mut body, *shard);
            push_pattern(&mut body, pattern);
        }
        Request::QueryBatch { shard, patterns } => {
            body.push(OP_QUERY_BATCH);
            push_u32(&mut body, *shard);
            push_u32(&mut body, patterns.len() as u32);
            for p in patterns {
                push_pattern(&mut body, p);
            }
        }
        Request::Contains { shard, pattern } => {
            body.push(OP_CONTAINS);
            push_u32(&mut body, *shard);
            push_pattern(&mut body, pattern);
        }
        Request::Stats => body.push(OP_STATS),
        Request::LoadSnapshot { shard, snapshot } => {
            body.push(OP_LOAD_SNAPSHOT);
            push_u32(&mut body, *shard);
            push_u64(&mut body, snapshot.len() as u64);
            body.extend_from_slice(snapshot);
        }
        Request::Shutdown => body.push(OP_SHUTDOWN),
        Request::Metrics => body.push(OP_METRICS),
        Request::Rollback { shard, epoch } => {
            body.push(OP_ROLLBACK);
            push_u32(&mut body, *shard);
            push_u64(&mut body, *epoch);
        }
        Request::Trace { max } => {
            body.push(OP_TRACE);
            push_u32(&mut body, *max);
        }
        Request::MetricsText => body.push(OP_METRICS_TEXT),
    }
    seal(body)
}

/// Decodes a request frame *body* (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<Request, DecodeError> {
    let mut cur = open_body(body, MAGIC_REQUEST)?;
    let opcode = cur.u8()?;
    let req = match opcode {
        OP_QUERY => {
            let shard = cur.u32()?;
            Request::Query { shard, pattern: take_pattern(&mut cur)? }
        }
        OP_QUERY_BATCH => {
            let shard = cur.u32()?;
            let count = cur.u32()? as usize;
            // Each pattern needs at least its 4-byte length field, so a
            // sane count is bounded by the remaining payload — checked
            // before the allocation, like the snapshot codec's size math.
            // The MAX_BATCH cap additionally keeps the *response* (8
            // bytes per value) inside MAX_FRAME_LEN: without it a ~134
            // MiB request of empty patterns would ask for a ~268 MiB
            // response and trip `seal`'s frame invariant server-side.
            if count > MAX_BATCH || count > cur.remaining() / 4 {
                return Err(DecodeError::BadField {
                    field: "batch count",
                    detail: format!("{count} patterns cannot fit the payload"),
                });
            }
            let mut patterns = Vec::with_capacity(count);
            for _ in 0..count {
                patterns.push(take_pattern(&mut cur)?);
            }
            Request::QueryBatch { shard, patterns }
        }
        OP_CONTAINS => {
            let shard = cur.u32()?;
            Request::Contains { shard, pattern: take_pattern(&mut cur)? }
        }
        OP_STATS => Request::Stats,
        OP_LOAD_SNAPSHOT => {
            let shard = cur.u32()?;
            let len = cur.usize64()?;
            // The one unavoidable copy: frame buffer → Arc. Everything
            // downstream (manager install, borrowed v2 decode) shares it.
            Request::LoadSnapshot { shard, snapshot: cur.take(len)?.into() }
        }
        OP_SHUTDOWN => Request::Shutdown,
        OP_METRICS => Request::Metrics,
        OP_ROLLBACK => Request::Rollback { shard: cur.u32()?, epoch: cur.u64()? },
        OP_TRACE => Request::Trace { max: cur.u32()? },
        OP_METRICS_TEXT => Request::MetricsText,
        other => {
            return Err(DecodeError::BadField {
                field: "opcode",
                detail: format!("unknown opcode {other}"),
            })
        }
    };
    finish(&cur)?;
    Ok(req)
}

/// Encodes a response into a complete frame (length prefix included).
///
/// Layout after magic + version: a status byte, then — for ok responses —
/// the opcode and its payload, or — for errors — a UTF-8 message. Errors
/// carry no opcode, so equal responses have exactly one encoding.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut body = Vec::with_capacity(32);
    body.extend_from_slice(&MAGIC_RESPONSE);
    body.extend_from_slice(&VERSION.to_le_bytes());
    match resp {
        Response::Error { message } => {
            body.push(STATUS_ERROR);
            push_pattern(&mut body, message.as_bytes());
        }
        Response::Overloaded => body.push(STATUS_OVERLOADED),
        ok => {
            body.push(STATUS_OK);
            match ok {
                Response::Query { value } => {
                    body.push(OP_QUERY);
                    push_f64(&mut body, *value);
                }
                Response::QueryBatch { values } => {
                    body.push(OP_QUERY_BATCH);
                    push_u32(&mut body, values.len() as u32);
                    for v in values {
                        push_f64(&mut body, *v);
                    }
                }
                Response::Contains { present } => {
                    body.push(OP_CONTAINS);
                    body.push(*present as u8);
                }
                Response::Stats(stats) => {
                    body.push(OP_STATS);
                    push_u64(&mut body, stats.cache.hits);
                    push_u64(&mut body, stats.cache.misses);
                    push_u64(&mut body, stats.cache.entries);
                    push_u64(&mut body, stats.cache.capacity);
                    push_u32(&mut body, stats.shards.len() as u32);
                    for s in &stats.shards {
                        push_u32(&mut body, s.shard_id);
                        push_u64(&mut body, s.epoch);
                        push_u64(&mut body, s.node_count);
                        push_u64(&mut body, s.serialized_len);
                        push_u64(&mut body, s.n_docs);
                        push_u64(&mut body, s.max_len);
                        push_f64(&mut body, s.epsilon);
                        push_f64(&mut body, s.delta);
                        push_f64(&mut body, s.alpha);
                        push_f64(&mut body, s.alpha_counts);
                        push_f64(&mut body, s.alpha_absent);
                    }
                }
                Response::LoadSnapshot { epoch, node_count } => {
                    body.push(OP_LOAD_SNAPSHOT);
                    push_u64(&mut body, *epoch);
                    push_u64(&mut body, *node_count);
                }
                Response::Shutdown => body.push(OP_SHUTDOWN),
                Response::Rollback { epoch } => {
                    body.push(OP_ROLLBACK);
                    push_u64(&mut body, *epoch);
                }
                Response::Trace { events } => {
                    body.push(OP_TRACE);
                    push_u32(&mut body, events.len() as u32);
                    for ev in events {
                        push_u64(&mut body, ev.seq);
                        push_u64(&mut body, ev.ts_ns);
                        push_u32(&mut body, ev.kind.code());
                        push_u64(&mut body, ev.conn);
                        push_u32(&mut body, ev.shard);
                        push_u64(&mut body, ev.epoch);
                        push_u64(&mut body, ev.fingerprint);
                        push_u32(&mut body, ev.len);
                        push_u64(&mut body, ev.dur_ns);
                        push_u64(&mut body, ev.detail);
                    }
                }
                Response::MetricsText { text } => {
                    body.push(OP_METRICS_TEXT);
                    push_pattern(&mut body, text.as_bytes());
                }
                Response::Metrics(m) => {
                    body.push(OP_METRICS);
                    push_u64(&mut body, m.uptime_ns);
                    push_u64(&mut body, m.conns_accepted);
                    push_u64(&mut body, m.conns_open);
                    push_u64(&mut body, m.ops.query);
                    push_u64(&mut body, m.ops.query_batch);
                    push_u64(&mut body, m.ops.contains);
                    push_u64(&mut body, m.ops.stats);
                    push_u64(&mut body, m.ops.load_snapshot);
                    push_u64(&mut body, m.ops.rollback);
                    push_u64(&mut body, m.ops.metrics);
                    push_u64(&mut body, m.ops.shutdown);
                    push_u64(&mut body, m.ops.trace);
                    push_u64(&mut body, m.ops.metrics_text);
                    push_u64(&mut body, m.ops.errors);
                    push_u64(&mut body, m.patterns_total);
                    push_u64(&mut body, m.overloaded_total);
                    push_u64(&mut body, m.idle_reaped_total);
                    push_u64(&mut body, m.deadline_evicted_total);
                    push_u64(&mut body, m.recoveries_total);
                    push_u64(&mut body, m.rollbacks_total);
                    push_f64(&mut body, m.qps);
                    push_f64(&mut body, m.qps_window);
                    push_f64(&mut body, m.latency_p50_ns);
                    push_f64(&mut body, m.latency_p99_ns);
                    for ol in [
                        &m.op_latency.query,
                        &m.op_latency.query_batch,
                        &m.op_latency.contains,
                        &m.op_latency.stats,
                        &m.op_latency.load_snapshot,
                        &m.op_latency.rollback,
                        &m.op_latency.metrics,
                        &m.op_latency.shutdown,
                        &m.op_latency.trace,
                        &m.op_latency.metrics_text,
                    ] {
                        push_f64(&mut body, ol.p50_ns);
                        push_f64(&mut body, ol.p99_ns);
                    }
                    push_u64(&mut body, m.loop_wait_ns);
                    push_u64(&mut body, m.loop_busy_ns);
                    push_f64(&mut body, m.loop_utilization);
                    push_f64(&mut body, m.accept_to_first_p50_ns);
                    push_f64(&mut body, m.accept_to_first_p99_ns);
                    push_u64(&mut body, m.parks_total);
                    push_u64(&mut body, m.unparks_total);
                    push_u64(&mut body, m.slow_ops_total);
                    push_u64(&mut body, m.slow_op_threshold_ns);
                    push_u64(&mut body, m.trace_events_total);
                    push_u64(&mut body, m.trace_overwritten_total);
                    push_u64(&mut body, m.cache.hits);
                    push_u64(&mut body, m.cache.misses);
                    push_u64(&mut body, m.cache.entries);
                    push_u64(&mut body, m.cache.capacity);
                    push_f64(&mut body, m.cache_hit_rate);
                    push_u32(&mut body, m.shards.len() as u32);
                    for s in &m.shards {
                        push_u32(&mut body, s.shard_id);
                        push_u64(&mut body, s.epoch);
                        push_u64(&mut body, s.serialized_len);
                        push_u64(&mut body, s.ops);
                        push_f64(&mut body, s.latency_p50_ns);
                        push_f64(&mut body, s.latency_p99_ns);
                    }
                }
                Response::Error { .. } | Response::Overloaded => unreachable!("handled above"),
            }
        }
    }
    seal(body)
}

/// Decodes a response frame *body* (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<Response, DecodeError> {
    let mut cur = open_body(body, MAGIC_RESPONSE)?;
    let status = cur.u8()?;
    let resp = match status {
        STATUS_ERROR => {
            let raw = take_pattern(&mut cur)?;
            let message = String::from_utf8(raw).map_err(|_| DecodeError::BadField {
                field: "error message",
                detail: "not valid UTF-8".to_string(),
            })?;
            Response::Error { message }
        }
        STATUS_OVERLOADED => Response::Overloaded,
        STATUS_OK => match cur.u8()? {
            OP_QUERY => Response::Query { value: cur.f64()? },
            OP_QUERY_BATCH => {
                let count = cur.u32()? as usize;
                if count > MAX_BATCH || count > cur.remaining() / 8 {
                    return Err(DecodeError::BadField {
                        field: "batch count",
                        detail: format!("{count} values cannot fit the payload"),
                    });
                }
                let mut values = Vec::with_capacity(count);
                for _ in 0..count {
                    values.push(cur.f64()?);
                }
                Response::QueryBatch { values }
            }
            OP_CONTAINS => {
                let byte = cur.u8()?;
                if byte > 1 {
                    return Err(DecodeError::BadField {
                        field: "contains flag",
                        detail: format!("byte {byte} is not 0/1"),
                    });
                }
                Response::Contains { present: byte == 1 }
            }
            OP_STATS => {
                let cache = CacheStats {
                    hits: cur.u64()?,
                    misses: cur.u64()?,
                    entries: cur.u64()?,
                    capacity: cur.u64()?,
                };
                let count = cur.u32()? as usize;
                const SHARD_REC: usize = 4 + 8 * 10;
                if count > cur.remaining() / SHARD_REC {
                    return Err(DecodeError::BadField {
                        field: "shard count",
                        detail: format!("{count} records cannot fit the payload"),
                    });
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(ShardStats {
                        shard_id: cur.u32()?,
                        epoch: cur.u64()?,
                        node_count: cur.u64()?,
                        serialized_len: cur.u64()?,
                        n_docs: cur.u64()?,
                        max_len: cur.u64()?,
                        epsilon: cur.f64()?,
                        delta: cur.f64()?,
                        alpha: cur.f64()?,
                        alpha_counts: cur.f64()?,
                        alpha_absent: cur.f64()?,
                    });
                }
                Response::Stats(ServerStats { cache, shards })
            }
            OP_LOAD_SNAPSHOT => {
                Response::LoadSnapshot { epoch: cur.u64()?, node_count: cur.u64()? }
            }
            OP_SHUTDOWN => Response::Shutdown,
            OP_ROLLBACK => Response::Rollback { epoch: cur.u64()? },
            OP_METRICS => {
                let uptime_ns = cur.u64()?;
                let conns_accepted = cur.u64()?;
                let conns_open = cur.u64()?;
                let ops = OpCounts {
                    query: cur.u64()?,
                    query_batch: cur.u64()?,
                    contains: cur.u64()?,
                    stats: cur.u64()?,
                    load_snapshot: cur.u64()?,
                    rollback: cur.u64()?,
                    metrics: cur.u64()?,
                    shutdown: cur.u64()?,
                    trace: cur.u64()?,
                    metrics_text: cur.u64()?,
                    errors: cur.u64()?,
                };
                let patterns_total = cur.u64()?;
                let overloaded_total = cur.u64()?;
                let idle_reaped_total = cur.u64()?;
                let deadline_evicted_total = cur.u64()?;
                let recoveries_total = cur.u64()?;
                let rollbacks_total = cur.u64()?;
                let qps = cur.f64()?;
                let qps_window = cur.f64()?;
                let latency_p50_ns = cur.f64()?;
                let latency_p99_ns = cur.f64()?;
                let mut ol = [OpLatency::default(); 10];
                for o in ol.iter_mut() {
                    *o = OpLatency { p50_ns: cur.f64()?, p99_ns: cur.f64()? };
                }
                let op_latency = OpLatencies {
                    query: ol[0],
                    query_batch: ol[1],
                    contains: ol[2],
                    stats: ol[3],
                    load_snapshot: ol[4],
                    rollback: ol[5],
                    metrics: ol[6],
                    shutdown: ol[7],
                    trace: ol[8],
                    metrics_text: ol[9],
                };
                let loop_wait_ns = cur.u64()?;
                let loop_busy_ns = cur.u64()?;
                let loop_utilization = cur.f64()?;
                let accept_to_first_p50_ns = cur.f64()?;
                let accept_to_first_p99_ns = cur.f64()?;
                let parks_total = cur.u64()?;
                let unparks_total = cur.u64()?;
                let slow_ops_total = cur.u64()?;
                let slow_op_threshold_ns = cur.u64()?;
                let trace_events_total = cur.u64()?;
                let trace_overwritten_total = cur.u64()?;
                let cache = CacheStats {
                    hits: cur.u64()?,
                    misses: cur.u64()?,
                    entries: cur.u64()?,
                    capacity: cur.u64()?,
                };
                let cache_hit_rate = cur.f64()?;
                let count = cur.u32()? as usize;
                const METRICS_SHARD_REC: usize = 4 + 8 + 8 + 8 + 8 + 8;
                if count > cur.remaining() / METRICS_SHARD_REC {
                    return Err(DecodeError::BadField {
                        field: "metrics shard count",
                        detail: format!("{count} records cannot fit the payload"),
                    });
                }
                let mut shards = Vec::with_capacity(count);
                for _ in 0..count {
                    shards.push(MetricsShard {
                        shard_id: cur.u32()?,
                        epoch: cur.u64()?,
                        serialized_len: cur.u64()?,
                        ops: cur.u64()?,
                        latency_p50_ns: cur.f64()?,
                        latency_p99_ns: cur.f64()?,
                    });
                }
                Response::Metrics(Box::new(MetricsReport {
                    uptime_ns,
                    conns_accepted,
                    conns_open,
                    ops,
                    patterns_total,
                    overloaded_total,
                    idle_reaped_total,
                    deadline_evicted_total,
                    recoveries_total,
                    rollbacks_total,
                    qps,
                    qps_window,
                    latency_p50_ns,
                    latency_p99_ns,
                    op_latency,
                    loop_wait_ns,
                    loop_busy_ns,
                    loop_utilization,
                    accept_to_first_p50_ns,
                    accept_to_first_p99_ns,
                    parks_total,
                    unparks_total,
                    slow_ops_total,
                    slow_op_threshold_ns,
                    trace_events_total,
                    trace_overwritten_total,
                    cache,
                    cache_hit_rate,
                    shards,
                }))
            }
            OP_TRACE => {
                let count = cur.u32()? as usize;
                if count > cur.remaining() / TRACE_EVENT_REC {
                    return Err(DecodeError::BadField {
                        field: "trace event count",
                        detail: format!("{count} records cannot fit the payload"),
                    });
                }
                let mut events = Vec::with_capacity(count);
                for _ in 0..count {
                    let seq = cur.u64()?;
                    let ts_ns = cur.u64()?;
                    let code = cur.u32()?;
                    let kind = TraceKind::from_code(code).ok_or_else(|| DecodeError::BadField {
                        field: "trace kind",
                        detail: format!("unknown trace kind {code}"),
                    })?;
                    events.push(TraceEvent {
                        seq,
                        ts_ns,
                        kind,
                        conn: cur.u64()?,
                        shard: cur.u32()?,
                        epoch: cur.u64()?,
                        fingerprint: cur.u64()?,
                        len: cur.u32()?,
                        dur_ns: cur.u64()?,
                        detail: cur.u64()?,
                    });
                }
                Response::Trace { events }
            }
            OP_METRICS_TEXT => {
                let raw = take_pattern(&mut cur)?;
                let text = String::from_utf8(raw).map_err(|_| DecodeError::BadField {
                    field: "metrics text",
                    detail: "not valid UTF-8".to_string(),
                })?;
                Response::MetricsText { text }
            }
            other => {
                return Err(DecodeError::BadField {
                    field: "opcode",
                    detail: format!("unknown opcode {other}"),
                })
            }
        },
        other => {
            return Err(DecodeError::BadField {
                field: "status",
                detail: format!("unknown status {other}"),
            })
        }
    };
    finish(&cur)?;
    Ok(resp)
}

/// Inspects `buf` for a complete frame. Returns `Ok(None)` when more
/// bytes are needed, `Ok(Some(total_len))` when `buf[4..total_len]` is a
/// complete body, and `Err` when the declared length exceeds
/// [`MAX_FRAME_LEN`] (the connection should be dropped — resynchronizing
/// an LE byte stream after a corrupt length is not possible).
pub fn frame_len(buf: &[u8]) -> Result<Option<usize>, DecodeError> {
    if buf.len() < 4 {
        return Ok(None);
    }
    let body_len = u32::from_le_bytes(buf[..4].try_into().expect("4-byte length")) as usize;
    if body_len > MAX_FRAME_LEN {
        return Err(DecodeError::BadField {
            field: "frame length",
            detail: format!("{body_len} exceeds the {MAX_FRAME_LEN}-byte cap"),
        });
    }
    if buf.len() < 4 + body_len {
        return Ok(None);
    }
    Ok(Some(4 + body_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<Request> {
        vec![
            Request::Query { shard: 0, pattern: b"acgt".to_vec() },
            Request::Query { shard: 7, pattern: Vec::new() },
            Request::QueryBatch {
                shard: 3,
                patterns: vec![b"a".to_vec(), Vec::new(), b"zzzz".to_vec()],
            },
            Request::QueryBatch { shard: 1, patterns: Vec::new() },
            Request::Contains { shard: 2, pattern: b"ab".to_vec() },
            Request::Stats,
            Request::LoadSnapshot { shard: 9, snapshot: vec![1, 2, 3, 4, 5].into() },
            Request::Shutdown,
            Request::Metrics,
            Request::Rollback { shard: 4, epoch: 17 },
            Request::Trace { max: 256 },
            Request::Trace { max: 0 },
            Request::MetricsText,
        ]
    }

    fn sample_responses() -> Vec<Response> {
        vec![
            Response::Query { value: -1.5 },
            Response::Query { value: f64::NEG_INFINITY },
            Response::QueryBatch { values: vec![0.0, -0.0, 3.25] },
            Response::QueryBatch { values: Vec::new() },
            Response::Contains { present: true },
            Response::Contains { present: false },
            Response::Stats(ServerStats {
                cache: CacheStats { hits: 10, misses: 3, entries: 5, capacity: 1024 },
                shards: vec![ShardStats {
                    shard_id: 1,
                    epoch: 42,
                    node_count: 1000,
                    serialized_len: 8096,
                    n_docs: 64,
                    max_len: 32,
                    epsilon: 2.0,
                    delta: 1e-9,
                    alpha: 12.5,
                    alpha_counts: 12.5,
                    alpha_absent: 8.0,
                }],
            }),
            Response::Stats(ServerStats { cache: CacheStats::default(), shards: Vec::new() }),
            Response::LoadSnapshot { epoch: 3, node_count: 17 },
            Response::Shutdown,
            Response::Metrics(Box::new(MetricsReport {
                uptime_ns: 123_456_789,
                conns_accepted: 4096,
                conns_open: 17,
                ops: OpCounts {
                    query: 10,
                    query_batch: 20,
                    contains: 3,
                    stats: 2,
                    load_snapshot: 4,
                    rollback: 2,
                    metrics: 1,
                    shutdown: 0,
                    trace: 6,
                    metrics_text: 2,
                    errors: 5,
                },
                patterns_total: 330,
                overloaded_total: 7,
                idle_reaped_total: 2,
                deadline_evicted_total: 1,
                recoveries_total: 3,
                rollbacks_total: 2,
                qps: 2_672_001.5,
                qps_window: 1_900_432.25,
                latency_p50_ns: 768.0,
                latency_p99_ns: 3072.0,
                op_latency: OpLatencies {
                    query: OpLatency { p50_ns: 768.0, p99_ns: 1536.0 },
                    query_batch: OpLatency { p50_ns: 6144.0, p99_ns: 24576.0 },
                    contains: OpLatency { p50_ns: 384.0, p99_ns: 768.0 },
                    stats: OpLatency { p50_ns: 1536.0, p99_ns: 1536.0 },
                    load_snapshot: OpLatency { p50_ns: 786_432.0, p99_ns: 1_572_864.0 },
                    rollback: OpLatency { p50_ns: 393_216.0, p99_ns: 393_216.0 },
                    metrics: OpLatency { p50_ns: 1536.0, p99_ns: 1536.0 },
                    shutdown: OpLatency::default(),
                    trace: OpLatency { p50_ns: 3072.0, p99_ns: 6144.0 },
                    metrics_text: OpLatency { p50_ns: 3072.0, p99_ns: 3072.0 },
                },
                loop_wait_ns: 90_000_000,
                loop_busy_ns: 33_456_789,
                loop_utilization: 33_456_789.0 / 123_456_789.0,
                accept_to_first_p50_ns: 98_304.0,
                accept_to_first_p99_ns: 393_216.0,
                parks_total: 12,
                unparks_total: 12,
                slow_ops_total: 3,
                slow_op_threshold_ns: 1_000_000,
                trace_events_total: 4_321,
                trace_overwritten_total: 225,
                cache: CacheStats { hits: 200, misses: 130, entries: 64, capacity: 8192 },
                cache_hit_rate: 200.0 / 330.0,
                shards: vec![
                    MetricsShard {
                        shard_id: 0,
                        epoch: 3,
                        serialized_len: 5120,
                        ops: 21,
                        latency_p50_ns: 768.0,
                        latency_p99_ns: 3072.0,
                    },
                    MetricsShard {
                        shard_id: 9,
                        epoch: 7,
                        serialized_len: 8008,
                        ops: 12,
                        latency_p50_ns: 384.0,
                        latency_p99_ns: 1536.0,
                    },
                ],
            })),
            Response::Metrics(Box::new(MetricsReport {
                uptime_ns: 1,
                conns_accepted: 0,
                conns_open: 0,
                ops: OpCounts::default(),
                patterns_total: 0,
                overloaded_total: 0,
                idle_reaped_total: 0,
                deadline_evicted_total: 0,
                recoveries_total: 0,
                rollbacks_total: 0,
                qps: 0.0,
                qps_window: 0.0,
                latency_p50_ns: 0.0,
                latency_p99_ns: 0.0,
                op_latency: OpLatencies::default(),
                loop_wait_ns: 0,
                loop_busy_ns: 0,
                loop_utilization: 0.0,
                accept_to_first_p50_ns: 0.0,
                accept_to_first_p99_ns: 0.0,
                parks_total: 0,
                unparks_total: 0,
                slow_ops_total: 0,
                slow_op_threshold_ns: 0,
                trace_events_total: 0,
                trace_overwritten_total: 0,
                cache: CacheStats::default(),
                cache_hit_rate: 0.0,
                shards: Vec::new(),
            })),
            Response::Rollback { epoch: 41 },
            Response::Trace {
                events: vec![
                    TraceEvent {
                        seq: 17,
                        ts_ns: 1_234_567,
                        kind: TraceKind::ConnAccepted,
                        conn: 3,
                        shard: crate::trace::NO_SHARD,
                        epoch: 0,
                        fingerprint: 0,
                        len: 0,
                        dur_ns: 0,
                        detail: 0,
                    },
                    TraceEvent {
                        seq: 18,
                        ts_ns: 1_238_901,
                        kind: TraceKind::FrameAnswered,
                        conn: 3,
                        shard: 2,
                        epoch: 0,
                        fingerprint: 0xCBF2_9CE4_8422_2325,
                        len: 4,
                        dur_ns: 812,
                        detail: 0,
                    },
                    TraceEvent {
                        seq: 19,
                        ts_ns: 1_500_000,
                        kind: TraceKind::StoreOp,
                        conn: 0,
                        shard: 2,
                        epoch: 5,
                        fingerprint: 0,
                        len: 0,
                        dur_ns: 44_000,
                        detail: 5,
                    },
                ],
            },
            Response::Trace { events: Vec::new() },
            Response::MetricsText {
                text: "# TYPE dpsc_patterns_total counter\ndpsc_patterns_total 330\n".to_string(),
            },
            Response::MetricsText { text: String::new() },
            Response::Overloaded,
            Response::Error { message: "unknown shard 12".to_string() },
        ]
    }

    #[test]
    fn requests_round_trip_canonically() {
        for req in sample_requests() {
            let framed = encode_request(&req);
            let total = frame_len(&framed).unwrap().expect("complete frame");
            assert_eq!(total, framed.len());
            let back = decode_request(&framed[4..total]).expect("decodes");
            assert_eq!(back, req);
            assert_eq!(encode_request(&back), framed, "canonical re-encode");
        }
    }

    #[test]
    fn responses_round_trip_canonically() {
        for resp in sample_responses() {
            let framed = encode_response(&resp);
            let total = frame_len(&framed).unwrap().expect("complete frame");
            assert_eq!(total, framed.len());
            let back = decode_response(&framed[4..total]).expect("decodes");
            // NaN-free samples: PartialEq is exact here.
            assert_eq!(back, resp);
            assert_eq!(encode_response(&back), framed, "canonical re-encode");
        }
    }

    #[test]
    fn float_payloads_round_trip_bitwise() {
        let value = f64::from_bits(0x7ff8_0000_0000_1234); // a signaling-ish NaN
        let framed = encode_response(&Response::Query { value });
        match decode_response(&framed[4..]).expect("decodes") {
            Response::Query { value: v } => assert_eq!(v.to_bits(), value.to_bits()),
            other => panic!("wrong variant {other:?}"),
        }
    }

    #[test]
    fn every_request_truncation_errors() {
        for req in sample_requests() {
            let framed = encode_request(&req);
            for len in 4..framed.len() {
                assert!(
                    decode_request(&framed[4..len]).is_err(),
                    "{req:?}: prefix of length {len} parsed"
                );
            }
        }
    }

    #[test]
    fn request_direction_confusion_is_rejected() {
        // Feeding a response body to the request decoder (and vice versa)
        // fails on the magic, not deeper in.
        let req = encode_request(&Request::Stats);
        let resp = encode_response(&Response::Shutdown);
        assert!(matches!(decode_response(&req[4..]), Err(DecodeError::BadMagic { .. })));
        assert!(matches!(decode_request(&resp[4..]), Err(DecodeError::BadMagic { .. })));
    }

    /// Rewrites `body[at..at+patch.len()]` and re-stamps the trailing
    /// checksum, simulating an adversary who keeps the frame valid.
    fn patch_and_restamp(body: &[u8], at: usize, patch: &[u8]) -> Vec<u8> {
        let mut out = body.to_vec();
        out[at..at + patch.len()].copy_from_slice(patch);
        let end = out.len() - 8;
        let sum = fnv1a(&out[..end]);
        out[end..].copy_from_slice(&sum.to_le_bytes());
        out
    }

    #[test]
    fn length_field_overrunning_into_the_checksum_errors() {
        // Query body: magic(4) version(2) opcode(1) shard(4) patlen(4)
        // pat(2) checksum(8). Claiming a 6-byte pattern over 2 real
        // payload bytes reaches into the checksum region; with the
        // checksum re-stamped the envelope verifies, so only the
        // payload-bounded cursor stands between this and reading (or
        // underflowing the trailing-garbage math on) the checksum bytes.
        let framed = encode_request(&Request::Query { shard: 1, pattern: b"ab".to_vec() });
        let forged = patch_and_restamp(&framed[4..], 4 + 2 + 1 + 4, &6u32.to_le_bytes());
        match decode_request(&forged) {
            Err(DecodeError::Truncated { .. }) => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn batch_counts_beyond_max_batch_are_rejected() {
        // A huge declared count must fail on the count field even when
        // the frame itself is small…
        let framed = encode_request(&Request::QueryBatch { shard: 0, patterns: Vec::new() });
        let forged =
            patch_and_restamp(&framed[4..], 4 + 2 + 1 + 4, &((MAX_BATCH as u32) + 1).to_le_bytes());
        match decode_request(&forged) {
            Err(DecodeError::BadField { field: "batch count", .. }) => {}
            other => panic!("expected batch-count rejection, got {other:?}"),
        }
        // …and MAX_BATCH itself bounds the response inside MAX_FRAME_LEN.
        const { assert!(8 * MAX_BATCH + 64 <= MAX_FRAME_LEN) }
    }

    #[test]
    fn unknown_trace_kind_is_rejected() {
        let resp = Response::Trace { events: vec![TraceEvent::new(TraceKind::Flush)] };
        let framed = encode_response(&resp);
        // Body: magic(4) version(2) status(1) opcode(1) count(4) seq(8)
        // ts(8) kind(4) — forge the kind code, keeping the frame valid.
        let forged =
            patch_and_restamp(&framed[4..], 4 + 2 + 1 + 1 + 4 + 8 + 8, &999u32.to_le_bytes());
        match decode_response(&forged) {
            Err(DecodeError::BadField { field: "trace kind", .. }) => {}
            other => panic!("expected trace-kind rejection, got {other:?}"),
        }
    }

    #[test]
    fn oversized_frame_length_is_rejected_before_allocation() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        assert!(frame_len(&buf).is_err());
    }

    #[test]
    fn incomplete_frames_ask_for_more_bytes() {
        let framed = encode_request(&Request::Stats);
        for len in 0..framed.len() {
            assert_eq!(frame_len(&framed[..len]).unwrap(), None, "prefix {len}");
        }
        assert_eq!(frame_len(&framed).unwrap(), Some(framed.len()));
        // Extra bytes after a complete frame belong to the next frame.
        let mut two = framed.clone();
        two.extend_from_slice(&framed);
        assert_eq!(frame_len(&two).unwrap(), Some(framed.len()));
    }

    #[test]
    fn single_bit_flips_are_rejected() {
        let framed = encode_request(&Request::Query { shard: 5, pattern: b"acgt".to_vec() });
        let body = &framed[4..];
        for pos in 0..body.len() {
            for bit in 0..8 {
                let mut corrupt = body.to_vec();
                corrupt[pos] ^= 1 << bit;
                assert!(
                    decode_request(&corrupt).is_err(),
                    "bit {bit} of body byte {pos} flipped silently"
                );
            }
        }
    }
}
