//! Blocking client for the serving daemon.
//!
//! [`Client`] wraps one TCP connection and offers a typed method per
//! request kind plus [`Client::pipeline`], which ships many requests in
//! one write and reads the responses back in order — that is the path
//! that exercises the server's per-connection batching (the server
//! drains all pipelined frames in one round and answers them against a
//! single pinned snapshot per shard).

use std::fmt;
use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};

use dpsc_private_count::codec::DecodeError;

use crate::wire::{
    decode_response, encode_request, MetricsReport, Request, Response, ServerStats, MAX_FRAME_LEN,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure.
    Io(std::io::Error),
    /// The server's bytes did not decode as a response frame.
    Decode(DecodeError),
    /// The server answered with an error response.
    Server(String),
    /// The server answered with a well-formed response of the wrong kind.
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Decode(e) => write!(f, "protocol decode error: {e}"),
            Self::Server(msg) => write!(f, "server error: {msg}"),
            Self::UnexpectedResponse(what) => write!(f, "unexpected response (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

/// One blocking connection to a [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since the protocol is
    /// request/response sized well below the MTU).
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Reads exactly one response frame.
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut len_bytes = [0u8; 4];
        self.stream.read_exact(&mut len_bytes)?;
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(ClientError::Decode(DecodeError::BadField {
                field: "frame length",
                detail: format!("{body_len} exceeds the {MAX_FRAME_LEN}-byte cap"),
            }));
        }
        let mut body = vec![0u8; body_len];
        self.stream.read_exact(&mut body)?;
        Ok(decode_response(&body)?)
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream.write_all(&encode_request(req))?;
        self.read_response()
    }

    /// Ships `requests` back-to-back and reads the responses in order.
    /// The server drains each burst in one batched round (single snapshot
    /// pin per shard, single response flush).
    ///
    /// Writes are flushed — and their responses drained — every ~32 KiB
    /// rather than all at once: with both directions buffered in the
    /// kernel, writing an unbounded burst before reading anything can
    /// deadlock once the server blocks flushing answers we are not yet
    /// reading. Bounding the unread-response backlog keeps arbitrarily
    /// large bursts safe.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        const CHUNK_BYTES: usize = 32 * 1024;
        let mut responses = Vec::with_capacity(requests.len());
        let mut buf: Vec<u8> = Vec::new();
        let mut pending = 0usize;
        for req in requests {
            buf.extend_from_slice(&encode_request(req));
            pending += 1;
            if buf.len() >= CHUNK_BYTES {
                self.stream.write_all(&buf)?;
                buf.clear();
                for _ in 0..pending {
                    responses.push(self.read_response()?);
                }
                pending = 0;
            }
        }
        if !buf.is_empty() {
            self.stream.write_all(&buf)?;
        }
        for _ in 0..pending {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    /// Noisy count for `pattern` on `shard` — bit-identical to a local
    /// `FrozenSynopsis::query` against the shard's resident snapshot.
    pub fn query(&mut self, shard: u32, pattern: &[u8]) -> Result<f64, ClientError> {
        match self.call(&Request::Query { shard, pattern: pattern.to_vec() })? {
            Response::Query { value } => Ok(value),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("Query")),
        }
    }

    /// Batched counts on one shard; `values[i]` answers `patterns[i]`,
    /// all from a single epoch.
    pub fn query_batch(&mut self, shard: u32, patterns: &[&[u8]]) -> Result<Vec<f64>, ClientError> {
        let req =
            Request::QueryBatch { shard, patterns: patterns.iter().map(|p| p.to_vec()).collect() };
        match self.call(&req)? {
            Response::QueryBatch { values } => Ok(values),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("QueryBatch")),
        }
    }

    /// Whether `pattern` has a node in the shard's synopsis.
    pub fn contains(&mut self, shard: u32, pattern: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Request::Contains { shard, pattern: pattern.to_vec() })? {
            Response::Contains { present } => Ok(present),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("Contains")),
        }
    }

    /// Operator stats: per-shard epoch/size/utility bounds + cache counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("Stats")),
        }
    }

    /// Operator metrics: served qps, per-op counters, latency
    /// percentiles, cache hit rate, and per-shard epoch/size.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(report) => Ok(report),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("Metrics")),
        }
    }

    /// Installs (or hot-swaps) `shard` from serialized snapshot bytes;
    /// returns the new epoch.
    pub fn load_snapshot(&mut self, shard: u32, snapshot: &[u8]) -> Result<u64, ClientError> {
        let req = Request::LoadSnapshot { shard, snapshot: snapshot.to_vec().into() };
        match self.call(&req)? {
            Response::LoadSnapshot { epoch, .. } => Ok(epoch),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("LoadSnapshot")),
        }
    }

    /// Asks the daemon to exit; consumes the client (the connection is
    /// closed by the server after the acknowledgement).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            Response::Error { message } => Err(ClientError::Server(message)),
            _ => Err(ClientError::UnexpectedResponse("Shutdown")),
        }
    }
}
