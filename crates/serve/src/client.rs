//! Blocking client for the serving daemon.
//!
//! [`Client`] wraps one TCP connection and offers a typed method per
//! request kind plus [`Client::pipeline`], which ships many requests in
//! one write and reads the responses back in order — that is the path
//! that exercises the server's per-connection batching (the server
//! drains all pipelined frames in one round and answers them against a
//! single pinned snapshot per shard).
//!
//! Two degradation knobs ride along:
//!
//! * [`ClientConfig`] — connect and per-op I/O timeouts, so a dead or
//!   wedged server surfaces as a timely [`ClientError::Io`] instead of
//!   hanging the caller forever.
//! * [`RetryPolicy`] — capped exponential backoff with deterministic
//!   jitter. [`Client::call_with_retry`] retries an
//!   [`Overloaded`](ClientError::Overloaded) shed unconditionally (the
//!   server refused *before* executing anything) but retries transport
//!   failures only for idempotent reads — a `LoadSnapshot` or
//!   `Rollback` whose connection died mid-flight may have committed, so
//!   blind replay could double-install.

use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use dpsc_private_count::codec::DecodeError;

use crate::trace::TraceEvent;
use crate::wire::{
    decode_response, encode_request, MetricsReport, Request, Response, ServerStats, MAX_FRAME_LEN,
};

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (including a `ClientConfig::io_timeout` expiry,
    /// which surfaces as `WouldBlock`/`TimedOut`).
    Io(std::io::Error),
    /// The server's bytes did not decode as a response frame.
    Decode(DecodeError),
    /// The server answered with an error response.
    Server(String),
    /// The server shed this connection at admission (nothing executed);
    /// retry after backoff, e.g. via [`Client::call_with_retry`].
    Overloaded,
    /// The server answered with a well-formed response of the wrong kind.
    UnexpectedResponse(&'static str),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "io error: {e}"),
            Self::Decode(e) => write!(f, "protocol decode error: {e}"),
            Self::Server(msg) => write!(f, "server error: {msg}"),
            Self::Overloaded => write!(f, "server overloaded (retryable)"),
            Self::UnexpectedResponse(what) => write!(f, "unexpected response (wanted {what})"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DecodeError> for ClientError {
    fn from(e: DecodeError) -> Self {
        Self::Decode(e)
    }
}

/// Connection-level timeouts. The default (both `None`) keeps the
/// historical blocking behavior.
#[derive(Debug, Clone, Default)]
pub struct ClientConfig {
    /// Bound on TCP connection establishment per resolved address.
    pub connect_timeout: Option<Duration>,
    /// Bound on each socket read/write (one frame may take several).
    pub io_timeout: Option<Duration>,
}

/// Capped exponential backoff with deterministic jitter for
/// [`Client::call_with_retry`]. Delay for attempt `n` is
/// `min(base_delay · 2ⁿ, max_delay)` scaled by a jitter factor in
/// `[0.5, 1.0)` derived from `jitter_seed` and `n` — deterministic, so
/// test schedules are reproducible, yet decorrelated across clients
/// with different seeds.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = never retry).
    pub max_retries: u32,
    /// First backoff delay.
    pub base_delay: Duration,
    /// Backoff growth cap.
    pub max_delay: Duration,
    /// Seed decorrelating jitter across clients.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_secs(1),
            jitter_seed: 0x9E37_79B9_7F4A_7C15,
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (0-based).
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base_delay.saturating_mul(1u32 << attempt.min(20));
        let capped = exp.min(self.max_delay);
        // splitmix64 of (seed, attempt) → jitter factor in [0.5, 1.0).
        let mut x = self
            .jitter_seed
            .wrapping_add((u64::from(attempt) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let frac = 0.5 + (x >> 11) as f64 / (1u64 << 53) as f64 * 0.5;
        capped.mul_f64(frac)
    }
}

/// Maps a non-matching response to the right typed error.
fn fail<T>(resp: Response, wanted: &'static str) -> Result<T, ClientError> {
    match resp {
        Response::Error { message } => Err(ClientError::Server(message)),
        Response::Overloaded => Err(ClientError::Overloaded),
        _ => Err(ClientError::UnexpectedResponse(wanted)),
    }
}

/// One blocking connection to a [`crate::Server`].
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    peer: SocketAddr,
    config: ClientConfig,
}

impl Client {
    /// Connects (with `TCP_NODELAY`, since the protocol is
    /// request/response sized well below the MTU) with no timeouts.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> std::io::Result<Self> {
        Self::connect_with(addr, ClientConfig::default())
    }

    /// Connects with explicit timeouts. `connect_timeout` bounds the TCP
    /// handshake per resolved address; `io_timeout` is installed as the
    /// socket read *and* write timeout for every subsequent call.
    pub fn connect_with<A: ToSocketAddrs>(addr: A, config: ClientConfig) -> std::io::Result<Self> {
        let mut last_err = None;
        for candidate in addr.to_socket_addrs()? {
            let attempt = match config.connect_timeout {
                Some(t) => TcpStream::connect_timeout(&candidate, t),
                None => TcpStream::connect(candidate),
            };
            match attempt {
                Ok(stream) => {
                    stream.set_nodelay(true)?;
                    stream.set_read_timeout(config.io_timeout)?;
                    stream.set_write_timeout(config.io_timeout)?;
                    let peer = stream.peer_addr()?;
                    return Ok(Self { stream, peer, config });
                }
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            std::io::Error::new(ErrorKind::InvalidInput, "address resolved to nothing")
        }))
    }

    /// The server address this client is (or was) connected to.
    pub fn peer(&self) -> SocketAddr {
        self.peer
    }

    /// Reads exactly one response frame.
    fn read_response(&mut self) -> Result<Response, ClientError> {
        let mut len_bytes = [0u8; 4];
        self.stream.read_exact(&mut len_bytes)?;
        let body_len = u32::from_le_bytes(len_bytes) as usize;
        if body_len > MAX_FRAME_LEN {
            return Err(ClientError::Decode(DecodeError::BadField {
                field: "frame length",
                detail: format!("{body_len} exceeds the {MAX_FRAME_LEN}-byte cap"),
            }));
        }
        let mut body = vec![0u8; body_len];
        self.stream.read_exact(&mut body)?;
        Ok(decode_response(&body)?)
    }

    /// One request, one response.
    pub fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        self.stream.write_all(&encode_request(req))?;
        self.read_response()
    }

    /// Ships `requests` back-to-back and reads the responses in order.
    /// The server drains each burst in one batched round (single snapshot
    /// pin per shard, single response flush).
    ///
    /// Writes are flushed — and their responses drained — every ~32 KiB
    /// rather than all at once: with both directions buffered in the
    /// kernel, writing an unbounded burst before reading anything can
    /// deadlock once the server blocks flushing answers we are not yet
    /// reading. Bounding the unread-response backlog keeps arbitrarily
    /// large bursts safe.
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        const CHUNK_BYTES: usize = 32 * 1024;
        let mut responses = Vec::with_capacity(requests.len());
        let mut buf: Vec<u8> = Vec::new();
        let mut pending = 0usize;
        for req in requests {
            buf.extend_from_slice(&encode_request(req));
            pending += 1;
            if buf.len() >= CHUNK_BYTES {
                self.stream.write_all(&buf)?;
                buf.clear();
                for _ in 0..pending {
                    responses.push(self.read_response()?);
                }
                pending = 0;
            }
        }
        if !buf.is_empty() {
            self.stream.write_all(&buf)?;
        }
        for _ in 0..pending {
            responses.push(self.read_response()?);
        }
        Ok(responses)
    }

    /// Whether replaying `req` after an ambiguous transport failure is
    /// safe: reads are, installs and shutdowns are not (they may have
    /// executed before the connection died).
    fn is_idempotent(req: &Request) -> bool {
        matches!(
            req,
            Request::Query { .. }
                | Request::QueryBatch { .. }
                | Request::Contains { .. }
                | Request::Stats
                | Request::Metrics
                | Request::Trace { .. }
                | Request::MetricsText
        )
    }

    /// [`Self::call`] under `policy`: an [`Response::Overloaded`] shed is
    /// always retried (the server refused at admission, nothing ran);
    /// transport errors are retried only for idempotent requests. Each
    /// retry sleeps the policy backoff and reconnects (the server closes
    /// shed connections). Exhausted retries surface the last outcome,
    /// with a terminal shed mapped to [`ClientError::Overloaded`].
    pub fn call_with_retry(
        &mut self,
        req: &Request,
        policy: &RetryPolicy,
    ) -> Result<Response, ClientError> {
        let mut attempt = 0u32;
        loop {
            let outcome = self.call(req);
            let retryable = match &outcome {
                Ok(Response::Overloaded) => true,
                Err(ClientError::Io(_)) => Self::is_idempotent(req),
                _ => false,
            };
            if !retryable || attempt >= policy.max_retries {
                return match outcome {
                    Ok(Response::Overloaded) => Err(ClientError::Overloaded),
                    other => other,
                };
            }
            std::thread::sleep(policy.backoff(attempt));
            attempt += 1;
            if let Ok(fresh) = Self::connect_with(self.peer, self.config.clone()) {
                *self = fresh;
            }
        }
    }

    /// Noisy count for `pattern` on `shard` — bit-identical to a local
    /// `FrozenSynopsis::query` against the shard's resident snapshot.
    pub fn query(&mut self, shard: u32, pattern: &[u8]) -> Result<f64, ClientError> {
        match self.call(&Request::Query { shard, pattern: pattern.to_vec() })? {
            Response::Query { value } => Ok(value),
            other => fail(other, "Query"),
        }
    }

    /// [`Self::query`] with overload/transport retries under `policy`.
    pub fn query_with_retry(
        &mut self,
        shard: u32,
        pattern: &[u8],
        policy: &RetryPolicy,
    ) -> Result<f64, ClientError> {
        let req = Request::Query { shard, pattern: pattern.to_vec() };
        match self.call_with_retry(&req, policy)? {
            Response::Query { value } => Ok(value),
            other => fail(other, "Query"),
        }
    }

    /// Batched counts on one shard; `values[i]` answers `patterns[i]`,
    /// all from a single epoch.
    pub fn query_batch(&mut self, shard: u32, patterns: &[&[u8]]) -> Result<Vec<f64>, ClientError> {
        let req =
            Request::QueryBatch { shard, patterns: patterns.iter().map(|p| p.to_vec()).collect() };
        match self.call(&req)? {
            Response::QueryBatch { values } => Ok(values),
            other => fail(other, "QueryBatch"),
        }
    }

    /// Whether `pattern` has a node in the shard's synopsis.
    pub fn contains(&mut self, shard: u32, pattern: &[u8]) -> Result<bool, ClientError> {
        match self.call(&Request::Contains { shard, pattern: pattern.to_vec() })? {
            Response::Contains { present } => Ok(present),
            other => fail(other, "Contains"),
        }
    }

    /// Operator stats: per-shard epoch/size/utility bounds + cache counters.
    pub fn stats(&mut self) -> Result<ServerStats, ClientError> {
        match self.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => fail(other, "Stats"),
        }
    }

    /// Operator metrics: served qps, per-op counters, latency
    /// percentiles, cache hit rate, and per-shard epoch/size.
    pub fn metrics(&mut self) -> Result<MetricsReport, ClientError> {
        match self.call(&Request::Metrics)? {
            Response::Metrics(report) => Ok(*report),
            other => fail(other, "Metrics"),
        }
    }

    /// Drains up to `max` of the most recent structured trace events
    /// from the server's trace ring, oldest first. Non-destructive (the
    /// ring is overwrite-on-wrap, not consume-on-read) and empty when
    /// the server runs with tracing disabled. Events carry pattern
    /// fingerprints and lengths only — never pattern bytes.
    pub fn trace(&mut self, max: u32) -> Result<Vec<TraceEvent>, ClientError> {
        match self.call(&Request::Trace { max })? {
            Response::Trace { events } => Ok(events),
            other => fail(other, "Trace"),
        }
    }

    /// The Prometheus-style text exposition of the server's metrics —
    /// the same numbers as [`Self::metrics`], rendered scrapeable.
    pub fn metrics_text(&mut self) -> Result<String, ClientError> {
        match self.call(&Request::MetricsText)? {
            Response::MetricsText { text } => Ok(text),
            other => fail(other, "MetricsText"),
        }
    }

    /// Installs (or hot-swaps) `shard` from serialized snapshot bytes;
    /// returns the new epoch. When the server runs a snapshot store the
    /// bytes are durably persisted before they start serving.
    pub fn load_snapshot(&mut self, shard: u32, snapshot: &[u8]) -> Result<u64, ClientError> {
        let req = Request::LoadSnapshot { shard, snapshot: snapshot.to_vec().into() };
        match self.call(&req)? {
            Response::LoadSnapshot { epoch, .. } => Ok(epoch),
            other => fail(other, "LoadSnapshot"),
        }
    }

    /// Re-installs retained durable `epoch` of `shard` from the server's
    /// snapshot store; returns the fresh epoch now serving those bytes.
    /// Fails on servers running without a store.
    pub fn rollback(&mut self, shard: u32, epoch: u64) -> Result<u64, ClientError> {
        match self.call(&Request::Rollback { shard, epoch })? {
            Response::Rollback { epoch } => Ok(epoch),
            other => fail(other, "Rollback"),
        }
    }

    /// Asks the daemon to exit; consumes the client (the connection is
    /// closed by the server after the acknowledgement).
    pub fn shutdown_server(mut self) -> Result<(), ClientError> {
        match self.call(&Request::Shutdown)? {
            Response::Shutdown => Ok(()),
            other => fail(other, "Shutdown"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_caps_and_is_deterministic() {
        let policy = RetryPolicy {
            max_retries: 10,
            base_delay: Duration::from_millis(10),
            max_delay: Duration::from_millis(200),
            jitter_seed: 42,
        };
        let delays: Vec<Duration> = (0..8).map(|a| policy.backoff(a)).collect();
        // Jitter stays within [0.5, 1.0) of the capped exponential.
        for (a, d) in delays.iter().enumerate() {
            let nominal = Duration::from_millis(10).saturating_mul(1 << a).min(policy.max_delay);
            assert!(
                *d >= nominal.mul_f64(0.5) && *d < nominal,
                "attempt {a}: {d:?} vs {nominal:?}"
            );
        }
        // Capped: late attempts never exceed max_delay.
        assert!(delays[7] < Duration::from_millis(200));
        // Deterministic.
        assert_eq!(delays, (0..8).map(|a| policy.backoff(a)).collect::<Vec<_>>());
        // Different seeds decorrelate.
        let other = RetryPolicy { jitter_seed: 43, ..policy.clone() };
        assert_ne!(policy.backoff(0), other.backoff(0));
    }

    #[test]
    fn idempotency_classification_gates_io_retries() {
        assert!(Client::is_idempotent(&Request::Query { shard: 0, pattern: b"a".to_vec() }));
        assert!(Client::is_idempotent(&Request::QueryBatch { shard: 0, patterns: vec![] }));
        assert!(Client::is_idempotent(&Request::Contains { shard: 0, pattern: b"a".to_vec() }));
        assert!(Client::is_idempotent(&Request::Stats));
        assert!(Client::is_idempotent(&Request::Metrics));
        // Trace drains are reads: the ring is overwrite-on-wrap, never
        // consume-on-read, so replaying a drain cannot lose events.
        assert!(Client::is_idempotent(&Request::Trace { max: 64 }));
        assert!(Client::is_idempotent(&Request::MetricsText));
        assert!(!Client::is_idempotent(&Request::LoadSnapshot {
            shard: 0,
            snapshot: Vec::new().into()
        }));
        assert!(!Client::is_idempotent(&Request::Rollback { shard: 0, epoch: 1 }));
        assert!(!Client::is_idempotent(&Request::Shutdown));
    }
}
