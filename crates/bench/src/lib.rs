//! # dpsc-bench — experiment harness utilities
//!
//! Shared machinery for the theorem-validation experiments (see DESIGN.md
//! §4 and the `experiments` binary): markdown table rendering, log–log
//! slope fitting (the "shape" checks), parallel trial execution, and probe
//! construction helpers.

use dpsc_strkit::alphabet::Database;
use dpsc_textindex::{depth_groups, CorpusIndex};

/// A rendered experiment table (also serialized to JSON by the binary).
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id (e.g. `t1_error_vs_ell`).
    pub id: String,
    /// Human title.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
    /// Free-form conclusions appended under the table.
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(id: &str, title: &str, headers: &[&str]) -> Self {
        Self {
            id: id.to_string(),
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Renders as GitHub-flavored markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### `{}` — {}\n\n", self.id, self.title));
        let widths: Vec<usize> = (0..self.headers.len())
            .map(|c| {
                self.rows
                    .iter()
                    .map(|r| r[c].len())
                    .chain(std::iter::once(self.headers[c].len()))
                    .max()
                    .unwrap_or(1)
            })
            .collect();
        let fmt_row = |cells: &[String]| -> String {
            let padded: Vec<String> =
                cells.iter().zip(&widths).map(|(c, w)| format!("{:>w$}", c, w = w)).collect();
            format!("| {} |\n", padded.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for r in &self.rows {
            out.push_str(&fmt_row(r));
        }
        for n in &self.notes {
            out.push_str(&format!("\n> {}\n", n));
        }
        out.push('\n');
        out
    }

    /// Renders as pretty-printed JSON. Hand-rolled (the build has no
    /// registry access for `serde`); strings are escaped per RFC 8259.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
        fn arr(items: impl Iterator<Item = String>, indent: &str) -> String {
            let items: Vec<String> = items.collect();
            if items.is_empty() {
                return "[]".to_string();
            }
            format!("[\n{indent}  {}\n{indent}]", items.join(&format!(",\n{indent}  ")))
        }
        let headers = arr(self.headers.iter().map(|h| esc(h)), "  ");
        let rows = arr(self.rows.iter().map(|r| arr(r.iter().map(|c| esc(c)), "    ")), "  ");
        let notes = arr(self.notes.iter().map(|n| esc(n)), "  ");
        format!(
            "{{\n  \"id\": {},\n  \"title\": {},\n  \"headers\": {},\n  \"rows\": {},\n  \"notes\": {}\n}}",
            esc(&self.id),
            esc(&self.title),
            headers,
            rows,
            notes
        )
    }
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the growth exponent on
/// a log–log sweep. Non-positive values are skipped.
pub fn loglog_slope(xs: &[f64], ys: &[f64]) -> f64 {
    let pts: Vec<(f64, f64)> = xs
        .iter()
        .zip(ys)
        .filter(|(&x, &y)| x > 0.0 && y > 0.0)
        .map(|(&x, &y)| (x.ln(), y.ln()))
        .collect();
    let n = pts.len() as f64;
    if pts.len() < 2 {
        return f64::NAN;
    }
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

/// Mean of a slice.
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    v.iter().sum::<f64>() / v.len() as f64
}

/// Median of a slice (copies and sorts).
pub fn median(v: &[f64]) -> f64 {
    if v.is_empty() {
        return f64::NAN;
    }
    let mut s = v.to_vec();
    s.sort_by(f64::total_cmp);
    s[s.len() / 2]
}

/// Maximum of a slice.
pub fn max(v: &[f64]) -> f64 {
    v.iter().copied().fold(f64::NAN, f64::max)
}

/// Runs `trials` independent seeded executions of `f` in parallel across
/// available cores (std scoped threads). Each call gets `(trial_index,
/// seed)`; results come back in trial order.
pub fn run_trials<T: Send>(
    trials: usize,
    base_seed: u64,
    f: impl Fn(usize, u64) -> T + Sync,
) -> Vec<T> {
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let results: Vec<std::sync::Mutex<Option<T>>> =
        (0..trials).map(|_| std::sync::Mutex::new(None)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(trials) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if i >= trials {
                    break;
                }
                let out =
                    f(i, base_seed.wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)));
                *results[i].lock().expect("trial mutex not poisoned") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().expect("trial mutex not poisoned").expect("trial completed"))
        .collect()
}

/// Probe set: the `per_length` most frequent distinct substrings at each of
/// a geometric ladder of lengths (`1, 2, 3, 4, 6, 8, 12, …` up to ℓ). These
/// become the pipeline's candidate trie in the error-measurement
/// experiments, so error is always measured on the same strings across
/// mechanisms.
pub fn frequent_probe_set(idx: &CorpusIndex, per_length: usize, delta_clip: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    for d in length_ladder(idx.max_len()) {
        let mut groups = depth_groups(idx, d);
        groups.sort_by_key(|g| std::cmp::Reverse(g.count()));
        for g in groups.iter().take(per_length) {
            let _ = delta_clip;
            out.push(idx.decode_substring(g.witness_pos as usize, d));
        }
    }
    out
}

/// Geometric length ladder `1, 2, 3, 4, 6, 8, 12, 16, …` capped at `ell`.
pub fn length_ladder(ell: usize) -> Vec<usize> {
    let mut lens = vec![1usize, 2, 3];
    let mut v = 4usize;
    while v <= ell {
        lens.push(v);
        let mid = v + v / 2;
        if mid <= ell {
            lens.push(mid);
        }
        v *= 2;
    }
    lens.retain(|&l| l <= ell);
    lens.sort_unstable();
    lens.dedup();
    lens
}

/// Convenience: builds an index once per (workload, size) and returns both.
pub fn build_index(db: &Database) -> CorpusIndex {
    CorpusIndex::build(db)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slope_of_quadratic_is_two() {
        let xs: Vec<f64> = vec![2.0, 4.0, 8.0, 16.0];
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x * x).collect();
        assert!((loglog_slope(&xs, &ys) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn slope_of_sqrt_is_half() {
        let xs: Vec<f64> = vec![4.0, 16.0, 64.0, 256.0];
        let ys: Vec<f64> = xs.iter().map(|x| x.sqrt()).collect();
        assert!((loglog_slope(&xs, &ys) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn ladder_is_sorted_unique() {
        let l = length_ladder(64);
        assert_eq!(l.first(), Some(&1));
        assert_eq!(l.last(), Some(&64));
        let mut s = l.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(l, s);
    }

    #[test]
    fn run_trials_is_ordered_and_complete() {
        let out = run_trials(17, 7, |i, seed| (i, seed));
        assert_eq!(out.len(), 17);
        for (i, (idx, _)) in out.iter().enumerate() {
            assert_eq!(i, *idx);
        }
        // Seeds are distinct.
        let seeds: std::collections::HashSet<u64> = out.iter().map(|(_, s)| *s).collect();
        assert_eq!(seeds.len(), 17);
    }

    #[test]
    fn table_markdown_renders() {
        let mut t = Table::new("demo", "Demo table", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let md = t.to_markdown();
        assert!(md.contains("| x | y |"));
        assert!(md.contains("> a note"));
    }
}
pub mod exps;
