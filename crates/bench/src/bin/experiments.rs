//! Experiment runner: regenerates every theorem-validation table
//! (DESIGN.md §4, recorded in EXPERIMENTS.md).
//!
//! Usage:
//!   experiments                 # run everything
//!   experiments ID [ID…]        # run selected experiments
//!   experiments --list          # list experiment ids
//!
//! Output: markdown tables on stdout; each table is also written to
//! `results/<id>.json`.

use dpsc_bench::exps;
use dpsc_bench::Table;

type Runner = fn() -> Vec<Table>;

fn registry() -> Vec<(&'static str, &'static str, Runner)> {
    vec![
        ("figures", "Figures 1–3 worked example", || exps::mining::figures()),
        ("t1_error_vs_ell", "Thm 1: error vs ℓ (vs ℓ² baseline)", || {
            vec![exps::t1::t1_error_vs_ell()]
        }),
        ("t1_error_vs_eps", "Thm 1: error vs ε", || vec![exps::t1::t1_error_vs_eps()]),
        ("t1_size", "Thm 1: structure size + absent strings", || vec![exps::t1::t1_size()]),
        ("t2_sqrt_ell", "Thm 2: √ℓ document counting", || vec![exps::t2::t2_sqrt_ell()]),
        ("t2_delta", "Thm 2: √Δ interpolation", || vec![exps::t2::t2_delta()]),
        ("t3_qgram", "Thm 3: ε-DP q-grams", || vec![exps::qgrams::t3_qgram()]),
        ("t4_scaling", "Thm 4: near-linear construction", || vec![exps::qgrams::t4_scaling()]),
        ("t5_packing", "Thm 5: packing lower bound", || vec![exps::lower::t5_packing()]),
        ("t6_substring_lb", "Thm 6: Ω(ℓ) substring lower bound", || {
            vec![exps::lower::t6_substring_lb()]
        }),
        ("t7_marginals", "Thm 7: marginals reduction", || vec![exps::lower::t7_marginals()]),
        ("t8_tree", "Thm 8: counting on trees", || vec![exps::trees::t8_tree()]),
        ("t9_colored", "Thm 9: colored tree counting", || vec![exps::trees::t9_colored()]),
        ("mining_utility", "Mining precision/recall", || exps::mining::mining_utility()),
        ("serving_throughput", "Serving: trie walk vs frozen synopsis", || {
            vec![exps::serving::serving_throughput()]
        }),
        (
            "serve_throughput",
            "Serving daemon: wire-protocol load generator (BENCH_serve.json)",
            || vec![exps::serve::serve_throughput()],
        ),
        ("audit", "Statistical DP/utility conformance matrix", || {
            vec![exps::audit::audit_conformance()]
        }),
        ("build_throughput", "Build pipeline: phase timings × threads (BENCH_build.json)", || {
            vec![exps::build::build_throughput()]
        }),
    ]
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let reg = registry();
    if args.iter().any(|a| a == "--list") {
        for (id, desc, _) in &reg {
            println!("{id:18} {desc}");
        }
        return;
    }
    let selected: Vec<&(&str, &str, Runner)> = if args.is_empty() {
        reg.iter().collect()
    } else {
        let mut sel = Vec::new();
        for a in &args {
            match reg.iter().find(|(id, _, _)| id == a) {
                Some(e) => sel.push(e),
                None => {
                    eprintln!("unknown experiment `{a}` (try --list)");
                    std::process::exit(2);
                }
            }
        }
        sel
    };
    std::fs::create_dir_all("results").ok();
    for (id, desc, run) in selected {
        eprintln!("[experiments] running {id} — {desc}");
        let t0 = std::time::Instant::now();
        let tables = run();
        eprintln!("[experiments] {id} finished in {:.1?}", t0.elapsed());
        for table in tables {
            print!("{}", table.to_markdown());
            let path = format!("results/{}.json", table.id);
            if let Err(e) = std::fs::write(&path, table.to_json()) {
                eprintln!("[experiments] failed writing {path}: {e}");
            }
        }
    }
}
