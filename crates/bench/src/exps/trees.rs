//! Experiments T8/T9: generic DP counting on trees vs the baselines, and
//! colored tree counting.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_hierarchy::tree_counting::{
    baseline_noisy_leaf_sum, baseline_per_node_laplace, private_tree_counts_approx,
    private_tree_counts_pure, TreeSensitivity,
};
use dpsc_hierarchy::{ColoredUniverse, Tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{loglog_slope, mean, run_trials, Table};

/// T8-tree: Theorem 8 vs the per-node-Laplace and noisy-leaf-sum baselines
/// as tree depth grows; Theorem 8's error stays polylog while per-node
/// scales with h.
pub fn t8_tree() -> Table {
    let mut t = Table::new(
        "t8_tree",
        "Counting on trees (Theorem 8, ε = 1, d = 2): mean |err| per node on path-shaped trees of growing depth",
        &["depth h", "Thm8 mean err", "per-node Laplace mean err", "leaf-sum root err", "Thm8 analytic α"],
    );
    let sens = TreeSensitivity { leaf_l1: 2.0, per_node: 1.0 };
    let depths = [256usize, 1024, 4096, 16384];
    let mut ours = Vec::new();
    let mut pernode = Vec::new();
    for &h in &depths {
        let tree = Tree::path(h);
        let counts: Vec<u64> = vec![1000u64; h];
        let results = run_trials(6, 10_000 + h as u64, |_i, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let est = private_tree_counts_pure(
                &tree,
                &counts,
                sens,
                PrivacyParams::pure(1.0),
                0.1,
                &mut rng,
            );
            let bl = baseline_per_node_laplace(&tree, &counts, 2.0, 1.0, &mut rng);
            let ls = baseline_noisy_leaf_sum(&tree, &counts, 2.0, 1.0, &mut rng);
            let e1: f64 =
                est.values.iter().zip(&counts).map(|(v, &c)| (v - c as f64).abs()).sum::<f64>()
                    / h as f64;
            let e2: f64 =
                bl.iter().zip(&counts).map(|(v, &c)| (v - c as f64).abs()).sum::<f64>() / h as f64;
            let e3 = (ls[0] - counts[0] as f64).abs();
            (e1, e2, e3, est.error_bound)
        });
        let e1 = mean(&results.iter().map(|r| r.0).collect::<Vec<_>>());
        let e2 = mean(&results.iter().map(|r| r.1).collect::<Vec<_>>());
        let e3 = mean(&results.iter().map(|r| r.2).collect::<Vec<_>>());
        ours.push(e1);
        pernode.push(e2);
        t.row(vec![
            h.to_string(),
            format!("{:.0}", e1),
            format!("{:.0}", e2),
            format!("{:.0}", e3),
            format!("{:.0}", results[0].3),
        ]);
    }
    let xs: Vec<f64> = depths.iter().map(|&d| d as f64).collect();
    t.note(format!(
        "fitted exponents in h: Theorem 8 ≈ h^{:.2} (paper: polylog ⇒ ≈0), per-node Laplace ≈ h^{:.2} (scales linearly). Leaf-sum is exact at leaves but its root error is the path total.",
        loglog_slope(&xs, &ours),
        loglog_slope(&xs, &pernode),
    ));
    t
}

/// T9-colored: colored tree counting — the (ε,δ) Gaussian variant beats the
/// pure variant, on a realistic hierarchy.
pub fn t9_colored() -> Table {
    let mut t = Table::new(
        "t9_colored",
        "Colored tree counting (distinct colors below each node), complete binary tree: Theorem 9 vs Theorem 8 (ε = 1)",
        &["height", "nodes", "Thm8 max err", "Thm9 max err (δ=1e-6)", "Thm8 α", "Thm9 α"],
    );
    for &height in &[6usize, 8, 10] {
        let tree = Tree::complete_kary(2, height);
        let leaves = tree.leaves();
        let mut rng = StdRng::seed_from_u64(11_000 + height as u64);
        let u = leaves.len() * 8;
        let leaf_of: Vec<u32> = (0..u).map(|i| leaves[i % leaves.len()]).collect();
        let color_of: Vec<u32> = (0..u).map(|_| rng.gen_range(0..4096)).collect();
        let universe = ColoredUniverse::new(tree, leaf_of, color_of);
        let dataset: Vec<u32> = (0..u * 4).map(|_| rng.gen_range(0..u as u32)).collect();
        let exact = universe.colored_counts(&dataset);

        let results = run_trials(5, 12_000 + height as u64, |_i, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let pure = private_tree_counts_pure(
                universe.tree(),
                &exact,
                ColoredUniverse::replace_one_sensitivity(),
                PrivacyParams::pure(1.0),
                0.1,
                &mut rng,
            );
            let approx = private_tree_counts_approx(
                universe.tree(),
                &exact,
                ColoredUniverse::replace_one_sensitivity(),
                PrivacyParams::approx(1.0, 1e-6),
                0.1,
                &mut rng,
            );
            (pure.max_error(&exact), approx.max_error(&exact), pure.error_bound, approx.error_bound)
        });
        t.row(vec![
            height.to_string(),
            universe.tree().n().to_string(),
            format!("{:.0}", mean(&results.iter().map(|r| r.0).collect::<Vec<_>>())),
            format!("{:.0}", mean(&results.iter().map(|r| r.1).collect::<Vec<_>>())),
            format!("{:.0}", results[0].2),
            format!("{:.0}", results[0].3),
        ]);
    }
    t.note("with d = 2 and Δ = 1 the √(dΔ log)-scaled Gaussian noise of Theorem 9 beats Theorem 8's d·log Laplace noise; both stay within their analytic α.");
    t
}
