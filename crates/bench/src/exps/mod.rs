//! The theorem-validation experiments (one module per theorem group).
//!
//! Each experiment returns [`crate::Table`]s; the `experiments` binary
//! renders them to stdout and into `results/*.json` / EXPERIMENTS.md.

pub mod audit;
pub mod build;
pub mod common;
pub mod lower;
pub mod mining;
pub mod qgrams;
pub mod serve;
pub mod serving;
pub mod t1;
pub mod t2;
pub mod trees;
