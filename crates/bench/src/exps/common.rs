//! Shared measurement machinery for the error-scaling experiments, plus
//! the workload-family corpus factory used by the perf baselines.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::pipeline::{build_count_trie, run_pipeline_on_trie, PipelineParams};
use dpsc_strkit::alphabet::Database;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::{dna_corpus, log_corpus, text_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{frequent_probe_set, mean, median, run_trials};

/// Workload family for the perf baselines (`build_throughput`,
/// `serve_throughput`): which `dpsc-workloads` generator produces a
/// scenario's corpus.
#[derive(Debug, Clone, Copy)]
pub enum Workload {
    /// σ = 4 genome reads with planted motifs ([`dna_corpus`]).
    Dna,
    /// σ = 27 natural-language stand-in: six-byte Zipf vocabulary tokens
    /// joined by a separator ([`text_corpus`]).
    Text,
    /// σ = 76 access-log stand-in: lines with a 13-byte planted route
    /// prefix ([`log_corpus`]).
    Log,
}

impl Workload {
    /// The artifact-facing name of the family.
    pub fn as_str(self) -> &'static str {
        match self {
            Workload::Dna => "dna",
            Workload::Text => "text",
            Workload::Log => "log",
        }
    }

    /// Deterministic corpus of `n` documents with `max_len == ell`. Text
    /// documents are `(ell+1)/7` six-byte tokens joined by a separator
    /// (`ell = 14·6 + 13 = 97` gives ~1.03 MB at n = 10624); log lines
    /// are `ell`-byte lines with a 13-byte planted route (~1.08 MB at
    /// n = 36000, ell = 30). Document lengths are kept moderate on
    /// purpose: the per-level candidate noise scale grows like
    /// `ℓ·log ℓ / ε`, so at fixed corpus size many shorter documents
    /// keep `τ` far above the noise (no FAIL branch) where fewer long
    /// ones would flood level 4+ with spurious pairs.
    pub fn make_corpus(self, n: usize, ell: usize, rng: &mut StdRng) -> Database {
        const TEXT_TOKEN_LEN: usize = 6;
        let db = match self {
            Workload::Dna => dna_corpus(n, ell, 8, &[0.9, 0.8, 0.7, 0.6, 0.5, 0.4], rng).db,
            Workload::Text => {
                let tokens_per_doc = (ell + 1) / (TEXT_TOKEN_LEN + 1);
                text_corpus(n, tokens_per_doc, TEXT_TOKEN_LEN, 512, 1.0, rng).db
            }
            Workload::Log => log_corpus(n, ell, 13, 64, 1.0, rng).db,
        };
        assert_eq!(db.max_len(), ell, "workload corpus must realise the declared ell");
        db
    }
}

/// Error statistics of a mechanism over a fixed probe trie.
#[derive(Debug, Clone, Copy)]
pub struct ErrorStats {
    /// Median over trials of the max absolute error across probes.
    pub median_max: f64,
    /// Mean over trials of the max absolute error.
    pub mean_max: f64,
    /// The analytic high-probability bound `α` the theory promises.
    pub alpha_analytic: f64,
    /// Number of probe nodes measured.
    pub probes: usize,
}

/// Measures the Steps 3–5 release error of the heavy-path pipeline
/// (Theorem 1 when `gaussian = false`, Theorem 2 when `true`) over the
/// `per_length` most frequent substrings at a geometric ladder of lengths.
///
/// Pruning is disabled so every probe is measured; the exact-count trie is
/// built once and shared across trials.
pub fn pipeline_error(
    idx: &CorpusIndex,
    per_length: usize,
    delta_clip: usize,
    privacy: PrivacyParams,
    gaussian: bool,
    trials: usize,
    seed: u64,
) -> ErrorStats {
    let probes = frequent_probe_set(idx, per_length, delta_clip);
    let counts_trie = build_count_trie(idx, &probes, delta_clip);
    let ell = idx.max_len();
    // Steps 3 and 4 each get half of the budget here (the builder's ε/3
    // split reserves the last third for candidates, which this measurement
    // replaces with a fixed probe set).
    let half = privacy.split_even(2);
    let params = PipelineParams {
        delta_clip,
        privacy_roots: half,
        privacy_diffs: half,
        beta: 0.1,
        gaussian,
        prune_override: Some(f64::NEG_INFINITY),
        threads: 1,
    };
    let maxes: Vec<f64> = run_trials(trials, seed, |_i, s| {
        let mut rng = StdRng::seed_from_u64(s);
        let out = run_pipeline_on_trie(&counts_trie, ell, &params, &mut rng);
        max_error_vs(&counts_trie, &out.trie)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let alpha = run_pipeline_on_trie(&counts_trie, ell, &params, &mut rng).alpha;
    ErrorStats {
        median_max: median(&maxes),
        mean_max: mean(&maxes),
        alpha_analytic: alpha,
        probes: counts_trie.len(),
    }
}

/// Max |noisy − exact| across all nodes shared by the two tries.
fn max_error_vs(exact: &Trie<u64>, noisy: &Trie<f64>) -> f64 {
    let mut worst = 0.0f64;
    for node in exact.dfs() {
        let pat = exact.string_of(node);
        if let Some(n2) = noisy.walk(&pat) {
            worst = worst.max((*noisy.value(n2) - *exact.value(node) as f64).abs());
        }
    }
    worst
}

/// Measures the simple-trie baseline's release error over the same probe
/// set: each probe count is released with `Lap(2ℓ²/ε)` noise (budget `ε/ℓ`
/// per level × per-level sensitivity `2ℓ`, as in prior work).
pub fn baseline_error(
    idx: &CorpusIndex,
    per_length: usize,
    delta_clip: usize,
    epsilon: f64,
    trials: usize,
    seed: u64,
) -> ErrorStats {
    use dpsc_dpcore::mechanism::laplace_sup_error;
    use dpsc_dpcore::noise::Noise;
    let probes = frequent_probe_set(idx, per_length, delta_clip);
    let counts_trie = build_count_trie(idx, &probes, delta_clip);
    let ell = idx.max_len();
    let eps_level = epsilon / ell as f64;
    let noise = Noise::laplace_for(eps_level, 2.0 * ell as f64);
    let n_nodes = counts_trie.len();
    let maxes: Vec<f64> = run_trials(trials, seed, |_i, s| {
        let mut rng = StdRng::seed_from_u64(s);
        (0..n_nodes).map(|_| noise.sample(&mut rng).abs()).fold(0.0f64, f64::max)
    });
    let n = idx.n_docs();
    let k = ((ell * ell) as f64 * (n * n) as f64).max(idx.alphabet_size() as f64);
    ErrorStats {
        median_max: median(&maxes),
        mean_max: mean(&maxes),
        alpha_analytic: laplace_sup_error(eps_level, 2.0 * ell as f64, k.ceil() as usize, 0.1),
        probes: n_nodes,
    }
}
