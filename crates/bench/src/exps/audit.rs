//! Experiment `audit`: the statistical DP/utility conformance matrix.
//!
//! Runs [`dpsc_audit::run_matrix`] at the tier selected by
//! `DPSC_AUDIT_FULL` (unset/other ⇒ fast, `1` ⇒ full), writes the raw
//! conformance report to `results/audit_conformance.json`, and returns a
//! summary table (one row per scenario group) for EXPERIMENTS.md.

use dpsc_audit::{run_matrix, AuditConfig};

use crate::Table;

/// Where the raw conformance report is written.
pub const CONFORMANCE_PATH: &str = "results/audit_conformance.json";

/// Runs the matrix, persists the JSON report, and tabulates the verdicts.
pub fn audit_conformance() -> Table {
    let cfg = AuditConfig::from_env();
    let report = run_matrix(&cfg);
    std::fs::create_dir_all("results").ok();
    if let Err(e) = std::fs::write(CONFORMANCE_PATH, report.to_json()) {
        eprintln!("[audit] failed writing {CONFORMANCE_PATH}: {e}");
    }

    // NB: the table id must differ from CONFORMANCE_PATH's stem — the
    // experiments binary writes every table to results/<id>.json and would
    // otherwise overwrite the raw report.
    let mut t = Table::new(
        "audit",
        "Statistical conformance: noise goodness-of-fit, end-to-end privacy distinguishers, utility vs theorem bounds ({workload × ε × mechanism × pruning})",
        &["scenario", "mechanism", "ε", "pruning", "checks", "violations"],
    );
    for s in &report.scenarios {
        t.row(vec![
            s.workload.clone(),
            s.mechanism.clone(),
            format!("{}", s.epsilon),
            s.pruning.clone(),
            s.checks.len().to_string(),
            s.violations().to_string(),
        ]);
    }
    t.note(format!(
        "tier = {}, seed = {}: {} checks, {} violations ⇒ {}. Raw report: {CONFORMANCE_PATH}.",
        report.tier,
        report.seed,
        report.total_checks(),
        report.violations(),
        if report.pass() { "CONFORMANT" } else { "NON-CONFORMANT" },
    ));
    for line in report.violation_lines() {
        t.note(format!("VIOLATION: {line}"));
    }
    t
}
