//! Experiments T3/T4: fixed-length q-gram structures — error and the
//! near-linear construction time of Theorem 4.

use std::time::Instant;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{
    build_qgram_fast, build_qgram_pure, CountMode, FastQgramParams, QgramParams,
};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::dna_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{loglog_slope, Table};

/// T3-qgram: Theorem 3 ε-DP q-gram error across q, and the recovered
/// planted motif.
pub fn t3_qgram() -> Table {
    let mut t = Table::new(
        "t3_qgram",
        "Theorem 3 (ε-DP) q-gram counting on DNA with a planted motif (n = 2000, ℓ = 64, ε = 4)",
        &["q", "analytic α", "motif true count", "motif noisy count", "|err|", "construction"],
    );
    for &q in &[2usize, 4, 6, 8, 12, 16] {
        let mut rng = StdRng::seed_from_u64(6000 + q as u64);
        let corpus = dna_corpus(2000, 64, q, &[0.8], &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        let (motif, _) = &corpus.motifs[0];
        let exact = idx.count(motif) as f64;
        let params = QgramParams {
            q,
            mode: CountMode::Substring,
            privacy: PrivacyParams::pure(4.0),
            beta: 0.1,
            tau_override: Some(300.0),
            level_cap_override: None,
        };
        let t0 = Instant::now();
        match build_qgram_pure(&idx, &params, &mut rng) {
            Ok(s) => {
                let got = s.query(motif);
                t.row(vec![
                    q.to_string(),
                    format!("{:.0}", s.alpha_counts()),
                    format!("{:.0}", exact),
                    format!("{:.0}", got),
                    format!("{:.0}", (got - exact).abs()),
                    format!("{:.0?}", t0.elapsed()),
                ]);
            }
            Err(e) => t.row(vec![
                q.to_string(),
                format!("FAIL ({e})"),
                format!("{:.0}", exact),
                String::new(),
                String::new(),
                String::new(),
            ]),
        }
    }
    t.note("errors stay within α across q; α is q-independent up to the log q budget split (paper: error O(ε⁻¹ℓ log ℓ·polylog)).");
    t
}

/// T4-scaling: Theorem 4 construction time is near-linear in corpus size,
/// vs Theorem 3's superlinear pair enumeration.
pub fn t4_scaling() -> Table {
    let mut t = Table::new(
        "t4_scaling",
        "Construction time scaling: Theorem 4 is ~linear in corpus size nℓ; Theorem 3 pays the pair enumeration (q = 8, ℓ = 64, DNA)",
        &["n", "nℓ", "Thm4 build", "Thm3 build", "Thm4 ms/Mchar"],
    );
    let ns = [500usize, 1000, 2000, 4000, 8000, 16000];
    let mut sizes = Vec::new();
    let mut t4_times = Vec::new();
    for &n in &ns {
        let mut rng = StdRng::seed_from_u64(7000 + n as u64);
        let corpus = dna_corpus(n, 64, 8, &[0.8], &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        let fast_params = FastQgramParams {
            q: 8,
            mode: CountMode::Document,
            privacy: PrivacyParams::approx(4.0, 1e-6),
            beta: 0.1,
            tau_override: None,
        };
        let t0 = Instant::now();
        let _ = build_qgram_fast(&idx, &fast_params, &mut rng);
        let t4 = t0.elapsed();
        let pure_params = QgramParams {
            q: 8,
            mode: CountMode::Document,
            privacy: PrivacyParams::pure(4.0),
            beta: 0.1,
            tau_override: Some(0.3 * n as f64),
            level_cap_override: None,
        };
        let t0 = Instant::now();
        let t3_res = build_qgram_pure(&idx, &pure_params, &mut rng);
        let t3 = t0.elapsed();
        sizes.push((n * 64) as f64);
        t4_times.push(t4.as_secs_f64());
        t.row(vec![
            n.to_string(),
            (n * 64).to_string(),
            format!("{:.1?}", t4),
            if t3_res.is_ok() { format!("{:.1?}", t3) } else { "FAIL".into() },
            format!("{:.1}", t4.as_secs_f64() * 1e3 / ((n * 64) as f64 / 1e6)),
        ]);
    }
    t.note(format!(
        "fitted exponent: Theorem 4 time ∝ (nℓ)^{:.2} (paper: ~1, i.e. O(nℓ(log q + log|Σ|))); the ms/Mchar column is ~flat.",
        loglog_slope(&sizes, &t4_times),
    ));
    t
}
