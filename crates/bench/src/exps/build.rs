//! Experiment `build_throughput`: the build-path perf baseline.
//!
//! Times the three build phases — Step 1 (candidate doubling), Step 2
//! (exact-count trie), Steps 3–6 (heavy-path noise + prune) — plus the
//! end-to-end `build_pure`, across corpus sizes and worker-thread counts,
//! and writes `results/BENCH_build.json`, the repo's perf-trajectory
//! artifact that CI gates regressions against. Scenarios span three
//! workload families: `dna_corpus` (σ = 4 toys at several sizes),
//! `text_corpus` (σ = 27 natural-language stand-in) and `log_corpus`
//! (σ = 76 access-log stand-in) — the latter two at ≥ 1 MB corpus size so
//! the build path is measured on realistically shaped inputs, not just
//! 4-letter toys.
//!
//! ## Determinism contract
//! Everything in the artifact except the `*_ns` timing fields is
//! byte-deterministic across runs with the same seed **and across thread
//! counts**: scenario definitions, candidate/trie/pruned sizes, level
//! sizes, and the FNV-1a digest of the built structure's canonical
//! `FrozenSynopsis` encoding. The experiment *executes* the thread-count
//! invariant (it builds at 1/4/8 threads and asserts digest equality)
//! rather than assuming it; `tests/build_determinism.rs` pins the same
//! invariant in the test suite. Timings are measurements (min over
//! repeats) and are the only fields that vary run to run.
//!
//! `DPSC_BUILD_FULL=1` adds the `dna-flood` scenario — a noise-flooded
//! ~1M-node build exercising the Step 2/Steps 3–6 heavy regime — and more
//! repeats.

use std::time::Instant;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::stream::derive_stream as derive_seed;
use dpsc_private_count::candidates::{build_candidates_pure, CandidateParams};
use dpsc_private_count::pipeline::{build_count_trie, run_pipeline_on_trie, PipelineParams};
use dpsc_private_count::{build_pure_traced, BuildParams, CountMode, FrozenSynopsis, SpanRecorder};
use dpsc_textindex::CorpusIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exps::common::Workload;
use crate::Table;

/// Where the raw perf artifact is written.
pub const BENCH_PATH: &str = "results/BENCH_build.json";

/// Base seed: corpus generation and every build seed derive from it.
const BASE_SEED: u64 = 0xB11D_BEAC;

/// Thread counts swept per scenario.
const THREADS: [usize; 3] = [1, 4, 8];

struct Scenario {
    name: &'static str,
    workload: Workload,
    n: usize,
    ell: usize,
    epsilon: f64,
    tau_frac: f64,
}

/// Tuned so the exact construction succeeds (no FAIL branch) at every
/// size while keeping multi-level candidate sets; see DESIGN.md §10.
/// The `text-1m`/`log-1m` rows are the ≥ 1 MB corpora ROADMAP item 5
/// asks for (multi-MB inputs with larger alphabets and longer documents).
const FAST: [Scenario; 5] = [
    Scenario {
        name: "dna-small",
        workload: Workload::Dna,
        n: 1024,
        ell: 64,
        epsilon: 20.0,
        tau_frac: 0.45,
    },
    Scenario {
        name: "dna-mid",
        workload: Workload::Dna,
        n: 2048,
        ell: 64,
        epsilon: 16.0,
        tau_frac: 0.35,
    },
    Scenario {
        name: "dna-large",
        workload: Workload::Dna,
        n: 4096,
        ell: 64,
        epsilon: 16.0,
        tau_frac: 0.30,
    },
    Scenario {
        name: "text-1m",
        workload: Workload::Text,
        n: 10624,
        ell: 97,
        epsilon: 16.0,
        tau_frac: 0.35,
    },
    Scenario {
        name: "log-1m",
        workload: Workload::Log,
        n: 36_000,
        ell: 30,
        epsilon: 16.0,
        tau_frac: 0.10,
    },
];

/// Full-tier extra: a noise-flooded (but non-FAIL) regime whose ~1M-node
/// trie shifts the cost into Steps 2–6.
const FLOOD: Scenario = Scenario {
    name: "dna-flood",
    workload: Workload::Dna,
    n: 1024,
    ell: 64,
    epsilon: 16.0,
    tau_frac: 0.48,
};

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h
}

#[derive(Clone, Copy, Default)]
struct PhaseTimes {
    step1_ns: u128,
    step2_ns: u128,
    steps3_6_ns: u128,
    end_to_end_ns: u128,
    /// In-pipeline span durations from the `SpanRecorder` the traced
    /// end-to-end build carries — the same phase vocabulary the serve
    /// trace ring uses (`candidates`/`count_trie`/`noise`/`prune`).
    span_candidates_ns: u128,
    span_count_trie_ns: u128,
    span_noise_ns: u128,
    span_prune_ns: u128,
}

struct ScenarioResult {
    name: &'static str,
    workload: &'static str,
    n: usize,
    ell: usize,
    /// Total corpus size in bytes (`Database::total_len`).
    corpus_bytes: usize,
    epsilon: f64,
    tau: f64,
    candidates: usize,
    level_sizes: Vec<usize>,
    peak_trie_nodes: usize,
    pruned_nodes: usize,
    digest: u64,
    /// Min-over-repeats timings per entry of [`THREADS`].
    times: Vec<PhaseTimes>,
}

/// One timed build at a given thread count, mirroring `build_pure`'s
/// internal ε/3 split so the phase sum matches the end-to-end cost.
#[allow(clippy::type_complexity)]
fn run_once(
    idx: &CorpusIndex,
    sc: &Scenario,
    threads: usize,
    seed: u64,
) -> (PhaseTimes, usize, Vec<usize>, usize, usize, u64) {
    let tau = sc.tau_frac * sc.n as f64;
    let privacy = PrivacyParams::pure(sc.epsilon);
    let third = privacy.split_even(3);
    let mut t = PhaseTimes::default();

    let cand_params = CandidateParams {
        delta_clip: 1,
        privacy: third,
        beta: 0.1 / 3.0,
        tau_override: Some(tau),
        level_cap_override: None,
        threads,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let t0 = Instant::now();
    let cands = build_candidates_pure(idx, &cand_params, &mut rng)
        .expect("benchmark regimes are tuned to avoid the FAIL branch");
    t.step1_ns = t0.elapsed().as_nanos();

    let t0 = Instant::now();
    let trie = build_count_trie(idx, &cands.strings, 1);
    t.step2_ns = t0.elapsed().as_nanos();

    let pipe = PipelineParams {
        delta_clip: 1,
        privacy_roots: third,
        privacy_diffs: third,
        beta: 0.2 / 3.0,
        gaussian: false,
        prune_override: Some(f64::NEG_INFINITY),
        threads,
    };
    let t0 = Instant::now();
    let out = run_pipeline_on_trie(&trie, sc.ell, &pipe, &mut rng);
    t.steps3_6_ns = t0.elapsed().as_nanos();

    let params = BuildParams::new(CountMode::Document, privacy, 0.1)
        .with_thresholds(tau, f64::NEG_INFINITY)
        .with_threads(threads);
    let mut rng = StdRng::seed_from_u64(seed);
    let rec = SpanRecorder::new();
    let t0 = Instant::now();
    let built =
        build_pure_traced(idx, &params, &mut rng, &rec).expect("same seed as the phase run");
    t.end_to_end_ns = t0.elapsed().as_nanos();
    let span = |name: &str| rec.dur_ns(name).unwrap_or(0) as u128;
    t.span_candidates_ns = span("candidates");
    t.span_count_trie_ns = span("count_trie");
    t.span_noise_ns = span("noise");
    t.span_prune_ns = span("prune");
    let digest = fnv1a(&FrozenSynopsis::freeze(&built).to_bytes());

    (t, cands.strings.len(), cands.level_sizes, trie.len(), out.trie.len(), digest)
}

fn run_scenario(sc: &Scenario, sc_idx: u64, repeats: usize) -> ScenarioResult {
    let mut rng = StdRng::seed_from_u64(derive_seed(BASE_SEED, sc_idx));
    let db = sc.workload.make_corpus(sc.n, sc.ell, &mut rng);
    let idx = CorpusIndex::build(&db);

    let mut result = ScenarioResult {
        name: sc.name,
        workload: sc.workload.as_str(),
        n: sc.n,
        ell: sc.ell,
        corpus_bytes: db.total_len(),
        epsilon: sc.epsilon,
        tau: sc.tau_frac * sc.n as f64,
        candidates: 0,
        level_sizes: Vec::new(),
        peak_trie_nodes: 0,
        pruned_nodes: 0,
        digest: 0,
        times: Vec::new(),
    };
    let mut reference_digest: Option<u64> = None;
    for &threads in &THREADS {
        let mut best = PhaseTimes::default();
        for rep in 0..repeats {
            // Same derived seed at every thread count — the digest
            // comparison below is exactly the determinism invariant.
            let seed = derive_seed(BASE_SEED, (sc_idx << 8) | rep as u64);
            let (t, n_cands, level_sizes, peak, pruned, digest) = run_once(&idx, sc, threads, seed);
            if rep == 0 {
                match reference_digest {
                    None => {
                        reference_digest = Some(digest);
                        result.candidates = n_cands;
                        result.level_sizes = level_sizes;
                        result.peak_trie_nodes = peak;
                        result.pruned_nodes = pruned;
                        result.digest = digest;
                    }
                    Some(d) => assert_eq!(
                        d, digest,
                        "{}: digest changed between thread counts — determinism broken",
                        sc.name
                    ),
                }
            }
            let keep = |best: u128, cur: u128| if best == 0 { cur } else { best.min(cur) };
            best.step1_ns = keep(best.step1_ns, t.step1_ns);
            best.step2_ns = keep(best.step2_ns, t.step2_ns);
            best.steps3_6_ns = keep(best.steps3_6_ns, t.steps3_6_ns);
            best.end_to_end_ns = keep(best.end_to_end_ns, t.end_to_end_ns);
            best.span_candidates_ns = keep(best.span_candidates_ns, t.span_candidates_ns);
            best.span_count_trie_ns = keep(best.span_count_trie_ns, t.span_count_trie_ns);
            best.span_noise_ns = keep(best.span_noise_ns, t.span_noise_ns);
            best.span_prune_ns = keep(best.span_prune_ns, t.span_prune_ns);
        }
        result.times.push(best);
    }
    result
}

fn to_json(results: &[ScenarioResult], tier: &str, repeats: usize) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dpsc-bench-build/v1\",\n");
    out.push_str(&format!("  \"seed\": {BASE_SEED},\n"));
    out.push_str(&format!("  \"tier\": \"{tier}\",\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str(
        "  \"notes\": \"All fields except *_ns are deterministic for the seed and identical \
         across thread counts (digest = FNV-1a of the canonical FrozenSynopsis bytes, asserted \
         at runtime). *_ns fields are min-over-repeats wall-clock measurements.\",\n",
    );
    out.push_str("  \"scenarios\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", r.name));
        out.push_str(&format!("      \"workload\": \"{}\",\n", r.workload));
        out.push_str(&format!("      \"n\": {},\n", r.n));
        out.push_str(&format!("      \"ell\": {},\n", r.ell));
        out.push_str(&format!("      \"corpus_bytes\": {},\n", r.corpus_bytes));
        out.push_str(&format!("      \"epsilon\": {},\n", r.epsilon));
        out.push_str(&format!("      \"tau\": {},\n", r.tau));
        out.push_str(&format!("      \"candidates\": {},\n", r.candidates));
        out.push_str(&format!(
            "      \"level_sizes\": [{}],\n",
            r.level_sizes.iter().map(|s| s.to_string()).collect::<Vec<_>>().join(", ")
        ));
        out.push_str(&format!("      \"peak_trie_nodes\": {},\n", r.peak_trie_nodes));
        out.push_str(&format!("      \"pruned_nodes\": {},\n", r.pruned_nodes));
        out.push_str(&format!("      \"digest\": \"{:016x}\",\n", r.digest));
        let t1 = r.times.first().map(|t| t.end_to_end_ns).unwrap_or(0);
        let t8 = r.times.last().map(|t| t.end_to_end_ns).unwrap_or(0);
        out.push_str(&format!(
            "      \"speedup_8t_end_to_end\": {:.3},\n",
            if t8 > 0 { t1 as f64 / t8 as f64 } else { f64::NAN }
        ));
        out.push_str("      \"timings\": [\n");
        for (j, (&threads, t)) in THREADS.iter().zip(&r.times).enumerate() {
            out.push_str(&format!(
                "        {{\"threads\": {}, \"step1_ns\": {}, \"step2_ns\": {}, \
                 \"steps3_6_ns\": {}, \"end_to_end_ns\": {}, \"span_candidates_ns\": {}, \
                 \"span_count_trie_ns\": {}, \"span_noise_ns\": {}, \"span_prune_ns\": {}}}{}\n",
                threads,
                t.step1_ns,
                t.step2_ns,
                t.steps3_6_ns,
                t.end_to_end_ns,
                t.span_candidates_ns,
                t.span_count_trie_ns,
                t.span_noise_ns,
                t.span_prune_ns,
                if j + 1 < r.times.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!("    }}{}\n", if i + 1 < results.len() { "," } else { "" }));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Runs the sweep, persists [`BENCH_PATH`], and tabulates phase timings.
pub fn build_throughput() -> Table {
    let full = std::env::var("DPSC_BUILD_FULL").map(|v| v == "1").unwrap_or(false);
    let (tier, repeats) = if full { ("full", 5) } else { ("fast", 3) };
    let mut scenarios: Vec<&Scenario> = FAST.iter().collect();
    if full {
        scenarios.push(&FLOOD);
    }
    let results: Vec<ScenarioResult> = scenarios
        .iter()
        .enumerate()
        .map(|(i, sc)| run_scenario(sc, i as u64 + 1, repeats))
        .collect();

    std::fs::create_dir_all("results").ok();
    if let Err(e) = std::fs::write(BENCH_PATH, to_json(&results, tier, repeats)) {
        eprintln!("[build_throughput] failed writing {BENCH_PATH}: {e}");
    }

    // NB: table id must differ from BENCH_PATH's stem (the experiments
    // binary writes every table to results/<id>.json).
    let mut t = Table::new(
        "build_throughput",
        "Build pipeline wall time by phase and worker-thread count (dna/text/log corpora)",
        &[
            "scenario",
            "threads",
            "step1 ms",
            "step2 ms",
            "steps3-6 ms",
            "end-to-end ms",
            "spans cand/trie/noise/prune ms",
            "peak nodes",
        ],
    );
    let ms = |ns: u128| format!("{:.2}", ns as f64 / 1e6);
    for r in &results {
        for (&threads, times) in THREADS.iter().zip(&r.times) {
            t.row(vec![
                r.name.to_string(),
                threads.to_string(),
                ms(times.step1_ns),
                ms(times.step2_ns),
                ms(times.steps3_6_ns),
                ms(times.end_to_end_ns),
                format!(
                    "{}/{}/{}/{}",
                    ms(times.span_candidates_ns),
                    ms(times.span_count_trie_ns),
                    ms(times.span_noise_ns),
                    ms(times.span_prune_ns)
                ),
                r.peak_trie_nodes.to_string(),
            ]);
        }
    }
    let hw = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1);
    t.note(format!(
        "tier = {tier}, repeats = {repeats} (min taken), hardware_threads = {hw}. Thread \
         scaling is only visible on multicore hosts; structural outputs and digests are \
         asserted identical across thread counts. Raw artifact: {BENCH_PATH}."
    ));
    for r in &results {
        let t1 = r.times.first().map(|t| t.end_to_end_ns).unwrap_or(0);
        let t8 = r.times.last().map(|t| t.end_to_end_ns).unwrap_or(1);
        t.note(format!(
            "{}: {} workload, {:.2} MB corpus, digest {:016x}, end-to-end 1→8 threads \
             speedup {:.2}×",
            r.name,
            r.workload,
            r.corpus_bytes as f64 / 1e6,
            r.digest,
            t1 as f64 / t8 as f64
        ));
    }
    t
}
