//! Serving-throughput experiment: queries/second against a released
//! synopsis, pointer-trie walk vs the frozen flat index (single, batch,
//! parallel-batch paths).
//!
//! This is an engineering experiment, not a theorem check: it tracks the
//! serving layer's performance trajectory in the recorded results the same
//! way the theorem tables track error shapes.

use std::time::Instant;

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{build_pure, BuildParams, CountMode, PrivateCountStructure};
use dpsc_strkit::trie::Trie;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Table;

/// Workload mixing prefixes of present strings with absent digit patterns.
fn mixed_workload(present: &[Vec<u8>], rng: &mut StdRng, total: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::with_capacity(total);
    for i in 0..total {
        if i % 2 == 0 && !present.is_empty() {
            let s = &present[rng.gen_range(0..present.len())];
            let len = rng.gen_range(1..=s.len());
            out.push(s[..len].to_vec());
        } else {
            let len = rng.gen_range(2..12usize);
            out.push((0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect());
        }
    }
    out
}

/// Theorem-1 construction at laptop scale (~10⁴ nodes), with a
/// `workload`-query mix. Shared by this experiment and the `serving`
/// criterion bench so both always measure the same fixture.
pub fn dp_built(workload: usize) -> (PrivateCountStructure, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(20);
    let db = markov_corpus(1000, 32, 8, 0.6, &mut rng);
    let idx = CorpusIndex::build(&db);
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e6), 0.1)
        .with_thresholds(2.0, 2.0);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeded");
    let present: Vec<Vec<u8>> = db.documents().iter().take(512).cloned().collect();
    let workload = mixed_workload(&present, &mut rng, workload);
    (s, workload)
}

/// Serving-scale synopsis (≥ `target` nodes) assembled from Markov strings
/// with noise-shaped counts; serving cost depends only on trie shape, not
/// on how the counts were produced. Shared with the `serving` bench.
pub fn synthetic(target: usize, workload: usize) -> (PrivateCountStructure, Vec<Vec<u8>>) {
    let mut rng = StdRng::seed_from_u64(99);
    let mut trie: Trie<f64> = Trie::new(1e6);
    let mut inserted: Vec<Vec<u8>> = Vec::new();
    while trie.len() < target {
        let len = rng.gen_range(6..24usize);
        let mut s = Vec::with_capacity(len);
        let mut sym = rng.gen_range(0..8u8);
        for _ in 0..len {
            if rng.gen_bool(0.4) {
                sym = rng.gen_range(0..8u8);
            }
            s.push(b'a' + sym);
        }
        let node = trie.insert_path(&s, |_| 0.0);
        *trie.value_mut(node) = rng.gen_range(0.0..100.0f64);
        inserted.push(s);
    }
    let s = PrivateCountStructure::new(
        trie,
        CountMode::Substring,
        PrivacyParams::pure(1.0),
        50.0,
        50.0,
        10_000,
        24,
    );
    let workload = mixed_workload(&inserted, &mut rng, workload);
    (s, workload)
}

/// Times `f` (which answers `queries` queries per call) and returns
/// queries per second over `iters` calls, after one warm-up call.
fn measure_qps(iters: usize, queries: usize, mut f: impl FnMut()) -> f64 {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    (iters * queries) as f64 / start.elapsed().as_secs_f64()
}

/// The serving-throughput table.
pub fn serving_throughput() -> Table {
    let mut t = Table::new(
        "serving_throughput",
        "Serving: queries/s, pointer trie vs frozen synopsis",
        &["synopsis", "nodes", "path", "queries/s", "vs trie"],
    );
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    for (name, (structure, workload)) in
        [("dp_built", dp_built(2048)), ("synthetic", synthetic(150_000, 2048))]
    {
        let frozen = structure.freeze();
        let pats: Vec<&[u8]> = workload.iter().map(|p| p.as_slice()).collect();
        let nq = pats.len();
        let iters = 200;
        let trie_qps = measure_qps(iters, nq, || {
            for p in &pats {
                std::hint::black_box(structure.query(p));
            }
        });
        let single_qps = measure_qps(iters, nq, || {
            for p in &pats {
                std::hint::black_box(frozen.query(p));
            }
        });
        let batch_qps = measure_qps(iters, nq, || {
            std::hint::black_box(frozen.query_batch(&pats));
        });
        let par_qps = measure_qps(iters, nq, || {
            std::hint::black_box(frozen.query_batch_parallel(&pats, threads));
        });
        for (path, qps) in [
            ("trie_walk", trie_qps),
            ("frozen_single", single_qps),
            ("frozen_batch", batch_qps),
            ("frozen_parallel", par_qps),
        ] {
            t.row(vec![
                name.to_string(),
                frozen.node_count().to_string(),
                path.to_string(),
                format!("{qps:.0}"),
                format!("{:.2}×", qps / trie_qps),
            ]);
        }
    }
    t.note(format!(
        "2048-query mixed workload (present prefixes + absent patterns); \
         parallel path uses {threads} thread(s)."
    ));
    t.note(
        "The frozen synopsis is pure post-processing of the released trie: \
         same bit-for-bit answers, no additional privacy cost.",
    );
    t
}
