//! Experiment `serve_throughput`: the serving-tier perf baseline.
//!
//! Spins up the `dpsc-serve` daemon on a loopback ephemeral port with
//! four DP-built shards — two σ = 4 dna toys plus the ≥ 1 MB `text-1m`
//! and `log-1m` corpora — then drives it with a closed-loop load
//! generator: `connections` client threads, each replaying a
//! pre-generated deterministic request stream (Zipf-weighted present
//! patterns mixed with uniform absent probes, seeded via
//! `dpcore::stream`), in two modes — one request per round-trip
//! (`closed_loop`) and bursts shipped in a single write (`pipelined`,
//! which exercises the server's per-connection batching). Results land
//! in `results/BENCH_serve.json`, the serving-side companion of
//! `BENCH_build.json`, and CI gates regressions against the committed
//! baseline via `scripts/check_serve_bench.py`.
//!
//! ## Determinism contract
//! Everything in the artifact except throughput/latency measurements and
//! cache counters is byte-deterministic for the seed: shard definitions,
//! snapshot digests, workload digests (FNV-1a per connection, XORed so
//! thread interleaving cannot matter), and the answers digest. Every
//! served answer is asserted bit-identical to the **naive binary-search
//! trie walk** ([`FrozenSynopsis::query_naive`]) against the same
//! snapshot *while the experiment runs* — the server answers through the
//! accelerated SWAR/table layout, so this is a live differential check
//! that the acceleration layer is behaviorally invisible. A digest drift
//! therefore means the build or the serving path changed behaviour,
//! which the gate reports louder than a slowdown.
//!
//! Besides wire-level throughput, the artifact records a per-shard
//! **single-query latency** column: an in-process microbenchmark of the
//! accelerated path vs the naive walk over the shard's own pattern
//! universe. In-process on purpose — loopback round trips cost ~1 µs,
//! which would swamp the ~100 ns lookup the fast path optimises.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_dpcore::stream::derive_stream as derive_seed;
use dpsc_private_count::codec::fnv1a;
use dpsc_private_count::{build_pure, BuildParams, CountMode, FrozenSynopsis};
use dpsc_serve::wire::{decode_response, encode_request};
use dpsc_serve::{Client, Request, Response, Server, ServerConfig, ShardManager};
use dpsc_textindex::CorpusIndex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::exps::common::Workload;
use crate::Table;

/// Where the raw perf artifact is written.
pub const BENCH_PATH: &str = "results/BENCH_serve.json";

/// Base seed: corpora, builds, and every connection's request stream
/// derive from it.
const BASE_SEED: u64 = 0x5E12_7EAF;

/// Zipf exponent for the present-pattern mix.
const ZIPF_S: f64 = 1.1;
/// Fraction of queries drawn from the present-pattern universe.
const PRESENT_FRAC: f64 = 0.8;
/// Requests shipped per write in pipelined mode.
const BURST: usize = 32;

/// Connection counts for the concurrency sweep: the readiness core must
/// hold every socket of a point open *simultaneously* (enforced with a
/// barrier between connect and traffic) and answer all of them
/// bit-identically. 4096 is the 10k-class data point — far beyond
/// anything a thread-per-connection pool covers.
const SWEEP_CONNS: [usize; 3] = [16, 256, 4096];
/// Generator threads for the sweep (each thread multiplexes
/// `conns/threads` blocking sockets, one outstanding request per socket).
const SWEEP_THREADS: usize = 8;

struct ShardSpec {
    name: &'static str,
    workload: Workload,
    shard_id: u32,
    n: usize,
    ell: usize,
    epsilon: f64,
    tau_frac: f64,
}

/// Same non-FAIL DP-build regimes as `BENCH_build.json`'s fast tier, so
/// the two artifacts track the same constructions. `text-1m` and
/// `log-1m` are the ≥ 1 MB corpora (larger alphabets exercise the mid
/// SWAR-block and direct-table fast-path tiers at the root).
const SHARDS: [ShardSpec; 4] = [
    ShardSpec {
        name: "dna-small",
        workload: Workload::Dna,
        shard_id: 0,
        n: 1024,
        ell: 64,
        epsilon: 20.0,
        tau_frac: 0.45,
    },
    ShardSpec {
        name: "dna-mid",
        workload: Workload::Dna,
        shard_id: 1,
        n: 2048,
        ell: 64,
        epsilon: 16.0,
        tau_frac: 0.35,
    },
    ShardSpec {
        name: "text-1m",
        workload: Workload::Text,
        shard_id: 2,
        n: 10624,
        ell: 97,
        epsilon: 16.0,
        tau_frac: 0.35,
    },
    ShardSpec {
        name: "log-1m",
        workload: Workload::Log,
        shard_id: 3,
        n: 36_000,
        ell: 30,
        epsilon: 16.0,
        tau_frac: 0.10,
    },
];

/// One FNV-1a fold step for the incremental digests (same constants as
/// `codec::fnv1a`, lifted to u64 words).
fn fnv_fold(acc: u64, word: u64) -> u64 {
    (acc ^ word).wrapping_mul(0x0000_0100_0000_01b3)
}

/// One built shard: the snapshot, its wire bytes in every codec dialect,
/// and the deterministic present-pattern universe the Zipf mix draws
/// from.
struct BuiltShard {
    spec: &'static ShardSpec,
    frozen: FrozenSynopsis,
    bytes: Vec<u8>,
    /// Uncompressed `DPSF` v2: what actually ships to the daemon, so the
    /// resident snapshots serve *borrowed* from the received buffers.
    bytes_v2: Vec<u8>,
    /// Delta-compressed v2 — the size column (`serialized_len_v2`).
    bytes_v2c: Vec<u8>,
    /// Total generated corpus size (`Database::total_len`).
    corpus_bytes: usize,
    universe: Vec<Vec<u8>>,
    universe_digest: u64,
    snapshot_digest: u64,
}

fn build_shard(spec: &'static ShardSpec, tag: u64) -> BuiltShard {
    let mut rng = StdRng::seed_from_u64(derive_seed(BASE_SEED, tag));
    let db = spec.workload.make_corpus(spec.n, spec.ell, &mut rng);
    let idx = CorpusIndex::build(&db);
    let tau = spec.tau_frac * spec.n as f64;
    let params = BuildParams::new(CountMode::Document, PrivacyParams::pure(spec.epsilon), 0.1)
        .with_thresholds(tau, f64::NEG_INFINITY);
    let built = build_pure(&idx, &params, &mut rng)
        .expect("benchmark regimes are tuned to avoid the FAIL branch");
    let frozen = built.freeze();
    let bytes = frozen.to_bytes();
    let snapshot_digest = fnv1a(&bytes);
    // Both v2 dialects must round-trip canonically, and the compressed
    // dialect must actually pay for its header on every scenario shard —
    // these are correctness claims of the codec, checked live like the
    // served-answer differential.
    let bytes_v2 = frozen.to_bytes_v2(false);
    let bytes_v2c = frozen.to_bytes_v2(true);
    for (dialect, b) in [("v2", &bytes_v2), ("v2 compressed", &bytes_v2c)] {
        let back = FrozenSynopsis::from_bytes(b).expect("v2 snapshot decodes");
        assert_eq!(back, frozen, "{dialect} decode drifted on {}", spec.name);
        assert_eq!(back.to_bytes(), *b, "{dialect} encoding not canonical on {}", spec.name);
    }
    assert!(
        bytes_v2c.len() < bytes.len(),
        "compressed v2 ({}) must undercut v1 ({}) on {}",
        bytes_v2c.len(),
        bytes.len(),
        spec.name
    );

    // Deterministic present-pattern universe: short substrings of the
    // corpus documents, first-seen order, capped. Rank order is what the
    // Zipf sampler weights, so it is part of the workload definition.
    let mut universe: Vec<Vec<u8>> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    'outer: for doc in db.documents() {
        for (start, len) in [(0usize, 3usize), (1, 4), (2, 6), (0, 8)] {
            if doc.len() >= start + len {
                let pat = doc[start..start + len].to_vec();
                if seen.insert(pat.clone()) {
                    universe.push(pat);
                    if universe.len() >= 512 {
                        break 'outer;
                    }
                }
            }
        }
    }
    let mut universe_digest = 0xCBF2_9CE4_8422_2325u64;
    for p in &universe {
        universe_digest = fnv_fold(universe_digest, fnv1a(p));
    }
    BuiltShard {
        spec,
        frozen,
        bytes,
        bytes_v2,
        bytes_v2c,
        corpus_bytes: db.total_len(),
        universe,
        universe_digest,
        snapshot_digest,
    }
}

/// Per-shard cold-load latency: ns per full decode-and-install of the v1
/// codec ([`FrozenSynopsis::from_bytes`], four array copies) vs the v2
/// borrowed path ([`FrozenSynopsis::from_bytes_shared`] on uncompressed
/// v2 bytes, zero array copies — the snapshot points into the shared
/// buffer). Both validate checksums and structure and rebuild the
/// accelerated layout, so the delta isolates what borrowing saves.
/// Min-over-repeats average, like [`single_query_latency`].
fn cold_load_latency(shard: &BuiltShard) -> (f64, f64) {
    const REPS: usize = 7;
    const ITERS: usize = 24;
    let shared: Arc<[u8]> = shard.bytes_v2.clone().into();
    let run = |v2: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            for _ in 0..ITERS {
                let decoded = if v2 {
                    FrozenSynopsis::from_bytes_shared(Arc::clone(&shared))
                } else {
                    FrozenSynopsis::from_bytes(std::hint::black_box(&shard.bytes))
                }
                .expect("benchmark snapshot decodes");
                debug_assert_eq!(decoded.is_borrowed(), v2);
                std::hint::black_box(&decoded);
            }
            best = best.min(t0.elapsed().as_nanos() as f64 / ITERS as f64);
        }
        best
    };
    (run(false), run(true))
}

/// Per-shard single-query latency: ns/query over the shard's pattern
/// universe for the accelerated path ([`FrozenSynopsis::query`]) vs the
/// naive binary-search walk ([`FrozenSynopsis::query_naive`], the
/// pre-acceleration serving path kept as the differential oracle).
/// Min-over-repeats average, in-process (see the module docs for why not
/// over the wire).
fn single_query_latency(shard: &BuiltShard) -> (f64, f64) {
    const REPS: usize = 7;
    const ITERS: usize = 48;
    let pats: Vec<&[u8]> = shard.universe.iter().map(|p| p.as_slice()).collect();
    let queries = (ITERS * pats.len()) as f64;
    let run = |naive: bool| -> f64 {
        let mut best = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = Instant::now();
            let mut acc = 0u64;
            for _ in 0..ITERS {
                for p in &pats {
                    let v = if naive {
                        shard.frozen.query_naive(std::hint::black_box(p))
                    } else {
                        shard.frozen.query(std::hint::black_box(p))
                    };
                    acc ^= v.to_bits();
                }
            }
            std::hint::black_box(acc);
            best = best.min(t0.elapsed().as_nanos() as f64 / queries);
        }
        best
    };
    (run(false), run(true))
}

/// Zipf(s) sampler over ranks `0..n` via inverse-CDF binary search.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..*self.cdf.last().expect("non-empty universe"));
        self.cdf.partition_point(|&c| c <= u)
    }
}

/// The full pre-generated workload of one connection: requests plus the
/// locally computed expected answers (the served answers are asserted
/// bit-identical during the run).
struct ConnWorkload {
    requests: Vec<Request>,
    expected: Vec<Vec<f64>>,
    /// FNV-1a over (shard, patterns) in stream order.
    workload_digest: u64,
    /// FNV-1a over expected answer bits in stream order.
    answers_digest: u64,
    queries: usize,
}

fn generate_workload(
    conn: u64,
    requests: usize,
    batch: usize,
    shards: &[BuiltShard],
    zipfs: &[Zipf],
) -> ConnWorkload {
    let mut rng = StdRng::seed_from_u64(derive_seed(BASE_SEED, 0x0100 + conn));
    let mut reqs = Vec::with_capacity(requests);
    let mut expected = Vec::with_capacity(requests);
    let mut wd = 0xCBF2_9CE4_8422_2325u64;
    let mut ad = 0xCBF2_9CE4_8422_2325u64;
    let mut queries = 0usize;
    for _ in 0..requests {
        let si = rng.gen_range(0..shards.len());
        let shard = &shards[si];
        let mut patterns = Vec::with_capacity(batch);
        for _ in 0..batch {
            let pat: Vec<u8> = if rng.gen_bool(PRESENT_FRAC) {
                shard.universe[zipfs[si].sample(&mut rng)].clone()
            } else {
                let len = rng.gen_range(2..10usize);
                (0..len).map(|_| rng.gen_range(b'0'..=b'9')).collect()
            };
            wd = fnv_fold(wd, fnv1a(&pat) ^ shard.spec.shard_id as u64);
            patterns.push(pat);
        }
        // Expected answers come from the *naive* walk: the daemon serves
        // through the accelerated layout, so the replay's bit-identical
        // assertion is a live fast-path-vs-oracle differential check.
        let answers: Vec<f64> = patterns.iter().map(|p| shard.frozen.query_naive(p)).collect();
        for a in &answers {
            ad = fnv_fold(ad, a.to_bits());
        }
        queries += patterns.len();
        reqs.push(Request::QueryBatch { shard: shard.spec.shard_id, patterns });
        expected.push(answers);
    }
    ConnWorkload { requests: reqs, expected, workload_digest: wd, answers_digest: ad, queries }
}

/// Per-mode measurements over one replay of every connection's stream.
#[derive(Clone, Copy, Default)]
struct ModeTimes {
    elapsed_ns: u128,
    qps: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
}

fn percentile(sorted: &[u128], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx] as f64 / 1e3
}

/// Replays every connection's stream against the daemon, one request per
/// round-trip (`burst == 1`) or in pipelined bursts, asserting every
/// answer bit-identical to the precomputed expectation.
fn replay(addr: std::net::SocketAddr, workloads: &[ConnWorkload], burst: usize) -> ModeTimes {
    let total_queries: usize = workloads.iter().map(|w| w.queries).sum();
    let latencies: Vec<std::sync::Mutex<Vec<u128>>> =
        workloads.iter().map(|_| std::sync::Mutex::new(Vec::new())).collect();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for (w, lat) in workloads.iter().zip(&latencies) {
            scope.spawn(move || {
                let mut client = Client::connect(addr).expect("load generator connects");
                let mut lats = Vec::with_capacity(w.requests.len());
                for (chunk, exp_chunk) in w.requests.chunks(burst).zip(w.expected.chunks(burst)) {
                    let t = Instant::now();
                    let responses = if chunk.len() == 1 {
                        vec![client.call(&chunk[0]).expect("request answered")]
                    } else {
                        client.pipeline(chunk).expect("burst answered")
                    };
                    let per_req = t.elapsed().as_nanos() / chunk.len() as u128;
                    for (resp, exp) in responses.iter().zip(exp_chunk) {
                        match resp {
                            Response::QueryBatch { values } => {
                                assert_eq!(values.len(), exp.len());
                                for (v, e) in values.iter().zip(exp) {
                                    assert_eq!(
                                        v.to_bits(),
                                        e.to_bits(),
                                        "served answer drifted from the local synopsis"
                                    );
                                }
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                        lats.push(per_req);
                    }
                }
                *lat.lock().expect("latency mutex not poisoned") = lats;
            });
        }
    });
    let elapsed_ns = t0.elapsed().as_nanos();
    let mut all: Vec<u128> = latencies
        .iter()
        .flat_map(|l| l.lock().expect("latency mutex not poisoned").clone())
        .collect();
    all.sort_unstable();
    ModeTimes {
        elapsed_ns,
        qps: total_queries as f64 / (elapsed_ns as f64 / 1e9),
        p50_us: percentile(&all, 0.50),
        p95_us: percentile(&all, 0.95),
        p99_us: percentile(&all, 0.99),
    }
}

/// One row of the concurrency sweep.
struct SweepPoint {
    conns: usize,
    requests_per_conn: usize,
    total_queries: usize,
    elapsed_ns: u128,
    qps: f64,
    qps_per_conn: f64,
    workload_digest: u64,
    answers_digest: u64,
}

/// Connects with bounded retries: a 4096-socket storm can transiently
/// overflow the accept backlog, and a refused/reset connect here is a
/// retry, not a failure.
fn connect_with_retry(addr: SocketAddr) -> TcpStream {
    let mut last = None;
    for _ in 0..100 {
        match TcpStream::connect(addr) {
            Ok(s) => {
                s.set_nodelay(true).expect("nodelay");
                return s;
            }
            Err(e) => {
                last = Some(e);
                std::thread::sleep(std::time::Duration::from_millis(10));
            }
        }
    }
    panic!("sweep generator failed to connect: {last:?}");
}

/// Reads exactly one response frame from a blocking socket.
fn read_response_frame(stream: &mut TcpStream) -> Response {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response frame length");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).expect("response frame body");
    decode_response(&body).expect("response frame decodes")
}

/// Replays one sweep point: every socket is connected before any request
/// is sent (a barrier makes "conns sockets simultaneously open" a hard
/// property, not a race), then each generator thread drives its slice of
/// sockets in write-all-then-read-all rounds — one outstanding request
/// per socket, so the round-trips of a slice overlap at the server
/// without any client-side readiness machinery, and no send/receive
/// buffer can deadlock (a single request and its response both fit in
/// the kernel buffers with room to spare). Every answer is asserted
/// bit-identical to the precomputed naive-walk expectation, same as
/// [`replay`].
fn replay_sweep(addr: SocketAddr, workloads: &[ConnWorkload]) -> SweepPoint {
    let conns = workloads.len();
    let threads = conns.clamp(1, SWEEP_THREADS);
    let per_thread = conns.div_ceil(threads);
    let barrier = std::sync::Barrier::new(threads);
    // Traffic time only: the clock starts after the barrier (once every
    // socket of the point is open), so a slow connect storm — retries
    // sleep 10 ms — cannot masquerade as serving throughput. The point's
    // elapsed is the slowest thread's traffic window.
    let elapsed_ns = std::sync::atomic::AtomicU64::new(0);
    std::thread::scope(|scope| {
        for slice in workloads.chunks(per_thread) {
            let (barrier, elapsed_ns) = (&barrier, &elapsed_ns);
            scope.spawn(move || {
                let mut socks: Vec<TcpStream> =
                    slice.iter().map(|_| connect_with_retry(addr)).collect();
                barrier.wait(); // all sweep sockets are now open at once
                let t0 = Instant::now();
                let rounds = slice.iter().map(|w| w.requests.len()).max().unwrap_or(0);
                for r in 0..rounds {
                    for (w, s) in slice.iter().zip(&mut socks) {
                        if let Some(req) = w.requests.get(r) {
                            s.write_all(&encode_request(req)).expect("request written");
                        }
                    }
                    for (w, s) in slice.iter().zip(&mut socks) {
                        let Some(exp) = w.expected.get(r) else { continue };
                        match read_response_frame(s) {
                            Response::QueryBatch { values } => {
                                assert_eq!(values.len(), exp.len());
                                for (v, e) in values.iter().zip(exp) {
                                    assert_eq!(
                                        v.to_bits(),
                                        e.to_bits(),
                                        "sweep answer drifted from the local synopsis"
                                    );
                                }
                            }
                            other => panic!("unexpected sweep response {other:?}"),
                        }
                    }
                }
                elapsed_ns
                    .fetch_max(t0.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::SeqCst);
            });
        }
    });
    let elapsed_ns = elapsed_ns.load(std::sync::atomic::Ordering::SeqCst) as u128;
    let total_queries: usize = workloads.iter().map(|w| w.queries).sum();
    let qps = total_queries as f64 / (elapsed_ns as f64 / 1e9);
    SweepPoint {
        conns,
        requests_per_conn: workloads.first().map(|w| w.requests.len()).unwrap_or(0),
        total_queries,
        elapsed_ns,
        qps,
        qps_per_conn: qps / conns.max(1) as f64,
        workload_digest: workloads.iter().fold(0u64, |acc, w| acc ^ w.workload_digest),
        answers_digest: workloads.iter().fold(0u64, |acc, w| acc ^ w.answers_digest),
    }
}

/// Counters and timings from the robustness scenario: overload shedding,
/// slow-loris eviction, idle reaping, a durable rollback, and the
/// crash-restart recovery measurement. Every `*_total` is the daemon's
/// own counter, asserted equal to the generator-side observation at
/// runtime and recorded for the gate.
struct RobustnessResult {
    overloaded_total: u64,
    shed_observed: u64,
    deadline_evicted_total: u64,
    loris_observed: u64,
    idle_reaped_total: u64,
    idle_observed: u64,
    rollbacks_total: u64,
    rollback_observed: u64,
    /// Persist → kill → recover → first (bit-identical) answer, in ns.
    restart_recovery_ns: u128,
    recoveries_total: u64,
}

/// A read-only admission probe: connects and reads without ever writing,
/// so the shed `Overloaded` frame cannot be lost to a reset racing
/// unread request bytes. Returns once the frame (and the close behind
/// it) arrives.
fn shed_probe(addr: SocketAddr) -> Response {
    let mut s = TcpStream::connect(addr).expect("probe connects at TCP level");
    s.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    let resp = read_response_frame(&mut s);
    let mut rest = [0u8; 16];
    assert!(
        matches!(s.read(&mut rest), Ok(0) | Err(_)),
        "shed connection must close after its frame"
    );
    resp
}

/// Pings `admin` (keeping it non-idle) while polling `victim` for the
/// server-side close, up to a 10 s budget. Returns true once the victim
/// socket reads EOF or a reset.
fn await_eviction(admin: &mut Client, shard: u32, pattern: &[u8], victim: &mut TcpStream) -> bool {
    victim.set_read_timeout(Some(Duration::from_millis(10))).expect("read timeout");
    let mut one = [0u8; 16];
    let t = Instant::now();
    while t.elapsed() < Duration::from_secs(10) {
        admin.query(shard, pattern).expect("admin connection stays healthy");
        match victim.read(&mut one) {
            Ok(0) => return true,
            Ok(_) => panic!("evicted connection received unexpected bytes"),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => return true,
        }
        std::thread::sleep(Duration::from_millis(40));
    }
    false
}

/// The robustness scenario: a second daemon with a snapshot store, a
/// 2-connection admission bound, a 150 ms read deadline, and a 400 ms
/// idle timeout. Installs two epochs durably and rolls back; holds a
/// slow-loris connection to eviction; sheds three read-only probes at
/// admission; lets an idle connection get reaped — then asserts the
/// daemon's degradation counters reconcile *exactly* with what the
/// generator did. Finally: a torn record is appended to the manifest (a
/// simulated crash mid-append), the daemon restarts cold on the same
/// directory, and `restart_recovery_ns` clocks persist → kill → recover
/// → first answer, with that answer asserted bit-identical to the
/// pre-crash rolled-back epoch.
fn robustness_scenario(shards: &[BuiltShard]) -> RobustnessResult {
    let dir = std::env::temp_dir().join(format!("dpsc-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let small = &shards[0];
    let mid = &shards[1];
    let probe: Vec<&[u8]> = small.universe.iter().take(64).map(|p| p.as_slice()).collect();
    let expect_small: Vec<u64> =
        probe.iter().map(|p| small.frozen.query_naive(p).to_bits()).collect();
    let expect_mid: Vec<u64> = probe.iter().map(|p| mid.frozen.query_naive(p).to_bits()).collect();

    let manager = Arc::new(ShardManager::new());
    let config = ServerConfig {
        workers: 2,
        max_conns: 2,
        read_deadline: Some(Duration::from_millis(150)),
        idle_timeout: Some(Duration::from_millis(400)),
        store_dir: Some(dir.clone()),
        ..ServerConfig::default()
    };
    let handle = Server::spawn(config, manager).expect("robustness daemon binds");
    let addr = handle.addr();
    let mut admin = Client::connect(addr).expect("admin connects");

    // Durable installs + rollback: small → mid → back to small.
    let e1 = admin.load_snapshot(0, &small.bytes_v2).expect("epoch 1 installs");
    admin.load_snapshot(0, &mid.bytes_v2).expect("epoch 2 installs");
    let served: Vec<u64> =
        admin.query_batch(0, &probe).expect("epoch 2 serves").iter().map(|v| v.to_bits()).collect();
    assert_eq!(served, expect_mid, "pre-rollback answers");
    admin.rollback(0, e1).expect("rollback to a retained epoch");
    let served: Vec<u64> = admin
        .query_batch(0, &probe)
        .expect("rollback serves")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    assert_eq!(served, expect_small, "rollback re-installs epoch 1 bit-identically");
    let rollback_observed = 1u64;

    // A slow loris takes the second admitted slot: a partial frame, then
    // silence until the read deadline evicts it.
    let mut loris = TcpStream::connect(addr).expect("loris connects");
    loris.write_all(b"DP").expect("partial frame sent");
    admin.query(0, probe[0]).expect("admin still served");

    // With both slots held, read-only probes are shed with a typed frame.
    let shed_observed = 3u64;
    for i in 0..shed_observed {
        let resp = shed_probe(addr);
        assert!(matches!(resp, Response::Overloaded), "probe {i} got {resp:?}");
    }
    let loris_observed = u64::from(await_eviction(&mut admin, 0, probe[0], &mut loris));
    assert_eq!(loris_observed, 1, "loris must be evicted at the read deadline");

    // An idle connection (admitted into the freed slot, never writes)
    // gets reaped at the idle timeout.
    let mut idler = TcpStream::connect(addr).expect("idler connects");
    let idle_observed = u64::from(await_eviction(&mut admin, 0, probe[0], &mut idler));
    assert_eq!(idle_observed, 1, "idler must be reaped at the idle timeout");

    // Exact reconciliation: the daemon counted precisely what we did.
    let report = admin.metrics().expect("metrics answered");
    assert_eq!(report.overloaded_total, shed_observed, "shed accounting drifted");
    assert_eq!(report.deadline_evicted_total, loris_observed, "eviction accounting drifted");
    assert_eq!(report.idle_reaped_total, idle_observed, "reap accounting drifted");
    assert_eq!(report.rollbacks_total, rollback_observed, "rollback accounting drifted");
    assert_eq!(report.recoveries_total, 0, "fresh store had nothing to recover");
    let counters = (
        report.overloaded_total,
        report.deadline_evicted_total,
        report.idle_reaped_total,
        report.rollbacks_total,
    );
    drop(admin);
    handle.shutdown();

    // Simulated crash mid-manifest-append: a torn record on the tail.
    {
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("MANIFEST"))
            .expect("manifest exists after durable installs");
        f.write_all(&[0xAB; 20]).expect("torn tail appended");
    }

    // Cold restart on the same directory: recovery replays the manifest
    // (repairing the torn tail) and the first answer must be
    // bit-identical to the pre-crash rolled-back epoch.
    let t0 = Instant::now();
    let manager = Arc::new(ShardManager::new());
    let config =
        ServerConfig { workers: 2, store_dir: Some(dir.clone()), ..ServerConfig::default() };
    let handle = Server::spawn(config, manager).expect("recovery daemon binds");
    let mut client = Client::connect(handle.addr()).expect("recovery client connects");
    let served: Vec<u64> = client
        .query_batch(0, &probe)
        .expect("recovered epoch serves")
        .iter()
        .map(|v| v.to_bits())
        .collect();
    let restart_recovery_ns = t0.elapsed().as_nanos();
    assert_eq!(served, expect_small, "recovered answers must match the pre-crash epoch");
    let report = client.metrics().expect("metrics answered");
    assert_eq!(report.recoveries_total, 1, "one corpus replayed at startup");
    let recoveries_total = report.recoveries_total;
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);

    eprintln!(
        "[serve_throughput] robustness: {} sheds, {} eviction, {} reap, {} rollback \
         reconciled; restart recovery {:.2} ms",
        counters.0,
        counters.1,
        counters.2,
        counters.3,
        restart_recovery_ns as f64 / 1e6
    );
    RobustnessResult {
        overloaded_total: counters.0,
        shed_observed,
        deadline_evicted_total: counters.1,
        loris_observed,
        idle_reaped_total: counters.2,
        idle_observed,
        rollbacks_total: counters.3,
        rollback_observed,
        restart_recovery_ns,
        recoveries_total,
    }
}

/// The instrumentation-overhead comparison: the same pipelined replay
/// against a daemon with full observability (trace ring + slow-op log)
/// and against one stripped to bare counters (`trace_capacity = 0`).
/// CI gates `overhead_frac` at ≤ 5%: observability must stay effectively
/// free at serving speed.
struct OverheadResult {
    instrumented_qps: f64,
    counters_only_qps: f64,
    /// `1 − instrumented/counters_only` (negative = noise in favour of
    /// the instrumented run).
    overhead_frac: f64,
}

/// Measures [`OverheadResult`]: best-of-3 pipelined replays per config,
/// shards installed in-process (identical bits to the wire-shipped ones,
/// so the replay's differential check still holds).
fn overhead_scenario(
    shards: &[BuiltShard],
    workloads: &[ConnWorkload],
    workers: usize,
) -> OverheadResult {
    let run = |observability: bool| -> f64 {
        let manager = Arc::new(ShardManager::new());
        for s in shards {
            manager.install(s.spec.shard_id, s.frozen.clone(), s.bytes_v2.len());
        }
        let config = ServerConfig {
            workers,
            trace_capacity: if observability { 1024 } else { 0 },
            slow_op_threshold: observability.then(|| Duration::from_millis(50)),
            ..ServerConfig::default()
        };
        let handle = Server::spawn(config, manager).expect("overhead daemon binds");
        let mut best = 0.0f64;
        for _ in 0..3 {
            best = best.max(replay(handle.addr(), workloads, BURST).qps);
        }
        handle.shutdown();
        best
    };
    let counters_only_qps = run(false);
    let instrumented_qps = run(true);
    let overhead_frac = 1.0 - instrumented_qps / counters_only_qps;
    eprintln!(
        "[serve_throughput] instrumentation overhead: {instrumented_qps:.0} qps instrumented \
         vs {counters_only_qps:.0} qps counters-only ({:+.2}%)",
        overhead_frac * 100.0
    );
    OverheadResult { instrumented_qps, counters_only_qps, overhead_frac }
}

struct RunResult {
    connections: usize,
    requests_per_conn: usize,
    batch: usize,
    total_queries: usize,
    workload_digest: u64,
    answers_digest: u64,
    closed_loop: ModeTimes,
    pipelined: ModeTimes,
    cache_hits: u64,
    cache_misses: u64,
    sweep: Vec<SweepPoint>,
    /// Server-reported cumulative pattern count vs the generator's own —
    /// asserted equal at runtime, recorded for the gate.
    metrics_patterns_total: u64,
    generator_patterns_total: u64,
    metrics_p50_ns: f64,
    metrics_p99_ns: f64,
    /// Per-op percentiles for the op the load is made of, from the
    /// daemon's dedicated `QueryBatch` histogram.
    metrics_op_qb_p50_ns: f64,
    metrics_op_qb_p99_ns: f64,
    /// Event-loop utilization split (readiness core): time inside
    /// `epoll_wait` vs time servicing readiness events.
    loop_wait_ns: u64,
    loop_busy_ns: u64,
    loop_utilization: f64,
    trace_events_total: u64,
    robustness: RobustnessResult,
    overhead: OverheadResult,
}

#[allow(clippy::too_many_arguments)]
fn to_json(
    shards: &[BuiltShard],
    lats: &[(f64, f64)],
    cold_lats: &[(f64, f64)],
    run: &RunResult,
    tier: &str,
    repeats: usize,
    workers: usize,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"dpsc-bench-serve/v1\",\n");
    out.push_str(&format!("  \"seed\": {BASE_SEED},\n"));
    out.push_str(&format!("  \"tier\": \"{tier}\",\n"));
    out.push_str(&format!("  \"repeats\": {repeats},\n"));
    out.push_str(&format!("  \"workers\": {workers},\n"));
    out.push_str(&format!(
        "  \"hardware_threads\": {},\n",
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    ));
    out.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    out.push_str(&format!("  \"present_frac\": {PRESENT_FRAC},\n"));
    out.push_str(
        "  \"notes\": \"All fields except *_ns/*_us, qps, fastpath_speedup and cache counters \
         are deterministic for the seed (digests XOR per-connection FNV-1a streams, so thread \
         interleaving cannot change them). Served answers are asserted bit-identical to the \
         naive binary-search trie walk at runtime; single_query_ns is the in-process \
         accelerated path, single_query_naive_ns the oracle walk on the same universe. \
         serialized_len_v2 is the delta-compressed DPSF v2 encoding (deterministic); \
         cold_load_ns is a full v1 decode-and-install, cold_load_v2_ns the v2 zero-copy \
         borrowed decode of the same snapshot. Snapshots ship to the daemon as \
         uncompressed v2, so the replay also differentially checks borrowed serving. \
         conn_sweep points hold every socket open simultaneously (barrier-enforced); \
         their digests are deterministic, qps fields are not. metrics.patterns_total is \
         the daemon's own counter, asserted equal to generator_patterns_total at \
         runtime. metrics.op_query_batch_* comes from the daemon's per-op histogram, \
         loop_* from the readiness event loop (zero on the thread-pool core). overhead \
         compares the same pipelined replay against a daemon with full observability \
         (default) vs trace_capacity = 0 bare counters; CI gates overhead_frac at \
         0.05.\",\n",
    );
    out.push_str("  \"shards\": [\n");
    for (i, (s, (&(fast_ns, naive_ns), &(cold_ns, cold_v2_ns)))) in
        shards.iter().zip(lats.iter().zip(cold_lats)).enumerate()
    {
        out.push_str("    {\n");
        out.push_str(&format!("      \"name\": \"{}\",\n", s.spec.name));
        out.push_str(&format!("      \"workload\": \"{}\",\n", s.spec.workload.as_str()));
        out.push_str(&format!("      \"shard_id\": {},\n", s.spec.shard_id));
        out.push_str(&format!("      \"n\": {},\n", s.spec.n));
        out.push_str(&format!("      \"ell\": {},\n", s.spec.ell));
        out.push_str(&format!("      \"corpus_bytes\": {},\n", s.corpus_bytes));
        out.push_str(&format!("      \"epsilon\": {},\n", s.spec.epsilon));
        out.push_str(&format!("      \"node_count\": {},\n", s.frozen.node_count()));
        out.push_str(&format!("      \"serialized_len\": {},\n", s.bytes.len()));
        out.push_str(&format!("      \"serialized_len_v2\": {},\n", s.bytes_v2c.len()));
        out.push_str(&format!("      \"accel_bytes\": {},\n", s.frozen.accel_memory_bytes()));
        out.push_str(&format!("      \"universe\": {},\n", s.universe.len()));
        out.push_str(&format!("      \"universe_digest\": \"{:016x}\",\n", s.universe_digest));
        out.push_str(&format!("      \"snapshot_digest\": \"{:016x}\",\n", s.snapshot_digest));
        out.push_str(&format!("      \"single_query_ns\": {fast_ns:.1},\n"));
        out.push_str(&format!("      \"single_query_naive_ns\": {naive_ns:.1},\n"));
        out.push_str(&format!("      \"cold_load_ns\": {cold_ns:.1},\n"));
        out.push_str(&format!("      \"cold_load_v2_ns\": {cold_v2_ns:.1},\n"));
        out.push_str(&format!("      \"fastpath_speedup\": {:.3}\n", naive_ns / fast_ns));
        out.push_str(&format!("    }}{}\n", if i + 1 < shards.len() { "," } else { "" }));
    }
    out.push_str("  ],\n");
    out.push_str("  \"workload\": {\n");
    out.push_str(&format!("    \"connections\": {},\n", run.connections));
    out.push_str(&format!("    \"requests_per_conn\": {},\n", run.requests_per_conn));
    out.push_str(&format!("    \"batch\": {},\n", run.batch));
    out.push_str(&format!("    \"burst\": {BURST},\n"));
    out.push_str(&format!("    \"total_queries\": {},\n", run.total_queries));
    out.push_str(&format!("    \"workload_digest\": \"{:016x}\",\n", run.workload_digest));
    out.push_str(&format!("    \"answers_digest\": \"{:016x}\"\n", run.answers_digest));
    out.push_str("  },\n");
    out.push_str("  \"modes\": [\n");
    for (i, (name, t)) in
        [("closed_loop", run.closed_loop), ("pipelined", run.pipelined)].iter().enumerate()
    {
        out.push_str(&format!(
            "    {{\"mode\": \"{name}\", \"elapsed_ns\": {}, \"qps\": {:.0}, \
             \"latency_p50_us\": {:.1}, \"latency_p95_us\": {:.1}, \"latency_p99_us\": {:.1}}}{}\n",
            t.elapsed_ns,
            t.qps,
            t.p50_us,
            t.p95_us,
            t.p99_us,
            if i == 0 { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"conn_sweep\": [\n");
    for (i, p) in run.sweep.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"conns\": {}, \"requests_per_conn\": {}, \"total_queries\": {}, \
             \"elapsed_ns\": {}, \"qps\": {:.0}, \"qps_per_conn\": {:.2}, \
             \"workload_digest\": \"{:016x}\", \"answers_digest\": \"{:016x}\"}}{}\n",
            p.conns,
            p.requests_per_conn,
            p.total_queries,
            p.elapsed_ns,
            p.qps,
            p.qps_per_conn,
            p.workload_digest,
            p.answers_digest,
            if i + 1 < run.sweep.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"metrics\": {\n");
    out.push_str(&format!(
        "    \"patterns_total\": {},\n    \"generator_patterns_total\": {},\n",
        run.metrics_patterns_total, run.generator_patterns_total
    ));
    out.push_str(&format!(
        "    \"latency_p50_ns\": {:.0},\n    \"latency_p99_ns\": {:.0},\n",
        run.metrics_p50_ns, run.metrics_p99_ns
    ));
    out.push_str(&format!(
        "    \"op_query_batch_p50_ns\": {:.0},\n    \"op_query_batch_p99_ns\": {:.0},\n",
        run.metrics_op_qb_p50_ns, run.metrics_op_qb_p99_ns
    ));
    out.push_str(&format!(
        "    \"loop_wait_ns\": {},\n    \"loop_busy_ns\": {},\n    \"loop_utilization\": {:.6},\n",
        run.loop_wait_ns, run.loop_busy_ns, run.loop_utilization
    ));
    out.push_str(&format!("    \"trace_events_total\": {}\n", run.trace_events_total));
    out.push_str("  },\n");
    out.push_str("  \"overhead\": {\n");
    out.push_str(&format!(
        "    \"instrumented_qps\": {:.0},\n    \"counters_only_qps\": {:.0},\n",
        run.overhead.instrumented_qps, run.overhead.counters_only_qps
    ));
    out.push_str(&format!("    \"overhead_frac\": {:.6}\n", run.overhead.overhead_frac));
    out.push_str("  },\n");
    let r = &run.robustness;
    out.push_str("  \"durability\": {\n");
    out.push_str(&format!("    \"restart_recovery_ns\": {},\n", r.restart_recovery_ns));
    out.push_str(&format!("    \"recoveries_total\": {}\n", r.recoveries_total));
    out.push_str("  },\n");
    out.push_str("  \"degradation\": {\n");
    out.push_str(&format!(
        "    \"overloaded_total\": {},\n    \"shed_observed\": {},\n",
        r.overloaded_total, r.shed_observed
    ));
    out.push_str(&format!(
        "    \"deadline_evicted_total\": {},\n    \"loris_observed\": {},\n",
        r.deadline_evicted_total, r.loris_observed
    ));
    out.push_str(&format!(
        "    \"idle_reaped_total\": {},\n    \"idle_observed\": {},\n",
        r.idle_reaped_total, r.idle_observed
    ));
    out.push_str(&format!(
        "    \"rollbacks_total\": {},\n    \"rollback_observed\": {}\n",
        r.rollbacks_total, r.rollback_observed
    ));
    out.push_str("  },\n");
    out.push_str(&format!("  \"cache_hits\": {},\n", run.cache_hits));
    out.push_str(&format!("  \"cache_misses\": {}\n", run.cache_misses));
    out.push_str("}\n");
    out
}

/// Runs the load generator, persists [`BENCH_PATH`], and tabulates the
/// two serving modes.
pub fn serve_throughput() -> Table {
    let full = std::env::var("DPSC_SERVE_FULL").map(|v| v == "1").unwrap_or(false);
    let (tier, repeats, connections, requests_per_conn, batch) =
        if full { ("full", 3, 8, 1200, 16) } else { ("fast", 2, 4, 600, 16) };
    // Each worker owns one connection for its lifetime, so the pool must
    // match the generator's concurrency or queued connections would record
    // wave-sized latencies.
    let workers = connections;

    // ---- Build the shards and the deterministic workloads -----------------
    let shards: Vec<BuiltShard> =
        SHARDS.iter().enumerate().map(|(i, s)| build_shard(s, i as u64 + 1)).collect();
    // In-process microbenchmarks before the daemon starts competing for
    // the CPU: accelerated path vs naive oracle, and v1 full-copy decode
    // vs v2 borrowed decode, per shard.
    let lats: Vec<(f64, f64)> = shards.iter().map(single_query_latency).collect();
    let cold_lats: Vec<(f64, f64)> = shards.iter().map(cold_load_latency).collect();
    let zipfs: Vec<Zipf> = shards.iter().map(|s| Zipf::new(s.universe.len(), ZIPF_S)).collect();
    let workloads: Vec<ConnWorkload> = (0..connections)
        .map(|c| generate_workload(c as u64, requests_per_conn, batch, &shards, &zipfs))
        .collect();
    let workload_digest = workloads.iter().fold(0u64, |acc, w| acc ^ w.workload_digest);
    let answers_digest = workloads.iter().fold(0u64, |acc, w| acc ^ w.answers_digest);
    let total_queries: usize = workloads.iter().map(|w| w.queries).sum();

    // ---- Daemon up, snapshots shipped over the wire -----------------------
    let manager = Arc::new(ShardManager::new());
    let handle =
        Server::spawn(ServerConfig { workers, ..ServerConfig::default() }, Arc::clone(&manager))
            .expect("daemon binds a loopback port");
    let addr = handle.addr();
    {
        let mut admin = Client::connect(addr).expect("admin connects");
        for s in &shards {
            // Ship uncompressed v2: the daemon installs each shard
            // *borrowed* from the received buffer, so the whole replay
            // (answers asserted against the naive walk) doubles as a
            // differential check of zero-copy serving.
            admin.load_snapshot(s.spec.shard_id, &s.bytes_v2).expect("snapshot loads");
        }
    }
    for s in &shards {
        let resident = manager.snapshot(s.spec.shard_id).expect("shard resident");
        assert!(resident.synopsis.is_borrowed(), "{} must serve borrowed", s.spec.name);
    }

    // ---- Measure both modes, best-of-repeats ------------------------------
    let mut closed_loop = ModeTimes::default();
    let mut pipelined = ModeTimes::default();
    for rep in 0..repeats {
        let cl = replay(addr, &workloads, 1);
        let pl = replay(addr, &workloads, BURST);
        if rep == 0 || cl.qps > closed_loop.qps {
            closed_loop = cl;
        }
        if rep == 0 || pl.qps > pipelined.qps {
            pipelined = pl;
        }
    }
    // ---- Concurrency sweep ------------------------------------------------
    // One point per entry of `SWEEP_CONNS`, each with every socket held
    // open simultaneously (barrier-enforced in `replay_sweep`). Request
    // counts shrink as the connection count grows so each point stays a
    // few seconds; the *property* under test is held-open concurrency
    // with bit-identical answers, not per-point duration. Workload seed
    // tags live in a separate 0x10000-per-point namespace so they can
    // never collide with the modes streams (tagged 0x0100 + conn).
    let sweep_reqs: [usize; 3] = if full { [512, 32, 4] } else { [128, 8, 2] };
    let mut sweep = Vec::with_capacity(SWEEP_CONNS.len());
    for (pi, (&conns, &reqs)) in SWEEP_CONNS.iter().zip(&sweep_reqs).enumerate() {
        let point_workloads: Vec<ConnWorkload> = (0..conns)
            .map(|c| {
                generate_workload(
                    0x10000 * (pi as u64 + 1) + c as u64,
                    reqs,
                    batch,
                    &shards,
                    &zipfs,
                )
            })
            .collect();
        let point = replay_sweep(addr, &point_workloads);
        eprintln!(
            "[serve_throughput] sweep point: {} conns, {:.0} qps ({:.1} qps/conn)",
            point.conns, point.qps, point.qps_per_conn
        );
        sweep.push(point);
    }

    // ---- Server-side accounting must reconcile with the generator ---------
    let (cache_hits, cache_misses, report) = {
        let mut admin = Client::connect(addr).expect("admin reconnects");
        let stats = admin.stats().expect("stats answered");
        let report = admin.metrics().expect("metrics answered");
        (stats.cache.hits, stats.cache.misses, report)
    };
    // The generator knows exactly how many pattern lookups it issued:
    // both modes replay the full workload once per repeat, plus the sweep
    // points. If the daemon's counter disagrees, requests were dropped or
    // double-counted somewhere in the serve path.
    let generator_patterns_total = (2 * repeats * total_queries) as u64
        + sweep.iter().map(|p| p.total_queries as u64).sum::<u64>();
    assert_eq!(
        report.patterns_total, generator_patterns_total,
        "daemon metrics lost or invented pattern lookups"
    );
    assert_eq!(report.ops.errors, 0, "load run must not produce error responses");
    // Observability is on by default (trace ring + per-op histograms), so
    // the load must have left visible traces: the dedicated QueryBatch
    // histogram and the event stream both have to be populated.
    assert!(report.op_latency.query_batch.p99_ns > 0.0, "QueryBatch histogram must be live");
    assert!(report.trace_events_total > 0, "trace ring must have recorded the load");
    handle.shutdown();

    // ---- Robustness: overload, eviction, rollback, crash-restart ----------
    let robustness = robustness_scenario(&shards);

    // ---- Instrumentation overhead: full observability vs bare counters ----
    let overhead = overhead_scenario(&shards, &workloads, workers);

    let run = RunResult {
        connections,
        requests_per_conn,
        batch,
        total_queries,
        workload_digest,
        answers_digest,
        closed_loop,
        pipelined,
        cache_hits,
        cache_misses,
        sweep,
        metrics_patterns_total: report.patterns_total,
        generator_patterns_total,
        metrics_p50_ns: report.latency_p50_ns,
        metrics_p99_ns: report.latency_p99_ns,
        metrics_op_qb_p50_ns: report.op_latency.query_batch.p50_ns,
        metrics_op_qb_p99_ns: report.op_latency.query_batch.p99_ns,
        loop_wait_ns: report.loop_wait_ns,
        loop_busy_ns: report.loop_busy_ns,
        loop_utilization: report.loop_utilization,
        trace_events_total: report.trace_events_total,
        robustness,
        overhead,
    };

    std::fs::create_dir_all("results").ok();
    if let Err(e) = std::fs::write(
        BENCH_PATH,
        to_json(&shards, &lats, &cold_lats, &run, tier, repeats, workers),
    ) {
        eprintln!("[serve_throughput] failed writing {BENCH_PATH}: {e}");
    }

    // NB: table id must differ from BENCH_PATH's stem (the experiments
    // binary writes every table to results/<id>.json).
    let mut t = Table::new(
        "serve_throughput",
        "Serving daemon: closed-loop vs pipelined load over the wire protocol",
        &["mode", "connections", "queries", "queries/s", "p50 µs", "p95 µs", "p99 µs"],
    );
    for (name, m) in [("closed_loop", run.closed_loop), ("pipelined", run.pipelined)] {
        t.row(vec![
            name.to_string(),
            connections.to_string(),
            total_queries.to_string(),
            format!("{:.0}", m.qps),
            format!("{:.1}", m.p50_us),
            format!("{:.1}", m.p95_us),
            format!("{:.1}", m.p99_us),
        ]);
    }
    // Sweep points share the table; per-request latency is not sampled
    // there (the property under test is held-open concurrency), so the
    // percentile columns stay blank and the p50 slot carries qps/conn.
    for p in &run.sweep {
        t.row(vec![
            format!("sweep/{}conns", p.conns),
            p.conns.to_string(),
            p.total_queries.to_string(),
            format!("{:.0}", p.qps),
            format!("{:.1}/conn", p.qps_per_conn),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    // The instrumentation-overhead pair: same pipelined replay, full
    // observability vs bare counters. CI gates the gap at ≤ 5%.
    for (name, qps) in [
        ("overhead/instrumented", run.overhead.instrumented_qps),
        ("overhead/counters_only", run.overhead.counters_only_qps),
    ] {
        t.row(vec![
            name.to_string(),
            connections.to_string(),
            total_queries.to_string(),
            format!("{:.0}", qps),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    t.note(format!(
        "tier = {tier}, repeats = {repeats} (best kept), {workers} server workers, batch = \
         {batch} patterns/request, pipelined bursts of {BURST} requests. Zipf(s = {ZIPF_S}) \
         present mix ({:.0}%), digests deterministic; raw artifact: {BENCH_PATH}.",
        PRESENT_FRAC * 100.0
    ));
    t.note(format!(
        "cache after run: {} hits / {} misses; every served answer asserted bit-identical to \
         the naive binary-search trie walk (live fast-path differential check).",
        run.cache_hits, run.cache_misses
    ));
    t.note(format!(
        "sweep: every point holds all its sockets open simultaneously (barrier between \
         connect and traffic); daemon metrics reconciled with the generator — \
         patterns_total {} == generator count {}, 0 error responses, service latency p50 \
         {:.0} ns / p99 {:.0} ns.",
        run.metrics_patterns_total,
        run.generator_patterns_total,
        run.metrics_p50_ns,
        run.metrics_p99_ns
    ));
    t.note(format!(
        "observability (on by default): QueryBatch op histogram p50 {:.0} ns / p99 {:.0} ns, \
         event-loop utilization {:.1}% ({} trace events recorded); instrumentation overhead \
         vs a counters-only daemon: {:.0} qps instrumented vs {:.0} qps bare ({:+.2}%, CI \
         gate ≤ 5%).",
        run.metrics_op_qb_p50_ns,
        run.metrics_op_qb_p99_ns,
        run.loop_utilization * 100.0,
        run.trace_events_total,
        run.overhead.instrumented_qps,
        run.overhead.counters_only_qps,
        run.overhead.overhead_frac * 100.0
    ));
    t.note(format!(
        "robustness: {} admission sheds, {} deadline eviction, {} idle reap and {} rollback \
         all reconciled exactly against the daemon's counters; crash-restart recovery \
         (persist → kill → torn manifest tail → recover → first bit-identical answer) took \
         {:.2} ms.",
        run.robustness.overloaded_total,
        run.robustness.deadline_evicted_total,
        run.robustness.idle_reaped_total,
        run.robustness.rollbacks_total,
        run.robustness.restart_recovery_ns as f64 / 1e6
    ));
    for (s, (&(fast_ns, naive_ns), &(cold_ns, cold_v2_ns))) in
        shards.iter().zip(lats.iter().zip(&cold_lats))
    {
        t.note(format!(
            "{}: {} workload, {:.2} MB corpus, {} nodes — single query {:.0} ns fast vs \
             {:.0} ns naive ({:.2}× speedup); cold load {:.0} ns v1 vs {:.0} ns v2 borrowed; \
             snapshot {} B v1, {} B v2 compressed ({:.2}×)",
            s.spec.name,
            s.spec.workload.as_str(),
            s.corpus_bytes as f64 / 1e6,
            s.frozen.node_count(),
            fast_ns,
            naive_ns,
            naive_ns / fast_ns,
            cold_ns,
            cold_v2_ns,
            s.bytes.len(),
            s.bytes_v2c.len(),
            s.bytes.len() as f64 / s.bytes_v2c.len() as f64
        ));
    }
    t
}
