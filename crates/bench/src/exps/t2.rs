//! Experiments T2-*: Theorem 2's `√(ℓΔ)` error — the (ε,δ) improvement
//! over pure DP for Document Count (Δ = 1) and the `√Δ` interpolation.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exps::common::pipeline_error;
use crate::{loglog_slope, Table};

const TRIALS: usize = 8;
const DELTA: f64 = 1e-6;

/// T2-sqrt: at Δ = 1, the Gaussian pipeline's error grows ~√ℓ while the
/// Laplace pipeline grows ~ℓ.
pub fn t2_sqrt_ell() -> Table {
    let mut t = Table::new(
        "t2_sqrt_ell",
        "Document Count error: Theorem 2 (Gaussian, δ=1e-6) ~√ℓ vs Theorem 1 (Laplace) ~ℓ (ε = 1, Δ = 1)",
        &["ℓ", "Thm2 med max err", "Thm2 α", "Thm1 med max err", "Thm1 α", "ratio Thm1/Thm2"],
    );
    let ells = [16usize, 32, 64, 128, 256];
    let mut gauss = Vec::new();
    let mut lap = Vec::new();
    for &ell in &ells {
        let mut rng = StdRng::seed_from_u64(4000 + ell as u64);
        let db = markov_corpus(64, ell, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let g = pipeline_error(&idx, 24, 1, PrivacyParams::approx(1.0, DELTA), true, TRIALS, 45);
        let l = pipeline_error(&idx, 24, 1, PrivacyParams::pure(1.0), false, TRIALS, 46);
        gauss.push(g.median_max);
        lap.push(l.median_max);
        t.row(vec![
            ell.to_string(),
            format!("{:.0}", g.median_max),
            format!("{:.0}", g.alpha_analytic),
            format!("{:.0}", l.median_max),
            format!("{:.0}", l.alpha_analytic),
            format!("{:.1}x", l.median_max / g.median_max),
        ]);
    }
    let xs: Vec<f64> = ells.iter().map(|&e| e as f64).collect();
    t.note(format!(
        "fitted exponents: Theorem 2 ≈ ℓ^{:.2} (paper: 0.5 + polylog), Theorem 1 ≈ ℓ^{:.2} (paper: 1 + polylog); the gap widens with ℓ.",
        loglog_slope(&xs, &gauss),
        loglog_slope(&xs, &lap),
    ));
    t
}

/// T2-delta: error ∝ √Δ as the clip level interpolates between Document
/// Count (Δ=1) and Substring Count (Δ=ℓ).
pub fn t2_delta() -> Table {
    let mut t = Table::new(
        "t2_delta",
        "Theorem 2 error interpolates as √Δ between Document and Substring Count (ℓ = 64, ε = 1, δ = 1e-6)",
        &["Δ", "med max err", "analytic α", "err/√Δ"],
    );
    let mut rng = StdRng::seed_from_u64(5000);
    let db = markov_corpus(64, 64, 4, 0.7, &mut rng);
    let idx = CorpusIndex::build(&db);
    let deltas = [1usize, 2, 4, 8, 16, 32, 64];
    let mut errs = Vec::new();
    for &d in &deltas {
        let g = pipeline_error(&idx, 24, d, PrivacyParams::approx(1.0, DELTA), true, TRIALS, 47);
        errs.push(g.median_max);
        t.row(vec![
            d.to_string(),
            format!("{:.0}", g.median_max),
            format!("{:.0}", g.alpha_analytic),
            format!("{:.0}", g.median_max / (d as f64).sqrt()),
        ]);
    }
    let xs: Vec<f64> = deltas.iter().map(|&d| d as f64).collect();
    t.note(format!(
        "fitted exponent: err ∝ Δ^{:.2} (paper: 0.5); the err/√Δ column should be ~constant.",
        loglog_slope(&xs, &errs),
    ));
    t
}
