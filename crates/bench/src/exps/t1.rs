//! Experiments T1-*: Theorem 1's error — `Õ(ℓ)` vs the baseline's `Ω(ℓ²)`,
//! `1/ε` scaling, and the structure-size bound.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{build_pure, frequent_substrings, BuildParams, CountMode};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::exps::common::{baseline_error, pipeline_error};
use crate::{loglog_slope, Table};

const TRIALS: usize = 8;

/// T1-error-ell: empirical max error vs ℓ for Theorem 1 and the simple
/// baseline; slopes should be ≈ 1 (+polylog drift) and ≈ 2.
pub fn t1_error_vs_ell() -> Table {
    let mut t = Table::new(
        "t1_error_vs_ell",
        "Theorem 1 error grows ~ℓ·polylog; the prior-work simple trie grows ~ℓ² (ε = 1, Δ = ℓ, Markov corpus n = 64, |Σ| = 4)",
        &["ℓ", "Thm1 med max err", "Thm1 analytic α", "baseline med max err", "baseline analytic α"],
    );
    let ells = [16usize, 32, 64, 128, 256, 512, 1024];
    let mut ours = Vec::new();
    let mut base = Vec::new();
    for &ell in &ells {
        let mut rng = StdRng::seed_from_u64(1000 + ell as u64);
        let db = markov_corpus(64, ell, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let a = pipeline_error(&idx, 24, ell, PrivacyParams::pure(1.0), false, TRIALS, 42);
        let b = baseline_error(&idx, 24, ell, 1.0, TRIALS, 43);
        ours.push(a.median_max);
        base.push(b.median_max);
        t.row(vec![
            ell.to_string(),
            format!("{:.0}", a.median_max),
            format!("{:.0}", a.alpha_analytic),
            format!("{:.0}", b.median_max),
            format!("{:.0}", b.alpha_analytic),
        ]);
    }
    let xs: Vec<f64> = ells.iter().map(|&e| e as f64).collect();
    let s_ours = loglog_slope(&xs, &ours);
    let s_base = loglog_slope(&xs, &base);
    t.note(format!(
        "fitted growth exponents: Theorem 1 ≈ ℓ^{s_ours:.2} (paper: 1 + polylog drift), baseline ≈ ℓ^{s_base:.2} (paper: 2)."
    ));
    t.note(format!(
        "crossover: baseline wins below ℓ ≈ {}, Theorem 1 wins above (worst-case constants; see DESIGN.md).",
        ells.iter()
            .zip(ours.iter().zip(&base))
            .find(|(_, (o, b))| o < b)
            .map(|(e, _)| e.to_string())
            .unwrap_or_else(|| format!(">{}", ells.last().unwrap())),
    ));
    t
}

/// T1-error-eps: error ∝ 1/ε.
pub fn t1_error_vs_eps() -> Table {
    let mut t = Table::new(
        "t1_error_vs_eps",
        "Theorem 1 error scales as 1/ε (ℓ = 64, Δ = ℓ)",
        &["ε", "med max err", "analytic α", "err·ε"],
    );
    let mut rng = StdRng::seed_from_u64(2000);
    let db = markov_corpus(64, 64, 4, 0.7, &mut rng);
    let idx = CorpusIndex::build(&db);
    let epss = [0.25f64, 0.5, 1.0, 2.0, 4.0, 8.0];
    let mut errs = Vec::new();
    for &eps in &epss {
        let a = pipeline_error(&idx, 24, 64, PrivacyParams::pure(eps), false, TRIALS, 44);
        errs.push(a.median_max);
        t.row(vec![
            format!("{eps}"),
            format!("{:.0}", a.median_max),
            format!("{:.0}", a.alpha_analytic),
            format!("{:.0}", a.median_max * eps),
        ]);
    }
    let slope = loglog_slope(&epss, &errs);
    t.note(format!(
        "fitted exponent: err ∝ ε^{slope:.2} (paper: −1); err·ε column should be ~constant."
    ));
    t
}

/// T1-size: the published structure respects the `O(nℓ²)` node bound and
/// absent strings have small true counts.
pub fn t1_size() -> Table {
    let mut t = Table::new(
        "t1_size",
        "Structure size ≤ O(nℓ²) and absent-string guarantee (Theorem 1, ε = 4)",
        &["n", "ℓ", "nodes", "nℓ²", "max true count of absent string", "claimed bound"],
    );
    for &(n, ell, tau) in &[(128usize, 32usize, 400.0f64), (256, 32, 700.0), (256, 64, 900.0)] {
        let mut rng = StdRng::seed_from_u64(3000 + n as u64 + ell as u64);
        let db = markov_corpus(n, ell, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(4.0), 0.1)
            .with_thresholds(tau, tau);
        let s = match build_pure(&idx, &params, &mut rng) {
            Ok(s) => s,
            Err(e) => {
                t.row(vec![
                    n.to_string(),
                    ell.to_string(),
                    format!("FAIL ({e})"),
                    String::new(),
                    String::new(),
                    String::new(),
                ]);
                continue;
            }
        };
        // The largest true count among strings not in the structure.
        let mut worst_absent = 0.0f64;
        for p in frequent_substrings(&idx, ell, 1.0, None) {
            if !s.contains(&p) {
                worst_absent = worst_absent.max(idx.count(&p) as f64);
            }
        }
        t.row(vec![
            n.to_string(),
            ell.to_string(),
            s.node_count().to_string(),
            (n * ell * ell).to_string(),
            format!("{:.0}", worst_absent),
            format!("{:.0}", s.alpha_absent()),
        ]);
    }
    t.note("every absent string's true count stays below the claimed bound (τ + α).");
    t
}
