//! Experiment MINE-util: end-to-end mining utility on the paper's two
//! motivating applications, plus the Figures 1–3 worked example.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_hierarchy::heavy_path::HeavyPathDecomposition;
use dpsc_private_count::pipeline::{build_count_trie, trie_topology};
use dpsc_private_count::{
    build_approx, build_qgram_fast, evaluate_mining, BuildParams, CountMode, FastQgramParams,
};
use dpsc_strkit::alphabet::Database;
use dpsc_strkit::trie::Trie;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::{dna_corpus, transit_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{mean, run_trials, Table};

/// MINE-util: precision/recall of private frequent-pattern mining across
/// thresholds, on DNA (Theorem 4) and transit logs (Theorem 2).
pub fn mining_utility() -> Vec<Table> {
    let mut dna_table = Table::new(
        "mining_utility_dna",
        "q-gram mining utility on DNA with planted motifs (Theorem 4, ε = 4, δ = 1e-6, n = 5000, ℓ = 80, q = 8, Δ = 1)",
        &["τ", "precision", "recall", "Definition-2 contract"],
    );
    {
        let mut rng = StdRng::seed_from_u64(13_000);
        let corpus = dna_corpus(5000, 80, 8, &[0.9, 0.7, 0.3], &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        for tau in [2900.0f64, 3400.0, 4200.0] {
            let stats = run_trials(5, 13_100 + tau as u64, |_i, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let params = FastQgramParams {
                    q: 8,
                    mode: CountMode::Document,
                    privacy: PrivacyParams::approx(4.0, 1e-6),
                    beta: 0.1,
                    tau_override: None,
                };
                match build_qgram_fast(&idx, &params, &mut rng) {
                    Ok(s) => {
                        let mined: Vec<Vec<u8>> =
                            s.mine_qgrams(8, tau).into_iter().map(|(g, _)| g).collect();
                        let ev = evaluate_mining(&idx, 1, &mined, tau, s.alpha_counts(), Some(8));
                        (ev.precision, ev.recall, ev.contract_holds())
                    }
                    Err(_) => (0.0, 0.0, false),
                }
            });
            dna_table.row(vec![
                format!("{tau}"),
                format!("{:.2}", mean(&stats.iter().map(|s| s.0).collect::<Vec<_>>())),
                format!("{:.2}", mean(&stats.iter().map(|s| s.1).collect::<Vec<_>>())),
                format!("{}/{}", stats.iter().filter(|s| s.2).count(), stats.len()),
            ]);
        }
        dna_table.note("motifs planted at 90%/70%/30% document frequency; the 30% motif sits below the privacy-clamped publication threshold and is (correctly, per Definition 2) not required to be reported.");
    }

    let mut transit_table = Table::new(
        "mining_utility_transit",
        "Route mining utility on transit logs (Theorem 2, ε = 2, δ = 1e-6, n = 10000, ℓ = 24, Δ = 1); several thresholds on ONE release",
        &["τ", "precision", "recall", "planted routes recovered"],
    );
    {
        let mut rng = StdRng::seed_from_u64(14_000);
        let corpus = transit_corpus(10_000, 24, 10, 3, 4, 0.9, &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        let build_tau = 1200.0;
        let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(2.0, 1e-6), 0.1)
            .with_thresholds(build_tau, build_tau);
        let s = build_approx(&idx, &params, &mut rng).expect("transit construction");
        for tau in [1500.0f64, 2200.0, 2800.0] {
            let mined: Vec<Vec<u8>> = s.mine_qgrams(4, tau).into_iter().map(|(g, _)| g).collect();
            let ev = evaluate_mining(&idx, 1, &mined, tau, s.alpha_counts(), Some(4));
            let recovered = corpus.routes.iter().filter(|r| mined.iter().any(|m| &m == r)).count();
            transit_table.row(vec![
                format!("{tau}"),
                format!("{:.2}", ev.precision),
                format!("{:.2}", ev.recall),
                format!("{recovered}/{}", corpus.routes.len()),
            ]);
        }
        transit_table
            .note("all three thresholds are answered from one private release — no additional privacy cost (post-processing).");
    }

    vec![dna_table, transit_table]
}

/// FIG-1/2/3: the paper's worked example — suffix trie counts, heavy-path
/// decomposition of the candidate trie, and the difference sequence of the
/// topmost heavy path (Figure 3's table).
pub fn figures() -> Vec<Table> {
    let db = Database::paper_example();
    let idx = CorpusIndex::build(&db);

    // Figure 1: counts along the suffixes of "babe".
    let mut f1 = Table::new(
        "figure1",
        "Figure 1 companion: substring counts of the suffixes of `babe` in D = {aaaa, abe, absab, babe, bee, bees}",
        &["suffix", "count(P, D)", "count_1(P, D)"],
    );
    for suf in ["babe", "abe", "be", "e"] {
        f1.row(vec![
            suf.to_string(),
            idx.count(suf.as_bytes()).to_string(),
            idx.document_count(suf.as_bytes()).to_string(),
        ]);
    }

    // Figure 2: the candidate trie of Examples 2–3 with its heavy paths.
    let candidates: Vec<Vec<u8>> = [
        "a", "b", "e", "s", "aa", "ab", "ba", "be", "bs", "ee", "es", "sa", "aaa", "aab", "aba",
        "abe", "abs", "baa", "bab", "bee", "bsa", "eee", "saa", "sab", "aaaa", "absa", "babe",
        "bees", "bsab", "aaaaa", "absab",
    ]
    .iter()
    .map(|s| s.as_bytes().to_vec())
    .collect();
    let trie = build_count_trie(&idx, &candidates, db.max_len());
    let tree = trie_topology(&trie);
    let hpd = HeavyPathDecomposition::new(&tree);
    let mut f2 = Table::new(
        "figure2",
        "Figure 2 companion: heavy-path decomposition of the candidate trie T_C (Examples 2–3)",
        &["heavy path (root→leaf)", "counts along path"],
    );
    let mut paths: Vec<(String, String)> = hpd
        .paths()
        .iter()
        .map(|path| {
            let label: Vec<String> = path
                .iter()
                .map(|&v| {
                    let s = trie.string_of(v);
                    if s.is_empty() {
                        "ε".to_string()
                    } else {
                        String::from_utf8_lossy(&s).into_owned()
                    }
                })
                .collect();
            let counts: Vec<String> = path.iter().map(|&v| trie.value(v).to_string()).collect();
            (label.join(" → "), counts.join(", "))
        })
        .collect();
    paths.sort();
    for (label, counts) in paths {
        f2.row(vec![label, counts]);
    }
    f2.note(format!(
        "trie has {} nodes in {} heavy paths; any root-to-leaf path crosses ≤ ⌊log₂ {}⌋ = {} light edges (Lemma 9).",
        trie.len(),
        hpd.num_paths(),
        trie.len(),
        (usize::BITS - 1 - (trie.len()).leading_zeros()),
    ));

    // Figure 3: difference sequence + dyadic partial sums of the heavy path
    // containing the root.
    let root_path = &hpd.paths()[hpd.path_of(Trie::<u64>::ROOT)];
    let mut f3 = Table::new(
        "figure3",
        "Figure 3 companion: the root's heavy path, its difference sequence, and exact prefix sums (the binary-tree mechanism adds noise to the dyadic partial sums of the diff row)",
        &["node", "count", "diff", "prefix sum of diffs"],
    );
    let mut prefix = 0i64;
    for (i, &v) in root_path.iter().enumerate() {
        let s = trie.string_of(v);
        let label =
            if s.is_empty() { "ε".to_string() } else { String::from_utf8_lossy(&s).into_owned() };
        let count = *trie.value(v) as i64;
        let diff = if i == 0 {
            "—".to_string()
        } else {
            let d = count - *trie.value(root_path[i - 1]) as i64;
            prefix += d;
            d.to_string()
        };
        f3.row(vec![label, count.to_string(), diff, prefix.to_string()]);
    }

    vec![f1, f2, f3]
}
