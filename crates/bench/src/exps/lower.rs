//! Experiments T5/T6/T7: the lower-bound instances, executed.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_lowerbounds::{
    encode_marginals, exact_marginals, marginals_via_document_count, packing_instance,
    random_matrix, recovery_event, theorem5_epsilon_floor, theorem6_epsilon_floor,
    theorem6_instance,
};
use dpsc_private_count::{build_approx, build_pure, BuildParams, CountMode};
use dpsc_textindex::CorpusIndex;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::{loglog_slope, mean, run_trials, Table};

/// T5-packing: mining the packing instance — recovery succeeds only when
/// the error budget B is large enough, matching the ε floor.
pub fn t5_packing() -> Table {
    let mut t = Table::new(
        "t5_packing",
        "Theorem 5 packing instance: mining the planted length-m patterns at τ = B/2 (n = 8192, ℓ = 32, |Σ| = 6)",
        &["ε", "B (copies)", "planted recall", "avg impostors", "strict event rate", "ε floor at α=B/2"],
    );
    let (n, ell) = (8192usize, 32usize);
    for &eps in &[4.0f64, 16.0] {
        for &b in &[1024usize, 2048, 4096, 8192] {
            let stats = run_trials(4, 8000 + b as u64 + eps as u64, |_i, seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let inst = packing_instance(n, ell, 6, b, &mut rng);
                let idx = CorpusIndex::build(&inst.db);
                let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(eps), 0.1)
                    .with_thresholds(inst.tau, inst.tau);
                match build_pure(&idx, &params, &mut rng) {
                    Ok(s) => {
                        let mined: Vec<Vec<u8>> =
                            s.mine(inst.tau).into_iter().map(|(g, _)| g).collect();
                        let recall =
                            inst.planted.iter().filter(|p| mined.iter().any(|m| &m == p)).count()
                                as f64
                                / inst.planted.len() as f64;
                        let half = inst.m / 2;
                        let impostors = mined
                            .iter()
                            .filter(|s| {
                                s.len() == inst.m
                                    && !inst.planted.contains(s)
                                    && inst
                                        .codes
                                        .iter()
                                        .any(|c| &s[s.len() - half..] == c.as_slice())
                            })
                            .count() as f64;
                        let strict = if recovery_event(&inst, &mined) { 1.0 } else { 0.0 };
                        (recall, impostors, strict)
                    }
                    Err(_) => (0.0, 0.0, 0.0),
                }
            });
            let k = ell / (2 * (usize::BITS - (ell - 1).leading_zeros()) as usize).max(1);
            let m = 2 * (usize::BITS - (ell - 1).leading_zeros()) as usize;
            t.row(vec![
                format!("{eps}"),
                b.to_string(),
                format!("{:.2}", mean(&stats.iter().map(|s| s.0).collect::<Vec<_>>())),
                format!("{:.1}", mean(&stats.iter().map(|s| s.1).collect::<Vec<_>>())),
                format!("{:.2}", mean(&stats.iter().map(|s| s.2).collect::<Vec<_>>())),
                format!("{:.3}", theorem5_epsilon_floor(6, m, k.max(1), b)),
            ]);
        }
    }
    t.note("the strict packing event (all planted mined, zero impostors with code suffixes) only becomes reliable once B/2 exceeds the mechanism's α ≈ ε⁻¹ℓ·polylog — the exact tradeoff Theorem 5 proves unavoidable: any mechanism reliably achieving the event at error α = B/2 must have ε ≥ the floor in the last column.");
    t
}

/// T6-omega-ell: on the a^ℓ/b^ℓ pair, the measured error of the released
/// count for P = "a" scales ~ℓ — the lower bound is matched by the upper.
pub fn t6_substring_lb() -> Table {
    let mut t = Table::new(
        "t6_substring_lb",
        "Theorem 6 instance: Substring Count error on the worst-case pair scales with ℓ (ε = 1, n = 16)",
        &["ℓ", "true gap", "Thm1 median |err| on P=a", "ε floor if α < ℓ/2 (β=0.05, δ=1e-6)"],
    );
    let ells = [16usize, 32, 64, 128];
    let mut errs = Vec::new();
    for &ell in &ells {
        let inst = theorem6_instance(16, ell);
        let idx = CorpusIndex::build(&inst.db);
        let tau = ell as f64 / 4.0;
        let errors = run_trials(200, 9000 + ell as u64, |_i, seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1.0), 0.1)
                .with_thresholds(tau, f64::NEG_INFINITY);
            match build_pure(&idx, &params, &mut rng) {
                Ok(s) => (s.query(&inst.pattern) - inst.gap as f64).abs(),
                Err(_) => inst.gap as f64, // FAIL = answering 0 everywhere
            }
        });
        errs.push(crate::median(&errors));
        t.row(vec![
            ell.to_string(),
            inst.gap.to_string(),
            format!("{:.0}", crate::median(&errors)),
            format!("{:.2}", theorem6_epsilon_floor(0.05, 1e-6)),
        ]);
    }
    let xs: Vec<f64> = ells.iter().map(|&e| e as f64).collect();
    t.note(format!(
        "fitted exponent: err ∝ ℓ^{:.2}; the lower bound says no (ε,δ)-DP mechanism can do better than Ω(ℓ) here, and Theorem 1 indeed pays Θ̃(ℓ).",
        loglog_slope(&xs, &errs),
    ));
    t
}

/// T7-marginals: Document Count error transfers to 1-way marginals; the
/// (ε,δ) mechanism's per-marginal error shrinks as ~√ℓ/n relative.
pub fn t7_marginals() -> Table {
    let mut t = Table::new(
        "t7_marginals",
        "Theorem 7 reduction: solving 1-way marginals through the Theorem 2 Document Count structure (n = 8192 rows, ε = 4, δ = 1e-6)",
        &["d (columns)", "ℓ (doc length)", "max marginal err", "α/n (predicted)", "exact-oracle err"],
    );
    let n = 8192usize;
    for &d in &[4usize, 8, 16] {
        let mut rng = StdRng::seed_from_u64(9500 + d as u64);
        let matrix = random_matrix(n, d, &mut rng);
        let inst = encode_marginals(&matrix, 4);
        let idx = CorpusIndex::build(&inst.db);
        let exact = exact_marginals(&matrix);
        let ell = inst.db.max_len();
        // τ must clear the Gaussian candidate noise (σ ∝ √ℓ·polylog/ε) while
        // staying below the ≈ n/2 marginal counts.
        let tau = 0.2 * n as f64;
        let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(4.0, 1e-6), 0.1)
            .with_thresholds(tau, f64::NEG_INFINITY);
        let (worst, alpha) = match build_approx(&idx, &params, &mut rng) {
            Ok(s) => {
                let rec = marginals_via_document_count(&inst, |pat| s.query(pat));
                let worst =
                    rec.iter().zip(&exact).map(|(r, e)| (r - e).abs()).fold(0.0f64, f64::max);
                (worst, s.alpha_counts())
            }
            Err(_) => (f64::NAN, f64::NAN),
        };
        // Control: the exact (non-private) oracle recovers marginals
        // perfectly.
        let rec0 = marginals_via_document_count(&inst, |pat| idx.document_count(pat) as f64);
        let err0 = rec0.iter().zip(&exact).map(|(r, e)| (r - e).abs()).fold(0.0f64, f64::max);
        t.row(vec![
            d.to_string(),
            ell.to_string(),
            format!("{:.3}", worst),
            format!("{:.3}", alpha / n as f64),
            format!("{:.1e}", err0),
        ]);
    }
    t.note("an α-accurate Document Count mechanism is (α/n)-accurate for marginals; the fingerprinting lower bound therefore forces α = Ω̃(√ℓ) (Theorem 7). The exact oracle column confirms the encoding is lossless.");
    t
}
