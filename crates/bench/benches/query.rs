//! Criterion benchmark for the `O(|P|)` query claim (experiment
//! QUERY-time): query latency on a published structure must grow linearly
//! in pattern length and be independent of the database size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{build_pure, BuildParams, CountMode, PrivateCountStructure};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build_structure(n: usize, ell: usize) -> (PrivateCountStructure, Vec<u8>) {
    let mut rng = StdRng::seed_from_u64(20);
    let db = markov_corpus(n, ell, 4, 0.85, &mut rng);
    let idx = CorpusIndex::build(&db);
    // Low thresholds at huge ε so the trie is deep and queries traverse
    // long paths (query cost is what we measure, not privacy here).
    let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(1e6), 0.1)
        .with_thresholds(5.0, 5.0);
    let s = build_pure(&idx, &params, &mut rng).expect("construction succeeded");
    let probe = db.documents()[0].clone();
    (s, probe)
}

fn bench_query_by_pattern_length(c: &mut Criterion) {
    let (s, probe) = build_structure(256, 64);
    let mut group = c.benchmark_group("query_vs_pattern_length");
    for &len in &[1usize, 4, 16, 64] {
        let pat = probe[..len.min(probe.len())].to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(len), &pat, |b, pat| {
            b.iter(|| s.query(black_box(pat)));
        });
    }
    group.finish();
}

fn bench_query_vs_database_size(c: &mut Criterion) {
    let mut group = c.benchmark_group("query_vs_database_size");
    for &n in &[64usize, 512, 4096] {
        let (s, probe) = build_structure(n, 32);
        let pat = probe[..8].to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &pat, |b, pat| {
            b.iter(|| s.query(black_box(pat)));
        });
    }
    group.finish();
}

fn bench_mining(c: &mut Criterion) {
    let (s, _) = build_structure(256, 64);
    c.bench_function("mine_full_structure", |b| {
        b.iter(|| s.mine(black_box(50.0)));
    });
}

criterion_group!(
    benches,
    bench_query_by_pattern_length,
    bench_query_vs_database_size,
    bench_mining
);
criterion_main!(benches);
