//! Serving benchmark: queries/second against the released synopsis —
//! pointer-trie walk (`PrivateCountStructure::query`) vs the flat frozen
//! index (`FrozenSynopsis`), single-query vs batch vs parallel-batch.
//!
//! Fixtures are shared with the `serving_throughput` experiment
//! (`dpsc_bench::exps::serving`):
//! * `dp_built` — a genuine Theorem-1 construction on a Markov corpus
//!   (~10⁴ nodes; construction cost keeps this size modest);
//! * `synthetic` — a ≥10⁵-node synopsis assembled directly from
//!   Markov-generated strings with noise-shaped counts, sizing the
//!   serving layer like a production release without minutes of DP
//!   construction per bench run.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_bench::exps::serving::{dp_built, synthetic};

fn bench_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_single_query");
    for (name, (structure, workload)) in
        [("dp_built", dp_built(1024)), ("synthetic", synthetic(150_000, 1024))]
    {
        if name == "synthetic" {
            assert!(structure.node_count() >= 100_000, "bench synopsis must have ≥1e5 nodes");
        }
        let frozen = structure.freeze();
        let nodes = frozen.node_count();
        let pats: Vec<&[u8]> = workload.iter().map(|p| p.as_slice()).collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("trie_walk/{name}"), nodes),
            &pats,
            |b, pats| {
                b.iter(|| {
                    i = (i + 1) % pats.len();
                    structure.query(black_box(pats[i]))
                });
            },
        );
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("frozen/{name}"), nodes),
            &pats,
            |b, pats| {
                b.iter(|| {
                    i = (i + 1) % pats.len();
                    frozen.query(black_box(pats[i]))
                });
            },
        );
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let (structure, workload) = synthetic(150_000, 1024);
    let frozen = structure.freeze();
    let pats: Vec<&[u8]> = workload.iter().map(|p| p.as_slice()).collect();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut group = c.benchmark_group("serving_batch_1024");
    group.bench_function("trie_walk_loop", |b| {
        b.iter(|| {
            let out: Vec<f64> = pats.iter().map(|p| structure.query(black_box(p))).collect();
            out
        });
    });
    group.bench_function("frozen_batch", |b| {
        b.iter(|| frozen.query_batch(black_box(&pats)));
    });
    group.bench_function("frozen_parallel", |b| {
        b.iter(|| frozen.query_batch_parallel(black_box(&pats), threads));
    });
    group.finish();
}

criterion_group!(benches, bench_single_query, bench_batch);
criterion_main!(benches);
