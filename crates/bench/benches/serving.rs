//! Serving benchmark: queries/second against the released synopsis —
//! pointer-trie walk (`PrivateCountStructure::query`) vs the flat frozen
//! index (`FrozenSynopsis`), single-query vs batch vs parallel-batch.
//!
//! Fixtures are shared with the `serving_throughput` experiment
//! (`dpsc_bench::exps::serving`):
//! * `dp_built` — a genuine Theorem-1 construction on a Markov corpus
//!   (~10⁴ nodes; construction cost keeps this size modest);
//! * `synthetic` — a ≥10⁵-node synopsis assembled directly from
//!   Markov-generated strings with noise-shaped counts, sizing the
//!   serving layer like a production release without minutes of DP
//!   construction per bench run.
//!
//! The `serving_step_by_degree` group isolates the per-byte edge-probe
//! cost of the accelerated layout across node fanouts: star tries with
//! root degree 2…256 cover the single-u64 SWAR tier (≤ 8), the
//! multi-block SWAR tier (9…32) and the direct-table tier (> 32),
//! benchmarked against the naive binary-search walk on the same synopsis.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_bench::exps::serving::{dp_built, synthetic};
use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{CountMode, PrivateCountStructure};
use dpsc_strkit::trie::Trie;

fn bench_single_query(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_single_query");
    for (name, (structure, workload)) in
        [("dp_built", dp_built(1024)), ("synthetic", synthetic(150_000, 1024))]
    {
        if name == "synthetic" {
            assert!(structure.node_count() >= 100_000, "bench synopsis must have ≥1e5 nodes");
        }
        let frozen = structure.freeze();
        let nodes = frozen.node_count();
        let pats: Vec<&[u8]> = workload.iter().map(|p| p.as_slice()).collect();
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("trie_walk/{name}"), nodes),
            &pats,
            |b, pats| {
                b.iter(|| {
                    i = (i + 1) % pats.len();
                    structure.query(black_box(pats[i]))
                });
            },
        );
        let mut i = 0usize;
        group.bench_with_input(
            BenchmarkId::new(format!("frozen/{name}"), nodes),
            &pats,
            |b, pats| {
                b.iter(|| {
                    i = (i + 1) % pats.len();
                    frozen.query(black_box(pats[i]))
                });
            },
        );
    }
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let (structure, workload) = synthetic(150_000, 1024);
    let frozen = structure.freeze();
    let pats: Vec<&[u8]> = workload.iter().map(|p| p.as_slice()).collect();
    let threads = std::thread::available_parallelism().map(|p| p.get()).unwrap_or(4);
    let mut group = c.benchmark_group("serving_batch_1024");
    group.bench_function("trie_walk_loop", |b| {
        b.iter(|| {
            let out: Vec<f64> = pats.iter().map(|p| structure.query(black_box(p))).collect();
            out
        });
    });
    group.bench_function("frozen_batch", |b| {
        b.iter(|| frozen.query_batch(black_box(&pats)));
    });
    group.bench_function("frozen_parallel", |b| {
        b.iter(|| frozen.query_batch_parallel(black_box(&pats), threads));
    });
    group.finish();
}

/// Lookup cost by node degree: a two-level star trie whose root has
/// exactly `degree` children (each child carrying a few grandchildren so
/// walks take two steps), probed with an even hit/miss mix of two-byte
/// patterns. Isolates which fast-path tier serves the root step.
fn bench_step_by_degree(c: &mut Criterion) {
    let mut group = c.benchmark_group("serving_step_by_degree");
    for degree in [2usize, 8, 16, 32, 64, 128, 256] {
        let mut trie: Trie<f64> = Trie::new(1000.0);
        let step = 256 / degree;
        for i in 0..degree {
            let label = (i * step) as u8;
            let child = trie.insert_path(&[label], |_| 0.0);
            *trie.value_mut(child) = i as f64 + 1.5;
            for g in 0..4u8 {
                let node = trie.insert_path(&[label, g * 61], |_| 0.0);
                *trie.value_mut(node) = f64::from(g) + 0.25;
            }
        }
        let structure = PrivateCountStructure::new(
            trie,
            CountMode::Substring,
            PrivacyParams::pure(1.0),
            1.0,
            1.0,
            64,
            64,
        );
        let frozen = structure.freeze();
        // Every root label hit once, interleaved with guaranteed misses.
        let pats: Vec<[u8; 2]> =
            (0..degree).flat_map(|i| [[(i * step) as u8, 61], [(i * step) as u8, 7]]).collect();
        let pats: Vec<&[u8]> = pats.iter().map(|p| p.as_slice()).collect();
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("fastpath", degree), &pats, |b, pats| {
            b.iter(|| {
                i = (i + 1) % pats.len();
                frozen.query(black_box(pats[i]))
            });
        });
        let mut i = 0usize;
        group.bench_with_input(BenchmarkId::new("naive", degree), &pats, |b, pats| {
            b.iter(|| {
                i = (i + 1) % pats.len();
                frozen.query_naive(black_box(pats[i]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_query, bench_batch, bench_step_by_degree);
criterion_main!(benches);
