//! Criterion benchmarks for private-structure construction: the Theorem 1/2
//! pipelines and the fast q-gram algorithm of Theorem 4 (whose
//! `O(nℓ(log q + log|Σ|))` claim is experiment `t4_scaling`).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::{
    build_approx, build_pure, build_qgram_fast, BuildParams, CountMode, FastQgramParams,
};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::{dna_corpus, markov_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_build");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(10);
        let db = markov_corpus(n, 32, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let tau = 0.6 * n as f64;
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(4.0), 0.1)
            .with_thresholds(tau, tau);
        group.bench_with_input(BenchmarkId::from_parameter(n), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| build_pure(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem2_build");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(12);
        let db = markov_corpus(n, 32, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let tau = 0.4 * n as f64;
        let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(4.0, 1e-6), 0.1)
            .with_thresholds(tau, tau);
        group.bench_with_input(BenchmarkId::from_parameter(n), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| build_approx(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_theorem4(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem4_qgram_build");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let mut rng = StdRng::seed_from_u64(14);
        let corpus = dna_corpus(n, 64, 8, &[0.8], &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        let params = FastQgramParams {
            q: 8,
            mode: CountMode::Document,
            privacy: PrivacyParams::approx(4.0, 1e-6),
            beta: 0.1,
            tau_override: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n * 64), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(15);
            b.iter(|| build_qgram_fast(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_theorem1, bench_theorem2, bench_theorem4);
criterion_main!(benches);
