//! Criterion benchmarks for private-structure construction: the Theorem 1/2
//! pipelines, the fast q-gram algorithm of Theorem 4 (whose
//! `O(nℓ(log q + log|Σ|))` claim is experiment `t4_scaling`), the three
//! build phases in isolation, and the worker-thread sweep of the parallel
//! build path (`results/BENCH_build.json` carries the tracked numbers; the
//! groups here are for interactive `cargo bench` work).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::candidates::{build_candidates_pure, CandidateParams};
use dpsc_private_count::pipeline::{build_count_trie, run_pipeline_on_trie, PipelineParams};
use dpsc_private_count::{
    build_approx, build_pure, build_qgram_fast, BuildParams, CountMode, FastQgramParams,
};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::{dna_corpus, markov_corpus};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_theorem1(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem1_build");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(10);
        let db = markov_corpus(n, 32, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let tau = 0.6 * n as f64;
        let params = BuildParams::new(CountMode::Substring, PrivacyParams::pure(4.0), 0.1)
            .with_thresholds(tau, tau);
        group.bench_with_input(BenchmarkId::from_parameter(n), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(11);
            b.iter(|| build_pure(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_theorem2(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem2_build");
    group.sample_size(10);
    for &n in &[128usize, 512] {
        let mut rng = StdRng::seed_from_u64(12);
        let db = markov_corpus(n, 32, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let tau = 0.4 * n as f64;
        let params = BuildParams::new(CountMode::Document, PrivacyParams::approx(4.0, 1e-6), 0.1)
            .with_thresholds(tau, tau);
        group.bench_with_input(BenchmarkId::from_parameter(n), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(13);
            b.iter(|| build_approx(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

fn bench_theorem4(c: &mut Criterion) {
    let mut group = c.benchmark_group("theorem4_qgram_build");
    group.sample_size(10);
    for &n in &[1000usize, 4000, 16000] {
        let mut rng = StdRng::seed_from_u64(14);
        let corpus = dna_corpus(n, 64, 8, &[0.8], &mut rng);
        let idx = CorpusIndex::build(&corpus.db);
        let params = FastQgramParams {
            q: 8,
            mode: CountMode::Document,
            privacy: PrivacyParams::approx(4.0, 1e-6),
            beta: 0.1,
            tau_override: None,
        };
        group.bench_with_input(BenchmarkId::from_parameter(n * 64), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(15);
            b.iter(|| build_qgram_fast(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

/// The dna-small regime of `experiments -- build_throughput`, shared by the
/// phase and thread-sweep groups below.
fn build_bench_setup() -> (CorpusIndex, f64) {
    let mut rng = StdRng::seed_from_u64(0xB11D_BEAC);
    let n = 1024;
    let corpus = dna_corpus(n, 64, 8, &[0.9, 0.8, 0.7, 0.6, 0.5, 0.4], &mut rng);
    (CorpusIndex::build(&corpus.db), 0.45 * n as f64)
}

fn bench_build_phases(c: &mut Criterion) {
    let (idx, tau) = build_bench_setup();
    let privacy = PrivacyParams::pure(20.0);
    let third = privacy.split_even(3);
    let cand_params = CandidateParams {
        delta_clip: 1,
        privacy: third,
        beta: 0.1 / 3.0,
        tau_override: Some(tau),
        level_cap_override: None,
        threads: 1,
    };
    let mut group = c.benchmark_group("build_phases");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("step1_candidates", 1024), &idx, |b, idx| {
        let mut rng = StdRng::seed_from_u64(20);
        // The FAIL branch is part of the output space; timing ignores it
        // like the end-to-end groups above do.
        b.iter(|| build_candidates_pure(black_box(idx), &cand_params, &mut rng));
    });
    // Steps 2 and 3–6 run on one fixed candidate set (first succeeding
    // seed) so every iteration does identical work.
    let cands = (0..32u64)
        .find_map(|s| {
            let mut rng = StdRng::seed_from_u64(21 + s);
            build_candidates_pure(&idx, &cand_params, &mut rng).ok()
        })
        .expect("a candidate build succeeds within 32 seeds");
    group.bench_with_input(BenchmarkId::new("step2_count_trie", 1024), &idx, |b, idx| {
        b.iter(|| build_count_trie(black_box(idx), &cands.strings, 1));
    });
    let trie = build_count_trie(&idx, &cands.strings, 1);
    let pipe = PipelineParams {
        delta_clip: 1,
        privacy_roots: third,
        privacy_diffs: third,
        beta: 0.2 / 3.0,
        gaussian: false,
        prune_override: Some(f64::NEG_INFINITY),
        threads: 1,
    };
    group.bench_with_input(BenchmarkId::new("steps3_6_noise", 1024), &trie, |b, trie| {
        let mut rng = StdRng::seed_from_u64(22);
        b.iter(|| run_pipeline_on_trie(black_box(trie), 64, &pipe, &mut rng));
    });
    group.finish();
}

fn bench_build_threads(c: &mut Criterion) {
    let (idx, tau) = build_bench_setup();
    let mut group = c.benchmark_group("build_threads");
    group.sample_size(10);
    for &threads in &[1usize, 4, 8] {
        let params = BuildParams::new(CountMode::Document, PrivacyParams::pure(20.0), 0.1)
            .with_thresholds(tau, f64::NEG_INFINITY)
            .with_threads(threads);
        group.bench_with_input(BenchmarkId::from_parameter(threads), &idx, |b, idx| {
            let mut rng = StdRng::seed_from_u64(23);
            b.iter(|| build_pure(black_box(idx), &params, &mut rng));
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_theorem1,
    bench_theorem2,
    bench_theorem4,
    bench_build_phases,
    bench_build_threads
);
criterion_main!(benches);
