//! Criterion micro-benchmarks for the substrate layers: suffix array
//! construction, corpus indexing, pattern lookup, and the binary-tree
//! mechanism.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dpsc_dpcore::noise::Noise;
use dpsc_dpcore::tree_mechanism::BinaryTreeMechanism;
use dpsc_strkit::suffix_array::SuffixArray;
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::markov_corpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_suffix_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("suffix_array_sais");
    for &n in &[1usize << 12, 1 << 14, 1 << 16] {
        let mut rng = StdRng::seed_from_u64(1);
        let db = markov_corpus(n / 64, 64, 4, 0.7, &mut rng);
        let text: Vec<u8> = db.documents().iter().flatten().copied().collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &text, |b, text| {
            b.iter(|| SuffixArray::from_bytes(black_box(text)));
        });
    }
    group.finish();
}

fn bench_corpus_index(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus_index_build");
    group.sample_size(20);
    for &n in &[256usize, 1024, 4096] {
        let mut rng = StdRng::seed_from_u64(2);
        let db = markov_corpus(n, 64, 4, 0.7, &mut rng);
        group.bench_with_input(BenchmarkId::from_parameter(n * 64), &db, |b, db| {
            b.iter(|| CorpusIndex::build(black_box(db)));
        });
    }
    group.finish();
}

fn bench_pattern_lookup(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let db = markov_corpus(1024, 64, 4, 0.7, &mut rng);
    let idx = CorpusIndex::build(&db);
    let pattern = db.documents()[0][..16].to_vec();
    let mut group = c.benchmark_group("pattern_lookup");
    group.bench_function("count", |b| {
        b.iter(|| idx.count(black_box(&pattern)));
    });
    group.bench_function("count_clipped_delta4", |b| {
        b.iter(|| idx.count_clipped(black_box(&pattern), 4));
    });
    group.bench_function("document_count", |b| {
        b.iter(|| idx.document_count(black_box(&pattern)));
    });
    group.finish();
}

fn bench_tree_mechanism(c: &mut Criterion) {
    let mut group = c.benchmark_group("binary_tree_mechanism");
    for &t in &[256usize, 4096, 65536] {
        let seq: Vec<f64> = (0..t).map(|i| (i % 7) as f64).collect();
        group.bench_with_input(BenchmarkId::new("build", t), &seq, |b, seq| {
            let mut rng = StdRng::seed_from_u64(4);
            b.iter(|| {
                BinaryTreeMechanism::build(black_box(seq), Noise::Laplace { b: 3.0 }, &mut rng)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_suffix_array,
    bench_corpus_index,
    bench_pattern_lookup,
    bench_tree_mechanism
);
criterion_main!(benches);
