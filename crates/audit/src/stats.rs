//! Statistical primitives for the conformance audits: closed-form CDFs,
//! the Kolmogorov–Smirnov statistic, and binomial confidence bounds.
//!
//! Everything here is deterministic pure math; all randomness lives in the
//! callers (which draw from seeded RNGs so audit verdicts are reproducible).

/// Error function via the Abramowitz–Stegun 7.1.26 rational approximation
/// (max absolute error ≈ 1.5e-7 — far below every threshold the audits
/// compare against).
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.327_591_1 * x);
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    sign * (1.0 - poly * (-x * x).exp())
}

/// Standard normal CDF `Φ(z)`.
pub fn std_normal_cdf(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

/// CDF of the centered Laplace distribution with scale `b`.
pub fn laplace_cdf(b: f64, x: f64) -> f64 {
    assert!(b > 0.0);
    if x < 0.0 {
        0.5 * (x / b).exp()
    } else {
        1.0 - 0.5 * (-x / b).exp()
    }
}

/// CDF of the centered Gaussian with standard deviation `sigma`.
pub fn gaussian_cdf(sigma: f64, x: f64) -> f64 {
    assert!(sigma > 0.0);
    std_normal_cdf(x / sigma)
}

/// Two-sided Kolmogorov–Smirnov statistic `D_n = sup_x |F_n(x) − F(x)|`
/// of `samples` against the model CDF. Sorts the slice in place.
pub fn ks_statistic(samples: &mut [f64], cdf: impl Fn(f64) -> f64) -> f64 {
    assert!(!samples.is_empty());
    samples.sort_by(f64::total_cmp);
    let n = samples.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in samples.iter().enumerate() {
        let f = cdf(x);
        // F_n jumps from i/n to (i+1)/n at x; both gaps bound D_n.
        d = d.max(f - i as f64 / n).max((i as f64 + 1.0) / n - f);
    }
    d
}

/// Critical value for the one-sample KS test at significance `alpha`
/// (asymptotic DKW-style bound): reject iff `D_n > sqrt(ln(2/α)/(2n))`.
///
/// The bound is exact-conservative for every `n` (Massart's constant-free
/// DKW inequality), so the false-positive rate is ≤ `alpha` even at the
/// modest sample sizes the fast tier uses.
pub fn ks_critical(n: usize, alpha: f64) -> f64 {
    assert!(n > 0 && alpha > 0.0 && alpha < 1.0);
    ((2.0 / alpha).ln() / (2.0 * n as f64)).sqrt()
}

/// Wilson score interval for a binomial proportion: returns `(lo, hi)`
/// bounds for the true success probability given `hits` out of `n` at
/// normal quantile `z` (e.g. `z = 3.29` for ~99.9% two-sided coverage).
pub fn wilson_interval(hits: usize, n: usize, z: f64) -> (f64, f64) {
    assert!(n > 0 && hits <= n);
    let nf = n as f64;
    let p = hits as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = p + z2 / (2.0 * nf);
    let margin = z * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    (((center - margin) / denom).max(0.0), ((center + margin) / denom).min(1.0))
}

/// Mean and (population) variance of a sample.
pub fn mean_var(samples: &[f64]) -> (f64, f64) {
    assert!(!samples.is_empty());
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
    (mean, var)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // erf(0) = 0, erf(1) ≈ 0.8427008, erf(2) ≈ 0.9953223, odd symmetry.
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_8).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_3).abs() < 1e-6);
        assert!((erf(-1.0) + erf(1.0)).abs() < 1e-12);
    }

    #[test]
    fn cdfs_are_monotone_and_normalized() {
        for cdf in [
            Box::new(|x| laplace_cdf(2.0, x)) as Box<dyn Fn(f64) -> f64>,
            Box::new(|x| gaussian_cdf(2.0, x)),
        ] {
            assert!((cdf(0.0) - 0.5).abs() < 1e-9, "centered distributions have median 0");
            let mut prev = 0.0;
            for i in -40..=40 {
                let v = cdf(i as f64 * 0.5);
                assert!(v >= prev && (0.0..=1.0).contains(&v));
                prev = v;
            }
            assert!(cdf(-30.0) < 1e-6 && cdf(30.0) > 1.0 - 1e-6);
        }
    }

    #[test]
    fn ks_statistic_detects_wrong_model() {
        // Uniform grid on [0,1] against its own CDF: D_n = 1/(2n) + grid
        // offset ≈ tiny. Against a shifted CDF: large.
        let mut samples: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        let d_good = ks_statistic(&mut samples, |x| x.clamp(0.0, 1.0));
        assert!(d_good < 0.001, "D = {d_good}");
        let d_bad = ks_statistic(&mut samples, |x| (x * x).clamp(0.0, 1.0));
        assert!(d_bad > 0.2, "D = {d_bad}");
    }

    #[test]
    fn ks_critical_shrinks_with_n() {
        assert!(ks_critical(10_000, 0.001) < ks_critical(100, 0.001));
        // n = 50_000, α = 1e-3: sqrt(ln(2000)/1e5) ≈ 0.0087.
        assert!((ks_critical(50_000, 0.001) - 0.0087).abs() < 3e-4);
    }

    #[test]
    fn wilson_interval_brackets_truth() {
        let (lo, hi) = wilson_interval(500, 1000, 3.29);
        assert!(lo < 0.5 && 0.5 < hi);
        assert!(hi - lo < 0.12);
        // Degenerate corners stay in [0,1].
        let (lo0, _) = wilson_interval(0, 100, 3.29);
        let (_, hi1) = wilson_interval(100, 100, 3.29);
        assert_eq!(lo0, 0.0);
        assert_eq!(hi1, 1.0);
    }

    #[test]
    fn mean_var_basics() {
        let (m, v) = mean_var(&[1.0, 3.0]);
        assert_eq!(m, 2.0);
        assert_eq!(v, 1.0);
    }
}
