//! Layer 2: utility conformance against the theorem bounds.
//!
//! The pipelines publish an analytic sup-error bound `α` (derived from
//! [`dpsc_dpcore::noise::Noise::tail_bound`] via the Corollary 1/2 and
//! Lemma 11/18 union bounds) that holds with probability ≥ 1−β per release.
//! These audits run the *actual* Steps 3–6 release repeatedly and verify:
//!
//! * **unpruned**: the observed max |noisy − exact| over every probe node
//!   stays within `α` (allowing the β-rate of permitted excursions);
//! * **pruned**: surviving nodes are within `α`, and every pruned string's
//!   *true* count is below `prune_threshold + α` (the absent-string
//!   guarantee the paper's Theorem 1/2 statements rest on);
//! * **recall**: on the DNA workload's exactly-planted motifs, every motif
//!   whose true document count clears `τ + α_obs` margin is recovered by
//!   [`PrivateCountStructure::mine`] — ground truth the generator controls.

use dpsc_dpcore::budget::PrivacyParams;
use dpsc_private_count::pipeline::{build_count_trie, run_pipeline_on_trie, PipelineParams};
use dpsc_private_count::structure::CountMode;
use dpsc_private_count::{build_approx, build_pure, BuildParams, PrivateCountStructure};
use dpsc_textindex::CorpusIndex;
use dpsc_workloads::DnaCorpus;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a utility conformance audit of one pipeline configuration.
#[derive(Debug, Clone)]
pub struct UtilityCheck {
    /// Observed max |noisy − exact| across probes, worst trial.
    pub observed_max: f64,
    /// Mean over trials of the per-trial max error.
    pub mean_max: f64,
    /// Mean over trials of the per-trial *average* absolute error.
    pub mean_avg: f64,
    /// The analytic bound `α` (holds per trial w.p. ≥ 1−β).
    pub alpha_bound: f64,
    /// Number of trials run.
    pub trials: usize,
    /// Trials whose max error exceeded `α`.
    pub violations: usize,
    /// Binomially-allowed number of exceeding trials at failure rate β.
    pub allowed_violations: usize,
    /// For pruned runs: worst true count among pruned strings (else 0).
    pub worst_pruned_true: f64,
    /// For pruned runs: the bound on pruned strings (`threshold + α`).
    pub pruned_bound: f64,
    /// Probe nodes measured per trial.
    pub probes: usize,
    /// Overall verdict.
    pub pass: bool,
}

/// Normal quantile for the binomial violation allowance (≈ 1e-4 one-sided).
const Z: f64 = 3.89;

/// How many of `trials` independent releases may exceed the 1−β bound
/// before the audit flags a conformance failure.
pub fn allowed_violations(trials: usize, beta: f64) -> usize {
    let t = trials as f64;
    (t * beta + Z * (t * beta * (1.0 - beta)).sqrt()).ceil() as usize
}

/// Audits Steps 3–6 utility on a fixed probe set. `prune = false` keeps
/// every node (measuring raw release error); `prune = true` uses the
/// analytic `2α` threshold and additionally audits the pruned-string
/// guarantee.
#[allow(clippy::too_many_arguments)] // the audit axes are the scenario axes
pub fn audit_pipeline_utility(
    idx: &CorpusIndex,
    probes: &[Vec<u8>],
    delta_clip: usize,
    privacy: PrivacyParams,
    gaussian: bool,
    beta: f64,
    prune: bool,
    trials: usize,
    seed: u64,
) -> UtilityCheck {
    assert!(trials >= 1);
    let delta_clip = delta_clip.clamp(1, idx.max_len());
    let counts_trie = build_count_trie(idx, probes, delta_clip);
    let half = privacy.split_even(2);
    let params = PipelineParams {
        delta_clip,
        privacy_roots: half,
        privacy_diffs: half,
        beta,
        gaussian,
        prune_override: if prune { None } else { Some(f64::NEG_INFINITY) },
        threads: 1,
    };
    let ell = idx.max_len();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut observed_max = 0.0f64;
    let mut maxes = Vec::with_capacity(trials);
    let mut avgs = Vec::with_capacity(trials);
    let mut violations = 0usize;
    let mut worst_pruned_true = 0.0f64;
    let mut pruned_bound = 0.0f64;
    let mut alpha_bound = 0.0f64;
    for _ in 0..trials {
        let out = run_pipeline_on_trie(&counts_trie, ell, &params, &mut rng);
        alpha_bound = out.alpha;
        let (mut worst, mut sum, mut kept) = (0.0f64, 0.0f64, 0usize);
        for node in counts_trie.dfs() {
            let pat = counts_trie.string_of(node);
            let exact = *counts_trie.value(node) as f64;
            match out.trie.walk(&pat) {
                Some(n2) => {
                    let err = (*out.trie.value(n2) - exact).abs();
                    worst = worst.max(err);
                    sum += err;
                    kept += 1;
                }
                None => {
                    // Pruned: the absent-string guarantee bounds the truth.
                    worst_pruned_true = worst_pruned_true.max(exact);
                }
            }
        }
        pruned_bound = pruned_bound.max(out.prune_threshold + out.alpha);
        observed_max = observed_max.max(worst);
        maxes.push(worst);
        avgs.push(if kept > 0 { sum / kept as f64 } else { 0.0 });
        if worst > out.alpha {
            violations += 1;
        }
    }

    let allowed = allowed_violations(trials, beta);
    let mean_max = maxes.iter().sum::<f64>() / trials as f64;
    let mean_avg = avgs.iter().sum::<f64>() / trials as f64;
    // Per-trial max-error excursions beyond α may happen at rate ≤ β; the
    // *average* error must sit strictly inside the sup bound in every run.
    let pass = violations <= allowed
        && mean_avg <= alpha_bound
        && (!prune || worst_pruned_true <= pruned_bound);
    UtilityCheck {
        observed_max,
        mean_max,
        mean_avg,
        alpha_bound,
        trials,
        violations,
        allowed_violations: allowed,
        worst_pruned_true,
        pruned_bound,
        probes: counts_trie.len(),
        pass,
    }
}

/// Result of the planted-motif recall audit.
#[derive(Debug, Clone)]
pub struct RecallCheck {
    /// Mechanism label.
    pub label: String,
    /// Mining threshold τ used.
    pub tau: f64,
    /// The structure's published count-error bound `α`.
    pub alpha: f64,
    /// Motifs whose exact document count clears `τ + α_margin` (the ones
    /// recall is owed on).
    pub qualifying: usize,
    /// Of those, how many the miner recovered.
    pub recovered: usize,
    /// Total planted motifs.
    pub planted: usize,
    /// FAIL branch taken (legitimate but counts as no recall obligation).
    pub construction_failed: bool,
    /// `recovered == qualifying` (and construction succeeded).
    pub pass: bool,
}

/// Audits end-to-end mining recall on a DNA corpus with exactly-planted
/// motifs: build a Document-count structure, mine at `tau`, and require
/// every motif whose *true* document count is ≥ `tau + margin` to be
/// reported. `margin` should be the expected noise magnitude at the chosen
/// ε (the scenario matrix passes a multiple of the pipeline noise scale);
/// the check is meaningful only when at least one motif qualifies, which
/// the caller's corpus sizing guarantees.
pub fn audit_motif_recall(
    corpus: &DnaCorpus,
    privacy: PrivacyParams,
    gaussian: bool,
    tau: f64,
    margin: f64,
    seed: u64,
) -> RecallCheck {
    let idx = CorpusIndex::build(&corpus.db);
    let mut rng = StdRng::seed_from_u64(seed);
    let label = if gaussian { "gaussian" } else { "laplace" };
    let params = BuildParams::new(CountMode::Document, privacy, 0.1).with_thresholds(tau, tau);
    let built: Result<PrivateCountStructure, _> = if gaussian {
        build_approx(&idx, &params, &mut rng)
    } else {
        build_pure(&idx, &params, &mut rng)
    };
    let s = match built {
        Ok(s) => s,
        Err(_) => {
            return RecallCheck {
                label: label.to_string(),
                tau,
                alpha: f64::NAN,
                qualifying: 0,
                recovered: 0,
                planted: corpus.motifs.len(),
                construction_failed: true,
                pass: false,
            }
        }
    };
    let mined: Vec<Vec<u8>> = s.mine(tau).into_iter().map(|(g, _)| g).collect();
    let mut qualifying = 0usize;
    let mut recovered = 0usize;
    for (motif, _) in &corpus.motifs {
        let exact = idx.document_count(motif) as f64;
        if exact >= tau + margin {
            qualifying += 1;
            if mined.iter().any(|m| m == motif) {
                recovered += 1;
            }
        }
    }
    RecallCheck {
        label: label.to_string(),
        tau,
        alpha: s.alpha_counts(),
        qualifying,
        recovered,
        planted: corpus.motifs.len(),
        construction_failed: false,
        pass: recovered == qualifying,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpsc_private_count::frequent_substrings;
    use dpsc_workloads::markov_corpus;

    #[test]
    fn near_zero_noise_conforms_trivially() {
        let mut rng = StdRng::seed_from_u64(31);
        let db = markov_corpus(24, 16, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let probes = frequent_substrings(&idx, 16, 2.0, None);
        let check = audit_pipeline_utility(
            &idx,
            &probes,
            16,
            PrivacyParams::pure(1e9),
            false,
            0.1,
            false,
            3,
            32,
        );
        assert!(check.pass);
        assert!(check.observed_max < 1e-3, "near-zero noise ⇒ near-zero error");
        assert!(check.probes > 10);
    }

    #[test]
    fn real_noise_stays_within_alpha() {
        let mut rng = StdRng::seed_from_u64(33);
        let db = markov_corpus(32, 24, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let probes = frequent_substrings(&idx, 24, 3.0, None);
        for gaussian in [false, true] {
            let privacy =
                if gaussian { PrivacyParams::approx(2.0, 1e-6) } else { PrivacyParams::pure(2.0) };
            let check =
                audit_pipeline_utility(&idx, &probes, 24, privacy, gaussian, 0.1, false, 6, 34);
            assert!(
                check.pass,
                "gaussian={gaussian}: {} violations of α={} (worst {})",
                check.violations, check.alpha_bound, check.observed_max
            );
            assert!(check.mean_avg < check.alpha_bound);
        }
    }

    #[test]
    fn pruned_runs_respect_absent_guarantee() {
        let mut rng = StdRng::seed_from_u64(35);
        let db = markov_corpus(32, 24, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let probes = frequent_substrings(&idx, 24, 3.0, None);
        let check = audit_pipeline_utility(
            &idx,
            &probes,
            24,
            PrivacyParams::pure(2.0),
            false,
            0.1,
            true,
            4,
            36,
        );
        assert!(
            check.pass,
            "pruned worst true {} vs bound {}",
            check.worst_pruned_true, check.pruned_bound
        );
        // At ε=2 on a tiny corpus the analytic 2α threshold prunes hard.
        assert!(check.pruned_bound > 0.0);
    }

    #[test]
    fn broken_alpha_is_flagged() {
        // Sanity for the audit itself: against an artificially shrunken α
        // the same release statistics must register violations. We emulate
        // by checking that observed error at honest ε exceeds α/1000.
        let mut rng = StdRng::seed_from_u64(37);
        let db = markov_corpus(32, 24, 4, 0.7, &mut rng);
        let idx = CorpusIndex::build(&db);
        let probes = frequent_substrings(&idx, 24, 3.0, None);
        let check = audit_pipeline_utility(
            &idx,
            &probes,
            24,
            PrivacyParams::pure(2.0),
            false,
            0.1,
            false,
            4,
            38,
        );
        assert!(
            check.observed_max > check.alpha_bound / 1000.0,
            "real noise must produce measurable error ({} vs α {})",
            check.observed_max,
            check.alpha_bound
        );
    }
}
